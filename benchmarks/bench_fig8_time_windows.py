"""Figure 8: predicted-to-actual retweet ratio per dynamic time window.

Paper shape: the ratio is noisy in the first minutes after the root tweet
and approaches 1 for later windows — early dynamics are uncertain, later
growth is predictable.
"""

import numpy as np

from benchmarks.common import get_retina_samples, get_trained_retina, run_once
from repro.core.retina import DYNAMIC_INTERVAL_EDGES_MIN, predicted_to_actual_ratio
from repro.utils.tables import render_table


def _run():
    trainer = get_trained_retina("dynamic")
    _, te = get_retina_samples()
    probas, labels = [], []
    for s in te:
        probas.append(trainer.predict_sample(s))
        labels.append(s.interval_labels)
    return predicted_to_actual_ratio(probas, labels)


def test_fig8_predicted_to_actual_ratio(benchmark):
    ratio = run_once(benchmark, _run)
    edges = DYNAMIC_INTERVAL_EDGES_MIN
    rows = [
        [f"{edges[i]:.0f}-{edges[i + 1]:.0f} min", "-" if np.isnan(r) else round(float(r), 3)]
        for i, r in enumerate(ratio)
    ]
    print()
    print(
        render_table(
            ["window after root tweet", "predicted/actual"],
            rows,
            title="Fig 8 — dynamic-mode predicted vs actual retweets per window",
        )
    )
    valid = ratio[~np.isnan(ratio)]
    assert len(valid) >= 3
    # Shape: later windows are closer to 1 than the earliest window.
    early_err = abs(valid[0] - 1.0)
    late_err = abs(valid[-1] - 1.0)
    assert late_err <= early_err + 0.5


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_run, "fig8_time_windows"))

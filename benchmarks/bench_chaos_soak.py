"""Chaos soak: seeded fault injection against the live serving stack.

Trains a small RETINA bundle once, then walks it through one leg per
failure domain, each under a deterministic :mod:`repro.chaos` schedule:

- **serving** — a 2-worker engine behind the asyncio front end takes
  closed-loop SDK load while ``pool.worker_crash`` / ``pool.worker_slow``
  kill and stall dispatch workers and ``client.reset`` drops pooled
  keep-alive sockets mid-conversation.  Every request must come back as
  a 200 or a *typed* error (``worker_crashed``, ``connection_reset``,
  ...) — no hangs, no silent drops, no untyped tracebacks.  After the
  schedule is switched off the pool must respawn back to full width.
- **raw sockets** — hand-rolled peers disconnect mid-body and slow-loris
  the request head (the ``aio.disconnect`` / ``aio.slowloris`` points
  are driven from this harness, not from server code).  The server must
  count each abort and keep answering afterwards.
- **paged I/O** — a PagedMatrix absorbs transient EIO on block
  read/write; once the injected disk heals, every byte written under
  chaos must read back bit-identically (no dirty block silently lost).
- **registry** — a bundle save truncated by ``registry.save`` must fail
  checksum verification with a typed ``RegistryCorruptError`` on load,
  and a clean re-save must serve.
- **event store** — a child process appends to an ``EventLog``,
  durably recording every acked sequence number, and is SIGKILLed
  mid-stream.  Reopening the log must recover every acked event
  bit-for-bit (a torn tail may be truncated, an acked record may not),
  and the ``store.append`` / ``store.fsync`` chaos points must surface
  as typed ``StoreIOError`` with the failed append fully rolled back.
- **bit-identical replay** — with chaos off, a fresh server must return
  exactly the scores recorded before any fault ran.

``--check`` turns each gate into a non-zero exit (the CI chaos-smoke
job).  The schedule is fully determined by ``--seed``.

Runnable standalone: ``PYTHONPATH=src python benchmarks/bench_chaos_soak.py``.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import socket
import subprocess
import sys
import threading
import time
from functools import lru_cache
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # executed as a script: make `benchmarks` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

# The soak's crash schedule is continuous by design; the crash-loop breaker
# (unit-tested in tests/serving) would otherwise trip mid-leg and turn the
# full-width-recovery gate into a breaker test.
os.environ.setdefault("REPRO_SERVE_CRASH_LIMIT", "1000")

from benchmarks.common import add_json_out, emit_report
from repro import chaos
from repro.chaos import ChaosPlan, ChaosRule
from repro.client import ServingClient, ServingError
from repro.core.retina import RETINA, RetinaFeatureExtractor, RetinaTrainer
from repro.data import HateDiffusionDataset, SyntheticWorldConfig
from repro.features.paged import PagedIOError, PagedMatrix
from repro.obs import config as obs_config
from repro.obs import metrics as obs_metrics
from repro.serving import (
    AsyncPredictionServer,
    InferenceEngine,
    ModelRegistry,
    RegistryCorruptError,
    RetinaBundle,
    RetweeterPredictor,
)
from repro.store import EventLog, RetweetEvent, StoreIOError

REPLAY_N = 24          # deterministic request set for the bit-identical gate
DISCONNECTS = 5        # aio.disconnect leg: peers dropped mid-body
SLOWLORIS = 3          # aio.slowloris leg: stalled request heads
RECOVERY_TIMEOUT_S = 30.0
STORE_KILL_ACKS = 40   # SIGKILL the appender once this many acks are durable


@lru_cache(maxsize=1)
def _serving_fixture():
    """(bundle, world, payloads) — trained once per process."""
    cfg = SyntheticWorldConfig(
        scale=0.01, n_hashtags=5, n_users=150, n_news=300, seed=13
    )
    ds = HateDiffusionDataset.generate(cfg)
    train, _ = ds.cascade_split(random_state=0)
    extractor = RetinaFeatureExtractor(ds.world, random_state=0).fit(train)
    edges = RetinaTrainer.default_interval_edges()
    tr = extractor.build_samples(train[:30], interval_edges_hours=edges, random_state=0)
    model = RETINA(
        user_dim=extractor.user_feature_dim,
        tweet_dim=extractor.news_doc2vec_dim,
        news_dim=extractor.news_doc2vec_dim,
        mode="static",
        random_state=0,
    )
    RetinaTrainer(model, epochs=1, random_state=0).fit(tr)
    bundle = RetinaBundle(model=model, extractor=extractor, world_config=cfg)
    cascade_ids = [c.root.tweet_id for c in ds.world.cascades[:40]]
    user_pool = sorted(ds.world.users)
    rng = np.random.default_rng(0)
    payloads = [
        {
            "cascade_id": int(rng.choice(cascade_ids)),
            "user_ids": [
                int(u) for u in rng.choice(user_pool, size=8, replace=False)
            ],
        }
        for _ in range(256)
    ]
    return bundle, ds.world, payloads


def _serve(workers: int, **server_kwargs):
    bundle, _, _ = _serving_fixture()
    engine = InferenceEngine(
        {"retweeters": RetweeterPredictor(bundle)},
        max_batch_size=8,
        max_wait_ms=1.0,
        workers=workers,
    )
    return engine, AsyncPredictionServer(engine, port=0, **server_kwargs)


def _replay_scores(host: str, port: int, payloads: list[dict]) -> list[dict]:
    """Scores for the fixed replay set, in order (the bit-identical probe)."""
    out = []
    with ServingClient(host=host, port=port, timeout=60, retries=0) as client:
        for p in payloads[:REPLAY_N]:
            resp = client.predict_retweeters(p["cascade_id"], user_ids=p["user_ids"])
            out.append({str(k): float(v) for k, v in resp.scores.items()})
    return out


# --------------------------------------------------------------- serving leg
def _serving_leg(seed: int, requests_per_thread: int, concurrency: int) -> dict:
    plan = ChaosPlan(
        seed=seed,
        rules={
            "pool.worker_crash": ChaosRule(rate=0.02),
            "pool.worker_slow": ChaosRule(rate=0.05, delay_s=0.01),
            "client.reset": ChaosRule(rate=0.02),
        },
    )
    # Enabled *before* the engine forks its dispatch workers, so every
    # worker inherits the schedule (respawned workers fork the parent's
    # then-current state — after disable() they come back chaos-free).
    chaos.enable(plan)
    engine, server = _serve(workers=2)
    ok = [0] * concurrency
    typed: list[dict] = [dict() for _ in range(concurrency)]
    untyped: list[list[str]] = [[] for _ in range(concurrency)]
    _, _, payloads = _serving_fixture()
    try:
        with server:
            host, port = server.address

            def client_loop(slot: int):
                with ServingClient(
                    host=host, port=port, timeout=60, retries=0, pool_size=1
                ) as client:
                    for i in range(requests_per_thread):
                        p = payloads[(slot * requests_per_thread + i) % len(payloads)]
                        try:
                            client.predict_retweeters(
                                p["cascade_id"], user_ids=p["user_ids"]
                            )
                            ok[slot] += 1
                        except ServingError as exc:
                            code = exc.code or "unknown"
                            typed[slot][code] = typed[slot].get(code, 0) + 1
                        except Exception as exc:  # noqa: BLE001 - the gate itself
                            untyped[slot].append(repr(exc))

            threads = [
                threading.Thread(target=client_loop, args=(s,))
                for s in range(concurrency)
            ]
            t0 = time.perf_counter()
            for t in threads:
                t.start()
            for t in threads:
                t.join(timeout=300.0)
            hung = sum(t.is_alive() for t in threads)
            elapsed = time.perf_counter() - t0

            # Heal the world, then wait for the pool to respawn to width.
            chaos.disable()
            recovered = False
            recovery_started = time.perf_counter()
            while time.perf_counter() - recovery_started < RECOVERY_TIMEOUT_S:
                health = engine.dispatch_health()
                if (
                    health["mode"] == "workers"
                    and health["live_workers"] == health["configured_workers"]
                ):
                    recovered = True
                    break
                time.sleep(0.25)
            recovery_s = time.perf_counter() - recovery_started
            health = engine.dispatch_health()
    finally:
        chaos.disable()

    typed_total: dict[str, int] = {}
    for per in typed:
        for code, n in per.items():
            typed_total[code] = typed_total.get(code, 0) + n
    attempted = requests_per_thread * concurrency
    answered = sum(ok) + sum(typed_total.values())
    return {
        "attempted": attempted,
        "ok": sum(ok),
        "typed_errors": typed_total,
        "untyped_errors": [e for per in untyped for e in per][:5],
        "n_untyped": sum(len(per) for per in untyped),
        "answered": answered,
        "hung_clients": hung,
        "elapsed_s": round(elapsed, 2),
        "chaos_stats": chaos.stats() or plan.stats(),
        "dispatch_health": health,
        "recovered_full_width": recovered,
        "recovery_s": round(recovery_s, 2),
    }


# ------------------------------------------------------------ raw-socket leg
def _raw_socket_leg() -> dict:
    """Mid-body disconnects + slow-loris heads against a live server."""
    aborted = obs_metrics.REGISTRY.counter(
        "repro_aio_aborted_requests_total", labels=("stage",)
    )
    head_before = aborted.value(stage="head")
    body_before = aborted.value(stage="body")
    engine, server = _serve(workers=1, header_timeout=0.5)
    _, _, payloads = _serving_fixture()
    with server:
        host, port = server.address
        for _ in range(DISCONNECTS):  # aio.disconnect: vanish mid-body
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(
                    b"POST /v1/predict/retweeters HTTP/1.1\r\n"
                    b"Host: soak\r\nContent-Type: application/json\r\n"
                    b"Content-Length: 1000\r\n\r\n"
                    b'{"cascade_id"'
                )
                # close with 987 body bytes still owed
        for _ in range(SLOWLORIS):  # aio.slowloris: stall the request head
            with socket.create_connection((host, port), timeout=10) as sock:
                sock.sendall(
                    b"POST /v1/predict/retweeters HTTP/1.1\r\n" b"Host: so"
                )
                sock.settimeout(5.0)
                try:
                    while sock.recv(4096):  # drain until the server gives up
                        pass
                except (TimeoutError, OSError):
                    pass
        # The server must still answer real traffic after the abuse.
        with ServingClient(host=host, port=port, timeout=60, retries=0) as client:
            health_ok = client.health().status == "ok"
            p = payloads[0]
            predict_ok = bool(
                client.predict_retweeters(p["cascade_id"], user_ids=p["user_ids"]).scores
            )
    head_aborts = aborted.value(stage="head") - head_before
    body_aborts = aborted.value(stage="body") - body_before
    return {
        "disconnects_sent": DISCONNECTS,
        "slowloris_sent": SLOWLORIS,
        "head_aborts": int(head_aborts),
        "body_aborts": int(body_aborts),
        "aborts_counted": head_aborts >= SLOWLORIS and body_aborts >= DISCONNECTS,
        "server_alive_after": health_ok and predict_ok,
    }


# ----------------------------------------------------------------- paged leg
def _paged_leg(seed: int) -> dict:
    rng = np.random.default_rng(seed)
    ref = rng.standard_normal((256, 8))
    pm = PagedMatrix(256, 8, page_rows=16, max_pages=4)
    io_errors_seen = 0
    try:
        chaos.enable(
            ChaosPlan(
                seed=seed,
                rules={
                    "paged.write": ChaosRule(rate=0.2),
                    "paged.read": ChaosRule(rate=0.1),
                },
            )
        )
        for lo in range(0, 256, 16):
            try:
                pm.write_rows(np.arange(lo, lo + 16), ref[lo : lo + 16])
            except PagedIOError:
                io_errors_seen += 1  # persistent streak: typed, then retried
                pm.write_rows(np.arange(lo, lo + 16), ref[lo : lo + 16])
        degraded_under_chaos = pm.stats["degraded_blocks"]
        chaos.disable()
        pm.flush()  # disk healed: every deferred writeback must land
        intact = bool(np.array_equal(pm.read_rows(np.arange(256)), ref))
        stats = dict(pm.stats)
    finally:
        chaos.disable()
        pm.close()
    return {
        "io_retries": stats["io_retries"],
        "io_errors": stats["io_errors"],
        "typed_errors_surfaced": io_errors_seen,
        "degraded_blocks_under_chaos": degraded_under_chaos,
        "degraded_blocks_after_heal": stats["degraded_blocks"],
        "bit_identical_after_heal": intact,
        "no_silent_loss": intact and stats["degraded_blocks"] == 0,
    }


# -------------------------------------------------------------- registry leg
def _registry_leg(seed: int, tmp_root: str) -> dict:
    bundle, world, _ = _serving_fixture()
    reg = ModelRegistry(tmp_root)
    chaos.enable(
        ChaosPlan(seed=seed, rules={"registry.save": ChaosRule(rate=1.0, limit=1)})
    )
    try:
        reg.save_bundle("retina", bundle)  # v1: one artifact truncated
    finally:
        chaos.disable()
    try:
        reg.load_bundle("retina", 1, world=world)
        corruption_typed = False
    except RegistryCorruptError:
        corruption_typed = True
    reg.save_bundle("retina", bundle)  # v2: clean
    clean_loads = reg.load_bundle("retina", 2, world=world) is not None
    return {
        "corruption_detected_typed": corruption_typed,
        "clean_resave_loads": clean_loads,
    }


# ----------------------------------------------------------------- store leg
def _store_child(root: str) -> int:
    """Child mode: append unique events until killed, acking each durably.

    Each ack line is written *after* ``append`` returns and fsynced
    before the next append starts, so every line in ``acked.jsonl``
    names an event the log promised to keep.  Small segments force
    rollover under fire.
    """
    log = EventLog(os.path.join(root, "events"), segment_max_bytes=4096)
    fd = os.open(os.path.join(root, "acked.jsonl"),
                 os.O_WRONLY | os.O_CREAT | os.O_APPEND, 0o644)
    i = log.last_seq
    while True:
        seq, digest, _ = log.append(
            RetweetEvent(tweet_id=i, user_id=i + 1, timestamp=float(i))
        )
        os.write(fd, (json.dumps({"seq": seq, "hash": digest}) + "\n").encode())
        os.fsync(fd)
        i += 1


def _store_leg(seed: int, tmp_root: str) -> dict:
    """SIGKILL an appender mid-stream, then prove no acked event was lost."""
    root = Path(tmp_root) / "store"
    root.mkdir()
    env = dict(os.environ)
    src = str(Path(__file__).resolve().parent.parent / "src")
    env["PYTHONPATH"] = os.pathsep.join(
        p for p in (src, env.get("PYTHONPATH")) if p
    )
    ack_path = root / "acked.jsonl"
    child = subprocess.Popen(
        [sys.executable, __file__, "--store-child", str(root)], env=env
    )
    deadline = time.monotonic() + 120
    killed_mid_stream = False
    while time.monotonic() < deadline:
        try:
            acks = ack_path.read_bytes().count(b"\n")
        except OSError:
            acks = 0
        if acks >= STORE_KILL_ACKS:
            os.kill(child.pid, signal.SIGKILL)
            killed_mid_stream = True
            break
        if child.poll() is not None:
            break
        time.sleep(0.005)
    child.wait(timeout=60)

    acked: list[dict] = []
    for line in ack_path.read_text().splitlines():
        try:
            acked.append(json.loads(line))
        except json.JSONDecodeError:
            break  # only the very last line can be torn (fsynced per line)
    log = EventLog(str(root / "events"), segment_max_bytes=4096)
    lost = []
    for rec in acked:
        try:
            stored = log.get(rec["seq"])
        except KeyError:
            lost.append(rec["seq"])
            continue
        if stored.hash != rec["hash"]:
            lost.append(rec["seq"])
    seqs = [s.seq for s in log.events(0)]
    contiguous = seqs == list(range(1, len(seqs) + 1))
    stats = log.stats()
    log.close()

    # Typed-failure sub-leg: both chaos points must fail cleanly and the
    # rolled-back log must keep accepting appends with contiguous seqs.
    chaos.enable(ChaosPlan(seed=seed, rules={
        "store.append": ChaosRule(at=(0,)),
        "store.fsync": ChaosRule(at=(0,)),
    }))
    typed = {"store.append": False, "store.fsync": False}
    try:
        clog = EventLog(str(root / "chaos-events"))
        try:  # call 0 of store.append fires before any bytes are written
            clog.append(RetweetEvent(tweet_id=1, user_id=2, timestamp=1.0))
        except StoreIOError:
            typed["store.append"] = True
        try:  # call 0 of store.fsync fires after the write; must roll back
            clog.append(RetweetEvent(tweet_id=1, user_id=2, timestamp=1.0))
        except StoreIOError:
            typed["store.fsync"] = True
        seq, _, deduped = clog.append(
            RetweetEvent(tweet_id=1, user_id=2, timestamp=1.0)
        )
        clog.close()
    finally:
        chaos.disable()
    reopened = EventLog(str(root / "chaos-events"))
    rolled_back_clean = (
        seq == 1 and not deduped
        and reopened.last_seq == 1
        and reopened.stats()["truncated_tail_bytes"] == 0
    )
    reopened.close()
    return {
        "killed_mid_stream": killed_mid_stream,
        "acked": len(acked),
        "recovered": stats["events"],
        "lost_acked": lost[:10],
        "n_lost_acked": len(lost),
        "truncated_tail_bytes": stats["truncated_tail_bytes"],
        "segments": stats["segments"],
        "contiguous_after_reopen": contiguous,
        "typed_errors": typed,
        "rolled_back_clean": rolled_back_clean,
    }


# --------------------------------------------------------------------- main
def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seed", type=int, default=1,
                        help="chaos schedule seed (default 1)")
    parser.add_argument("--requests-per-thread", type=int, default=120,
                        help="serving-leg requests per client thread")
    parser.add_argument("--concurrency", type=int, default=4,
                        help="serving-leg client threads")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when any soak gate fails")
    parser.add_argument("--smoke", action="store_true",
                        help="short CI preset (implies --check)")
    parser.add_argument("--store-child", metavar="DIR", default=None,
                        help=argparse.SUPPRESS)  # internal: the killed appender
    add_json_out(parser)
    args = parser.parse_args(argv)
    if args.smoke:
        args.requests_per_thread = min(args.requests_per_thread, 50)
        args.check = True
    return args


def _run(args) -> dict:
    import tempfile

    obs_config.configure(enabled=True, sample_rate=0.0)
    chaos.disable()  # a REPRO_CHAOS env leak must not skew the baseline

    # Baseline scores before any fault runs (the bit-identical reference).
    engine, server = _serve(workers=1)
    _, _, payloads = _serving_fixture()
    with server:
        host, port = server.address
        baseline = _replay_scores(host, port, payloads)

    serving = _serving_leg(args.seed, args.requests_per_thread, args.concurrency)
    raw = _raw_socket_leg()
    paged = _paged_leg(args.seed)
    with tempfile.TemporaryDirectory() as tmp:
        registry = _registry_leg(args.seed, tmp)
    with tempfile.TemporaryDirectory() as tmp:
        store = _store_leg(args.seed, tmp)

    # Chaos off, fresh server: the exact same scores must come back.
    engine, server = _serve(workers=1)
    with server:
        host, port = server.address
        replay = _replay_scores(host, port, payloads)
    bit_identical = replay == baseline

    gates = {
        "serving_all_answered": (
            serving["answered"] == serving["attempted"]
            and serving["n_untyped"] == 0
        ),
        "serving_no_hangs": serving["hung_clients"] == 0,
        "serving_chaos_exercised": (
            serving["chaos_stats"].get("client.reset", {}).get("fires", 0) > 0
            or serving["dispatch_health"].get("crashes", 0) > 0
        ),
        "pool_recovered_full_width": serving["recovered_full_width"],
        "raw_socket_aborts_counted": raw["aborts_counted"],
        "server_alive_after_abuse": raw["server_alive_after"],
        "paged_no_silent_loss": paged["no_silent_loss"],
        "registry_corruption_typed": registry["corruption_detected_typed"],
        "registry_clean_resave_loads": registry["clean_resave_loads"],
        "store_no_acked_loss": (
            store["killed_mid_stream"]
            and store["n_lost_acked"] == 0
            and store["contiguous_after_reopen"]
        ),
        "store_chaos_typed": (
            all(store["typed_errors"].values()) and store["rolled_back_clean"]
        ),
        "bit_identical_chaos_off": bit_identical,
    }
    return {
        "seed": args.seed,
        "serving": serving,
        "raw_socket": raw,
        "paged": paged,
        "registry": registry,
        "store": store,
        "bit_identical": {"requests": REPLAY_N, "ok": bit_identical},
        "gates": gates,
        "all_gates_ok": all(gates.values()),
    }


def main(argv=None) -> int:
    args = parse_args(argv)
    if args.store_child:
        return _store_child(args.store_child)
    results = _run(args)
    report = {"benchmark": "chaos_soak", "results": results}
    emit_report(report, args.json_out)
    if args.check:
        failed = [name for name, ok in results["gates"].items() if not ok]
        if failed:
            print(f"FAIL: chaos soak gate(s) failed: {', '.join(failed)}",
                  file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

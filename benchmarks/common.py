"""Shared state for the benchmark suite.

All benchmarks run against one fixed-seed world large enough for stable
statistics; expensive intermediates (feature extractors, samples, trained
models) are memoised so each table/figure bench only pays for what it
uniquely needs.  Every bench prints the paper's reference values alongside
the measured ones.
"""

from __future__ import annotations

import argparse
import inspect
import json
import os
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.core.retina import RETINA, RetinaFeatureExtractor, RetinaTrainer
from repro.data import HateDiffusionDataset, SyntheticWorldConfig
from repro.parallel import resolve_workers

BENCH_SEED = 42

#: Training-subset cap for the neural models (keeps the suite's wall-clock
#: in minutes; the comparison stays apples-to-apples since every neural
#: model sees the same subset).
NEURAL_TRAIN_CAP = 250
NEURAL_TEST_CAP = 80


@lru_cache(maxsize=1)
def get_dataset() -> HateDiffusionDataset:
    """The benchmark world (larger than the test worlds)."""
    cfg = SyntheticWorldConfig(
        scale=0.05,
        n_hashtags=12,
        n_users=500,
        n_news=2000,
        seed=BENCH_SEED,
    )
    return HateDiffusionDataset.generate(cfg)


@lru_cache(maxsize=1)
def get_cascade_splits():
    ds = get_dataset()
    return ds.cascade_split(random_state=BENCH_SEED)


@lru_cache(maxsize=1)
def get_retina_extractor() -> RetinaFeatureExtractor:
    train, _ = get_cascade_splits()
    ds = get_dataset()
    return RetinaFeatureExtractor(ds.world, random_state=BENCH_SEED).fit(train)


@lru_cache(maxsize=1)
def get_retina_samples():
    """(train_samples, test_samples) with dynamic interval labels.

    Test candidate pools carry extra negatives so the Fig. 5 ranking task
    does not saturate (HITS@k stays informative out to k=100).
    """
    ext = get_retina_extractor()
    train, test = get_cascade_splits()
    edges = RetinaTrainer.default_interval_edges()
    tr = ext.build_samples(
        train[:NEURAL_TRAIN_CAP], interval_edges_hours=edges, random_state=0
    )
    train_negatives = ext.n_negatives
    ext.n_negatives = 100
    try:
        te = ext.build_samples(
            test[:NEURAL_TEST_CAP], interval_edges_hours=edges, random_state=1
        )
    finally:
        ext.n_negatives = train_negatives
    return tr, te


@lru_cache(maxsize=4)
def get_trained_retina(mode: str, use_exogenous: bool = True, epochs: int = 8):
    """A trained RETINA(+trainer) for the given configuration."""
    ext = get_retina_extractor()
    tr, _ = get_retina_samples()
    model = RETINA(
        user_dim=ext.user_feature_dim,
        tweet_dim=ext.news_doc2vec_dim,
        news_dim=ext.news_doc2vec_dim,
        mode=mode,
        use_exogenous=use_exogenous,
        random_state=BENCH_SEED,
    )
    trainer = RetinaTrainer(model, epochs=epochs, random_state=BENCH_SEED)
    trainer.fit(tr)
    return trainer


def retina_queries(trainer) -> list[tuple[np.ndarray, np.ndarray]]:
    """(labels, static scores) per test cascade."""
    _, te = get_retina_samples()
    return [(s.labels.astype(int), trainer.predict_static_scores(s)) for s in te]


@lru_cache(maxsize=1)
def get_hategen_matrices():
    """(pipeline, X_tr, y_tr, X_te, y_te) for the hate-generation task."""
    from repro.core.hategen import HateGenFeatureExtractor, HateGenerationPipeline

    ds = get_dataset()
    train, test = ds.hategen_split(random_state=BENCH_SEED)
    extractor = HateGenFeatureExtractor(ds.world, doc2vec_epochs=6, random_state=BENCH_SEED)
    pipeline = HateGenerationPipeline(extractor, random_state=BENCH_SEED)
    X_tr, y_tr, X_te, y_te = pipeline.prepare(train, test)
    return pipeline, X_tr, y_tr, X_te, y_te


def run_once(benchmark, fn):
    """Run an expensive benchmark body exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


# --------------------------------------------------------- JSON reporting
# Every benchmark script shares one reporting contract: a JSON document on
# stdout, plus ``--json-out PATH`` to archive it (CI stores BENCH_*.json
# trajectories across PRs).


def json_ready(value):
    """Recursively convert a report to JSON-serialisable builtins."""
    if isinstance(value, dict):
        return {str(k): json_ready(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_ready(v) for v in value]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def add_json_out(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the shared ``--json-out`` flag to a benchmark's CLI."""
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="also write the JSON report to PATH (e.g. BENCH_train_step.json)",
    )
    return parser


# ------------------------------------------------------------ workers knob
def parse_workers_list(spec: str) -> list[int]:
    """``"1,2,4"`` -> ``[1, 2, 4]`` (deduplicated, order-preserving)."""
    out: list[int] = []
    for part in spec.split(","):
        part = part.strip()
        if not part:
            continue
        n = int(part)
        if n < 1:
            raise argparse.ArgumentTypeError(f"worker counts must be >= 1, got {n}")
        if n not in out:
            out.append(n)
    if not out:
        raise argparse.ArgumentTypeError(f"no worker counts in {spec!r}")
    return out


def add_workers_sweep(parser: argparse.ArgumentParser, default: str = "1,2,4"):
    """Attach ``--workers`` as a comma-separated sweep list."""
    parser.add_argument(
        "--workers",
        type=parse_workers_list,
        default=parse_workers_list(default),
        metavar="LIST",
        help=f"comma-separated worker counts to sweep (default {default}; "
             f"a serial leg is always included as the speedup baseline)",
    )
    return parser


def with_serial_baseline(workers: list[int]) -> list[int]:
    """The sweep with a leading ``1``: ``speedup_vs_serial`` needs its
    baseline measured by the same leg, never inferred from another phase."""
    return workers if 1 in workers else [1] + workers


def smoke_sweep(workers: list[int], cap: int = 2) -> list[int]:
    """Cap a sweep for CI smoke runs (at most ``cap`` workers, serial kept)."""
    return with_serial_baseline([w for w in workers if w <= cap] or [cap])


def available_cores() -> int:
    """Cores this process may use (what gates parallel speedup floors)."""
    try:
        return len(os.sched_getaffinity(0))
    except AttributeError:  # pragma: no cover - non-Linux
        return os.cpu_count() or 1


def floor_enforceable(workers: int) -> bool:
    """Whether a ``workers``-way speedup floor is meaningful on this host."""
    return available_cores() >= workers


def emit_report(report: dict, json_out: str | None = None) -> dict:
    """Print a benchmark report as JSON and optionally archive it.

    Every report is stamped with a ``run_record`` — git SHA, host, the
    telemetry switches, accumulated metric counters, and the slowest spans
    seen during the run — so an archived ``BENCH_*.json`` says what
    produced its numbers without consulting CI logs.
    """
    from repro.obs import run_record

    report = dict(report)
    report.setdefault("run_record", run_record())
    report = json_ready(report)
    text = json.dumps(report, indent=2)
    print(text)
    if json_out:
        Path(json_out).write_text(text + "\n")
    return report


def standalone_main(run_fn, name: str, argv=None) -> int:
    """Uniform ``__main__`` entry point for the figure/table benchmarks.

    Parses the shared ``--json-out`` and ``--workers`` flags, executes the
    benchmark body (passing ``workers=`` when the body accepts it), and
    emits ``{"benchmark": name, "workers": N, "results": ...}`` — every
    bench in the suite records the worker count it ran with.
    """
    parser = argparse.ArgumentParser(description=f"repro benchmark: {name}")
    add_json_out(parser)
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="worker processes (default: $REPRO_NUM_WORKERS, then 1)",
    )
    args = parser.parse_args(argv)
    workers = resolve_workers(args.workers)
    kwargs = {}
    env_override = None
    if "workers" in inspect.signature(run_fn).parameters:
        kwargs["workers"] = workers
    else:
        # The body has no explicit workers plumbing; route the count through
        # the environment so every resolve_workers() inside it (feature
        # store fills, Doc2Vec transforms, ...) actually uses it — the
        # recorded "workers" must be what the run really ran with.
        env_override = os.environ.get("REPRO_NUM_WORKERS")
        os.environ["REPRO_NUM_WORKERS"] = str(workers)
    try:
        results = run_fn(**kwargs)
    finally:
        if env_override is not None:
            os.environ["REPRO_NUM_WORKERS"] = env_override
        elif "workers" not in kwargs:
            os.environ.pop("REPRO_NUM_WORKERS", None)
    emit_report(
        {"benchmark": name, "workers": workers, "results": results},
        args.json_out,
    )
    return 0

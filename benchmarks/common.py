"""Shared state for the benchmark suite.

All benchmarks run against one fixed-seed world large enough for stable
statistics; expensive intermediates (feature extractors, samples, trained
models) are memoised so each table/figure bench only pays for what it
uniquely needs.  Every bench prints the paper's reference values alongside
the measured ones.
"""

from __future__ import annotations

import argparse
import json
from functools import lru_cache
from pathlib import Path

import numpy as np

from repro.core.retina import RETINA, RetinaFeatureExtractor, RetinaTrainer
from repro.data import HateDiffusionDataset, SyntheticWorldConfig

BENCH_SEED = 42

#: Training-subset cap for the neural models (keeps the suite's wall-clock
#: in minutes; the comparison stays apples-to-apples since every neural
#: model sees the same subset).
NEURAL_TRAIN_CAP = 250
NEURAL_TEST_CAP = 80


@lru_cache(maxsize=1)
def get_dataset() -> HateDiffusionDataset:
    """The benchmark world (larger than the test worlds)."""
    cfg = SyntheticWorldConfig(
        scale=0.05,
        n_hashtags=12,
        n_users=500,
        n_news=2000,
        seed=BENCH_SEED,
    )
    return HateDiffusionDataset.generate(cfg)


@lru_cache(maxsize=1)
def get_cascade_splits():
    ds = get_dataset()
    return ds.cascade_split(random_state=BENCH_SEED)


@lru_cache(maxsize=1)
def get_retina_extractor() -> RetinaFeatureExtractor:
    train, _ = get_cascade_splits()
    ds = get_dataset()
    return RetinaFeatureExtractor(ds.world, random_state=BENCH_SEED).fit(train)


@lru_cache(maxsize=1)
def get_retina_samples():
    """(train_samples, test_samples) with dynamic interval labels.

    Test candidate pools carry extra negatives so the Fig. 5 ranking task
    does not saturate (HITS@k stays informative out to k=100).
    """
    ext = get_retina_extractor()
    train, test = get_cascade_splits()
    edges = RetinaTrainer.default_interval_edges()
    tr = ext.build_samples(
        train[:NEURAL_TRAIN_CAP], interval_edges_hours=edges, random_state=0
    )
    train_negatives = ext.n_negatives
    ext.n_negatives = 100
    try:
        te = ext.build_samples(
            test[:NEURAL_TEST_CAP], interval_edges_hours=edges, random_state=1
        )
    finally:
        ext.n_negatives = train_negatives
    return tr, te


@lru_cache(maxsize=4)
def get_trained_retina(mode: str, use_exogenous: bool = True, epochs: int = 8):
    """A trained RETINA(+trainer) for the given configuration."""
    ext = get_retina_extractor()
    tr, _ = get_retina_samples()
    model = RETINA(
        user_dim=ext.user_feature_dim,
        tweet_dim=ext.news_doc2vec_dim,
        news_dim=ext.news_doc2vec_dim,
        mode=mode,
        use_exogenous=use_exogenous,
        random_state=BENCH_SEED,
    )
    trainer = RetinaTrainer(model, epochs=epochs, random_state=BENCH_SEED)
    trainer.fit(tr)
    return trainer


def retina_queries(trainer) -> list[tuple[np.ndarray, np.ndarray]]:
    """(labels, static scores) per test cascade."""
    _, te = get_retina_samples()
    return [(s.labels.astype(int), trainer.predict_static_scores(s)) for s in te]


@lru_cache(maxsize=1)
def get_hategen_matrices():
    """(pipeline, X_tr, y_tr, X_te, y_te) for the hate-generation task."""
    from repro.core.hategen import HateGenFeatureExtractor, HateGenerationPipeline

    ds = get_dataset()
    train, test = ds.hategen_split(random_state=BENCH_SEED)
    extractor = HateGenFeatureExtractor(ds.world, doc2vec_epochs=6, random_state=BENCH_SEED)
    pipeline = HateGenerationPipeline(extractor, random_state=BENCH_SEED)
    X_tr, y_tr, X_te, y_te = pipeline.prepare(train, test)
    return pipeline, X_tr, y_tr, X_te, y_te


def run_once(benchmark, fn):
    """Run an expensive benchmark body exactly once under pytest-benchmark."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


# --------------------------------------------------------- JSON reporting
# Every benchmark script shares one reporting contract: a JSON document on
# stdout, plus ``--json-out PATH`` to archive it (CI stores BENCH_*.json
# trajectories across PRs).


def json_ready(value):
    """Recursively convert a report to JSON-serialisable builtins."""
    if isinstance(value, dict):
        return {str(k): json_ready(v) for k, v in value.items()}
    if isinstance(value, (list, tuple)):
        return [json_ready(v) for v in value]
    if isinstance(value, (np.floating, np.integer)):
        return value.item()
    if isinstance(value, np.ndarray):
        return value.tolist()
    if isinstance(value, (np.bool_,)):
        return bool(value)
    return value


def add_json_out(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Attach the shared ``--json-out`` flag to a benchmark's CLI."""
    parser.add_argument(
        "--json-out",
        metavar="PATH",
        default=None,
        help="also write the JSON report to PATH (e.g. BENCH_train_step.json)",
    )
    return parser


def emit_report(report: dict, json_out: str | None = None) -> dict:
    """Print a benchmark report as JSON and optionally archive it."""
    report = json_ready(report)
    text = json.dumps(report, indent=2)
    print(text)
    if json_out:
        Path(json_out).write_text(text + "\n")
    return report


def standalone_main(run_fn, name: str, argv=None) -> int:
    """Uniform ``__main__`` entry point for the figure/table benchmarks.

    Parses the shared ``--json-out`` flag, executes the benchmark body, and
    emits ``{"benchmark": name, "results": ...}``.
    """
    parser = argparse.ArgumentParser(description=f"repro benchmark: {name}")
    add_json_out(parser)
    args = parser.parse_args(argv)
    emit_report({"benchmark": name, "results": run_fn()}, args.json_out)
    return 0

"""Figure 9: RETINA-S macro-F1 as a function of actual cascade size.

Paper shape: performance improves with the size of the retweet cascade
(larger cascades are easier; tiny ones sit below the overall mean).
"""

import numpy as np

from benchmarks.common import get_retina_samples, get_trained_retina, retina_queries, run_once
from repro.core.retina import evaluate_binary, macro_f1_by_cascade_size
from repro.utils.asciiplot import ascii_bars


def _run():
    trainer = get_trained_retina("static")
    queries = retina_queries(trainer)
    _, te = get_retina_samples()
    sizes = [s.candidate_set.cascade.size for s in te]
    overall = evaluate_binary(queries)["macro_f1"]
    by_size = macro_f1_by_cascade_size(queries, sizes)
    return overall, by_size


def test_fig9_cascade_size(benchmark):
    overall, by_size = run_once(benchmark, _run)
    labels = list(by_size)
    print()
    print(
        ascii_bars(
            labels,
            [by_size[l] for l in labels],
            title=f"Fig 9 — RETINA-S macro-F1 by cascade size (overall {overall:.3f})",
        )
    )
    # Shape: mid-to-large cascades beat the smallest bucket.  (We observe
    # the paper's rise up to mid sizes; at the extreme sizes our synthetic
    # echo-chamber cascades saturate the candidate pool and macro-F1 dips —
    # recorded as a deviation in EXPERIMENTS.md.)
    values = [by_size[l] for l in labels]
    assert max(values[3:]) >= values[0]


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_run, "fig9_cascade_size"))

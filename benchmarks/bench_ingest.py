"""Ingest path: sustained events/s, ingest latency, read-path isolation.

Trains a small RETINA bundle once, serves it through a registry-backed
engine with a durable event log attached (exactly what ``repro serve``
runs), then measures the ``POST /v1/ingest`` write path through the real
SDK (:meth:`repro.client.ServingClient.ingest` — client-side schema
validation, idempotent retry policy, keep-alive pooling):

- **sustained ingest** — one closed-loop writer streams batches of
  unique tweet/retweet events; reports events/s and per-batch p50/p95
  latency (append + incremental feature invalidation + durable fsync).
- **read-path isolation** — closed-loop ``/v1/predict/retweeters`` load
  is measured alone, then again while a paced background writer ingests
  at a fixed rate.  ``--check`` enforces that reads keep >= 90% of their
  baseline throughput (the <= 10% regression gate) when the host has at
  least 2 cores; on a single core the writer and the readers share the
  CPU and the bound is not a claim the serving stack can make.

Synthetic events use a small fixed author set and far-future timestamps
so invalidation stays surgical (a handful of dirty user rows per batch,
no existing cascade contexts dirtied) — the measured interference is the
write path itself, not a cache-eviction storm the schema would never
produce organically.

Every measured leg runs twice and the better run is reported (max-of-2
noise damping; CI hosts are shared).

Runnable standalone: ``PYTHONPATH=src python benchmarks/bench_ingest.py``.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
import threading
import time
from functools import lru_cache
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # executed as a script: make `benchmarks` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    add_json_out,
    available_cores,
    emit_report,
    floor_enforceable,
)
from repro.client import ServingClient
from repro.core.retina import RETINA, RetinaFeatureExtractor, RetinaTrainer
from repro.data import HateDiffusionDataset, SyntheticWorldConfig
from repro.obs import config as obs_config
from repro.serving import AsyncPredictionServer, ModelRegistry, RetinaBundle
from repro.serving.engine import engine_from_store

INGEST_BATCH = 64       # events per POST /v1/ingest call
AUTHORS = 4             # distinct tweet authors (bounds row invalidation)
FAR_FUTURE_HOURS = 1e6  # keeps ingested roots off existing cascades' days
CANDIDATES_PER_REQUEST = 8


@lru_cache(maxsize=1)
def _fixture():
    """(bundle, cascade_ids, user_pool, known_tag) — trained once."""
    cfg = SyntheticWorldConfig(
        scale=0.01, n_hashtags=5, n_users=150, n_news=300, seed=13
    )
    ds = HateDiffusionDataset.generate(cfg)
    train, _ = ds.cascade_split(random_state=0)
    extractor = RetinaFeatureExtractor(ds.world, random_state=0).fit(train)
    edges = RetinaTrainer.default_interval_edges()
    tr = extractor.build_samples(train[:30], interval_edges_hours=edges, random_state=0)
    model = RETINA(
        user_dim=extractor.user_feature_dim,
        tweet_dim=extractor.news_doc2vec_dim,
        news_dim=extractor.news_doc2vec_dim,
        mode="static",
        random_state=0,
    )
    RetinaTrainer(model, epochs=1, random_state=0).fit(tr)
    bundle = RetinaBundle(model=model, extractor=extractor, world_config=cfg)
    cascade_ids = [c.root.tweet_id for c in ds.world.cascades[:40]]
    user_pool = sorted(ds.world.users)
    return bundle, cascade_ids, user_pool, ds.world.catalog[0].tag


def _serve(tmp: str):
    """A fresh registry + event log + engine + server for one leg."""
    bundle, _, _, _ = _fixture()
    registry = ModelRegistry(tmp)
    registry.save_bundle("retina", bundle)
    engine = engine_from_store(registry, max_wait_ms=2.0, workers=1)
    return engine, AsyncPredictionServer(engine, port=0)


def _event_batch(index: int, user_pool: list, tag: str,
                 batch: int = INGEST_BATCH) -> list[dict]:
    """One batch of unique, world-valid events (tweets + retweets).

    Tweet ids are globally unique per ``index``; every odd slot retweets
    the tweet created in the previous slot (same batch — the ingest
    route applies earlier items before validating later ones).
    """
    base = 10_000_000 + index * batch
    events: list[dict] = []
    for j in range(batch):
        tid = base + j
        if j % 2 == 1:
            events.append({
                "kind": "retweet", "tweet_id": tid - 1,
                "user_id": user_pool[AUTHORS + (j % AUTHORS)],
                "timestamp": FAR_FUTURE_HOURS + index + 0.5,
            })
        else:
            events.append({
                "kind": "tweet", "tweet_id": tid,
                "user_id": user_pool[j % AUTHORS], "hashtag": tag,
                "text": f"bench tweet {tid}",
                "timestamp": FAR_FUTURE_HOURS + float(index),
            })
    return events


class _BatchCounter:
    """Hands out unique batch indexes across legs (no id reuse, no dedup)."""

    def __init__(self):
        self._next = 0
        self._lock = threading.Lock()

    def take(self) -> int:
        with self._lock:
            i = self._next
            self._next += 1
            return i


def _ingest_leg(host: str, port: int, seconds: float, counter: _BatchCounter,
                user_pool, tag) -> dict:
    """Closed-loop writer: stream unique batches as fast as acks return."""
    lat: list[float] = []
    events = errors = 0
    with ServingClient(host=host, port=port, timeout=60, retries=0,
                       pool_size=1) as client:
        stop = time.perf_counter() + seconds
        started = time.perf_counter()
        while time.perf_counter() < stop:
            batch = _event_batch(counter.take(), user_pool, tag)
            t0 = time.perf_counter()
            resp = client.ingest(batch)
            lat.append(time.perf_counter() - t0)
            events += resp.accepted
            errors += resp.n_errors + resp.deduped  # both mean a bad batch here
        elapsed = time.perf_counter() - started
    arr = np.array(lat)
    return {
        "batches": len(lat),
        "batch_size": INGEST_BATCH,
        "events": events,
        "item_errors": errors,
        "events_per_s": round(events / elapsed, 1),
        "p50_ms": round(float(np.percentile(arr, 50)) * 1e3, 2),
        "p95_ms": round(float(np.percentile(arr, 95)) * 1e3, 2),
    }


def _read_leg(host: str, port: int, payloads: list[dict], concurrency: int,
              seconds: float) -> dict:
    """Closed-loop read load (same shape as the serving-throughput bench)."""
    stop_at = time.perf_counter() + seconds
    lat_per_thread: list[list[float]] = [[] for _ in range(concurrency)]
    errors: list[str] = []

    def loop(slot: int):
        with ServingClient(host=host, port=port, timeout=60, retries=0,
                           pool_size=1) as client:
            i = slot
            while time.perf_counter() < stop_at:
                p = payloads[i % len(payloads)]
                t0 = time.perf_counter()
                try:
                    client.predict_retweeters(p["cascade_id"],
                                              user_ids=p["user_ids"])
                except Exception as exc:  # pragma: no cover - bench robustness
                    errors.append(repr(exc))
                    return
                lat_per_thread[slot].append(time.perf_counter() - t0)
                i += concurrency

    started = time.perf_counter()
    threads = [threading.Thread(target=loop, args=(s,)) for s in range(concurrency)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    if errors:
        raise RuntimeError(f"read load failed: {errors[:3]}")
    lat = np.array([x for per in lat_per_thread for x in per])
    return {
        "concurrency": concurrency,
        "requests": int(lat.size),
        "requests_per_s": round(lat.size / elapsed, 1),
        "p50_ms": round(float(np.percentile(lat, 50)) * 1e3, 2),
        "p95_ms": round(float(np.percentile(lat, 95)) * 1e3, 2),
    }


def _paced_writer(host: str, port: int, rate: float, counter: _BatchCounter,
                  user_pool, tag, stop: threading.Event) -> dict:
    """Background ingest at ``rate`` events/s until ``stop`` is set."""
    sent = 0
    period = INGEST_BATCH / rate
    with ServingClient(host=host, port=port, timeout=60, retries=0,
                       pool_size=1) as client:
        next_due = time.perf_counter()
        while not stop.is_set():
            delay = next_due - time.perf_counter()
            if delay > 0 and stop.wait(delay):
                break
            resp = client.ingest(_event_batch(counter.take(), user_pool, tag))
            sent += resp.accepted
            next_due += period
    return {"events": sent, "target_rate": rate}


def _best(runs: list[dict], key: str) -> dict:
    return max(runs, key=lambda r: r[key])


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=3.0,
                        help="duration of each measured leg")
    parser.add_argument("--concurrency", type=int, default=8,
                        help="client threads for the read legs")
    parser.add_argument("--ingest-rate", type=float, default=256.0,
                        help="paced background ingest rate (events/s) for "
                             "the read-isolation leg")
    parser.add_argument("--min-events-per-s", type=float, default=500.0,
                        help="sustained ingest events/s floor (--check)")
    parser.add_argument("--max-p95-ms", type=float, default=500.0,
                        help="ingest per-batch p95 latency ceiling (--check)")
    parser.add_argument("--max-read-regression", type=float, default=0.10,
                        help="allowed read-throughput loss while ingesting")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero when any floor is missed")
    parser.add_argument("--smoke", action="store_true",
                        help="short CI preset (implies --check)")
    add_json_out(parser)
    args = parser.parse_args(argv)
    if args.smoke:
        args.seconds = min(args.seconds, 2.0)
        args.check = True
    return args


def _run(args) -> dict:
    obs_config.configure(enabled=True, sample_rate=0.0)
    _, cascade_ids, user_pool, tag = _fixture()
    rng = np.random.default_rng(0)
    payloads = [
        {
            "cascade_id": int(rng.choice(cascade_ids)),
            "user_ids": [
                int(u) for u in
                rng.choice(user_pool, size=CANDIDATES_PER_REQUEST, replace=False)
            ],
        }
        for _ in range(256)
    ]
    counter = _BatchCounter()
    with tempfile.TemporaryDirectory() as tmp:
        engine, server = _serve(tmp)
        with server:
            host, port = server.address
            _read_leg(host, port, payloads, 2, 0.5)  # warm caches

            # ---- read baseline (no writer) -----------------------------
            baseline = _best(
                [_read_leg(host, port, payloads, args.concurrency, args.seconds)
                 for _ in range(2)],
                "requests_per_s",
            )

            # ---- sustained ingest --------------------------------------
            sustained = _best(
                [_ingest_leg(host, port, args.seconds, counter, user_pool, tag)
                 for _ in range(2)],
                "events_per_s",
            )

            # ---- reads while a paced writer runs -----------------------
            stop = threading.Event()
            writer_out: dict = {}

            def writer():
                writer_out.update(_paced_writer(
                    host, port, args.ingest_rate, counter, user_pool, tag, stop
                ))

            wt = threading.Thread(target=writer)
            wt.start()
            try:
                under_ingest = _best(
                    [_read_leg(host, port, payloads, args.concurrency,
                               args.seconds) for _ in range(2)],
                    "requests_per_s",
                )
            finally:
                stop.set()
                wt.join(timeout=60)
            store = engine.store_stats()
    regression = round(
        1.0 - under_ingest["requests_per_s"] / baseline["requests_per_s"], 4
    )
    return {
        "cores": available_cores(),
        "ingest": sustained,
        "read_baseline": baseline,
        "read_under_ingest": {**under_ingest, "writer": writer_out},
        "read_regression": regression,
        "store": {k: store[k] for k in ("events", "last_seq", "segments",
                                        "dedup_hits")},
        "floors": {
            "min_events_per_s": args.min_events_per_s,
            "max_p95_ms": args.max_p95_ms,
            "max_read_regression": args.max_read_regression,
            # The regression bound is a scheduling claim — on a 1-core
            # host the paced writer and the readers share the core, so
            # any ingest at all "costs" read throughput.
            "read_regression_enforced": floor_enforceable(2),
        },
    }


def main(argv=None) -> int:
    args = parse_args(argv)
    results = _run(args)
    report = {"benchmark": "ingest", "results": results}
    emit_report(report, args.json_out)
    if args.check:
        failures = []
        ing = results["ingest"]
        if ing["item_errors"]:
            failures.append(f"{ing['item_errors']} ingest item(s) rejected "
                            f"or unexpectedly deduplicated")
        if ing["events_per_s"] < args.min_events_per_s:
            failures.append(f"sustained ingest {ing['events_per_s']} events/s "
                            f"< floor {args.min_events_per_s}")
        if ing["p95_ms"] > args.max_p95_ms:
            failures.append(f"ingest p95 {ing['p95_ms']} ms "
                            f"> ceiling {args.max_p95_ms} ms")
        if not results["floors"]["read_regression_enforced"]:
            print(f"note: read-regression gate skipped ({available_cores()} "
                  f"core(s): writer and readers share the CPU)",
                  file=sys.stderr)
        elif results["read_regression"] > args.max_read_regression:
            failures.append(
                f"read throughput lost {results['read_regression'] * 100:.1f}% "
                f"while ingesting (allowed "
                f"{args.max_read_regression * 100:.0f}%)")
        if failures:
            for f in failures:
                print(f"FAIL: {f}", file=sys.stderr)
            return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

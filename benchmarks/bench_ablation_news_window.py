"""Ablation: exogenous news-window size (paper Sec. VIII-B).

The paper reports that 60 news items per tweet worked best for both static
and dynamic models (and that the traditional baselines could not scale past
15 items for memory reasons).  We sweep the window size for RETINA-S.
"""

from benchmarks.common import BENCH_SEED, get_cascade_splits, get_dataset, run_once
from repro.core.retina import (
    RETINA,
    RetinaFeatureExtractor,
    RetinaTrainer,
    evaluate_binary,
    evaluate_ranking,
)
from repro.utils.tables import render_table

WINDOWS = (5, 15, 60, 120)


def _run():
    ds = get_dataset()
    train, test = get_cascade_splits()
    out = {}
    ext = RetinaFeatureExtractor(ds.world, random_state=BENCH_SEED).fit(train)
    for k in WINDOWS:
        ext.news_window = k
        tr = ext.build_samples(train[:150], random_state=0)
        te = ext.build_samples(test[:50], random_state=1)
        model = RETINA(
            user_dim=ext.user_feature_dim,
            tweet_dim=ext.news_doc2vec_dim,
            news_dim=ext.news_doc2vec_dim,
            mode="static",
            random_state=BENCH_SEED,
        )
        trainer = RetinaTrainer(model, epochs=6, random_state=BENCH_SEED).fit(tr)
        q = [(s.labels.astype(int), trainer.predict_static_scores(s)) for s in te]
        out[k] = {**evaluate_binary(q), **evaluate_ranking(q)}
    return out


def test_ablation_news_window(benchmark):
    results = run_once(benchmark, _run)
    rows = [
        [k, round(m["macro_f1"], 3), round(m["auc"], 3), round(m["map@20"], 3)]
        for k, m in results.items()
    ]
    print()
    print(
        render_table(
            ["news window", "macro-F1", "AUC", "MAP@20"],
            rows,
            title="Ablation — news items per tweet (paper: best at 60)",
        )
    )
    # Shape: a wider window should not be catastrophically worse than tiny.
    assert results[60]["macro_f1"] >= results[5]["macro_f1"] - 0.1


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_run, "ablation_news_window"))

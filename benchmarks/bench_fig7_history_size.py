"""Figure 7: RETINA macro-F1 vs user-history size.

Paper shape: performance improves from 10 to 30 recent tweets, then drops
or plateaus (10 -> 30 rises; >= 50 no further gain).
"""

from benchmarks.common import BENCH_SEED, get_cascade_splits, get_dataset, run_once
from repro.core.retina import (
    RETINA,
    RetinaFeatureExtractor,
    RetinaTrainer,
    evaluate_binary,
)
from repro.utils.asciiplot import ascii_bars

HISTORY_SIZES = (10, 20, 30, 50, 100)


def _run():
    ds = get_dataset()
    train, test = get_cascade_splits()
    out = {}
    for h in HISTORY_SIZES:
        ext = RetinaFeatureExtractor(
            ds.world, history_size=h, random_state=BENCH_SEED
        ).fit(train)
        tr = ext.build_samples(train[:150], random_state=0)
        te = ext.build_samples(test[:50], random_state=1)
        model = RETINA(
            user_dim=ext.user_feature_dim,
            tweet_dim=ext.news_doc2vec_dim,
            news_dim=ext.news_doc2vec_dim,
            mode="static",
            random_state=BENCH_SEED,
        )
        trainer = RetinaTrainer(model, epochs=6, random_state=BENCH_SEED).fit(tr)
        q = [(s.labels.astype(int), trainer.predict_static_scores(s)) for s in te]
        out[h] = evaluate_binary(q)["macro_f1"]
    return out


def test_fig7_history_size(benchmark):
    results = run_once(benchmark, _run)
    print()
    print(
        ascii_bars(
            [str(h) for h in HISTORY_SIZES],
            [results[h] for h in HISTORY_SIZES],
            title="Fig 7 — RETINA-S macro-F1 vs history size (paper: rises to 30, then flat/drop)",
        )
    )
    # Shape: 30 is at least as good as 10; 100 adds nothing over 30.
    assert results[30] >= results[10] - 0.05
    assert results[100] <= results[30] + 0.08


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_run, "fig7_history_size"))

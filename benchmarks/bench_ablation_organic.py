"""Ablation: organic vs beyond-organic retweeters (paper Sec. III).

The paper restricts prediction to organic diffusion (retweeters reachable
through the visible follower graph) but "experiments with retweeters not in
the visibly organic diffusion cascade to see how our models handle such
cases".  We compare RETINA-S evaluated on candidate sets that include all
retweeters vs only the organically reachable ones.
"""

from benchmarks.common import (
    get_cascade_splits,
    get_retina_extractor,
    get_trained_retina,
    run_once,
)
from repro.core.retina import evaluate_binary, evaluate_ranking
from repro.diffusion import build_candidate_set
from repro.utils.tables import render_table


def _run():
    ext = get_retina_extractor()
    _, test = get_cascade_splits()
    trainer = get_trained_retina("static")
    world_net = ext.world.network
    out = {}
    for label, include in (("all retweeters", True), ("organic only", False)):
        queries = []
        for cascade in test[:60]:
            cs = build_candidate_set(
                cascade,
                world_net,
                n_negatives=ext.n_negatives,
                include_nonorganic=include,
                random_state=7,
            )
            if cs.labels.sum() == 0:
                continue
            sample = ext.build_sample(cascade, candidate_set=cs)
            queries.append((cs.labels, trainer.predict_static_scores(sample)))
        out[label] = {**evaluate_binary(queries), **evaluate_ranking(queries)}
    return out


def test_ablation_organic_diffusion(benchmark):
    results = run_once(benchmark, _run)
    rows = [
        [name, round(m["macro_f1"], 3), round(m["auc"], 3), round(m["map@20"], 3)]
        for name, m in results.items()
    ]
    print()
    print(
        render_table(
            ["candidate policy", "macro-F1", "AUC", "MAP@20"],
            rows,
            title="Ablation — organic vs beyond-organic retweeters (Sec. III)",
        )
    )
    # Restricting to organically reachable retweeters should not hurt; the
    # beyond-organic arrivals are unpredictable from graph-local features.
    assert results["organic only"]["auc"] >= results["all retweeters"]["auc"] - 0.08


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_run, "ablation_organic"))

"""Table VI: retweeter prediction — RETINA vs every baseline.

Rows: feature-engineering baselines (LogReg, Decision Tree, Random Forest,
LinearSVC; dagger = without exogenous news features), RETINA-S/D and their
dagger ablations, the neural cascade baselines (TopoLSTM, FOREST, HIDAN,
ranking metrics only), and the rudimentary SIR / General Threshold models
(macro-F1 only).

Expected shapes (paper): RETINA-D best overall; RETINA >= feature
baselines >= neural cascade baselines >> SIR/Threshold; dagger variants
below their full counterparts.
"""

import numpy as np

from benchmarks.common import (
    NEURAL_TRAIN_CAP,
    get_cascade_splits,
    get_dataset,
    get_retina_samples,
    get_trained_retina,
    retina_queries,
    run_once,
)
from repro.core.retina import evaluate_binary, evaluate_ranking
from repro.diffusion import FOREST, HIDAN, GeneralThresholdModel, SIRModel, TopoLSTM
from repro.ml import (
    DecisionTreeClassifier,
    LinearSVC,
    LogisticRegression,
    RandomForestClassifier,
    StandardScaler,
)
from repro.utils.tables import render_table

PAPER = {
    "LogReg": (0.70, 0.96, 0.79, None, None),
    "Decision Tree": (0.68, 0.95, 0.78, None, None),
    "Random Forest": (0.66, 0.97, 0.67, None, None),
    "LinearSVC+": (0.49, 0.91, 0.50, None, None),
    "RETINA-S": (0.70, 0.97, 0.73, 0.57, 0.74),
    "RETINA-S+": (0.65, 0.93, 0.74, 0.56, 0.76),
    "RETINA-D": (0.89, 0.99, 0.86, 0.78, 0.88),
    "RETINA-D+": (0.87, 0.99, 0.798, 0.69, 0.80),
    "FOREST": (None, None, None, 0.51, 0.64),
    "HIDAN": (None, None, None, 0.05, 0.05),
    "TopoLSTM": (None, None, None, 0.60, 0.83),
    "SIR": (0.04, None, None, None, None),
    "Gen.Thresh.": (0.04, None, None, None, None),
}


def _feature_matrix(samples, with_news: bool):
    def feats(s):
        X = s.user_features
        if with_news:
            X = np.hstack([X, np.tile(s.news_tfidf, (len(X), 1))])
        return X

    X = np.vstack([feats(s) for s in samples])
    y = np.concatenate([s.labels for s in samples]).astype(int)
    return X, y, feats


def _run_feature_baseline(model, with_news: bool):
    tr, te = get_retina_samples()
    X_tr, y_tr, feats = _feature_matrix(tr, with_news)
    scaler = StandardScaler().fit(X_tr)
    model.fit(scaler.transform(X_tr), y_tr)

    def score(s):
        X = scaler.transform(feats(s))
        if hasattr(model, "predict_proba"):
            return model.predict_proba(X)[:, 1]
        return model.decision_function(X)

    return [(s.labels.astype(int), score(s)) for s in te]


def _run_all():
    ds = get_dataset()
    world = ds.world
    train, _ = get_cascade_splits()
    tr_samples, te_samples = get_retina_samples()
    results = {}

    # --- feature-engineering baselines (with and without exogenous news).
    feature_models = {
        "LogReg": lambda: LogisticRegression(C=0.05, class_weight="balanced"),
        "Decision Tree": lambda: DecisionTreeClassifier(
            max_depth=6, class_weight="balanced", random_state=0
        ),
        "Random Forest": lambda: RandomForestClassifier(n_estimators=50, random_state=0),
    }
    for name, factory in feature_models.items():
        q = _run_feature_baseline(factory(), with_news=True)
        results[name] = {**evaluate_binary(q), **evaluate_ranking(q)}
        q = _run_feature_baseline(factory(), with_news=False)
        results[name + "+"] = {**evaluate_binary(q), **evaluate_ranking(q)}
    q = _run_feature_baseline(LinearSVC(class_weight="balanced"), with_news=False)
    results["LinearSVC+"] = {**evaluate_binary(q), **evaluate_ranking(q)}

    # --- RETINA variants.
    for mode, label in (("static", "RETINA-S"), ("dynamic", "RETINA-D")):
        for exo in (True, False):
            trainer = get_trained_retina(mode, use_exogenous=exo)
            q = retina_queries(trainer)
            key = label if exo else label + "+"
            results[key] = {**evaluate_binary(q), **evaluate_ranking(q)}

    # --- neural cascade baselines (ranking task).
    cap = train[:NEURAL_TRAIN_CAP]
    neural = {
        "TopoLSTM": TopoLSTM(epochs=3, random_state=0),
        "FOREST": FOREST(epochs=3, random_state=0),
        "HIDAN": HIDAN(epochs=3, random_state=0),
    }
    for name, model in neural.items():
        net = world.network if name == "FOREST" else None
        model.fit(cap, net)
        q = [(s.labels.astype(int), model.predict_proba(s.candidate_set)) for s in te_samples]
        results[name] = evaluate_ranking(q)

    # --- rudimentary models (binary task; scored on a subset, they are slow).
    subset = te_samples[:25]
    for name, model in (
        ("SIR", SIRModel(random_state=0)),
        ("Gen.Thresh.", GeneralThresholdModel(random_state=0)),
    ):
        model.fit(cap, world.network)
        q = [
            (s.labels.astype(int), model.predict_proba(s.candidate_set, world.network))
            for s in subset
        ]
        results[name] = evaluate_binary(q)
    return results


def _fmt(value):
    return "-" if value is None or (isinstance(value, float) and np.isnan(value)) else round(value, 3)


def test_table6_retweet_prediction(benchmark):
    results = run_once(benchmark, _run_all)
    rows = []
    for name, m in results.items():
        paper = PAPER.get(name, (None,) * 5)
        rows.append(
            [
                name,
                _fmt(m.get("macro_f1")),
                _fmt(paper[0]),
                _fmt(m.get("accuracy")),
                _fmt(m.get("auc")),
                _fmt(m.get("map@20")),
                _fmt(paper[3]),
                _fmt(m.get("hits@20")),
            ]
        )
    print()
    print(
        render_table(
            ["model", "macro-F1", "F1(paper)", "ACC", "AUC", "MAP@20", "MAP(paper)", "HITS@20"],
            rows,
            title="Table VI — retweeter prediction ('+' = without exogenous signal)",
        )
    )
    # Shape assertions.
    assert results["RETINA-S"]["macro_f1"] > results["SIR"]["macro_f1"]
    assert results["RETINA-S"]["macro_f1"] > results["Gen.Thresh."]["macro_f1"]
    best_retina = max(results["RETINA-S"]["map@20"], results["RETINA-D"]["map@20"])
    assert best_retina > results["HIDAN"]["map@20"]


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_run_all, "table6_retweet_prediction"))

"""Feature-build throughput: seed per-candidate path vs columnar pipeline.

Times ``RetinaFeatureExtractor.build_samples`` (the columnar pipeline in
``repro.features``) against the frozen seed per-candidate implementation
(``repro.features.reference``) on the same fitted extractor, and verifies
the two produce bit-identical samples.

Two scenarios are timed per path:

- ``cold`` — empty caches: the first build after a fit, dominated by the
  one-off per-user history blocks both paths must compute;
- ``warm`` — user blocks and embeddings resident: the steady-state rebuild
  rate, which is what training sweeps, the repo's figure/table benchmarks,
  and the serving layer actually experience.  The seed path re-runs its
  per-(root, candidate) BFS and per-row assembly every time, so this is
  where the columnar refactor shows.

Output is one JSON document on stdout.  ``--check`` (implied by
``--smoke``) exits non-zero when parity fails or the warm speedup drops
under ``--min-speedup`` — the CI smoke step runs exactly that on a tiny
world so the benchmark can never rot.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from pathlib import Path

if __package__ in (None, ""):  # executed as a script: make `benchmarks` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    add_json_out,
    add_workers_sweep,
    available_cores,
    emit_report,
    floor_enforceable,
    smoke_sweep,
    with_serial_baseline,
)
from repro.core.retina import RetinaFeatureExtractor, RetinaTrainer
from repro.data import HateDiffusionDataset, SyntheticWorldConfig
from repro.features import build_samples_reference


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=1500)
    parser.add_argument("--scale", type=float, default=0.05)
    parser.add_argument("--hashtags", type=int, default=12)
    parser.add_argument("--news", type=int, default=2000)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--cascades", type=int, default=200,
                        help="number of cascades per timed build")
    parser.add_argument("--min-speedup", type=float, default=5.0,
                        help="warm-speedup floor enforced by --check")
    add_workers_sweep(parser)
    parser.add_argument("--min-parallel-speedup", type=float, default=2.5,
                        help="cold-build speedup floor at the largest sweep "
                             "worker count (enforced by --check when the "
                             "host has that many cores)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on parity failure or low speedup")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny-world CI preset (implies --check)")
    add_json_out(parser)
    args = parser.parse_args(argv)
    if args.smoke:
        args.users, args.scale, args.hashtags, args.news = 150, 0.02, 6, 300
        args.cascades = 40
        # Loose floor: on a loaded CI runner the ~10ms warm columnar leg is
        # noise-prone; the gate only needs to catch a real regression back
        # toward the seed path (measured headroom here is ~8x).
        args.min_speedup = min(args.min_speedup, 1.2)
        args.workers = smoke_sweep(args.workers)
        # The tiny smoke world amortises forks poorly (per-user work is
        # milliseconds against a fixed fork cost), so the smoke gate only
        # proves parity + a working pool, like the train-step smoke.
        args.min_parallel_speedup = 0.0
        args.check = True
    args.workers = with_serial_baseline(args.workers)
    return args


def _parity(columnar, reference) -> bool:
    fields = ("user_features", "labels", "interval_labels", "tweet_vec",
              "news_vecs", "news_tfidf")
    return all(
        np.array_equal(getattr(a, f), getattr(b, f))
        for a, b in zip(columnar, reference)
        for f in fields
    )


def main(argv=None) -> int:
    args = parse_args(argv)
    cfg = SyntheticWorldConfig(
        scale=args.scale, n_hashtags=args.hashtags, n_users=args.users,
        n_news=args.news, seed=args.seed,
    )
    dataset = HateDiffusionDataset.generate(cfg)
    train, test = dataset.cascade_split(random_state=args.seed)
    extractor = RetinaFeatureExtractor(dataset.world, random_state=args.seed).fit(train)
    store = extractor.store_
    store.workers = 1  # historical cold/warm legs stay strictly serial
    cascades = (train + test)[: args.cascades]
    edges = RetinaTrainer.default_interval_edges()

    def time_columnar():
        t0 = time.perf_counter()
        samples = extractor.build_samples(
            cascades, interval_edges_hours=edges, random_state=0
        )
        return samples, time.perf_counter() - t0

    ref_cache: dict = {}

    def time_reference():
        t0 = time.perf_counter()
        samples = build_samples_reference(
            extractor, cascades, interval_edges_hours=edges, random_state=0,
            user_cache=ref_cache,
        )
        return samples, time.perf_counter() - t0

    # Cold pass: store/caches empty on both sides (fit leaves them empty).
    columnar, t_col_cold = time_columnar()
    reference, t_ref_cold = time_reference()
    parity = _parity(columnar, reference)
    # Warm pass: per-user blocks and embeddings resident on both sides.
    _, t_col_warm = time_columnar()
    _, t_ref_warm = time_reference()

    n = len(cascades)

    def leg(seconds):
        return {"seconds": round(seconds, 4),
                "cascades_per_sec": round(n / seconds, 1)}

    # Cores -> throughput scaling: cold builds (the ensure-dominated leg the
    # process pool parallelises) at each sweep worker count, every result
    # checked bit-identical against the serial cold build above.
    levels = []
    t_by_workers: dict[int, float] = {}
    parallel_parity = True
    for w in args.workers:
        store.workers = w
        store.invalidate()
        t0 = time.perf_counter()
        samples_w = extractor.build_samples(
            cascades, interval_edges_hours=edges, random_state=0
        )
        dt = time.perf_counter() - t0
        t_by_workers[w] = dt
        par = _parity(samples_w, columnar)
        parallel_parity = parallel_parity and par
        levels.append({"workers": w, **leg(dt), "parity": par})
    store.workers = 1
    t_serial = t_by_workers[1]
    for entry in levels:
        entry["speedup_vs_serial"] = round(t_serial / t_by_workers[entry["workers"]], 2)
    max_w = max(args.workers)
    floor_on = floor_enforceable(max_w)

    report = {
        "benchmark": "feature_build",
        "config": {"users": args.users, "scale": args.scale,
                   "hashtags": args.hashtags, "news": args.news,
                   "seed": args.seed, "workers_sweep": args.workers},
        "n_cascades": n,
        "cold": {"reference": leg(t_ref_cold), "columnar": leg(t_col_cold),
                 "speedup": round(t_ref_cold / t_col_cold, 2)},
        "warm": {"reference": leg(t_ref_warm), "columnar": leg(t_col_warm),
                 "speedup": round(t_ref_warm / t_col_warm, 2)},
        "parity": parity,
        "scaling": {"levels": levels, "cores": available_cores(),
                    "parallel_floor": args.min_parallel_speedup,
                    "parallel_floor_enforced": floor_on,
                    "parity": parallel_parity},
    }
    emit_report(report, args.json_out)
    if args.check:
        if not parity:
            print("FAIL: columnar features are not bit-identical to the seed path",
                  file=sys.stderr)
            return 1
        if not parallel_parity:
            print("FAIL: parallel cold build is not bit-identical to serial",
                  file=sys.stderr)
            return 1
        if report["warm"]["speedup"] < args.min_speedup:
            print(f"FAIL: warm speedup {report['warm']['speedup']}x "
                  f"< required {args.min_speedup}x", file=sys.stderr)
            return 1
        top = next(e for e in levels if e["workers"] == max_w)
        if floor_on and top["speedup_vs_serial"] < args.min_parallel_speedup:
            print(f"FAIL: {max_w}-worker cold-build speedup "
                  f"{top['speedup_vs_serial']}x < required "
                  f"{args.min_parallel_speedup}x", file=sys.stderr)
            return 1
        if not floor_on:
            print(f"note: parallel speedup floor skipped "
                  f"({available_cores()} core(s) < {max_w} workers)",
                  file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Figure 5: HITS@k of RETINA-S, RETINA-D, and TopoLSTM for k=1..100.

Paper shape: RETINA leads at small k; the three models converge as k grows.
"""

from benchmarks.common import (
    NEURAL_TRAIN_CAP,
    get_cascade_splits,
    get_retina_samples,
    get_trained_retina,
    retina_queries,
    run_once,
)
from repro.core.retina import evaluate_ranking
from repro.diffusion import TopoLSTM
from repro.utils.tables import render_table

KS = (1, 5, 10, 20, 50, 100)


def _run():
    out = {}
    for mode, label in (("static", "RETINA-S"), ("dynamic", "RETINA-D")):
        trainer = get_trained_retina(mode)
        out[label] = evaluate_ranking(retina_queries(trainer), ks=KS)
    train, _ = get_cascade_splits()
    _, te = get_retina_samples()
    topo = TopoLSTM(epochs=3, random_state=0).fit(train[:NEURAL_TRAIN_CAP])
    q = [(s.labels.astype(int), topo.predict_proba(s.candidate_set)) for s in te]
    out["TopoLSTM"] = evaluate_ranking(q, ks=KS)
    return out


def test_fig5_hits_at_k(benchmark):
    results = run_once(benchmark, _run)
    rows = [
        [name] + [round(m[f"hits@{k}"], 3) for k in KS] for name, m in results.items()
    ]
    print()
    print(
        render_table(
            ["model"] + [f"HITS@{k}" for k in KS],
            rows,
            title="Fig 5 — HITS@k for retweeter prediction",
        )
    )
    # Shape: curves converge at large k (all near their max by k=100).
    for m in results.values():
        assert m["hits@100"] >= m["hits@20"] - 1e-9
    spread_small = max(m["hits@5"] for m in results.values()) - min(
        m["hits@5"] for m in results.values()
    )
    spread_large = max(m["hits@100"] for m in results.values()) - min(
        m["hits@100"] for m in results.values()
    )
    assert spread_large <= spread_small + 0.15


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_run, "fig5_hits_at_k"))

"""Table V: feature-group ablation of the best hate-generation model.

Paper shapes: removing History or Exogen hurts macro-F1 the most (0.65 ->
0.56 each); removing Endogen hurts moderately (0.61); removing Topic
changes nothing (0.65).
"""

from benchmarks.common import get_hategen_matrices, run_once
from repro.core.hategen import run_feature_ablation
from repro.utils.tables import render_table

PAPER = {
    "all": 0.65,
    "all\\history": 0.56,
    "all\\endogen": 0.61,
    "all\\exogen": 0.56,
    "all\\topic": 0.65,
}


def _ablation():
    pipeline, X_tr, y_tr, X_te, y_te = get_hategen_matrices()
    return run_feature_ablation(
        pipeline.extractor, X_tr, y_tr, X_te, y_te, model_key="dectree"
    )


def test_table5_feature_ablation(benchmark):
    results = run_once(benchmark, _ablation)
    rows = [
        [
            trial,
            round(m["macro_f1"], 3),
            PAPER.get(trial, float("nan")),
            round(m["accuracy"], 3),
            round(m["auc"], 3),
        ]
        for trial, m in results.items()
    ]
    print()
    print(
        render_table(
            ["features", "macro-F1", "F1(paper)", "ACC", "AUC"],
            rows,
            title="Table V — feature ablation (Decision Tree + downsampling)",
        )
    )
    # Shape: history removal hurts at least as much as topic removal.
    assert (
        results["all\\history"]["macro_f1"]
        <= results["all\\topic"]["macro_f1"] + 0.05
    )


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_ablation, "table5_ablation"))

"""Table II: per-hashtag dataset statistics.

Regenerates the paper's Table II rows (tweets, average retweets, unique
tweeting users, engaged users, %-hate) from the synthetic world and prints
them against the paper's targets.  Absolute counts are scaled by
``config.scale``; average retweets and hate rates should track the targets.
"""

from benchmarks.common import get_dataset, run_once
from repro.utils.tables import render_table


def _build():
    ds = get_dataset()
    return ds.world.hashtag_stats()


def test_table2_dataset_stats(benchmark):
    stats = run_once(benchmark, _build)
    rows = [
        [
            s["tag"][:24],
            s["tweets"],
            round(s["avg_rt"], 2),
            round(s["target_avg_rt"], 2),
            s["users"],
            s["users_all"],
            round(s["pct_hate"], 2),
            round(s["target_pct_hate"], 2),
        ]
        for s in stats
    ]
    print()
    print(
        render_table(
            ["hashtag", "tweets", "avgRT", "avgRT(paper)", "users", "users-all", "%hate", "%hate(paper)"],
            rows,
            title="Table II — per-hashtag statistics (scaled world vs paper targets)",
        )
    )
    # Shape assertions: generated stats track the paper's targets.
    big = [s for s in stats if s["tweets"] >= 30]
    hi = [s["pct_hate"] for s in big if s["target_pct_hate"] >= 5.0]
    lo = [s["pct_hate"] for s in big if s["target_pct_hate"] < 1.0]
    if hi and lo:
        assert sum(hi) / len(hi) > sum(lo) / len(lo)


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_build, "table2_dataset_stats"))

"""Serving throughput: requests/sec and p50/p95 latency vs client batch size.

Trains a small RETINA bundle once, serves it over HTTP from a background
thread, then fires fixed-duration closed-loop load at concurrency levels
1-64 (each client thread holds one in-flight request).  Load generation
goes through :class:`repro.client.ServingClient` — the real SDK with its
keep-alive pooling and client-side schema validation — so the measured
numbers include the full v1 contract, not a hand-rolled fast path.
Reports a JSON document per level with requests/sec, p50/p95 latency,
and feature-cache hit rate — the numbers that justify micro-batching +
caching.

A ``--workers`` sweep then re-serves the same bundle with that many
dispatch worker processes (micro-batches executed concurrently over
read-only shared-memory model weights) and fires load at a fixed
concurrency, emitting the cores -> requests/sec scaling curve.  ``--check``
enforces a requests/sec floor at the largest worker count when the host
has that many cores.

``--batch-size N`` adds a ``/v1/batch/retweeters`` leg: each HTTP call
carries N requests fanned into the micro-batcher, reported with both
per-HTTP-request and per-row throughput.

Runnable standalone (``PYTHONPATH=src python benchmarks/bench_serving_throughput.py``)
or under pytest-benchmark like the other benches.
"""

from __future__ import annotations

import argparse
import json
import sys
import threading
import time
from functools import lru_cache
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # executed as a script: make `benchmarks` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    add_json_out,
    add_workers_sweep,
    available_cores,
    emit_report,
    floor_enforceable,
    smoke_sweep,
    with_serial_baseline,
)
from repro.client import ServingClient
from repro.core.retina import RETINA, RetinaFeatureExtractor, RetinaTrainer
from repro.data import HateDiffusionDataset, SyntheticWorldConfig
from repro.obs import config as obs_config
from repro.serving import InferenceEngine, PredictionServer, RetinaBundle, RetweeterPredictor

BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64)
SECONDS_PER_LEVEL = 2.0
CANDIDATES_PER_REQUEST = 8


@lru_cache(maxsize=1)
def _serving_fixture():
    """(bundle, cascade_ids, user_pool) — trained once per process."""
    cfg = SyntheticWorldConfig(scale=0.01, n_hashtags=5, n_users=150, n_news=300, seed=13)
    ds = HateDiffusionDataset.generate(cfg)
    train, test = ds.cascade_split(random_state=0)
    extractor = RetinaFeatureExtractor(ds.world, random_state=0).fit(train)
    edges = RetinaTrainer.default_interval_edges()
    tr = extractor.build_samples(train[:30], interval_edges_hours=edges, random_state=0)
    model = RETINA(
        user_dim=extractor.user_feature_dim,
        tweet_dim=extractor.news_doc2vec_dim,
        news_dim=extractor.news_doc2vec_dim,
        mode="static",
        random_state=0,
    )
    RetinaTrainer(model, epochs=1, random_state=0).fit(tr)
    bundle = RetinaBundle(model=model, extractor=extractor, world_config=cfg)
    cascade_ids = [c.root.tweet_id for c in ds.world.cascades[:40]]
    user_pool = sorted(ds.world.users)
    return bundle, cascade_ids, user_pool


def _fire_load(
    host: str,
    port: int,
    payloads: list[dict],
    concurrency: int,
    seconds: float,
    *,
    batch_size: int = 0,
) -> dict:
    """Closed-loop load: ``concurrency`` threads, one in-flight call each.

    Each thread drives its own :class:`ServingClient` (one pooled
    keep-alive connection), so the measurement is request handling +
    batching through the full v1 contract — client-side validation,
    typed response parsing — not TCP handshakes.  With ``batch_size``
    > 0 every HTTP call is a ``/v1/batch/retweeters`` request carrying
    that many payloads.
    """
    stop_at = time.perf_counter() + seconds
    latencies_per_thread: list[list[float]] = [[] for _ in range(concurrency)]
    errors = []

    def client_loop(slot: int):
        client = ServingClient(
            host=host, port=port, timeout=30, retries=0, pool_size=1
        )
        i = slot
        stride = concurrency * max(1, batch_size)
        try:
            while time.perf_counter() < stop_at:
                t0 = time.perf_counter()
                try:
                    if batch_size:
                        requests = [
                            payloads[(i + j) % len(payloads)]
                            for j in range(batch_size)
                        ]
                        batch = client.predict_many("retweeters", requests)
                        if batch.n_errors:
                            errors.append(f"{batch.n_errors} batch item errors")
                            return
                    else:
                        payload = payloads[i % len(payloads)]
                        client.predict_retweeters(
                            payload["cascade_id"], user_ids=payload["user_ids"]
                        )
                except Exception as exc:  # pragma: no cover - bench robustness
                    errors.append(repr(exc))
                    return
                i += stride
                latencies_per_thread[slot].append(time.perf_counter() - t0)
        finally:
            client.close()

    started = time.perf_counter()
    threads = [threading.Thread(target=client_loop, args=(s,)) for s in range(concurrency)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    lat = np.array([x for per in latencies_per_thread for x in per])
    if errors:
        raise RuntimeError(f"load generation failed: {errors[:3]}")
    level = {
        "concurrency": concurrency,
        "requests": int(lat.size),
        "requests_per_s": round(lat.size / elapsed, 1),
        "p50_ms": round(float(np.percentile(lat, 50)) * 1e3, 2),
        "p95_ms": round(float(np.percentile(lat, 95)) * 1e3, 2),
    }
    if batch_size:
        level["batch_size"] = batch_size
        level["rows"] = int(lat.size) * batch_size
        level["rows_per_s"] = round(lat.size * batch_size / elapsed, 1)
    return level


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=SECONDS_PER_LEVEL,
                        help="load duration per measured level")
    parser.add_argument("--levels", type=str, default=None,
                        help="comma-separated base concurrency levels "
                             "(default 1,2,4,8,16,32,64)")
    add_workers_sweep(parser)
    parser.add_argument("--concurrency", type=int, default=32,
                        help="client concurrency for the workers sweep")
    parser.add_argument("--batch-size", type=int, default=0, metavar="N",
                        help="also measure /v1/batch/retweeters with N "
                             "requests per HTTP call (0 disables; reports "
                             "per-request and per-row throughput)")
    parser.add_argument("--obs-overhead", action="store_true",
                        help="also measure telemetry overhead: one fixed-"
                             "concurrency leg each with obs disabled, "
                             "enabled-but-unsampled, and fully sampled")
    parser.add_argument("--min-rps", type=float, default=3000.0,
                        help="requests/sec floor at the largest sweep worker "
                             "count (enforced by --check when the host has "
                             "that many cores)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on zero throughput or a missed "
                             "requests/sec floor")
    parser.add_argument("--smoke", action="store_true",
                        help="short-load CI preset (implies --check)")
    add_json_out(parser)
    args = parser.parse_args(argv)
    args.base_levels = (
        tuple(int(x) for x in args.levels.split(",")) if args.levels else BATCH_SIZES
    )
    if args.smoke:
        args.seconds = min(args.seconds, 0.5)
        args.base_levels = (4, 16)
        args.concurrency = 16
        args.batch_size = args.batch_size or 8
        args.workers = smoke_sweep(args.workers)
        # The smoke gate proves the multi-process serving path works under
        # load; the 3000 req/s floor belongs to the 4-core default run.
        args.min_rps = min(args.min_rps, 150.0)
        args.check = True
    args.workers = with_serial_baseline(args.workers)
    return args


def _run(args=None) -> dict:
    if args is None:
        args = parse_args([])
    # Load legs run enabled-but-unsampled — the production posture — so the
    # archived throughput trajectory stays comparable across PRs; the
    # --obs-overhead leg flips the switches explicitly.
    obs_config.configure(enabled=True, sample_rate=0.0)
    bundle, cascade_ids, user_pool = _serving_fixture()
    rng = np.random.default_rng(0)
    payloads = [
        {
            "cascade_id": int(rng.choice(cascade_ids)),
            "user_ids": [int(u) for u in rng.choice(user_pool, size=CANDIDATES_PER_REQUEST, replace=False)],
        }
        for _ in range(256)
    ]

    def serve(workers: int):
        """A fresh predictor + engine + server for one measurement leg."""
        predictor = RetweeterPredictor(bundle)
        engine = InferenceEngine(
            {"retweeters": predictor},
            max_batch_size=64,
            max_wait_ms=2.0,
            workers=workers,
        )
        return engine, PredictionServer(engine, port=0)

    # ---- base curve: the single-dispatch engine over concurrency levels --
    engine, server = serve(workers=1)
    results = []
    batch_levels = []
    with server:
        host, port = server.address
        _fire_load(host, port, payloads, concurrency=2, seconds=0.5)  # warm caches
        for concurrency in args.base_levels:
            level = _fire_load(host, port, payloads, concurrency, args.seconds)
            level["feature_cache_hit_rate"] = (
                engine.metrics()["retweeters"]["caches"]["features"]["hit_rate"]
            )
            results.append(level)
        engine_metrics = engine.metrics()["retweeters"]
        # ---- /v1/batch/retweeters: N payloads per HTTP call -------------
        if args.batch_size:
            batch_levels.append(
                _fire_load(
                    host, port, payloads, args.concurrency, args.seconds,
                    batch_size=args.batch_size,
                )
            )

    # ---- cores -> req/s scaling: dispatch workers at fixed concurrency ---
    scaling = []
    for w in args.workers:
        engine, server = serve(workers=w)
        with server:
            host, port = server.address
            _fire_load(host, port, payloads, concurrency=2, seconds=0.5)
            level = _fire_load(host, port, payloads, args.concurrency, args.seconds)
            level["workers"] = w
            level["feature_cache_hit_rate"] = (
                engine.metrics()["retweeters"]["caches"]["features"]["hit_rate"]
            )
        scaling.append(level)
    base_rps = next(e for e in scaling if e["workers"] == 1)["requests_per_s"]
    for level in scaling:
        level["speedup_vs_serial"] = round(level["requests_per_s"] / base_rps, 2)

    report = {
        "client": "repro.client.ServingClient",
        "api": "v1",
        "levels": results,
        "engine": {
            "requests": engine_metrics["requests"],
            "mean_batch_size": engine_metrics["mean_batch_size"],
            "p50_ms": engine_metrics["p50_ms"],
            "p95_ms": engine_metrics["p95_ms"],
        },
        "scaling": {
            "concurrency": args.concurrency,
            "levels": scaling,
            "cores": available_cores(),
            "rps_floor": args.min_rps,
            "rps_floor_enforced": floor_enforceable(max(args.workers)),
        },
    }
    if batch_levels:
        report["batch"] = {
            "concurrency": args.concurrency,
            "batch_size": args.batch_size,
            "levels": batch_levels,
        }

    # ---- telemetry overhead: disabled vs unsampled vs fully sampled ------
    if getattr(args, "obs_overhead", False):
        overhead = []
        try:
            for label, enabled, rate in (
                ("disabled", False, 0.0),
                ("enabled_unsampled", True, 0.0),
                ("enabled_sampled", True, 1.0),
            ):
                obs_config.configure(enabled=enabled, sample_rate=rate)
                engine, server = serve(workers=1)
                with server:
                    host, port = server.address
                    _fire_load(host, port, payloads, concurrency=2, seconds=0.5)
                    level = _fire_load(
                        host, port, payloads, args.concurrency, args.seconds
                    )
                level["obs"] = label
                overhead.append(level)
        finally:
            obs_config.configure(enabled=True, sample_rate=0.0)
        base_rps = overhead[0]["requests_per_s"]
        for level in overhead:
            level["overhead_pct_vs_disabled"] = round(
                (base_rps - level["requests_per_s"]) / base_rps * 100, 2
            )
        report["obs_overhead"] = {
            "concurrency": args.concurrency,
            "levels": overhead,
            "target_pct_unsampled": 3.0,
        }
    return report


def test_serving_throughput(benchmark):
    from benchmarks.common import run_once

    report = run_once(benchmark, _run)
    print()
    print(json.dumps(report, indent=2))
    assert all(level["requests"] > 0 for level in report["levels"])


def main(argv=None) -> int:
    args = parse_args(argv)
    report = {"benchmark": "serving_throughput",
              "workers_sweep": args.workers,
              "results": _run(args)}
    emit_report(report, args.json_out)
    if args.check:
        levels = report["results"]["levels"] + report["results"]["scaling"]["levels"]
        levels += report["results"].get("batch", {}).get("levels", [])
        if not all(level["requests"] > 0 for level in levels):
            print("FAIL: a load level completed zero requests", file=sys.stderr)
            return 1
        max_w = max(args.workers)
        top = next(
            e for e in report["results"]["scaling"]["levels"] if e["workers"] == max_w
        )
        if report["results"]["scaling"]["rps_floor_enforced"]:
            if top["requests_per_s"] < args.min_rps:
                print(f"FAIL: {max_w}-worker throughput "
                      f"{top['requests_per_s']} req/s < required "
                      f"{args.min_rps} req/s", file=sys.stderr)
                return 1
        else:
            print(f"note: req/s floor skipped ({available_cores()} core(s) "
                  f"< {max_w} workers)", file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Serving throughput: requests/sec and p50/p95 latency vs client batch size.

Trains a small RETINA bundle once, serves it over HTTP from a background
thread, then fires fixed-duration closed-loop load at concurrency levels
1-64 (each client thread holds one in-flight request).  Load generation
goes through :class:`repro.client.ServingClient` — the real SDK with its
keep-alive pooling and client-side schema validation — so the measured
numbers include the full v1 contract, not a hand-rolled fast path.
Reports a JSON document per level with requests/sec, p50/p95 latency,
and feature-cache hit rate — the numbers that justify micro-batching +
caching.

A ``--workers`` sweep then re-serves the same bundle with that many
dispatch worker processes (micro-batches executed concurrently over
read-only shared-memory model weights) and fires load at a fixed
concurrency, emitting the cores -> requests/sec scaling curve.  ``--check``
enforces a requests/sec floor at the largest worker count when the host
has that many cores.

``--batch-size N`` adds a ``/v1/batch/retweeters`` leg: each HTTP call
carries N requests fanned into the micro-batcher, reported with both
per-HTTP-request and per-row throughput.

Saturation behaviour is measured separately from closed-loop throughput:

- ``--arrival-rate R`` fires *open-loop* Poisson load at R req/s against
  the asyncio front end with admission control — arrivals are scheduled,
  not gated on responses, and latency is measured from the scheduled
  arrival time, so coordinated omission can't hide queueing;
- ``--overload`` auto-mode measures closed-loop capacity, then runs
  open-loop legs at 0.5x and 2x that rate.  ``--check`` enforces the
  graceful-saturation floor: p99 of *admitted* requests at 2x offered
  load ≤ 2x the p99 at 50% load (+50 ms slack), zero requests dropped
  without a response, and every 429 carrying ``Retry-After``.
  ``--overload-only`` skips the closed-loop curve/scaling legs (the CI
  overload-smoke step).

Runnable standalone (``PYTHONPATH=src python benchmarks/bench_serving_throughput.py``)
or under pytest-benchmark like the other benches.
"""

from __future__ import annotations

import argparse
import http.client
import json
import queue as queue_mod
import sys
import threading
import time
from functools import lru_cache
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # executed as a script: make `benchmarks` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    add_json_out,
    add_workers_sweep,
    available_cores,
    emit_report,
    floor_enforceable,
    smoke_sweep,
    with_serial_baseline,
)
from repro.client import ServingClient
from repro.core.retina import RETINA, RetinaFeatureExtractor, RetinaTrainer
from repro.data import HateDiffusionDataset, SyntheticWorldConfig
from repro.obs import config as obs_config
from repro.serving import (
    AdmissionConfig,
    AdmissionController,
    AsyncPredictionServer,
    InferenceEngine,
    RetinaBundle,
    RetweeterPredictor,
)

BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64)
SECONDS_PER_LEVEL = 2.0
CANDIDATES_PER_REQUEST = 8


@lru_cache(maxsize=1)
def _serving_fixture():
    """(bundle, cascade_ids, user_pool) — trained once per process."""
    cfg = SyntheticWorldConfig(scale=0.01, n_hashtags=5, n_users=150, n_news=300, seed=13)
    ds = HateDiffusionDataset.generate(cfg)
    train, test = ds.cascade_split(random_state=0)
    extractor = RetinaFeatureExtractor(ds.world, random_state=0).fit(train)
    edges = RetinaTrainer.default_interval_edges()
    tr = extractor.build_samples(train[:30], interval_edges_hours=edges, random_state=0)
    model = RETINA(
        user_dim=extractor.user_feature_dim,
        tweet_dim=extractor.news_doc2vec_dim,
        news_dim=extractor.news_doc2vec_dim,
        mode="static",
        random_state=0,
    )
    RetinaTrainer(model, epochs=1, random_state=0).fit(tr)
    bundle = RetinaBundle(model=model, extractor=extractor, world_config=cfg)
    cascade_ids = [c.root.tweet_id for c in ds.world.cascades[:40]]
    user_pool = sorted(ds.world.users)
    return bundle, cascade_ids, user_pool


def _fire_load(
    host: str,
    port: int,
    payloads: list[dict],
    concurrency: int,
    seconds: float,
    *,
    batch_size: int = 0,
) -> dict:
    """Closed-loop load: ``concurrency`` threads, one in-flight call each.

    Each thread drives its own :class:`ServingClient` (one pooled
    keep-alive connection), so the measurement is request handling +
    batching through the full v1 contract — client-side validation,
    typed response parsing — not TCP handshakes.  With ``batch_size``
    > 0 every HTTP call is a ``/v1/batch/retweeters`` request carrying
    that many payloads.
    """
    stop_at = time.perf_counter() + seconds
    latencies_per_thread: list[list[float]] = [[] for _ in range(concurrency)]
    errors = []

    def client_loop(slot: int):
        client = ServingClient(
            host=host, port=port, timeout=30, retries=0, pool_size=1
        )
        i = slot
        stride = concurrency * max(1, batch_size)
        try:
            while time.perf_counter() < stop_at:
                t0 = time.perf_counter()
                try:
                    if batch_size:
                        requests = [
                            payloads[(i + j) % len(payloads)]
                            for j in range(batch_size)
                        ]
                        batch = client.predict_many("retweeters", requests)
                        if batch.n_errors:
                            errors.append(f"{batch.n_errors} batch item errors")
                            return
                    else:
                        payload = payloads[i % len(payloads)]
                        client.predict_retweeters(
                            payload["cascade_id"], user_ids=payload["user_ids"]
                        )
                except Exception as exc:  # pragma: no cover - bench robustness
                    errors.append(repr(exc))
                    return
                i += stride
                latencies_per_thread[slot].append(time.perf_counter() - t0)
        finally:
            client.close()

    started = time.perf_counter()
    threads = [threading.Thread(target=client_loop, args=(s,)) for s in range(concurrency)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    lat = np.array([x for per in latencies_per_thread for x in per])
    if errors:
        raise RuntimeError(f"load generation failed: {errors[:3]}")
    level = {
        "concurrency": concurrency,
        "requests": int(lat.size),
        "requests_per_s": round(lat.size / elapsed, 1),
        "p50_ms": round(float(np.percentile(lat, 50)) * 1e3, 2),
        "p95_ms": round(float(np.percentile(lat, 95)) * 1e3, 2),
        "p99_ms": round(float(np.percentile(lat, 99)) * 1e3, 2),
    }
    if batch_size:
        level["batch_size"] = batch_size
        level["rows"] = int(lat.size) * batch_size
        level["rows_per_s"] = round(lat.size * batch_size / elapsed, 1)
    return level


def _fire_open_loop(
    host: str,
    port: int,
    payloads: list[dict],
    rate: float,
    seconds: float,
    *,
    rng_seed: int = 1,
) -> dict:
    """Open-loop Poisson load: arrivals at ``rate``/s, *not* gated on
    responses.

    Every request has a pre-scheduled arrival time (exponential gaps) and
    its latency is measured from that scheduled time — if the sender pool
    falls behind, the delay counts against the server, so coordinated
    omission cannot flatter the latency curve.  Per-response accounting
    separates admitted results (200), sheds (429, checked for
    ``Retry-After``), engine timeouts (503), and transport errors — the
    no-silent-drops floor is ``answered == offered``.
    """
    rng = np.random.default_rng(rng_seed)
    n = max(1, int(rate * seconds))
    arrivals = np.cumsum(rng.exponential(1.0 / rate, size=n))
    bodies = [
        json.dumps(payloads[i % len(payloads)]).encode("utf-8") for i in range(n)
    ]
    jobs: queue_mod.SimpleQueue = queue_mod.SimpleQueue()
    for k in range(n):
        jobs.put(k)
    n_workers = int(min(64, max(16, rate * 0.1)))
    admitted_lat: list[list[float]] = [[] for _ in range(n_workers)]
    counts = [
        {"admitted": 0, "shed": 0, "shed_with_retry_after": 0,
         "overloaded": 0, "other": 0, "errors": 0}
        for _ in range(n_workers)
    ]
    headers = {"Content-Type": "application/json"}
    start = time.perf_counter() + 0.05

    def worker(wid: int):
        conn: http.client.HTTPConnection | None = None
        c = counts[wid]
        while True:
            try:
                k = jobs.get_nowait()
            except queue_mod.Empty:
                break
            due = start + arrivals[k]
            delay = due - time.perf_counter()
            if delay > 0:
                time.sleep(delay)
            try:
                if conn is None:
                    conn = http.client.HTTPConnection(host, port, timeout=30)
                conn.request("POST", "/v1/predict/retweeters", bodies[k], headers)
                resp = conn.getresponse()
                resp.read()
                status = resp.status
                retry_after = resp.headers.get("Retry-After")
                if resp.headers.get("Connection", "").lower() == "close":
                    conn.close()
                    conn = None
            except Exception:
                c["errors"] += 1
                if conn is not None:
                    conn.close()
                conn = None
                continue
            finished = time.perf_counter()
            if status == 200:
                c["admitted"] += 1
                admitted_lat[wid].append(finished - due)
            elif status == 429:
                c["shed"] += 1
                if retry_after is not None:
                    c["shed_with_retry_after"] += 1
            elif status == 503:
                c["overloaded"] += 1
            else:
                c["other"] += 1
        if conn is not None:
            conn.close()

    threads = [threading.Thread(target=worker, args=(w,)) for w in range(n_workers)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    total = {key: sum(c[key] for c in counts) for key in counts[0]}
    lat = np.array([x for per in admitted_lat for x in per])
    leg = {
        "arrival_rate_rps": round(rate, 1),
        "seconds": seconds,
        "offered": n,
        "answered": n - total["errors"],
        **total,
    }
    if lat.size:
        leg["admitted_p50_ms"] = round(float(np.percentile(lat, 50)) * 1e3, 2)
        leg["admitted_p95_ms"] = round(float(np.percentile(lat, 95)) * 1e3, 2)
        leg["admitted_p99_ms"] = round(float(np.percentile(lat, 99)) * 1e3, 2)
    return leg


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--seconds", type=float, default=SECONDS_PER_LEVEL,
                        help="load duration per measured level")
    parser.add_argument("--levels", type=str, default=None,
                        help="comma-separated base concurrency levels "
                             "(default 1,2,4,8,16,32,64)")
    add_workers_sweep(parser)
    parser.add_argument("--concurrency", type=int, default=32,
                        help="client concurrency for the workers sweep")
    parser.add_argument("--batch-size", type=int, default=0, metavar="N",
                        help="also measure /v1/batch/retweeters with N "
                             "requests per HTTP call (0 disables; reports "
                             "per-request and per-row throughput)")
    parser.add_argument("--obs-overhead", action="store_true",
                        help="also measure telemetry overhead: one fixed-"
                             "concurrency leg each with obs disabled, "
                             "enabled-but-unsampled, and fully sampled")
    parser.add_argument("--arrival-rate", type=float, default=0.0, metavar="R",
                        help="open-loop leg: Poisson arrivals at R req/s "
                             "against the asyncio front end with admission "
                             "control (0 disables)")
    parser.add_argument("--overload", action="store_true",
                        help="measure closed-loop capacity, then open-loop "
                             "legs at 0.5x and 2x that rate (graceful-"
                             "saturation curve)")
    parser.add_argument("--overload-only", action="store_true",
                        help="run only the --overload legs (skips the "
                             "closed-loop curve, scaling, and batch legs)")
    parser.add_argument("--overload-p99-factor", type=float, default=2.0,
                        help="admitted-p99 blowup allowed at 2x offered load "
                             "vs 50%% load (plus 50 ms slack)")
    parser.add_argument("--min-rps", type=float, default=3000.0,
                        help="requests/sec floor at the largest sweep worker "
                             "count (enforced by --check when the host has "
                             "that many cores)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on zero throughput or a missed "
                             "requests/sec floor")
    parser.add_argument("--smoke", action="store_true",
                        help="short-load CI preset (implies --check)")
    add_json_out(parser)
    args = parser.parse_args(argv)
    args.base_levels = (
        tuple(int(x) for x in args.levels.split(",")) if args.levels else BATCH_SIZES
    )
    if args.smoke:
        args.seconds = min(args.seconds, 0.5)
        args.base_levels = (4, 16)
        args.concurrency = 16
        args.batch_size = args.batch_size or 8
        args.workers = smoke_sweep(args.workers)
        # The smoke gate proves the multi-process serving path works under
        # load; the 3000 req/s floor belongs to the 4-core default run.
        args.min_rps = min(args.min_rps, 150.0)
        args.check = True
    if args.overload_only:
        args.overload = True
    args.workers = with_serial_baseline(args.workers)
    return args


def _run(args=None) -> dict:
    if args is None:
        args = parse_args([])
    # Load legs run enabled-but-unsampled — the production posture — so the
    # archived throughput trajectory stays comparable across PRs; the
    # --obs-overhead leg flips the switches explicitly.
    obs_config.configure(enabled=True, sample_rate=0.0)
    bundle, cascade_ids, user_pool = _serving_fixture()
    rng = np.random.default_rng(0)
    payloads = [
        {
            "cascade_id": int(rng.choice(cascade_ids)),
            "user_ids": [int(u) for u in rng.choice(user_pool, size=CANDIDATES_PER_REQUEST, replace=False)],
        }
        for _ in range(256)
    ]

    def serve(workers: int, admission=None):
        """A fresh predictor + engine + server for one measurement leg."""
        predictor = RetweeterPredictor(bundle)
        engine = InferenceEngine(
            {"retweeters": predictor},
            max_batch_size=64,
            max_wait_ms=2.0,
            workers=workers,
        )
        return engine, AsyncPredictionServer(engine, port=0, admission=admission)

    report = {"client": "repro.client.ServingClient", "api": "v1",
              "cores": available_cores()}

    if not args.overload_only:
        # ---- base curve: single-dispatch engine over concurrency levels --
        engine, server = serve(workers=1)
        results = []
        batch_levels = []
        with server:
            host, port = server.address
            _fire_load(host, port, payloads, concurrency=2, seconds=0.5)  # warm caches
            for concurrency in args.base_levels:
                level = _fire_load(host, port, payloads, concurrency, args.seconds)
                level["feature_cache_hit_rate"] = (
                    engine.metrics()["retweeters"]["caches"]["features"]["hit_rate"]
                )
                results.append(level)
            engine_metrics = engine.metrics()["retweeters"]
            # ---- /v1/batch/retweeters: N payloads per HTTP call ---------
            if args.batch_size:
                batch_levels.append(
                    _fire_load(
                        host, port, payloads, args.concurrency, args.seconds,
                        batch_size=args.batch_size,
                    )
                )

        # ---- cores -> req/s scaling: dispatch workers, fixed concurrency -
        scaling = []
        for w in args.workers:
            engine, server = serve(workers=w)
            with server:
                host, port = server.address
                _fire_load(host, port, payloads, concurrency=2, seconds=0.5)
                level = _fire_load(host, port, payloads, args.concurrency, args.seconds)
                level["workers"] = w
                level["feature_cache_hit_rate"] = (
                    engine.metrics()["retweeters"]["caches"]["features"]["hit_rate"]
                )
            scaling.append(level)
        base_rps = next(e for e in scaling if e["workers"] == 1)["requests_per_s"]
        for level in scaling:
            level["speedup_vs_serial"] = round(level["requests_per_s"] / base_rps, 2)

        report["levels"] = results
        report["engine"] = {
            "requests": engine_metrics["requests"],
            "mean_batch_size": engine_metrics["mean_batch_size"],
            "p50_ms": engine_metrics["p50_ms"],
            "p95_ms": engine_metrics["p95_ms"],
        }
        report["scaling"] = {
            "concurrency": args.concurrency,
            "levels": scaling,
            "cores": available_cores(),
            "rps_floor": args.min_rps,
            "rps_floor_enforced": floor_enforceable(max(args.workers)),
        }
        if batch_levels:
            report["batch"] = {
                "concurrency": args.concurrency,
                "batch_size": args.batch_size,
                "levels": batch_levels,
            }

    # ---- open-loop leg at a fixed offered rate ---------------------------
    if getattr(args, "arrival_rate", 0.0) > 0:
        engine, server = serve(
            workers=1, admission=AdmissionController(AdmissionConfig()),
        )
        with server:
            host, port = server.address
            _fire_load(host, port, payloads, concurrency=2, seconds=0.5)
            report["open_loop"] = _fire_open_loop(
                host, port, payloads, args.arrival_rate, args.seconds
            )

    # ---- overload curve: 0.5x and 2x measured capacity -------------------
    if getattr(args, "overload", False):
        # Probe capacity on an unthrottled server first...
        engine, probe = serve(workers=1)
        with probe:
            host, port = probe.address
            _fire_load(host, port, payloads, concurrency=2, seconds=0.5)
            capacity = _fire_load(
                host, port, payloads, 16, min(args.seconds, 2.0)
            )["requests_per_s"]
        # ...then serve with a route quota at 75% of it.  The quota is the
        # graceful-saturation mechanism under test: at 0.5x offered load
        # the bucket never empties (zero shed); at 2x it sheds the excess
        # so admitted throughput stays inside capacity and admitted p99
        # stays near the uncongested service time.  Watermarks ride along
        # as the backstop against the engine queue itself backing up.
        admission_cfg = AdmissionConfig(
            route_rps=capacity * 0.75,
            route_burst=max(32.0, capacity * 0.1),
            depth_high=64, depth_low=16, age_high_s=0.25, age_low_s=0.05,
        )
        engine, server = serve(
            workers=1, admission=AdmissionController(admission_cfg),
        )
        legs = []
        with server:
            host, port = server.address
            _fire_load(host, port, payloads, concurrency=2, seconds=0.5)
            for frac in (0.5, 2.0):
                leg = _fire_open_loop(
                    host, port, payloads, max(10.0, capacity * frac), args.seconds
                )
                leg["offered_fraction_of_capacity"] = frac
                legs.append(leg)
        p99_half = legs[0].get("admitted_p99_ms")
        p99_double = legs[1].get("admitted_p99_ms")
        limit = (
            round(p99_half * args.overload_p99_factor + 50.0, 2)
            if p99_half is not None else None
        )
        report["overload"] = {
            "capacity_rps_closed_loop": capacity,
            "admission": {
                "route_rps": round(admission_cfg.route_rps, 1),
                "route_burst": round(admission_cfg.route_burst, 1),
                "depth_high": admission_cfg.depth_high,
                "age_high_s": admission_cfg.age_high_s,
            },
            "legs": legs,
            "p99_floor": {
                "factor": args.overload_p99_factor,
                "slack_ms": 50.0,
                "limit_ms": limit,
                # The latency bound is a scheduling claim — on a 1-core
                # host the load generator and server share the core and
                # client-side lateness pollutes the measurement.
                "enforced": floor_enforceable(2),
                "ok": (
                    p99_half is not None
                    and p99_double is not None
                    and p99_double <= limit
                ),
            },
        }

    # ---- telemetry overhead: disabled vs unsampled vs fully sampled ------
    if getattr(args, "obs_overhead", False):
        overhead = []
        try:
            for label, enabled, rate in (
                ("disabled", False, 0.0),
                ("enabled_unsampled", True, 0.0),
                ("enabled_sampled", True, 1.0),
            ):
                obs_config.configure(enabled=enabled, sample_rate=rate)
                engine, server = serve(workers=1)
                with server:
                    host, port = server.address
                    _fire_load(host, port, payloads, concurrency=2, seconds=0.5)
                    level = _fire_load(
                        host, port, payloads, args.concurrency, args.seconds
                    )
                level["obs"] = label
                overhead.append(level)
        finally:
            obs_config.configure(enabled=True, sample_rate=0.0)
        base_rps = overhead[0]["requests_per_s"]
        for level in overhead:
            level["overhead_pct_vs_disabled"] = round(
                (base_rps - level["requests_per_s"]) / base_rps * 100, 2
            )
        report["obs_overhead"] = {
            "concurrency": args.concurrency,
            "levels": overhead,
            "target_pct_unsampled": 3.0,
        }
    return report


def test_serving_throughput(benchmark):
    from benchmarks.common import run_once

    report = run_once(benchmark, _run)
    print()
    print(json.dumps(report, indent=2))
    assert all(level["requests"] > 0 for level in report["levels"])


def main(argv=None) -> int:
    args = parse_args(argv)
    report = {"benchmark": "serving_throughput",
              "workers_sweep": args.workers,
              "results": _run(args)}
    emit_report(report, args.json_out)
    if args.check:
        results = report["results"]
        if "scaling" in results:
            levels = results["levels"] + results["scaling"]["levels"]
            levels += results.get("batch", {}).get("levels", [])
            if not all(level["requests"] > 0 for level in levels):
                print("FAIL: a load level completed zero requests",
                      file=sys.stderr)
                return 1
            max_w = max(args.workers)
            top = next(
                e for e in results["scaling"]["levels"] if e["workers"] == max_w
            )
            if results["scaling"]["rps_floor_enforced"]:
                if top["requests_per_s"] < args.min_rps:
                    print(f"FAIL: {max_w}-worker throughput "
                          f"{top['requests_per_s']} req/s < required "
                          f"{args.min_rps} req/s", file=sys.stderr)
                    return 1
            else:
                print(f"note: req/s floor skipped ({available_cores()} core(s) "
                      f"< {max_w} workers)", file=sys.stderr)
        open_legs = []
        if "open_loop" in results:
            open_legs.append(("open_loop", results["open_loop"]))
        for leg in results.get("overload", {}).get("legs", []):
            open_legs.append(
                (f"overload@{leg['offered_fraction_of_capacity']}x", leg)
            )
        for name, leg in open_legs:
            if leg["answered"] != leg["offered"] or leg["errors"]:
                print(f"FAIL: {name}: {leg['offered'] - leg['answered']} of "
                      f"{leg['offered']} requests got no HTTP response "
                      f"(silent drops)", file=sys.stderr)
                return 1
            if leg["shed_with_retry_after"] != leg["shed"]:
                print(f"FAIL: {name}: "
                      f"{leg['shed'] - leg['shed_with_retry_after']} shed "
                      f"response(s) missing Retry-After", file=sys.stderr)
                return 1
        if "overload" in results:
            double = results["overload"]["legs"][-1]
            if double["shed"] < 1:
                print("FAIL: 2x-capacity leg shed nothing — admission "
                      "control never engaged", file=sys.stderr)
                return 1
            floor = results["overload"]["p99_floor"]
            if not floor["enforced"]:
                print(f"note: overload p99 floor skipped "
                      f"({available_cores()} core(s): load generator and "
                      f"server share the CPU)", file=sys.stderr)
            elif not floor["ok"]:
                print(f"FAIL: admitted p99 at 2x load "
                      f"({double.get('admitted_p99_ms')} ms) exceeds "
                      f"{floor['limit_ms']} ms "
                      f"({floor['factor']}x the 0.5x-load p99 "
                      f"+ {floor['slack_ms']} ms slack)", file=sys.stderr)
                return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Serving throughput: requests/sec and p50/p95 latency vs client batch size.

Trains a small RETINA bundle once, serves it over HTTP from a background
thread, then fires fixed-duration closed-loop load at concurrency levels
1-64 (each client thread holds one in-flight request).  Reports a JSON
document per level with requests/sec, p50/p95 latency, and feature-cache
hit rate — the numbers that justify micro-batching + caching.

Runnable standalone (``PYTHONPATH=src python benchmarks/bench_serving_throughput.py``)
or under pytest-benchmark like the other benches.
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from functools import lru_cache

import numpy as np

from repro.core.retina import RETINA, RetinaFeatureExtractor, RetinaTrainer
from repro.data import HateDiffusionDataset, SyntheticWorldConfig
from repro.serving import InferenceEngine, PredictionServer, RetinaBundle, RetweeterPredictor

BATCH_SIZES = (1, 2, 4, 8, 16, 32, 64)
SECONDS_PER_LEVEL = 2.0
CANDIDATES_PER_REQUEST = 8


@lru_cache(maxsize=1)
def _serving_fixture():
    """(predictor, cascade_ids, user_pool) — trained once per process."""
    cfg = SyntheticWorldConfig(scale=0.01, n_hashtags=5, n_users=150, n_news=300, seed=13)
    ds = HateDiffusionDataset.generate(cfg)
    train, test = ds.cascade_split(random_state=0)
    extractor = RetinaFeatureExtractor(ds.world, random_state=0).fit(train)
    edges = RetinaTrainer.default_interval_edges()
    tr = extractor.build_samples(train[:30], interval_edges_hours=edges, random_state=0)
    model = RETINA(
        user_dim=extractor.user_feature_dim,
        tweet_dim=extractor.news_doc2vec_dim,
        news_dim=extractor.news_doc2vec_dim,
        mode="static",
        random_state=0,
    )
    RetinaTrainer(model, epochs=1, random_state=0).fit(tr)
    bundle = RetinaBundle(model=model, extractor=extractor, world_config=cfg)
    predictor = RetweeterPredictor(bundle)
    cascade_ids = [c.root.tweet_id for c in ds.world.cascades[:40]]
    user_pool = sorted(ds.world.users)
    return predictor, cascade_ids, user_pool


def _fire_load(
    host: str, port: int, path: str, payloads: list[dict], concurrency: int, seconds: float
) -> dict:
    """Closed-loop load: ``concurrency`` threads, one in-flight request each.

    Each thread holds a persistent HTTP/1.1 connection, so the measurement
    is request handling + batching, not TCP handshakes.
    """
    stop_at = time.perf_counter() + seconds
    latencies_per_thread: list[list[float]] = [[] for _ in range(concurrency)]
    errors = []

    def client(slot: int):
        conn = http.client.HTTPConnection(host, port, timeout=30)
        i = slot
        try:
            while time.perf_counter() < stop_at:
                payload = payloads[i % len(payloads)]
                i += concurrency
                body = json.dumps(payload).encode()
                t0 = time.perf_counter()
                try:
                    conn.request(
                        "POST", path, body, {"Content-Type": "application/json"}
                    )
                    resp = conn.getresponse()
                    resp.read()
                    if resp.status != 200:
                        errors.append(f"HTTP {resp.status}")
                        return
                except Exception as exc:  # pragma: no cover - bench robustness
                    errors.append(repr(exc))
                    return
                latencies_per_thread[slot].append(time.perf_counter() - t0)
        finally:
            conn.close()

    started = time.perf_counter()
    threads = [threading.Thread(target=client, args=(s,)) for s in range(concurrency)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    elapsed = time.perf_counter() - started
    lat = np.array([x for per in latencies_per_thread for x in per])
    if errors:
        raise RuntimeError(f"load generation failed: {errors[:3]}")
    return {
        "concurrency": concurrency,
        "requests": int(lat.size),
        "requests_per_s": round(lat.size / elapsed, 1),
        "p50_ms": round(float(np.percentile(lat, 50)) * 1e3, 2),
        "p95_ms": round(float(np.percentile(lat, 95)) * 1e3, 2),
    }


def _run() -> dict:
    predictor, cascade_ids, user_pool = _serving_fixture()
    rng = np.random.default_rng(0)
    payloads = [
        {
            "cascade_id": int(rng.choice(cascade_ids)),
            "user_ids": [int(u) for u in rng.choice(user_pool, size=CANDIDATES_PER_REQUEST, replace=False)],
        }
        for _ in range(256)
    ]
    engine = InferenceEngine({"retweeters": predictor}, max_batch_size=64, max_wait_ms=2.0)
    results = []
    with PredictionServer(engine, port=0) as server:
        host, port = server.address
        path = "/predict/retweeters"
        _fire_load(host, port, path, payloads, concurrency=2, seconds=0.5)  # warm caches
        for concurrency in BATCH_SIZES:
            level = _fire_load(host, port, path, payloads, concurrency, SECONDS_PER_LEVEL)
            level["feature_cache_hit_rate"] = predictor.feature_cache.stats()["hit_rate"]
            results.append(level)
        engine_metrics = engine.metrics()["retweeters"]
    return {
        "levels": results,
        "engine": {
            "requests": engine_metrics["requests"],
            "mean_batch_size": engine_metrics["mean_batch_size"],
            "p50_ms": engine_metrics["p50_ms"],
            "p95_ms": engine_metrics["p95_ms"],
        },
    }


def test_serving_throughput(benchmark):
    from benchmarks.common import run_once

    report = run_once(benchmark, _run)
    print()
    print(json.dumps(report, indent=2))
    assert all(level["requests"] > 0 for level in report["levels"])


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_run, "serving_throughput"))

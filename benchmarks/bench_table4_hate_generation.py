"""Table IV: hate-generation classifiers x processing variants.

Regenerates the 6-model x 5-variant grid of macro-F1 / ACC / AUC.  Expected
shapes (paper): without sampling, accuracy is deceptively high and macro-F1
low (dominant-class bias); downsampling lifts macro-F1 across models with
tree-based models near the top (paper best: Dec-Tree + DS at 0.65).
"""

import numpy as np

from benchmarks.common import get_hategen_matrices, run_once
from repro.core.hategen import TABLE3_MODELS
from repro.utils.tables import render_table

VARIANTS = ("none", "ds", "us+ds", "pca", "top-k")

# Paper Table IV (macro-F1) for reference printing.
PAPER_MACRO_F1 = {
    ("svm-linear", "none"): 0.52, ("svm-linear", "ds"): 0.63,
    ("svm-linear", "us+ds"): 0.44, ("svm-linear", "pca"): 0.55,
    ("svm-linear", "top-k"): 0.53,
    ("svm-rbf", "none"): 0.55, ("svm-rbf", "ds"): 0.62,
    ("svm-rbf", "us+ds"): 0.46, ("svm-rbf", "pca"): 0.48,
    ("svm-rbf", "top-k"): 0.50,
    ("logreg", "none"): 0.50, ("logreg", "ds"): 0.64,
    ("logreg", "us+ds"): 0.47, ("logreg", "pca"): 0.49,
    ("logreg", "top-k"): 0.49,
    ("dectree", "none"): 0.51, ("dectree", "ds"): 0.65,
    ("dectree", "us+ds"): 0.45, ("dectree", "pca"): 0.46,
    ("dectree", "top-k"): 0.53,
    ("adaboost", "none"): 0.49, ("adaboost", "ds"): 0.62,
    ("adaboost", "us+ds"): 0.44, ("adaboost", "pca"): 0.50,
    ("adaboost", "top-k"): 0.49,
    ("xgboost", "none"): 0.53, ("xgboost", "ds"): 0.57,
    ("xgboost", "us+ds"): 0.44, ("xgboost", "pca"): 0.51,
    ("xgboost", "top-k"): 0.49,
}


def _grid():
    pipeline, X_tr, y_tr, X_te, y_te = get_hategen_matrices()
    return pipeline.run_grid(list(TABLE3_MODELS), VARIANTS, X_tr, y_tr, X_te, y_te)


def test_table4_hate_generation(benchmark):
    results = run_once(benchmark, _grid)
    rows = [
        [
            TABLE3_MODELS[r.model_key],
            r.variant,
            round(r.macro_f1, 3),
            PAPER_MACRO_F1.get((r.model_key, r.variant), float("nan")),
            round(r.accuracy, 3),
            round(r.auc, 3),
        ]
        for r in results
    ]
    print()
    print(
        render_table(
            ["model", "proc", "macro-F1", "F1(paper)", "ACC", "AUC"],
            rows,
            title="Table IV — hate generation prediction",
        )
    )
    by = {(r.model_key, r.variant): r for r in results}
    # Shape 1: without sampling, accuracy is high while macro-F1 lags.
    none_acc = np.mean([by[(m, "none")].accuracy for m in TABLE3_MODELS])
    assert none_acc > 0.85
    # Shape 2: downsampling lifts average macro-F1 over the raw variant.
    f1_none = np.mean([by[(m, "none")].macro_f1 for m in TABLE3_MODELS])
    f1_ds = np.mean([by[(m, "ds")].macro_f1 for m in TABLE3_MODELS])
    assert f1_ds > f1_none - 0.05


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_grid, "table4_hate_generation"))

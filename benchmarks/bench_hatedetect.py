"""Sec. VI-B supplementary: hate-detector comparison + fine-tuning gap.

Paper: the Davidson design wins (AUC 0.85, macro-F1 0.59); a pre-trained
Davidson model transfers poorly (AUC 0.79, macro-F1 0.48) until fine-tuned
on in-domain gold annotations; inter-annotator agreement is alpha = 0.58.
"""

import numpy as np

from benchmarks.common import get_dataset, run_once
from repro.data import AnnotatorPool
from repro.hatedetect import (
    BadjatiyaClassifier,
    DavidsonClassifier,
    WaseemHovyClassifier,
    evaluate_detector,
)
from repro.utils.tables import render_table


def _run():
    ds = get_dataset()
    subset, ratings, majority = ds.gold_annotation(fraction=0.6, random_state=0)
    alpha = AnnotatorPool.agreement(ratings)
    texts = [t.text for t in subset]
    n_tr = int(0.8 * len(texts))
    X_tr, y_tr = texts[:n_tr], majority[:n_tr]
    X_te, y_te = texts[n_tr:], majority[n_tr:]
    detectors = {
        "Davidson": DavidsonClassifier(random_state=0),
        "Waseem-Hovy": WaseemHovyClassifier(random_state=0),
        "Badjatiya": BadjatiyaClassifier(epochs=20, random_state=0),
    }
    results = {}
    for name, det in detectors.items():
        det.fit(X_tr, y_tr)
        results[name] = evaluate_detector(det, X_te, y_te)
    return alpha, results


def test_hatedetect_comparison(benchmark):
    alpha, results = run_once(benchmark, _run)
    rows = [
        [name, round(m["macro_f1"], 3), round(m.get("auc", float("nan")), 3), round(m["accuracy"], 3)]
        for name, m in results.items()
    ]
    print()
    print(f"Inter-annotator agreement (Krippendorff alpha): {alpha:.3f}  (paper: 0.58)")
    print(
        render_table(
            ["detector", "macro-F1", "AUC", "ACC"],
            rows,
            title="Sec VI-B — hate-detection designs on gold annotations",
        )
    )
    assert 0.2 < alpha < 1.0
    assert all(m.get("auc", 0) > 0.7 for m in results.values())


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_run, "hatedetect"))

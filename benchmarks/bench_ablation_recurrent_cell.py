"""Ablation: recurrent cell in RETINA-D (paper Sec. V-B).

"We experimented with other recurrent architectures as well; performance
degraded with simple RNN and no gain with LSTM."
"""

from benchmarks.common import BENCH_SEED, get_retina_extractor, get_retina_samples, run_once
from repro.core.retina import RETINA, RetinaTrainer, evaluate_binary, evaluate_ranking
from repro.utils.tables import render_table

CELLS = ("gru", "rnn", "lstm")


def _run():
    ext = get_retina_extractor()
    tr, te = get_retina_samples()
    out = {}
    for cell in CELLS:
        model = RETINA(
            user_dim=ext.user_feature_dim,
            tweet_dim=ext.news_doc2vec_dim,
            news_dim=ext.news_doc2vec_dim,
            mode="dynamic",
            recurrent_cell=cell,
            random_state=BENCH_SEED,
        )
        trainer = RetinaTrainer(model, epochs=5, random_state=BENCH_SEED).fit(tr[:120])
        q = [(s.labels.astype(int), trainer.predict_static_scores(s)) for s in te]
        out[cell] = {**evaluate_binary(q), **evaluate_ranking(q)}
    return out


def test_ablation_recurrent_cell(benchmark):
    results = run_once(benchmark, _run)
    rows = [
        [cell, round(m["macro_f1"], 3), round(m["auc"], 3), round(m["map@20"], 3)]
        for cell, m in results.items()
    ]
    print()
    print(
        render_table(
            ["cell", "macro-F1", "AUC", "MAP@20"],
            rows,
            title="Ablation — RETINA-D recurrent cell (paper: GRU best, RNN degrades, LSTM no gain)",
        )
    )
    # Shape: GRU is competitive with LSTM.
    assert results["gru"]["macro_f1"] >= results["lstm"]["macro_f1"] - 0.08


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_run, "ablation_recurrent_cell"))

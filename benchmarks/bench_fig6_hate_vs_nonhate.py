"""Figure 6: MAP@20 for hateful vs non-hateful root tweets.

Paper shape: TopoLSTM degrades sharply on hate (0.43 vs 0.59 non-hate);
RETINA holds its performance on hateful content (0.80 vs 0.74 dynamic),
thanks to the hate-aware features and exogenous signal.
"""

from benchmarks.common import (
    NEURAL_TRAIN_CAP,
    get_cascade_splits,
    get_retina_samples,
    get_trained_retina,
    retina_queries,
    run_once,
)
from repro.core.retina import map_by_hate_label
from repro.diffusion import TopoLSTM
from repro.utils.tables import render_table

PAPER = {
    "RETINA-S": (0.54, 0.56),
    "RETINA-D": (0.80, 0.74),
    "TopoLSTM": (0.43, 0.59),
}


def _run():
    _, te = get_retina_samples()
    is_hate = [s.is_hate for s in te]
    out = {}
    for mode, label in (("static", "RETINA-S"), ("dynamic", "RETINA-D")):
        trainer = get_trained_retina(mode)
        out[label] = map_by_hate_label(retina_queries(trainer), is_hate, k=20)
    train, _ = get_cascade_splits()
    topo = TopoLSTM(epochs=3, random_state=0).fit(train[:NEURAL_TRAIN_CAP])
    q = [(s.labels.astype(int), topo.predict_proba(s.candidate_set)) for s in te]
    out["TopoLSTM"] = map_by_hate_label(q, is_hate, k=20)
    return out


def test_fig6_hate_vs_nonhate_map(benchmark):
    results = run_once(benchmark, _run)
    rows = []
    for name, m in results.items():
        p = PAPER.get(name, (float("nan"), float("nan")))
        rows.append(
            [
                name,
                round(m.get("hate", float("nan")), 3),
                p[0],
                round(m.get("non_hate", float("nan")), 3),
                p[1],
            ]
        )
    print()
    print(
        render_table(
            ["model", "MAP@20 hate", "(paper)", "MAP@20 non-hate", "(paper)"],
            rows,
            title="Fig 6 — retweeter prediction on hateful vs non-hateful roots",
        )
    )
    # Shape: RETINA's hate/non-hate gap is no worse than TopoLSTM's.
    def gap(m):
        return m.get("non_hate", 0.0) - m.get("hate", 0.0)

    best_retina_gap = min(gap(results["RETINA-S"]), gap(results["RETINA-D"]))
    assert best_retina_gap <= gap(results["TopoLSTM"]) + 0.1


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_run, "fig6_hate_vs_nonhate"))

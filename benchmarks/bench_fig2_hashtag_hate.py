"""Figure 2: hate fraction varies sharply across hashtags."""

import numpy as np

from benchmarks.common import get_dataset, run_once
from repro.analysis import hashtag_hate_distribution
from repro.utils.asciiplot import ascii_bars


def _dist():
    return hashtag_hate_distribution(get_dataset().world)


def test_fig2_hashtag_hate_distribution(benchmark):
    dist = run_once(benchmark, _dist)
    tags = sorted(dist, key=lambda t: -dist[t]["hate_fraction"])
    print()
    print(
        ascii_bars(
            [t[:24] for t in tags],
            [dist[t]["hate_fraction"] for t in tags],
            title="Fig 2 — hateful tweet fraction per hashtag (0-1)",
        )
    )
    fracs = np.array([dist[t]["hate_fraction"] for t in tags])
    targets = np.array([dist[t]["target_pct_hate"] / 100.0 for t in tags])
    # Spread across hashtags exists and tracks the paper's ordering.
    assert fracs.max() - fracs.min() > 0.02
    big = np.array([dist[t]["n_tweets"] >= 30 for t in tags])
    if big.sum() >= 4:
        gen_rank = np.argsort(np.argsort(fracs[big]))
        tgt_rank = np.argsort(np.argsort(targets[big]))
        rho = np.corrcoef(gen_rank, tgt_rank)[0, 1]
        assert rho > 0.3


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_dist, "fig2_hashtag_hate"))

"""Ablation: class-imbalance weight lambda in Eq. 6.

The paper sweeps lambda in {1.0, 1.5, 2.0, 2.5} and settles on 2.0 for
static and 2.5 for dynamic mode.
"""

from benchmarks.common import BENCH_SEED, get_retina_extractor, get_retina_samples, run_once
from repro.core.retina import RETINA, RetinaTrainer, evaluate_binary
from repro.utils.tables import render_table

LAMBDAS = (1.0, 1.5, 2.0, 2.5)


def _run():
    ext = get_retina_extractor()
    tr, te = get_retina_samples()
    out = {}
    for lam in LAMBDAS:
        model = RETINA(
            user_dim=ext.user_feature_dim,
            tweet_dim=ext.news_doc2vec_dim,
            news_dim=ext.news_doc2vec_dim,
            mode="static",
            random_state=BENCH_SEED,
        )
        trainer = RetinaTrainer(model, lam=lam, epochs=6, random_state=BENCH_SEED)
        trainer.fit(tr[:150])
        q = [(s.labels.astype(int), trainer.predict_static_scores(s)) for s in te]
        out[lam] = evaluate_binary(q)
    return out


def test_ablation_lambda(benchmark):
    results = run_once(benchmark, _run)
    rows = [
        [lam, round(m["macro_f1"], 3), round(m["accuracy"], 3), round(m["auc"], 3)]
        for lam, m in results.items()
    ]
    print()
    print(
        render_table(
            ["lambda", "macro-F1", "ACC", "AUC"],
            rows,
            title="Ablation — Eq. 6 positive-class weight (paper: 2.0 static / 2.5 dynamic)",
        )
    )
    best = max(results.values(), key=lambda m: m["macro_f1"])["macro_f1"]
    worst = min(results.values(), key=lambda m: m["macro_f1"])["macro_f1"]
    assert best >= worst  # sweep produces a ranking; printed for inspection


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_run, "ablation_lambda"))

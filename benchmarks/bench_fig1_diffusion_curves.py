"""Figure 1: retweet growth and susceptible users over time, hate vs non-hate.

Paper shapes: (a) hateful tweets collect far more retweets and acquire
them almost immediately, then stall; non-hate keeps spreading slowly.
(b) hateful tweets end with fewer susceptible users (echo chambers).
"""

import numpy as np

from benchmarks.common import get_dataset, run_once
from repro.analysis import diffusion_curves
from repro.utils.asciiplot import ascii_series


def _curves():
    return diffusion_curves(get_dataset().world, horizon_hours=200.0, n_points=21)


def test_fig1_diffusion_curves(benchmark):
    curves = run_once(benchmark, _curves)
    rt, su = curves["retweets"], curves["susceptible"]
    print()
    print(
        ascii_series(
            {"hate": rt["hate"], "non-hate": rt["non_hate"]},
            title="Fig 1a — avg cumulative retweets vs hours",
        )
    )
    print()
    print(
        ascii_series(
            {"hate": su["hate"], "non-hate": su["non_hate"]},
            title="Fig 1b — avg susceptible users vs hours",
        )
    )
    grid = curves["time"]
    print()
    for i in (0, 2, 5, 10, 20):
        print(
            f"t={grid[i]:6.0f}h  rt hate={rt['hate'][i]:7.2f} non={rt['non_hate'][i]:6.2f}"
            f"  susc hate={su['hate'][i]:7.1f} non={su['non_hate'][i]:7.1f}"
        )
    # (a) hate retweeted in higher magnitude, acquired early.
    assert rt["hate"][-1] > 2.0 * rt["non_hate"][-1]
    assert rt["hate"][2] / rt["hate"][-1] > rt["non_hate"][2] / max(rt["non_hate"][-1], 1e-9)
    # (b) hate creates fewer susceptible users by the horizon.
    assert su["hate"][-1] < su["non_hate"][-1]


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_curves, "fig1_diffusion_curves"))

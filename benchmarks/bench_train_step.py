"""Training-step throughput: fused compute path vs the frozen seed path.

Trains the same RETINA configuration (static and dynamic mode) through the
fused path (``RetinaTrainer.fit`` — fused tape nodes, hoisted recurrent
projections, single-node GRU unroll, flat optimiser updates, hoisted
per-sample state) and through the seed path frozen in
``repro.nn.reference.fit_reference`` (primitive op chains, per-step input
re-projection, per-parameter optimiser loops, per-epoch index rebuilds),
then reports steps/sec and cascades/sec for both.  A built-in parity check
verifies the two paths produced **bit-identical** trained weights — the
fused path is an optimisation, never a numerical change.

Both paths share the same numpy/BLAS arithmetic by construction (bit-
identity pins every expression), so the measured speedup isolates what the
refactor actually removed: tape bookkeeping, redundant projections, and
per-step Python overhead.  The default scale uses a compact feature space
(the overhead-dominated hot-loop regime the refactor targets); pass
``--paper-scale`` for the full-width features, where BLAS time dominates
and the ratio is naturally smaller.

Output is one JSON document on stdout (same contract as
``bench_feature_build.py``); ``--check`` (implied by ``--smoke``) exits
non-zero when parity fails or a mode's speedup drops under its floor — the
CI smoke step runs exactly that on a tiny world.
"""

from __future__ import annotations

import argparse
import sys
import time

import numpy as np

from pathlib import Path

if __package__ in (None, ""):  # executed as a script: make `benchmarks` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import (
    add_json_out,
    add_workers_sweep,
    available_cores,
    emit_report,
    floor_enforceable,
    smoke_sweep,
    with_serial_baseline,
)
from repro.core.retina import RETINA, RetinaFeatureExtractor, RetinaTrainer
from repro.data import HateDiffusionDataset, SyntheticWorldConfig
from repro.nn.reference import fit_reference


def parse_args(argv=None) -> argparse.Namespace:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--users", type=int, default=400)
    parser.add_argument("--scale", type=float, default=0.04)
    parser.add_argument("--hashtags", type=int, default=10)
    parser.add_argument("--news", type=int, default=1200)
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--cascades", type=int, default=50,
                        help="training cascades (each is one mini-batch step)")
    parser.add_argument("--epochs", type=int, default=3)
    parser.add_argument("--hdim", type=int, default=32)
    parser.add_argument("--history-size", type=int, default=10)
    parser.add_argument("--tweet-top-k", type=int, default=50)
    parser.add_argument("--news-window", type=int, default=20)
    parser.add_argument("--paper-scale", action="store_true",
                        help="full-width features + hdim 64 (BLAS-dominated)")
    parser.add_argument("--min-speedup-static", type=float, default=1.15,
                        help="static-mode speedup floor enforced by --check")
    parser.add_argument("--min-speedup-dynamic", type=float, default=1.4,
                        help="dynamic-mode speedup floor enforced by --check")
    add_workers_sweep(parser)
    parser.add_argument("--shard-size", type=int, default=8,
                        help="cascades aggregated per sharded optimiser step")
    parser.add_argument("--min-parallel-speedup", type=float, default=2.0,
                        help="sharded steps/sec speedup floor at the largest "
                             "sweep worker count (enforced by --check when "
                             "the host has that many cores)")
    parser.add_argument("--check", action="store_true",
                        help="exit non-zero on parity failure or low speedup")
    parser.add_argument("--smoke", action="store_true",
                        help="tiny-world CI preset (implies --check)")
    add_json_out(parser)
    args = parser.parse_args(argv)
    if args.paper_scale:
        args.history_size, args.tweet_top_k, args.news_window = 30, 300, 60
        args.hdim = 64
    if args.smoke:
        args.users, args.scale, args.hashtags, args.news = 150, 0.02, 6, 300
        args.cascades, args.epochs = 15, 2
        # Loose floors: a loaded CI runner measures per-step times in the
        # tens of microseconds; the gate only needs to catch a regression
        # back toward the seed path.  Parity stays exact.
        args.min_speedup_static = min(args.min_speedup_static, 1.0)
        args.min_speedup_dynamic = min(args.min_speedup_dynamic, 1.1)
        args.workers = smoke_sweep(args.workers)
        # Tiny-world steps are microsecond-scale: queue round-trips swamp
        # them, so the smoke gate only proves parity + a working pool.
        args.min_parallel_speedup = 0.0
        args.check = True
    args.workers = with_serial_baseline(args.workers)
    return args


def _build_model(ext, mode: str, hdim: int, seed: int) -> RETINA:
    return RETINA(
        user_dim=ext.user_feature_dim,
        tweet_dim=ext.news_doc2vec_dim,
        news_dim=ext.news_doc2vec_dim,
        hdim=hdim,
        mode=mode,
        random_state=seed,
    )


def main(argv=None) -> int:
    args = parse_args(argv)
    cfg = SyntheticWorldConfig(
        scale=args.scale, n_hashtags=args.hashtags, n_users=args.users,
        n_news=args.news, seed=args.seed,
    )
    dataset = HateDiffusionDataset.generate(cfg)
    train, _ = dataset.cascade_split(random_state=args.seed)
    extractor = RetinaFeatureExtractor(
        dataset.world,
        history_size=args.history_size,
        tweet_top_k=args.tweet_top_k,
        news_window=args.news_window,
        random_state=args.seed,
    ).fit(train)
    edges = RetinaTrainer.default_interval_edges()
    samples = extractor.build_samples(
        train[: args.cascades], interval_edges_hours=edges, random_state=0
    )
    steps = args.epochs * len(samples)

    modes: dict[str, dict] = {}
    all_parity = True
    for mode in ("static", "dynamic"):
        # Warm numpy/BLAS and the world caches once per mode, off the clock.
        warm_f = _build_model(extractor, mode, args.hdim, args.seed)
        RetinaTrainer(warm_f, epochs=1, random_state=0).fit(samples[:3])
        warm_r = _build_model(extractor, mode, args.hdim, args.seed)
        fit_reference(warm_r, samples[:3], epochs=1, random_state=0)

        fused = _build_model(extractor, mode, args.hdim, args.seed)
        t0 = time.perf_counter()
        RetinaTrainer(fused, epochs=args.epochs, random_state=0).fit(samples)
        t_fused = time.perf_counter() - t0

        frozen = _build_model(extractor, mode, args.hdim, args.seed)
        t0 = time.perf_counter()
        fit_reference(frozen, samples, epochs=args.epochs, random_state=0)
        t_ref = time.perf_counter() - t0

        sd_f, sd_r = fused.state_dict(), frozen.state_dict()
        parity = set(sd_f) == set(sd_r) and all(
            np.array_equal(sd_f[k], sd_r[k]) for k in sd_f
        )
        all_parity = all_parity and parity

        def leg(seconds):
            return {
                "seconds": round(seconds, 4),
                "steps_per_sec": round(steps / seconds, 1),
                "cascades_per_sec": round(steps / seconds, 1),
            }

        modes[mode] = {
            "fused": leg(t_fused),
            "reference": leg(t_ref),
            "speedup": round(t_ref / t_fused, 2),
            "weight_parity": parity,
        }

    # Cores -> steps/sec scaling of the *sharded* schedule: per-cascade
    # gradients computed across workers, reduced in canonical order, one
    # mean-gradient step per shard.  Weights must be bit-identical across
    # every worker count (the determinism contract); the speedup baseline
    # is the same schedule at workers=1.
    scaling: dict[str, dict] = {}
    sharded_parity = True
    for mode in ("static", "dynamic"):
        warm = _build_model(extractor, mode, args.hdim, args.seed)
        RetinaTrainer(warm, epochs=1, random_state=0, workers=1,
                      shard_size=args.shard_size).fit(samples[:3])
        levels = []
        t_by_workers: dict[int, float] = {}
        state_w1 = None
        for w in args.workers:
            m = _build_model(extractor, mode, args.hdim, args.seed)
            t0 = time.perf_counter()
            RetinaTrainer(m, epochs=args.epochs, random_state=0, workers=w,
                          shard_size=args.shard_size).fit(samples)
            dt = time.perf_counter() - t0
            t_by_workers[w] = dt
            sd = m.state_dict()
            if state_w1 is None:
                state_w1 = sd
                par = True
            else:
                par = set(sd) == set(state_w1) and all(
                    np.array_equal(sd[k], state_w1[k]) for k in sd
                )
            sharded_parity = sharded_parity and par
            levels.append({"workers": w, "seconds": round(dt, 4),
                           "steps_per_sec": round(steps / dt, 1), "parity": par})
        t_base = t_by_workers[1]
        for entry in levels:
            entry["speedup_vs_serial"] = round(
                t_base / t_by_workers[entry["workers"]], 2
            )
        scaling[mode] = {"levels": levels}
    max_w = max(args.workers)
    floor_on = floor_enforceable(max_w)

    report = {
        "benchmark": "train_step",
        "config": {
            "users": args.users, "scale": args.scale, "hashtags": args.hashtags,
            "news": args.news, "seed": args.seed, "cascades": len(samples),
            "epochs": args.epochs, "hdim": args.hdim,
            "history_size": args.history_size, "tweet_top_k": args.tweet_top_k,
            "news_window": args.news_window,
            "user_feature_dim": extractor.user_feature_dim,
        },
        "steps_per_fit": steps,
        "modes": modes,
        "parity": all_parity,
        "scaling": {"modes": scaling, "cores": available_cores(),
                    "workers_sweep": args.workers,
                    "shard_size": args.shard_size,
                    "parallel_floor": args.min_parallel_speedup,
                    "parallel_floor_enforced": floor_on,
                    "parity": sharded_parity},
    }
    emit_report(report, args.json_out)

    if args.check:
        if not all_parity:
            print("FAIL: fused trained weights are not bit-identical to the "
                  "seed path", file=sys.stderr)
            return 1
        if not sharded_parity:
            print("FAIL: sharded trained weights differ across worker counts",
                  file=sys.stderr)
            return 1
        floors = {"static": args.min_speedup_static, "dynamic": args.min_speedup_dynamic}
        for mode, floor in floors.items():
            if modes[mode]["speedup"] < floor:
                print(f"FAIL: {mode} speedup {modes[mode]['speedup']}x "
                      f"< required {floor}x", file=sys.stderr)
                return 1
        for mode in scaling:
            top = next(e for e in scaling[mode]["levels"] if e["workers"] == max_w)
            if floor_on and top["speedup_vs_serial"] < args.min_parallel_speedup:
                print(f"FAIL: {mode} {max_w}-worker sharded speedup "
                      f"{top['speedup_vs_serial']}x < required "
                      f"{args.min_parallel_speedup}x", file=sys.stderr)
                return 1
        if not floor_on:
            print(f"note: parallel speedup floor skipped "
                  f"({available_cores()} core(s) < {max_w} workers)",
                  file=sys.stderr)
    return 0


if __name__ == "__main__":
    sys.exit(main())

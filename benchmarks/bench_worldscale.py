"""World-scale substrate benchmark: CSR graph + paged features at 10^4-10^6 users.

Sweeps streamed worlds over ``--users`` and records, per scale:

- **build_s** — streamed world construction (edge stream -> CSR freeze);
- **bfs_sources_per_s** — vectorised single-source BFS throughput
  (``distances_array_from``) over random sources;
- **serve_req_s** — feature-block requests/s through a *paged*
  :class:`~repro.features.store.FeatureStore` (per request: one
  ``peer_block`` over a candidate list plus on-demand history fills),
  i.e. the substrate work behind each serving prediction;
- **max_rss_kb** / **delta_rss_kb** — peak RSS of the leg, total and net
  of the interpreter baseline.

Each leg runs in its own subprocess so ``ru_maxrss`` (a process-lifetime
high-water mark) measures that leg alone.

A **parity** leg at 10^4 users pins the new substrate to the old one:

- CSR BFS distances and follower/followee sets bit-identical to networkx
  on the same graph (sampled sources/pairs);
- paged FeatureStore rows (history, doc-vec, peer blocks) bit-identical
  to the dense store over the same world and fitted text models;
- measures **dense_delta_kb**: the resident cost of the dense-era
  substrate (networkx DiGraph + materialised User/history objects +
  dense matrices) at 10^4 users, which linear-scales into the
  dense-projection RSS estimate for the larger legs.

``--check`` exits non-zero when any parity bit fails, or when a scale
leg at >= ``RSS_CHECK_MIN_USERS`` users exceeds ``--rss-fraction``
(default 0.25) of the dense projection.  (Below that scale the dense
substrate still fits comfortably, so the sublinearity floor is not
informative — parity is what CI's 10^4 smoke run gates.)
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

if __package__ in (None, ""):  # executed as a script: make `benchmarks` importable
    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))

from benchmarks.common import add_json_out, emit_report

PARITY_USERS = 10_000
RSS_CHECK_MIN_USERS = 50_000
SEED = 42
CUTOFF = 4


# --------------------------------------------------------------- leg helpers
def _maxrss_kb() -> int:
    from repro.obs import max_rss_kb

    return int(max_rss_kb() or 0)


def _build_world(n_users: int):
    from repro.data.stream import WorldStream, WorldStreamConfig

    cfg = WorldStreamConfig(n_users=n_users, seed=SEED)
    return WorldStream(cfg).build()


def _fit_text_stack(world, sample_users: int = 300):
    """Fit a small tf-idf/lexicon/Doc2Vec stack on sampled histories.

    The bench measures the *substrate* (paging, CSR, BFS), so the text
    models stay deliberately small; both stores in the parity leg share
    one fitted stack, which is what makes their rows comparable bit for
    bit.
    """
    from repro.text.doc2vec import Doc2Vec
    from repro.text.lexicon import HateLexicon
    from repro.text.tfidf import TfidfVectorizer

    rng = np.random.default_rng(SEED)
    uids = rng.choice(len(world.user_ids), size=min(sample_users, len(world.user_ids)), replace=False)
    texts = [t.text for uid in sorted(uids) for t in world.history.get(int(uid), [])]
    vec = TfidfVectorizer(max_features=48).fit(texts)
    d2v = Doc2Vec(vector_size=12, epochs=1, random_state=SEED).fit(texts[:500])
    return vec, HateLexicon(), d2v


def _make_store(world, stack, storage: str):
    from repro.features.store import FeatureStore

    vec, lex, d2v = stack
    return FeatureStore(
        world,
        text_vectorizer=vec,
        lexicon=lex,
        doc2vec=d2v,
        history_size=30,
        doc2vec_dim=d2v.vector_size,
        storage=storage,
    )


def _serve_requests(world, store, n_requests: int, candidates: int, rng) -> float:
    """Feature-block request loop; returns requests/s."""
    n = len(world.user_ids)
    roots = rng.integers(0, n, size=n_requests)
    t0 = time.perf_counter()
    for root in roots:
        cand = rng.integers(0, n, size=candidates)
        store.peer_block(int(root), cand, cutoff=CUTOFF)
        store.history_rows(cand[:8])
    return n_requests / (time.perf_counter() - t0)


# ----------------------------------------------------------------- scale leg
def run_scale_leg(n_users: int, bfs_sources: int, serve_requests: int) -> dict:
    baseline_kb = _maxrss_kb()
    rng = np.random.default_rng(SEED + 1)

    t0 = time.perf_counter()
    world = _build_world(n_users)
    build_s = time.perf_counter() - t0

    sources = rng.integers(0, n_users, size=bfs_sources)
    t0 = time.perf_counter()
    for s in sources:
        world.network.distances_array_from(int(s), CUTOFF)
    bfs_s = time.perf_counter() - t0

    stack = _fit_text_stack(world)
    store = _make_store(world, stack, "paged")
    serve_req_s = _serve_requests(world, store, serve_requests, 32, rng)
    max_rss = _maxrss_kb()
    return {
        "leg": "scale",
        "n_users": n_users,
        "n_edges": int(world.network.n_follows),
        "build_s": round(build_s, 3),
        "bfs_sources_per_s": round(bfs_sources / bfs_s, 1),
        "bfs_ms_per_source": round(1000.0 * bfs_s / bfs_sources, 3),
        "serve_req_s": round(serve_req_s, 1),
        "page_stats": dict(store.history.stats),
        "resident_pages": store.history.resident_pages + store.doc_vecs.resident_pages,
        "baseline_rss_kb": baseline_kb,
        "max_rss_kb": max_rss,
        "delta_rss_kb": max_rss - baseline_kb,
    }


# ---------------------------------------------------------------- parity leg
def run_parity_leg(bfs_sources: int) -> dict:
    import networkx as nx

    baseline_kb = _maxrss_kb()
    rng = np.random.default_rng(SEED + 2)
    world = _build_world(PARITY_USERS)
    net = world.network
    n = PARITY_USERS

    # --- graph parity: CSR vs networkx over the identical edge set.
    g = net.to_networkx()
    sample = rng.integers(0, n, size=bfs_sources)
    dist_ok = True
    for s in sample:
        ours = net.distances_from(int(s), CUTOFF)
        ref = nx.single_source_shortest_path_length(g, int(s), cutoff=CUTOFF)
        if ours != dict(ref):
            dist_ok = False
            break
    # Followers compare order-exact (the RNG-parity contract: cascade
    # simulation iterates them).  Followees compare as sets — the CSR keeps
    # stream-emission order while a successor-first networkx rebuild
    # re-inserts edges in follower order, so only membership is shared.
    nbr_ok = all(
        list(net.followers(int(u))) == list(g.successors(int(u)))
        and sorted(net.followees(int(u))) == sorted(g.predecessors(int(u)))
        for u in rng.integers(0, n, size=200)
    )
    pair_ok = True
    for s, t in zip(rng.integers(0, n, size=100), rng.integers(0, n, size=100)):
        try:
            ref_spl = nx.shortest_path_length(g, int(s), int(t))
            ref_spl = ref_spl if ref_spl <= CUTOFF else CUTOFF + 1
        except nx.NetworkXNoPath:
            ref_spl = CUTOFF + 1
        if net.shortest_path_length(int(s), int(t), cutoff=CUTOFF) != ref_spl:
            pair_ok = False
            break

    # --- feature parity: paged store vs dense store, same world + models.
    stack = _fit_text_stack(world)
    dense = _make_store(world, stack, "dense")
    paged = _make_store(world, stack, "paged")
    feat_ok = True
    for _ in range(20):
        root = int(rng.integers(0, n))
        cand = rng.integers(0, n, size=40)
        if not np.array_equal(
            dense.peer_block(root, cand, cutoff=CUTOFF),
            paged.peer_block(root, cand, cutoff=CUTOFF),
        ):
            feat_ok = False
            break
        if not np.array_equal(dense.history_rows(cand), paged.history_rows(cand)):
            feat_ok = False
            break
        if not np.array_equal(dense.doc_vec(root), paged.doc_vec(root)):
            feat_ok = False
            break

    # --- dense-substrate resident cost at 10^4 users (for RSS projection):
    # what the pre-CSR/pre-paging stack kept resident — the networkx graph
    # (already built above), every User object, every history tweet list,
    # and touched dense matrices (`dense` filled lazily; force-touch all).
    users_resident = {uid: world.users[uid] for uid in range(n)}
    hist_resident = {uid: world.history.get(uid) for uid in range(n)}
    dense.history[:] = 1.0
    dense.doc_vecs[:] = 1.0
    dense_peak_kb = _maxrss_kb()
    del users_resident, hist_resident

    return {
        "leg": "parity",
        "n_users": n,
        "distances_vs_networkx": dist_ok,
        "neighbors_vs_networkx": nbr_ok,
        "pair_spl_vs_networkx": pair_ok,
        "paged_vs_dense_features": feat_ok,
        "parity_ok": bool(dist_ok and nbr_ok and pair_ok and feat_ok),
        "baseline_rss_kb": baseline_kb,
        "dense_peak_kb": dense_peak_kb,
        "dense_delta_kb": dense_peak_kb - baseline_kb,
    }


# -------------------------------------------------------------- orchestration
def _run_leg_subprocess(argv: list[str]) -> dict:
    """Run one leg in a fresh interpreter; its stdout is the leg JSON."""
    with tempfile.NamedTemporaryFile(mode="r", suffix=".json") as tmp:
        cmd = [sys.executable, str(Path(__file__).resolve()), *argv, "--leg-out", tmp.name]
        proc = subprocess.run(cmd, capture_output=True, text=True)
        if proc.returncode != 0:
            raise RuntimeError(
                f"leg {argv} failed (rc={proc.returncode}):\n{proc.stderr[-2000:]}"
            )
        return json.loads(Path(tmp.name).read_text())


def parse_users(spec: str) -> list[int]:
    out = []
    for part in spec.split(","):
        part = part.strip().lower().replace("_", "")
        if part:
            out.append(int(float(part)))
    if not out:
        raise argparse.ArgumentTypeError(f"no user counts in {spec!r}")
    return out


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="world-scale substrate benchmark")
    parser.add_argument(
        "--users",
        type=parse_users,
        default=[10_000, 100_000],
        metavar="LIST",
        help="comma-separated world sizes to sweep (default 10000,100000; "
        "the full sweep of the roadmap is 1e4,1e5,1e6)",
    )
    parser.add_argument("--check", action="store_true", help="gate parity + RSS floors")
    parser.add_argument("--bfs-sources", type=int, default=50)
    parser.add_argument("--serve-requests", type=int, default=120)
    parser.add_argument(
        "--rss-fraction",
        type=float,
        default=0.25,
        help="scale-leg delta RSS must stay under this fraction of the "
        "dense projection (checked at >= %d users)" % RSS_CHECK_MIN_USERS,
    )
    parser.add_argument("--leg", choices=("scale", "parity"), default=None, help=argparse.SUPPRESS)
    parser.add_argument("--leg-users", type=int, default=None, help=argparse.SUPPRESS)
    parser.add_argument("--leg-out", default=None, help=argparse.SUPPRESS)
    add_json_out(parser)
    args = parser.parse_args(argv)

    # ---- leg mode (invoked in a subprocess by the orchestrator).
    if args.leg:
        if args.leg == "scale":
            result = run_scale_leg(args.leg_users, args.bfs_sources, args.serve_requests)
        else:
            result = run_parity_leg(args.bfs_sources)
        Path(args.leg_out).write_text(json.dumps(result))
        return 0

    # ---- orchestrator.
    parity = _run_leg_subprocess(
        ["--leg", "parity", "--bfs-sources", str(args.bfs_sources)]
    )
    legs = []
    for n_users in args.users:
        legs.append(
            _run_leg_subprocess(
                [
                    "--leg",
                    "scale",
                    "--leg-users",
                    str(n_users),
                    "--bfs-sources",
                    str(args.bfs_sources),
                    "--serve-requests",
                    str(args.serve_requests),
                ]
            )
        )

    dense_delta_kb = parity["dense_delta_kb"]
    checks = {"parity_ok": parity["parity_ok"]}
    for leg in legs:
        projection_kb = int(dense_delta_kb * leg["n_users"] / PARITY_USERS)
        leg["dense_projection_kb"] = projection_kb
        leg["rss_vs_dense_projection"] = (
            round(leg["delta_rss_kb"] / projection_kb, 4) if projection_kb else None
        )
        if leg["n_users"] >= RSS_CHECK_MIN_USERS and projection_kb:
            checks[f"rss_sublinear_{leg['n_users']}"] = bool(
                leg["delta_rss_kb"] < args.rss_fraction * projection_kb
            )

    ok = all(checks.values())
    report = {
        "benchmark": "worldscale",
        "parity": parity,
        "scales": legs,
        "checks": checks,
        "check_ok": ok,
    }
    emit_report(report, args.json_out)
    if args.check and not ok:
        print("worldscale check FAILED", file=sys.stderr)
        return 1
    return 0


if __name__ == "__main__":
    sys.exit(main())

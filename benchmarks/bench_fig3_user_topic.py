"""Figure 3: per-user hatefulness depends on the topic.

Prints a heat-map-style matrix of hate ratios per (active hateful user,
hashtag) and asserts strong within-user variation across topics.
"""

import numpy as np

from benchmarks.common import get_dataset, run_once
from repro.analysis import user_topic_hate_matrix


def _matrix():
    return user_topic_hate_matrix(get_dataset().world, n_users=12)


def test_fig3_user_topic_dependence(benchmark):
    result = run_once(benchmark, _matrix)
    matrix = result["matrix"]
    tags = [t[:10] for t in result["hashtags"]]
    print()
    print("Fig 3 — hate ratio per (user, hashtag); '.' = never tweeted")
    print("user     | " + " ".join(f"{t:>10}" for t in tags))
    for uid, row in zip(result["users"], matrix):
        cells = " ".join(
            f"{'.':>10}" if np.isnan(v) else f"{v:10.2f}" for v in row
        )
        print(f"u{uid:<7} | {cells}")
    spreads = []
    for row in matrix:
        vals = row[~np.isnan(row)]
        if len(vals) >= 2:
            spreads.append(vals.max() - vals.min())
    # Users hateful on one topic are not uniformly hateful on all.
    assert spreads and np.max(spreads) > 0.3


if __name__ == "__main__":
    import sys
    from pathlib import Path

    sys.path.insert(0, str(Path(__file__).resolve().parent.parent))
    from benchmarks.common import standalone_main

    sys.exit(standalone_main(_matrix, "fig3_user_topic"))

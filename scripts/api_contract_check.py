"""API v1 contract check: every documented endpoint, schema-validated.

Trains a tiny retina + hategen fixture, saves bundles into a temp
registry (two retina versions + a ``prod`` alias), then drives every
documented v1 endpoint through :class:`repro.client.ServingClient` —
whose responses are parsed and validated by
:mod:`repro.serving.schemas`, so a drift between server and schema
fails loudly.  Also checks the legacy deprecation shim (same bytes +
``Deprecation`` header) and the structured-error contract.

The full endpoint pass runs against the asyncio
:class:`AsyncPredictionServer` (the only front end since the threaded
one's retirement; ``PredictionServer`` is an alias).  The deterministic
routes are then byte-compared across two fresh server + engine
instances — responses must not depend on server lifecycle or engine
state.  A final pass pins the admission-control contract: a request
shed by quota returns 429 with ``Retry-After`` and
``Connection: close``.

The observability pass pins the telemetry surface: the legacy
``/metrics`` JSON shape must stay byte-compatible with pre-v1, the
Prometheus exposition must parse line-by-line, inbound ``X-Trace-Id``
headers must be echoed, and a forced trace's span tree must be
retrievable (``--trace-out PATH`` archives it as a CI artifact).

Run:  PYTHONPATH=src python scripts/api_contract_check.py
Exit code 0 = contract holds.
"""

from __future__ import annotations

import argparse
import http.client
import json
import re
import sys
import tempfile
from pathlib import Path

import numpy as np

# One exposition line: a comment, or ``name{labels} value``.  Label values
# may themselves contain ``}`` (route templates like "/v1/models/{name}"),
# hence the greedy group.
PROM_LINE_RE = re.compile(r"^(#.*|[a-zA-Z_:][a-zA-Z0-9_:]*(\{.*\})? [^ ]+)$")

CHECKS: list[str] = []


def check(name: str, ok: bool, detail: str = "") -> None:
    CHECKS.append(name)
    status = "ok" if ok else "FAIL"
    print(f"  [{status}] {name}" + (f" — {detail}" if detail and not ok else ""))
    if not ok:
        sys.exit(f"contract violation: {name} {detail}")


def build_registry(store: str):
    """Two retina versions + one hategen bundle + a 'prod' alias."""
    from repro.core.hategen import HateGenFeatureExtractor, HateGenerationPipeline
    from repro.core.retina import RETINA, RetinaFeatureExtractor, RetinaTrainer
    from repro.data import HateDiffusionDataset, SyntheticWorldConfig
    from repro.serving import HateGenBundle, ModelRegistry, RetinaBundle

    config = SyntheticWorldConfig(scale=0.01, n_hashtags=5, n_users=120, n_news=300, seed=3)
    dataset = HateDiffusionDataset.generate(config)
    train, test = dataset.cascade_split(random_state=0)
    extractor = RetinaFeatureExtractor(dataset.world, random_state=0).fit(train)
    edges = RetinaTrainer.default_interval_edges()
    tr = extractor.build_samples(train[:30], interval_edges_hours=edges, random_state=0)
    te = extractor.build_samples(test[:4], interval_edges_hours=edges, random_state=1)
    model = RETINA(
        user_dim=extractor.user_feature_dim,
        tweet_dim=extractor.news_doc2vec_dim,
        news_dim=extractor.news_doc2vec_dim,
        mode="static",
        random_state=0,
    )
    trainer = RetinaTrainer(model, epochs=1, random_state=0).fit(tr)

    registry = ModelRegistry(store)
    bundle = RetinaBundle(model=model, extractor=extractor, world_config=config)
    registry.save_bundle("retina", bundle)
    registry.save_bundle("retina", bundle)  # v2: reload target
    registry.set_alias("prod", "retina", version=1)

    h_train, h_test = dataset.hategen_split(random_state=0)
    h_extractor = HateGenFeatureExtractor(dataset.world, doc2vec_epochs=4, random_state=0)
    pipeline = HateGenerationPipeline(h_extractor, random_state=0)
    X_tr, y_tr, X_te, y_te = pipeline.prepare(h_train, h_test)
    pipeline.run("logreg", "ds", X_tr, y_tr, X_te, y_te)
    registry.save_bundle(
        "hategen",
        HateGenBundle(
            model=pipeline.fitted_model_,
            transforms=pipeline.fitted_transforms_,
            extractor=h_extractor,
            world_config=config,
            model_key="logreg",
            variant="ds",
        ),
    )
    return registry, trainer, te, h_test


def raw(server, method, path, body=None, headers=None):
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        payload = json.dumps(body).encode() if body is not None else None
        hdrs = {"Content-Type": "application/json", **(headers or {})}
        conn.request(method, path, payload, hdrs)
        resp = conn.getresponse()
        data = resp.read()
        return resp.status, dict(resp.headers), json.loads(data) if data else {}
    finally:
        conn.close()


def raw_text(server, path):
    """GET returning the undecoded body (for non-JSON responses)."""
    host, port = server.address
    conn = http.client.HTTPConnection(host, port, timeout=30)
    try:
        conn.request("GET", path)
        resp = conn.getresponse()
        return resp.status, dict(resp.headers), resp.read().decode("utf-8")
    finally:
        conn.close()


def drive_contract(server, label, registry, trainer, te, h_test,
                   trace_out=None):
    """The full v1 endpoint pass against one live front end."""
    from repro.client import ServingClient, ServingError
    from repro.serving.schemas import (
        BatchPredictResponse,
        HateGenResponse,
        HealthResponse,
        ModelsResponse,
        ReloadResponse,
        RetweeterResponse,
        VersionsResponse,
    )

    def check(name, ok, detail=""):
        globals()["check"](f"[{label}] {name}", ok, detail)

    host, port = server.address
    print(f"{label} server up at {server.url}; driving the v1 contract ...")
    # strict=True: every response body re-validated field-by-field
    # against repro.serving.schemas, not just constructed.
    with ServingClient(host=host, port=port, retries=1, strict=True) as client:
        # ---- GET /v1/healthz --------------------------------------
        health = client.health()
        check("GET /v1/healthz", isinstance(health, HealthResponse)
              and health.status == "ok" and health.api == "v1")

        # ---- GET /v1/metrics --------------------------------------
        metrics = client.metrics()
        check("GET /v1/metrics", "retweeters" in metrics
              and "caches" in metrics["retweeters"])

        # ---- GET /v1/models ---------------------------------------
        models = client.models()
        names = {m.name: m for m in models.models}
        check("GET /v1/models", isinstance(models, ModelsResponse)
              and set(names) == {"retina", "hategen"}
              and names["retina"].latest == 2
              and names["retina"].aliases.get("prod") == 1)

        # ---- GET /v1/models/{name} (+alias) -----------------------
        manifest = client.model("retina")
        check("GET /v1/models/retina", manifest["kind"] == "retina"
              and manifest["version"] == 2)
        check("GET /v1/models/{alias}", client.model("prod")["version"] == 1)

        # ---- GET /v1/models/{name}/versions -----------------------
        versions = client.versions("retina")
        check("GET /v1/models/retina/versions",
              isinstance(versions, VersionsResponse)
              and versions.versions == [1, 2] and versions.latest == 2)

        # ---- POST /v1/predict/retweeters --------------------------
        sample = te[0]
        cid = sample.candidate_set.cascade.root.tweet_id
        users = list(sample.candidate_set.users)
        resp = client.predict_retweeters(cid, user_ids=users, top_k=3)
        expected = trainer.predict_static_scores(sample)
        got = np.array([resp.scores[str(u)] for u in users])
        check("POST /v1/predict/retweeters",
              isinstance(resp, RetweeterResponse)
              and len(resp.ranking) == 3
              and bool(np.allclose(got, expected, atol=1e-12)),
              "served scores diverge from in-process trainer")

        # ---- POST /v1/predict/hategen -----------------------------
        t = h_test[0]
        hresp = client.predict_hategen(t.user_id, t.hashtag, t.timestamp)
        check("POST /v1/predict/hategen", isinstance(hresp, HateGenResponse)
              and 0.0 <= hresp.score <= 1.0 and hresp.label in (0, 1))

        # ---- POST /v1/batch/{kind} --------------------------------
        batch = client.predict_many(
            "retweeters",
            [{"cascade_id": cid, "user_ids": users[:3]},
             {"cascade_id": -1},
             {"cascade_id": cid, "user_ids": users[3:6]}],
        )
        check("POST /v1/batch/retweeters",
              isinstance(batch, BatchPredictResponse)
              and batch.n_ok == 2 and batch.n_errors == 1
              and batch.results[1].status == 404)

        # ---- POST /v1/models/{name}/reload ------------------------
        reload_resp = client.reload("retina", version=1)
        check("POST /v1/models/retina/reload",
              isinstance(reload_resp, ReloadResponse)
              and reload_resp.version == 1
              and reload_resp.previous_version == 2)
        resp2 = client.predict_retweeters(cid, user_ids=users)
        got2 = np.array([resp2.scores[str(u)] for u in users])
        check("reload preserves scores (same weights)",
              bool(np.allclose(got2, expected, atol=1e-12)))

        # ---- structured errors ------------------------------------
        try:
            client.predict_retweeters(10**9)
        except ServingError as exc:
            check("structured 404", exc.status == 404
                  and exc.code == "not_found" and exc.field == "cascade_id")
        else:
            check("structured 404", False, "expected a ServingError")
        try:
            client.model("ghost")
        except ServingError as exc:
            check("RegistryError -> 404", exc.status == 404
                  and exc.code == "model_not_found")
        else:
            check("RegistryError -> 404", False, "expected a ServingError")

    # ---- deprecation shim -----------------------------------------
    payload = {"cascade_id": cid, "user_ids": users}
    s_old, h_old, legacy = raw(server, "POST", "/predict/retweeters", payload)
    s_new, _, v1 = raw(server, "POST", "/v1/predict/retweeters", payload)
    check("legacy shim byte-identity", s_old == s_new == 200 and legacy == v1)
    check("legacy Deprecation header", h_old.get("Deprecation") == "true"
          and "successor-version" in h_old.get("Link", ""))
    status, headers, body = raw(server, "GET", "/healthz")
    check("legacy /healthz", status == 200
          and headers.get("Deprecation") == "true")

    # ---- 413 before body read -------------------------------------
    conn = http.client.HTTPConnection(host, port, timeout=10)
    try:
        conn.putrequest("POST", "/v1/predict/retweeters")
        conn.putheader("Content-Length", str(64 * 1024 * 1024))
        conn.endheaders()
        resp = conn.getresponse()
        body = json.loads(resp.read())
        check("413 before body read", resp.status == 413
              and body["error"]["code"] == "body_too_large"
              and resp.headers.get("Connection") == "close")
    finally:
        conn.close()

    # ---- observability: trace-id echo + span tree -----------------
    # A forced trace id must be honoured even with sampling off,
    # echoed back, and its complete span tree retrievable.
    forced_id = f"contractcheck-{label}"
    status, hdrs, _ = raw(
        server, "POST", "/v1/predict/retweeters", payload,
        headers={"X-Trace-Id": forced_id},
    )
    check("X-Trace-Id echoed", status == 200
          and hdrs.get("X-Trace-Id") == forced_id)
    status, _, tree = raw(server, "GET", f"/v1/traces/{forced_id}")
    span_names = {sp["name"] for sp in tree.get("spans", ())}
    check("GET /v1/traces/{id} span tree", status == 200
          and tree.get("trace_id") == forced_id
          and tree.get("n_spans", 0) >= 5
          and {"http.request", "handler.parse", "engine.queue_wait",
               "model.forward", "http.serialize"} <= span_names,
          f"got spans {sorted(span_names)}")
    if trace_out:
        Path(trace_out).write_text(json.dumps(tree, indent=2) + "\n")
        print(f"  archived sample trace -> {trace_out}")

    # ---- observability: metrics views -----------------------------
    # Per-route status counters need a GET error on record too.
    raw(server, "GET", "/v1/no/such/route")
    s_v1, _, v1m = raw(server, "GET", "/v1/metrics")
    pred = v1m.get("retweeters", {})
    check("/v1/metrics windowed throughput", s_v1 == 200
          and "requests_per_s_window" in pred and "window_s" in pred)
    responses = v1m.get("http", {}).get("responses", {})
    check("/v1/metrics per-route status counters",
          any(key.endswith("|200") for key in responses)
          and any(key.startswith("other|GET|404") for key in responses),
          f"got counter keys {sorted(responses)}")
    s_old, _, legacy_m = raw(server, "GET", "/metrics")
    check("legacy /metrics shape unchanged", s_old == 200
          and "http" not in legacy_m
          and set(legacy_m) == set(v1m) - {"http"})
    s_prom, prom_hdrs, text = raw_text(
        server, "/v1/metrics?format=prometheus"
    )
    lines = [ln for ln in text.splitlines() if ln]
    bad = [ln for ln in lines if not PROM_LINE_RE.match(ln)]
    check("Prometheus exposition parses", s_prom == 200
          and prom_hdrs.get("Content-Type", "").startswith(
              "text/plain; version=0.0.4")
          and lines and not bad,
          f"unparseable lines: {bad[:3]}")
    check("Prometheus carries serving families",
          any(ln.startswith("repro_http_requests_total{") for ln in lines)
          and any("_bucket{" in ln for ln in lines))
    return cid, users


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description="serving API v1 contract check")
    parser.add_argument(
        "--trace-out",
        metavar="PATH",
        default=None,
        help="archive the forced sample trace's span tree as JSON at PATH",
    )
    args = parser.parse_args(argv)

    from repro.serving import (
        AdmissionConfig,
        AdmissionController,
        AsyncPredictionServer,
        PredictionServer,
        engine_from_store,
    )

    # The retired threaded front end's name must stay importable and
    # resolve to the asyncio server — callers constructed against it
    # keep working unchanged.
    check("PredictionServer aliases the async server",
          PredictionServer is AsyncPredictionServer)

    print("building fixture registry (tiny world, 2 retina versions + hategen) ...")
    with tempfile.TemporaryDirectory() as store:
        registry, trainer, te, h_test = build_registry(store)

        # ---- full endpoint pass -------------------------------------------
        engine = engine_from_store(registry, max_wait_ms=1.0)
        with AsyncPredictionServer(engine, port=0, registry=registry) as server:
            cid, users = drive_contract(
                server, "async", registry, trainer, te, h_test,
                trace_out=args.trace_out,
            )

        # ---- response byte stability --------------------------------------
        # The deterministic routes must serve the exact same bytes from
        # two independent server + engine instances: responses cannot
        # depend on server lifecycle, engine state, or accumulated load.
        probes = [
            ("POST", "/v1/predict/retweeters",
             {"cascade_id": cid, "user_ids": users}),
            ("POST", "/v1/predict/hategen",
             {"user_id": h_test[0].user_id, "hashtag": h_test[0].hashtag,
              "timestamp": h_test[0].timestamp}),
            ("GET", "/v1/models", None),
            ("GET", "/v1/models/retina/versions", None),
            ("POST", "/v1/predict/nothing", {"a": 1}),  # 404 shaping too
        ]
        bodies = {}
        for label in ("first", "second"):
            engine = engine_from_store(registry, max_wait_ms=1.0)
            got = []
            with AsyncPredictionServer(
                engine, port=0, registry=registry
            ) as server:
                host, port = server.address
                for method, path, payload in probes:
                    conn = http.client.HTTPConnection(host, port, timeout=30)
                    try:
                        body = (json.dumps(payload).encode()
                                if payload is not None else None)
                        conn.request(method, path, body,
                                     {"Content-Type": "application/json"})
                        resp = conn.getresponse()
                        got.append((path, resp.status, resp.read()))
                    finally:
                        conn.close()
            bodies[label] = got
        mismatch = [
            (a[0], a[1:], b[1:])
            for a, b in zip(bodies["first"], bodies["second"])
            if a != b
        ]
        check("response byte stability", not mismatch,
              f"diverging routes: {mismatch[:2]}")

        # ---- admission contract -------------------------------------------
        # A quota of ~one request: the second POST must shed with 429,
        # Retry-After, and Connection: close.
        engine = engine_from_store(registry, max_wait_ms=1.0)
        admission = AdmissionController(
            AdmissionConfig(route_rps=0.001, route_burst=1.0)
        )
        with AsyncPredictionServer(engine, port=0, registry=registry,
                                   admission=admission) as server:
            payload = {"cascade_id": cid, "user_ids": users}
            s1, _, _ = raw(server, "POST", "/v1/predict/retweeters", payload)
            s2, hdrs, body = raw(
                server, "POST", "/v1/predict/retweeters", payload
            )
        check("429 shed contract",
              s1 == 200 and s2 == 429
              and int(hdrs.get("Retry-After", 0)) >= 1
              and hdrs.get("Connection") == "close"
              and body["error"]["code"] == "shed_route_quota",
              f"got {s2} {dict(hdrs)} {body}")

    print(f"\napi-contract: all {len(CHECKS)} checks passed")
    return 0


if __name__ == "__main__":
    sys.exit(main())

"""Chaos gate for CI: seeded soak + kill-and-resume training recovery.

Two legs, both fully deterministic:

1. **Soak** — runs ``benchmarks/bench_chaos_soak.py --smoke --check`` in a
   subprocess (fresh metrics registry, fresh chaos state) and archives its
   JSON report.  The soak's own gates cover the serving stack: every
   request answered or typed-error'd under injected worker crashes /
   connection resets, zero hangs, pool respawned to full width, paged I/O
   and registry corruption surfaced typed, bit-identical scores once
   chaos is off.

2. **Kill-and-resume** — a child process trains a sharded RETINA with
   per-epoch checkpoints and is SIGKILLed the moment the first checkpoint
   lands (mid-fit, no cleanup).  The parent resumes from the checkpoint
   directory — with a *different* worker count, exercising the sharded
   schedule's worker-count invariance — and the resumed weights must be
   bit-identical to an uninterrupted run.

Run:  PYTHONPATH=src python scripts/chaos_check.py
Exit code 0 = every gate holds.
"""

from __future__ import annotations

import argparse
import json
import os
import signal
import subprocess
import sys
import tempfile
import time
from pathlib import Path

import numpy as np

REPO_ROOT = Path(__file__).resolve().parent.parent
sys.path.insert(0, str(REPO_ROOT / "src"))

from repro.core.retina import RETINA, RetinaFeatureExtractor, RetinaTrainer  # noqa: E402
from repro.data import HateDiffusionDataset, SyntheticWorldConfig  # noqa: E402

EPOCHS = 6
KILL_WORKERS = 2    # worker count in the process that gets SIGKILLed
RESUME_WORKERS = 1  # resume with a different count: same weights required


def _samples():
    cfg = SyntheticWorldConfig(
        scale=0.01, n_hashtags=5, n_users=90, n_news=200, seed=11
    )
    ds = HateDiffusionDataset.generate(cfg)
    train, _ = ds.cascade_split(random_state=0)
    extractor = RetinaFeatureExtractor(ds.world, random_state=0).fit(train)
    edges = RetinaTrainer.default_interval_edges()
    return extractor, extractor.build_samples(
        train[:24], interval_edges_hours=edges, random_state=0
    )


def _trainer(extractor, workers: int, checkpoint_dir: str | None):
    model = RETINA(
        user_dim=extractor.user_feature_dim,
        tweet_dim=extractor.news_doc2vec_dim,
        news_dim=extractor.news_doc2vec_dim,
        mode="static",
        random_state=0,
    )
    return RetinaTrainer(
        model,
        epochs=EPOCHS,
        random_state=0,
        workers=workers,
        shard_size=4,
        checkpoint_dir=checkpoint_dir,
    )


def _train_child(checkpoint_dir: str) -> int:
    """Child mode: train with checkpoints until killed (or done)."""
    extractor, samples = _samples()
    _trainer(extractor, KILL_WORKERS, checkpoint_dir).fit(samples)
    return 0


def _shm_segments() -> set[Path]:
    return set(Path("/dev/shm").glob("repro_par_*")) if Path("/dev/shm").is_dir() else set()


def _kill_and_resume_leg() -> dict:
    shm_before = _shm_segments()
    with tempfile.TemporaryDirectory() as ckpt_dir:
        checkpoint = Path(ckpt_dir) / "checkpoint.npz"
        env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
        # Own session: SIGKILLing the *group* takes the child's sharded-pool
        # workers with it — orphans would idle forever on their task queues
        # (and hold any inherited pipes open).
        child = subprocess.Popen(
            [sys.executable, __file__, "--train-child", ckpt_dir],
            env=env,
            start_new_session=True,
        )
        # SIGKILL the instant the first checkpoint lands: mid-fit, mid-epoch
        # bookkeeping, no atexit, no cleanup.
        deadline = time.monotonic() + 600
        killed_mid_fit = False
        while time.monotonic() < deadline:
            if checkpoint.exists():
                os.killpg(child.pid, signal.SIGKILL)
                killed_mid_fit = True
                break
            if child.poll() is not None:
                break
            time.sleep(0.05)
        child.wait(timeout=60)
        # SIGKILL takes the child's resource tracker with it, so its shm
        # arena can't clean itself up — sweep what the kill orphaned.
        for leaked in _shm_segments() - shm_before:
            leaked.unlink(missing_ok=True)
        if not killed_mid_fit:
            return {
                "killed_mid_fit": False,
                "resumed_epoch": None,
                "bit_identical": False,
            }
        with np.load(checkpoint, allow_pickle=False) as data:
            killed_at_epoch = int(data["epoch"])

        extractor, samples = _samples()
        resumed = _trainer(extractor, RESUME_WORKERS, ckpt_dir)
        resumed.fit(samples)

    baseline = _trainer(extractor, RESUME_WORKERS, None)
    baseline.fit(samples)
    base_state = baseline.model.state_dict()
    res_state = resumed.model.state_dict()
    bit_identical = set(base_state) == set(res_state) and all(
        np.array_equal(base_state[k], res_state[k]) for k in base_state
    )
    return {
        "killed_mid_fit": True,
        "killed_after_epoch": killed_at_epoch,
        "kill_workers": KILL_WORKERS,
        "resume_workers": RESUME_WORKERS,
        "epochs": EPOCHS,
        "bit_identical": bit_identical,
    }


def _soak_leg(json_out: str) -> dict:
    cmd = [
        sys.executable,
        str(REPO_ROOT / "benchmarks" / "bench_chaos_soak.py"),
        "--smoke",
        "--check",
        "--json-out",
        json_out,
    ]
    env = dict(os.environ, PYTHONPATH=str(REPO_ROOT / "src"))
    proc = subprocess.run(cmd, env=env, capture_output=True, text=True)
    if proc.stderr:
        print(proc.stderr, file=sys.stderr, end="")
    gates = {}
    try:
        gates = json.loads(Path(json_out).read_text())["results"]["gates"]
    except (OSError, KeyError, json.JSONDecodeError):
        pass
    return {"exit_code": proc.returncode, "ok": proc.returncode == 0,
            "gates": gates, "report": json_out}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--train-child", metavar="DIR", default=None,
                        help=argparse.SUPPRESS)  # internal: the killed child
    parser.add_argument("--soak-json", default="BENCH_chaos_soak.json",
                        help="where the soak leg archives its JSON report")
    parser.add_argument("--skip-soak", action="store_true",
                        help="run only the kill-and-resume leg")
    args = parser.parse_args(argv)
    if args.train_child:
        return _train_child(args.train_child)

    summary: dict = {}
    ok = True
    if not args.skip_soak:
        print("== chaos soak (seeded, --check) ==", flush=True)
        summary["soak"] = _soak_leg(args.soak_json)
        ok &= summary["soak"]["ok"]

    print("== kill-and-resume training recovery ==", flush=True)
    leg = _kill_and_resume_leg()
    summary["kill_and_resume"] = leg
    ok &= leg["killed_mid_fit"] and leg["bit_identical"]

    print(json.dumps(summary, indent=2))
    if not ok:
        print("FAIL: chaos check gate(s) failed", file=sys.stderr)
        return 1
    print("chaos check: all gates hold")
    return 0


if __name__ == "__main__":
    signal.signal(signal.SIGINT, signal.SIG_DFL)
    sys.exit(main())

"""Tracked shared-memory arenas for zero-copy ndarray transport.

A :class:`ShmArena` owns one ``multiprocessing.shared_memory`` segment and
hands out 64-byte-aligned ndarray views of it.  The intended pattern is:

1. the parent allocates output arrays in an arena,
2. forks a :class:`~repro.parallel.pool.WorkerPool` (the mapping is
   inherited, so workers see the very same pages — no name-based attach,
   no pickling),
3. workers write their partition of the result into the views,
4. the parent consumes the arrays and unlinks the arena in a ``finally``.

Segment names are registered in a module-level set so tests (and operators)
can prove nothing leaked: :func:`live_segments` must be empty after any
normal shutdown *and* after a worker crash — crash cleanup is the caller's
``finally`` block, which this module makes sufficient because only the
creating parent ever unlinks.  A best-effort ``atexit`` sweep backstops
interpreter-exit paths that skipped teardown.
"""

from __future__ import annotations

import atexit
import os
import sys
import threading
from multiprocessing import shared_memory

import numpy as np

__all__ = ["ShmArena", "live_segments"]

_PREFIX = "repro_par_"
_ALIGN = 64

_live_lock = threading.Lock()
_live: dict[str, shared_memory.SharedMemory] = {}
#: Segments already unlinked whose mapping must outlive caller-held views
#: (closing under a live ndarray view would turn the next access into a
#: segfault).  Swept on every release and at interpreter exit.
_deferred: list[tuple[shared_memory.SharedMemory, list[np.ndarray]]] = []


def live_segments() -> list[str]:
    """Names of arena segments this process created and has not unlinked."""
    with _live_lock:
        return sorted(_live)


def _views_still_held(views: list[np.ndarray]) -> bool:
    """Whether any handed-out view has references beyond our bookkeeping."""
    for i in range(len(views)):
        # Baseline references: the ``views`` list entry + getrefcount's own
        # argument binding = 2.  (Caller sub-views keep the root view alive
        # through their ``.base`` chain, so they are counted too.)
        if sys.getrefcount(views[i]) > 2:
            return True
    return False


def _sweep_deferred_locked() -> None:
    keep = []
    for shm, views in _deferred:
        if _views_still_held(views):
            keep.append((shm, views))
        else:
            shm.close()
    _deferred[:] = keep


def _sweep() -> None:  # pragma: no cover - interpreter-exit safety net
    with _live_lock:
        leftovers = list(_live.values())
        _live.clear()
        deferred = [shm for shm, _ in _deferred]
        _deferred.clear()
    for shm in deferred:
        try:
            shm.close()
        except OSError:
            pass
    for shm in leftovers:
        try:
            shm.close()
            shm.unlink()
        except OSError:
            pass


atexit.register(_sweep)


class ShmArena:
    """One shared-memory segment carved into aligned ndarray views.

    Parameters
    ----------
    nbytes:
        Capacity of the segment.  :meth:`alloc` raises when exhausted —
        size the arena with :meth:`nbytes_for` up front.
    """

    def __init__(self, nbytes: int):
        if nbytes < 1:
            raise ValueError(f"nbytes must be >= 1, got {nbytes}")
        name = _PREFIX + os.urandom(8).hex()
        self._shm = shared_memory.SharedMemory(create=True, size=int(nbytes), name=name)
        self.name = name
        self._offset = 0
        self._owner_pid = os.getpid()
        self._released = False
        self._views: list[np.ndarray] = []
        with _live_lock:
            _live[name] = self._shm

    @staticmethod
    def nbytes_for(*specs) -> int:
        """Arena capacity for ``(shape, dtype)`` specs, padding included."""
        total = 0
        for shape, dtype in specs:
            total += int(np.prod(shape, dtype=np.int64)) * np.dtype(dtype).itemsize
            total += _ALIGN
        return max(total, 1)

    def alloc(self, shape, dtype=np.float64) -> np.ndarray:
        """A zero-initialised ndarray view carved from the segment."""
        if self._released:
            raise ValueError("arena already released")
        dtype = np.dtype(dtype)
        start = -(-self._offset // _ALIGN) * _ALIGN  # round up to alignment
        count = int(np.prod(shape, dtype=np.int64))
        end = start + count * dtype.itemsize
        if end > self._shm.size:
            raise ValueError(
                f"arena exhausted: need {end} bytes, have {self._shm.size}"
            )
        self._offset = end
        view = np.ndarray(shape, dtype=dtype, buffer=self._shm.buf, offset=start)
        view[...] = 0
        self._views.append(view)
        return view

    def place(self, arr: np.ndarray) -> np.ndarray:
        """Copy ``arr`` into the arena; returns the shared view."""
        view = self.alloc(arr.shape, arr.dtype)
        view[...] = arr
        return view

    def release(self) -> None:
        """Unlink the segment and unmap it once no views remain (idempotent).

        Forked workers inherit the mapping and the arena object; their
        (daemonic) exit unmaps without unlinking, so calling this from the
        creating process is the single point of truth for the segment's
        lifetime.  Copy anything you need out of the arena *before*
        releasing: views handed out by :meth:`alloc` dangle afterwards.  If
        the caller still holds one, the unmap is deferred (the segment is
        unlinked immediately, the mapping closed once the last view dies)
        rather than letting the next access segfault the interpreter.
        """
        if self._released or os.getpid() != self._owner_pid:
            return
        self._released = True
        try:
            self._shm.unlink()
        except FileNotFoundError:  # pragma: no cover - already swept
            pass
        views, self._views = self._views, []
        with _live_lock:
            _live.pop(self.name, None)
            if _views_still_held(views):
                _deferred.append((self._shm, views))
            else:
                self._shm.close()
            _sweep_deferred_locked()

    def __enter__(self) -> "ShmArena":
        return self

    def __exit__(self, *exc) -> None:
        self.release()

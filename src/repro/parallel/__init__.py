"""Multi-core runtime: fork-based worker pools over shared-memory ndarrays.

``repro.parallel`` is the process-level counterpart of the fused compute
path: where PR 3 removed per-step Python overhead inside one core, this
package scales the remaining (irreducible) arithmetic across cores while
preserving the repo's bit-exact parity discipline.

Three building blocks:

- :func:`resolve_workers` — one policy for every ``workers=`` knob in the
  library: an explicit int wins, then the ``REPRO_NUM_WORKERS`` environment
  variable, then a caller-chosen default (``1`` for library code, so nothing
  forks unless asked; the CLI defaults to ``os.cpu_count()``).  Inside a
  pool worker it always resolves to 1, so parallel sections can never nest
  into a fork bomb.
- :class:`WorkerPool` — a fork-start process pool with per-worker task
  queues (targetable, round-robin by default), a shared result queue,
  crash detection, and idempotent teardown.  Fork start means closures over
  models/stores/worlds reach the workers with zero pickling and copy-on-
  write memory.
- :class:`ShmArena` — a tracked ``multiprocessing.shared_memory`` segment
  that hands out aligned ndarray views.  Arrays allocated before the pool
  forks are mapped into every worker, so workers write results (feature
  rows, gradient rows, document vectors) straight into the parent's output
  buffers — ndarray transport without serialisation.

Determinism contract
--------------------
Every parallel code path in the library is *bit-identical* to its serial
path (``np.array_equal``), for every worker count: work is partitioned so
each item's arithmetic is untouched (per-user feature blocks, per-document
SGD, per-shard corpus counts merged in shard order), and reductions that
cross items run in one canonical order on the parent, never in arrival
order.  ``REPRO_NUM_WORKERS`` therefore changes how fast results appear,
never what they are.  The one schedule-level exception is sharded training
(:meth:`repro.core.retina.trainer.RetinaTrainer.fit` with ``workers=N``),
which aggregates per-cascade gradients per optimiser step — a different
(but worker-count-invariant) schedule that must be requested explicitly.
"""

from __future__ import annotations

import multiprocessing
import os

from repro.parallel.pool import WorkerCrashed, WorkerPool, WorkerTaskError, in_worker
from repro.parallel.shm import ShmArena, live_segments

__all__ = [
    "WorkerPool",
    "WorkerCrashed",
    "WorkerTaskError",
    "ShmArena",
    "live_segments",
    "resolve_workers",
    "fork_available",
    "in_worker",
]


def fork_available() -> bool:
    """Whether the ``fork`` start method exists (it does on Linux/macOS)."""
    return "fork" in multiprocessing.get_all_start_methods()


def resolve_workers(workers: int | None = None, *, default: int | None = 1) -> int:
    """Resolve a ``workers`` knob to a concrete count (always >= 1).

    Priority: explicit ``workers`` argument, then the ``REPRO_NUM_WORKERS``
    environment variable, then ``default``.  Returns 1 when called from
    inside a pool worker (no nested pools) or when fork is unavailable.
    """
    if in_worker() or not fork_available():
        return 1
    if workers is not None:
        return max(1, int(workers))
    env = os.environ.get("REPRO_NUM_WORKERS")
    if env:
        try:
            return max(1, int(env))
        except ValueError as exc:
            raise ValueError(
                f"REPRO_NUM_WORKERS must be an integer, got {env!r}"
            ) from exc
    return max(1, int(default if default is not None else 1))

"""Fork-start worker pool with targetable queues, crash detection, respawn.

The pool is deliberately lower-level than ``concurrent.futures``: tasks and
handlers cross into workers through the fork itself (no pickling of
closures, copy-on-write for every captured model/store/world), each worker
has its *own* task queue so callers can target a specific worker (the
serving engine uses this to collect per-worker cache stats), and the parent
detects dead workers instead of blocking forever on a result that will
never come — the property the shared-memory lifecycle tests lean on.

Failure contract (two modes):

* ``respawn=False`` (default, training/feature builds): a dead worker with
  tasks in flight raises :class:`WorkerCrashed` from :meth:`result` /
  :meth:`map` — batch jobs restart from the top, they don't limp along.
* ``respawn=True`` (serving dispatch): tasks that were on the dead worker
  fail individually (``ok=False`` with a :class:`WorkerCrashed` instance as
  the value — each lost task fails exactly once, never silently dropped),
  and the slot is re-forked after a capped exponential backoff.  Crash and
  respawn counts are exported through ``repro.obs`` so a circuit breaker
  upstream can degrade to inline dispatch on a crash loop.

Results still travel through one multiprocessing queue (they are small:
masks, acks, per-request dicts); bulk ndarray results go through a
:class:`~repro.parallel.shm.ShmArena` the caller allocated before the fork.

Chaos: workers consult ``repro.chaos`` between dequeue and handler —
``pool.worker_crash`` hard-exits the process, ``pool.worker_hang`` /
``pool.worker_slow`` sleep the rule's ``delay_s`` — so the recovery path
above is exercised deterministically in tests and the soak harness.
"""

from __future__ import annotations

import collections
import multiprocessing
import os
import queue as _queue
import signal
import time
import traceback

from repro import chaos
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics

__all__ = ["WorkerPool", "WorkerCrashed", "WorkerTaskError", "in_worker"]

_log = obs_log.get_logger("repro.parallel.pool")

_CRASHES = obs_metrics.REGISTRY.counter(
    "repro_pool_worker_crashes_total",
    "Worker processes that died with tasks in flight.",
    labels=("pool",),
)
_RESPAWNS = obs_metrics.REGISTRY.counter(
    "repro_pool_worker_respawns_total",
    "Crashed worker slots re-forked by the pool.",
    labels=("pool",),
)

_IN_WORKER = False


def in_worker() -> bool:
    """True inside a pool worker process (guards against nested pools)."""
    return _IN_WORKER


class WorkerCrashed(RuntimeError):
    """A worker process died while tasks were in flight."""


class WorkerTaskError(RuntimeError):
    """A task handler raised inside a worker (message carries the traceback)."""


def _worker_main(idx, task_q, result_q, handlers, initializer) -> None:
    global _IN_WORKER
    _IN_WORKER = True
    # A terminal Ctrl-C hits the whole foreground process group; the parent
    # handles it and shuts the pool down through the task-queue sentinels,
    # so workers must not die mid-task with KeyboardInterrupt tracebacks.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if initializer is not None:
        initializer(idx)
    while True:
        task = task_q.get()
        if task is None:
            break
        tid, kind, payload = task
        if chaos.should_fire("pool.worker_crash"):
            os._exit(23)
        chaos.maybe_sleep("pool.worker_hang")
        chaos.maybe_sleep("pool.worker_slow")
        try:
            result_q.put((tid, True, handlers[kind](payload)))
        except BaseException as exc:  # a task must never kill the worker loop
            detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            try:
                result_q.put((tid, False, detail))
            except Exception:  # unpicklable arg edge: report the bare text
                result_q.put((tid, False, f"{type(exc).__name__}: {exc}"))


class WorkerPool:
    """``n_workers`` fork-started processes running named task handlers.

    Parameters
    ----------
    n_workers:
        Number of worker processes (>= 1).
    handlers:
        ``{kind: callable(payload) -> result}`` — inherited via fork, so
        closures over arbitrarily large state are free.
    initializer:
        Optional ``callable(worker_idx)`` run once in each worker before its
        task loop (e.g. rebasing model weights onto a shared arena).
    name:
        Process-name prefix for debugging.
    respawn:
        When True, a crashed worker fails only its own in-flight tasks
        (each surfaces once as ``ok=False`` with a :class:`WorkerCrashed`
        value) and the slot is re-forked after a capped exponential
        backoff.  When False (default), :meth:`result` raises
        :class:`WorkerCrashed` as before.
    respawn_backoff_s / respawn_backoff_cap_s:
        Base and cap of the re-fork backoff.  The backoff doubles per
        consecutive crash and resets once a worker survives 60 s.
    """

    def __init__(self, n_workers: int, handlers: dict, *, initializer=None,
                 name: str = "repro-pool", respawn: bool = False,
                 respawn_backoff_s: float = 0.05,
                 respawn_backoff_cap_s: float = 2.0):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        ctx = multiprocessing.get_context("fork")
        self._ctx = ctx
        self._name = name
        self._handlers = dict(handlers)
        self._initializer = initializer
        self.n_workers = int(n_workers)
        self._respawn = bool(respawn)
        self._respawn_backoff_s = float(respawn_backoff_s)
        self._respawn_backoff_cap_s = float(respawn_backoff_cap_s)
        self._task_qs = [ctx.SimpleQueue() for _ in range(self.n_workers)]
        self._result_q = ctx.Queue()
        self._procs = [self._spawn(i) for i in range(self.n_workers)]
        for p in self._procs:
            p.start()
        self._next_worker = 0
        self._next_tid = 0
        self._inflight: dict[int, int] = {}  # tid -> worker idx
        self._closed = False
        # Respawn bookkeeping (one slot per worker).
        self._respawn_at: list[float | None] = [None] * self.n_workers
        self._crash_streak = [0] * self.n_workers
        self._last_crash = [0.0] * self.n_workers
        self._pending_failures: collections.deque = collections.deque()
        self.crashes = 0
        self.respawns = 0
        self._crash_times: collections.deque = collections.deque(maxlen=256)

    def _spawn(self, i: int):
        return self._ctx.Process(
            target=_worker_main,
            args=(i, self._task_qs[i], self._result_q, self._handlers,
                  self._initializer),
            name=f"{self._name}-{i}",
            daemon=True,
        )

    # -------------------------------------------------------------- submit
    def submit(self, kind: str, payload, *, worker: int | None = None) -> int:
        """Enqueue one task; returns its id.  Round-robin unless targeted."""
        if self._closed:
            raise ValueError("pool is closed")
        if worker is None:
            worker = self._next_worker
            self._next_worker = (self._next_worker + 1) % self.n_workers
        tid = self._next_tid
        self._next_tid += 1
        self._inflight[tid] = worker
        self._task_qs[worker].put((tid, kind, payload))
        return tid

    # --------------------------------------------------------------- crash
    def _reap(self, i: int) -> None:
        """Fail worker *i*'s in-flight tasks and schedule its re-fork."""
        exitcode = self._procs[i].exitcode
        lost = sorted(tid for tid, w in self._inflight.items() if w == i)
        err = WorkerCrashed(
            f"worker {self._name}-{i} died (exit code {exitcode}) with "
            f"{len(lost)} task(s) in flight"
        )
        for tid in lost:
            del self._inflight[tid]
            self._pending_failures.append((tid, False, err))
        # Tasks queued but not yet dequeued died with the process; a fresh
        # queue guarantees the respawned worker never sees half-read bytes.
        self._task_qs[i] = self._ctx.SimpleQueue()
        now = time.monotonic()
        if now - self._last_crash[i] > 60.0:
            self._crash_streak[i] = 0
        self._crash_streak[i] += 1
        self._last_crash[i] = now
        delay = min(
            self._respawn_backoff_cap_s,
            self._respawn_backoff_s * 2 ** (self._crash_streak[i] - 1),
        )
        self._respawn_at[i] = now + delay
        self.crashes += 1
        self._crash_times.append(now)
        _CRASHES.inc(pool=self._name)
        _log.error(
            "pool.worker_crashed",
            pool=self._name,
            worker=i,
            exit_code=exitcode,
            n_lost=len(lost),
            respawn_in_s=round(delay, 4),
            streak=self._crash_streak[i],
        )

    def _respawn_due(self) -> None:
        """Re-fork any crashed slot whose backoff has elapsed."""
        if self._closed:
            return
        now = time.monotonic()
        for i, due in enumerate(self._respawn_at):
            if due is not None and now >= due:
                self._procs[i] = self._spawn(i)
                self._procs[i].start()
                self._respawn_at[i] = None
                self.respawns += 1
                _RESPAWNS.inc(pool=self._name)
                _log.warning("pool.worker_respawned", pool=self._name, worker=i)

    def crashes_in_window(self, window_s: float) -> int:
        """Crashes observed in the trailing ``window_s`` seconds."""
        cutoff = time.monotonic() - window_s
        return sum(1 for t in self._crash_times if t >= cutoff)

    def width(self) -> int:
        """Number of currently live worker processes."""
        if self._closed:
            return 0
        if self._respawn:
            self._respawn_due()  # so pollers see recovery without traffic
        return sum(
            1
            for i, p in enumerate(self._procs)
            if self._respawn_at[i] is None and p.is_alive()
        )

    def result(self, timeout: float | None = None):
        """Next completed task as ``(tid, ok, value)``.

        Returns ``None`` when ``timeout`` elapses with workers healthy.
        On worker death: with ``respawn=False`` raises
        :class:`WorkerCrashed` (lost results would otherwise block the
        caller forever); with ``respawn=True`` each lost task is returned
        as ``(tid, False, WorkerCrashed(...))`` — the exception *instance*
        as the value distinguishes a crash from a handler error string —
        and the slot re-forks after backoff.
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            if self._pending_failures:
                return self._pending_failures.popleft()
            if self._respawn:
                self._respawn_due()
            step = 0.2
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return None
                step = min(step, remaining)
            try:
                tid, ok, value = self._result_q.get(timeout=step)
            except _queue.Empty:
                dead = [
                    i
                    for i, p in enumerate(self._procs)
                    if self._respawn_at[i] is None and not p.is_alive()
                ]
                if not dead or not (self._respawn or self._inflight):
                    continue
                # Drain what did arrive before declaring the rest lost.
                try:
                    tid, ok, value = self._result_q.get(timeout=0.05)
                except _queue.Empty:
                    if self._respawn:
                        for i in dead:
                            self._reap(i)
                        continue
                    names = [self._procs[i].name for i in dead]
                    _log.error(
                        "pool.worker_crashed",
                        dead_workers=names,
                        exit_codes=[self._procs[i].exitcode for i in dead],
                        n_inflight=len(self._inflight),
                    )
                    raise WorkerCrashed(
                        f"worker(s) {names} died with "
                        f"{len(self._inflight)} task(s) in flight"
                    ) from None
            self._inflight.pop(tid, None)
            return tid, ok, value

    def map(self, kind: str, payloads, *, timeout: float | None = 600.0) -> list:
        """Run ``payloads`` across the pool; results in payload order.

        Raises :class:`WorkerTaskError` on the first handler failure and
        :class:`WorkerCrashed` on worker death.
        """
        payloads = list(payloads)
        tids = [self.submit(kind, p) for p in payloads]
        order = {tid: i for i, tid in enumerate(tids)}
        out = [None] * len(payloads)
        pending = set(tids)
        deadline = None if timeout is None else time.perf_counter() + timeout
        while pending:
            remaining = None if deadline is None else deadline - time.perf_counter()
            got = self.result(timeout=remaining)
            if got is None:
                raise TimeoutError(f"pool.map timed out with {len(pending)} pending")
            tid, ok, value = got
            if tid not in order:
                continue  # stale result from an earlier, abandoned call
            if not ok:
                if isinstance(value, BaseException):
                    raise value
                raise WorkerTaskError(value)
            out[order[tid]] = value
            pending.discard(tid)
        return out

    def broadcast(self, kind: str, payload=None, *, timeout: float | None = 30.0) -> list:
        """Run one task on *every* worker; results in worker order."""
        tids = [self.submit(kind, payload, worker=i) for i in range(self.n_workers)]
        order = {tid: i for i, tid in enumerate(tids)}
        out = [None] * self.n_workers
        pending = set(tids)
        deadline = None if timeout is None else time.perf_counter() + timeout
        while pending:
            remaining = None if deadline is None else deadline - time.perf_counter()
            got = self.result(timeout=remaining)
            if got is None:
                raise TimeoutError(f"broadcast timed out with {len(pending)} pending")
            tid, ok, value = got
            if tid not in order:
                continue
            if not ok:
                if isinstance(value, BaseException):
                    raise value
                raise WorkerTaskError(value)
            out[order[tid]] = value
            pending.discard(tid)
        return out

    # ----------------------------------------------------------- lifecycle
    def alive(self) -> bool:
        """Whether every worker process is still running."""
        return not self._closed and self.width() == self.n_workers

    def close(self, *, timeout: float = 5.0) -> None:
        """Stop workers and release queues.  Safe to call repeatedly."""
        if self._closed:
            return
        self._closed = True
        for q in self._task_qs:
            try:
                q.put(None)
            except (OSError, ValueError):  # worker already gone
                pass
        for p in self._procs:
            p.join(timeout=timeout)
        for p in self._procs:
            if p.is_alive():  # pragma: no cover - stuck worker backstop
                p.terminate()
                p.join(timeout=1.0)
        self._inflight.clear()
        self._pending_failures.clear()
        self._result_q.cancel_join_thread()
        self._result_q.close()
        for q in self._task_qs:
            q.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Fork-start worker pool with targetable queues and crash detection.

The pool is deliberately lower-level than ``concurrent.futures``: tasks and
handlers cross into workers through the fork itself (no pickling of
closures, copy-on-write for every captured model/store/world), each worker
has its *own* task queue so callers can target a specific worker (the
serving engine uses this to collect per-worker cache stats), and the parent
detects dead workers instead of blocking forever on a result that will
never come — the property the shared-memory lifecycle tests lean on.

Results still travel through one multiprocessing queue (they are small:
masks, acks, per-request dicts); bulk ndarray results go through a
:class:`~repro.parallel.shm.ShmArena` the caller allocated before the fork.
"""

from __future__ import annotations

import multiprocessing
import queue as _queue
import signal
import time
import traceback

from repro.obs import log as obs_log

__all__ = ["WorkerPool", "WorkerCrashed", "WorkerTaskError", "in_worker"]

_log = obs_log.get_logger("repro.parallel.pool")

_IN_WORKER = False


def in_worker() -> bool:
    """True inside a pool worker process (guards against nested pools)."""
    return _IN_WORKER


class WorkerCrashed(RuntimeError):
    """A worker process died while tasks were in flight."""


class WorkerTaskError(RuntimeError):
    """A task handler raised inside a worker (message carries the traceback)."""


def _worker_main(idx, task_q, result_q, handlers, initializer) -> None:
    global _IN_WORKER
    _IN_WORKER = True
    # A terminal Ctrl-C hits the whole foreground process group; the parent
    # handles it and shuts the pool down through the task-queue sentinels,
    # so workers must not die mid-task with KeyboardInterrupt tracebacks.
    signal.signal(signal.SIGINT, signal.SIG_IGN)
    if initializer is not None:
        initializer(idx)
    while True:
        task = task_q.get()
        if task is None:
            break
        tid, kind, payload = task
        try:
            result_q.put((tid, True, handlers[kind](payload)))
        except BaseException as exc:  # a task must never kill the worker loop
            detail = f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}"
            try:
                result_q.put((tid, False, detail))
            except Exception:  # unpicklable arg edge: report the bare text
                result_q.put((tid, False, f"{type(exc).__name__}: {exc}"))


class WorkerPool:
    """``n_workers`` fork-started processes running named task handlers.

    Parameters
    ----------
    n_workers:
        Number of worker processes (>= 1).
    handlers:
        ``{kind: callable(payload) -> result}`` — inherited via fork, so
        closures over arbitrarily large state are free.
    initializer:
        Optional ``callable(worker_idx)`` run once in each worker before its
        task loop (e.g. rebasing model weights onto a shared arena).
    name:
        Process-name prefix for debugging.
    """

    def __init__(self, n_workers: int, handlers: dict, *, initializer=None,
                 name: str = "repro-pool"):
        if n_workers < 1:
            raise ValueError(f"n_workers must be >= 1, got {n_workers}")
        ctx = multiprocessing.get_context("fork")
        self.n_workers = int(n_workers)
        self._task_qs = [ctx.SimpleQueue() for _ in range(self.n_workers)]
        self._result_q = ctx.Queue()
        self._procs = [
            ctx.Process(
                target=_worker_main,
                args=(i, self._task_qs[i], self._result_q, dict(handlers), initializer),
                name=f"{name}-{i}",
                daemon=True,
            )
            for i in range(self.n_workers)
        ]
        for p in self._procs:
            p.start()
        self._next_worker = 0
        self._next_tid = 0
        self._inflight: dict[int, int] = {}  # tid -> worker idx
        self._closed = False

    # -------------------------------------------------------------- submit
    def submit(self, kind: str, payload, *, worker: int | None = None) -> int:
        """Enqueue one task; returns its id.  Round-robin unless targeted."""
        if self._closed:
            raise ValueError("pool is closed")
        if worker is None:
            worker = self._next_worker
            self._next_worker = (self._next_worker + 1) % self.n_workers
        tid = self._next_tid
        self._next_tid += 1
        self._inflight[tid] = worker
        self._task_qs[worker].put((tid, kind, payload))
        return tid

    def result(self, timeout: float | None = None):
        """Next completed task as ``(tid, ok, value)``.

        Returns ``None`` when ``timeout`` elapses with workers healthy;
        raises :class:`WorkerCrashed` when a worker died with tasks in
        flight (lost results would otherwise block the caller forever).
        """
        deadline = None if timeout is None else time.perf_counter() + timeout
        while True:
            step = 0.2
            if deadline is not None:
                remaining = deadline - time.perf_counter()
                if remaining <= 0:
                    return None
                step = min(step, remaining)
            try:
                tid, ok, value = self._result_q.get(timeout=step)
            except _queue.Empty:
                if self._inflight and any(not p.is_alive() for p in self._procs):
                    # Drain what did arrive before declaring the rest lost.
                    try:
                        tid, ok, value = self._result_q.get(timeout=0.05)
                    except _queue.Empty:
                        dead = [p.name for p in self._procs if not p.is_alive()]
                        _log.error(
                            "pool.worker_crashed",
                            dead_workers=dead,
                            exit_codes=[
                                p.exitcode for p in self._procs if not p.is_alive()
                            ],
                            n_inflight=len(self._inflight),
                        )
                        raise WorkerCrashed(
                            f"worker(s) {dead} died with "
                            f"{len(self._inflight)} task(s) in flight"
                        ) from None
                else:
                    continue
            self._inflight.pop(tid, None)
            return tid, ok, value

    def map(self, kind: str, payloads, *, timeout: float | None = 600.0) -> list:
        """Run ``payloads`` across the pool; results in payload order.

        Raises :class:`WorkerTaskError` on the first handler failure and
        :class:`WorkerCrashed` on worker death.
        """
        payloads = list(payloads)
        tids = [self.submit(kind, p) for p in payloads]
        order = {tid: i for i, tid in enumerate(tids)}
        out = [None] * len(payloads)
        pending = set(tids)
        deadline = None if timeout is None else time.perf_counter() + timeout
        while pending:
            remaining = None if deadline is None else deadline - time.perf_counter()
            got = self.result(timeout=remaining)
            if got is None:
                raise TimeoutError(f"pool.map timed out with {len(pending)} pending")
            tid, ok, value = got
            if tid not in order:
                continue  # stale result from an earlier, abandoned call
            if not ok:
                raise WorkerTaskError(value)
            out[order[tid]] = value
            pending.discard(tid)
        return out

    def broadcast(self, kind: str, payload=None, *, timeout: float | None = 30.0) -> list:
        """Run one task on *every* worker; results in worker order."""
        tids = [self.submit(kind, payload, worker=i) for i in range(self.n_workers)]
        order = {tid: i for i, tid in enumerate(tids)}
        out = [None] * self.n_workers
        pending = set(tids)
        deadline = None if timeout is None else time.perf_counter() + timeout
        while pending:
            remaining = None if deadline is None else deadline - time.perf_counter()
            got = self.result(timeout=remaining)
            if got is None:
                raise TimeoutError(f"broadcast timed out with {len(pending)} pending")
            tid, ok, value = got
            if tid not in order:
                continue
            if not ok:
                raise WorkerTaskError(value)
            out[order[tid]] = value
            pending.discard(tid)
        return out

    # ----------------------------------------------------------- lifecycle
    def alive(self) -> bool:
        """Whether every worker process is still running."""
        return not self._closed and all(p.is_alive() for p in self._procs)

    def close(self, *, timeout: float = 5.0) -> None:
        """Stop workers and release queues.  Safe to call repeatedly."""
        if self._closed:
            return
        self._closed = True
        for q in self._task_qs:
            try:
                q.put(None)
            except (OSError, ValueError):  # worker already gone
                pass
        for p in self._procs:
            p.join(timeout=timeout)
        for p in self._procs:
            if p.is_alive():  # pragma: no cover - stuck worker backstop
                p.terminate()
                p.join(timeout=1.0)
        self._inflight.clear()
        self._result_q.cancel_join_thread()
        self._result_q.close()
        for q in self._task_qs:
            q.close()

    def __enter__(self) -> "WorkerPool":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

"""Python client SDK for the serving API v1.

:class:`ServingClient` is a stdlib-only (``http.client``) client with
keep-alive connection pooling, typed methods returning
:mod:`repro.serving.schemas` objects, and retry-with-backoff on 429/503
(honouring the server's ``Retry-After`` hint) and transport failures.  Requests are validated client-side by the *same*
schema layer the server uses, so a bad argument fails fast with the same
structured :class:`~repro.serving.schemas.ServingError` the server would
have returned::

    from repro.client import ServingClient

    with ServingClient("http://127.0.0.1:8000") as client:
        client.health().status                     # "ok"
        r = client.predict_retweeters(17, user_ids=[3, 5, 9], top_k=2)
        r.ranking                                  # [[3, 0.81], [9, 0.44]]
        batch = client.predict_many("retweeters", [{"cascade_id": 17}])
        client.reload("retina", version=2)         # hot-swap the model
"""

from __future__ import annotations

import http.client
import json
import threading
import time
from urllib.parse import urlsplit

from repro import chaos
from repro.serving.schemas import (
    BatchPredictResponse,
    BatchRequest,
    ErrorResponse,
    HateGenRequest,
    HateGenResponse,
    HealthResponse,
    IngestRequest,
    IngestResponse,
    ModelsResponse,
    ReloadRequest,
    ReloadResponse,
    RetweeterRequest,
    RetweeterResponse,
    Schema,
    ServingError,
    VersionsResponse,
    request_schema_for,
    response_schema_for,
    validate_event_payload,
)

__all__ = ["ServingClient", "ServingError", "parse_response"]

#: 503 = engine overloaded; 429 = shed by the admission controller.  Both
#: carry ``Retry-After`` hints that :meth:`ServingClient._request` honours.
_RETRYABLE_STATUS = frozenset({429, 503})

#: Upper bound on a server-suggested ``Retry-After`` delay — a confused
#: (or hostile) server shouldn't park a client for minutes.
_RETRY_AFTER_CAP_S = 5.0

#: Exceptions that mean a pooled keep-alive socket went stale: the server
#: (or a middlebox) closed it between requests.  On an idempotent GET these
#: earn one *free* immediate retry on a fresh connection; on a POST they
#: fail fast — the request may already have been processed.
_STALE_RESET_EXCS = (
    ConnectionResetError,
    BrokenPipeError,
    http.client.RemoteDisconnected,
)


class _ConnectionPool:
    """A small checkout/checkin pool of keep-alive HTTP connections.

    Connections are created lazily, reused across requests (HTTP/1.1
    keep-alive), and dropped instead of returned when they fail — the
    next checkout dials a fresh one.
    """

    def __init__(self, host: str, port: int, timeout: float, maxsize: int):
        self.host = host
        self.port = port
        self.timeout = timeout
        self.maxsize = maxsize
        self._idle: list[http.client.HTTPConnection] = []
        self._lock = threading.Lock()

    def acquire(self) -> tuple[http.client.HTTPConnection, bool]:
        """A connection plus whether it is a *reused* keep-alive socket.

        The flag drives the stale-reset policy in ``_request``: only a
        reused socket can be stale, so only a reused socket's reset earns
        the free GET retry (a fresh connection's reset is a real failure).
        """
        with self._lock:
            if self._idle:
                return self._idle.pop(), True
        conn = http.client.HTTPConnection(self.host, self.port, timeout=self.timeout)
        return conn, False

    def release(self, conn: http.client.HTTPConnection) -> None:
        with self._lock:
            if len(self._idle) < self.maxsize:
                self._idle.append(conn)
                return
        conn.close()

    def discard(self, conn: http.client.HTTPConnection) -> None:
        try:
            conn.close()
        except Exception:
            pass

    def close(self) -> None:
        with self._lock:
            idle, self._idle = self._idle, []
        for conn in idle:
            conn.close()


class ServingClient:
    """Typed client for a running prediction server.

    Parameters
    ----------
    base_url:
        ``"http://host:port"`` (or ``host``/``port`` separately).
    timeout:
        Per-request socket timeout in seconds.
    retries:
        Extra attempts on 503 (engine overloaded), 429 (shed by the
        admission controller), and transport errors; every endpoint here
        is safe to retry (predictions are pure reads and reloading an
        already-serving version is a no-op swap).  One exception: when a
        *pooled* keep-alive socket is reset (the server closed it between
        requests), a GET gets one free immediate retry on a fresh
        connection, while a POST fails fast with a typed
        ``connection_reset`` error — it may already have been processed.
        :meth:`ingest` is exempt: content-hash dedup makes it idempotent,
        so it takes the free retry too.
    backoff:
        First retry delay in seconds; doubles per attempt.  A 429/503
        response carrying ``Retry-After`` overrides the backoff with the
        server's hint (capped at 5 s).
    pool_size:
        Keep-alive connections retained for reuse (threads beyond it
        still work — they just dial fresh connections).
    strict:
        Re-validate every response body against the schemas (field
        coercion, range/shape checks) instead of trusting the server.
        Off by default — the hot path only pays typed construction; the
        CI contract check runs with ``strict=True``.
    """

    def __init__(
        self,
        base_url: str | None = None,
        *,
        host: str = "127.0.0.1",
        port: int = 8000,
        timeout: float = 60.0,
        retries: int = 2,
        backoff: float = 0.05,
        pool_size: int = 8,
        strict: bool = False,
    ):
        if base_url is not None:
            parts = urlsplit(base_url if "//" in base_url else f"//{base_url}")
            host = parts.hostname or host
            port = parts.port or port
        self.host, self.port = host, port
        self.timeout = timeout
        self.retries = max(0, int(retries))
        self.backoff = backoff
        self.strict = strict
        self._pool = _ConnectionPool(host, port, timeout, pool_size)
        #: Trace id echoed by the server on the most recent traced request
        #: (``None`` when the last response carried no ``X-Trace-Id``).
        self.last_trace_id: str | None = None

    def _parse(self, schema, body: dict):
        if self.strict:
            return schema.validate(body, unknown="ignore")
        return schema.from_wire(body)

    # ------------------------------------------------------------ plumbing
    def _request(self, method: str, path: str, payload: dict | None = None,
                 trace_id: str | None = None, *, idempotent: bool = False):
        """One HTTP round trip with pooling + retries; returns (status, body)."""
        body = None
        headers = {}
        if payload is not None:
            body = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        if trace_id is not None:
            # Forces server-side tracing of this request even on a server
            # running with sampling off; the id comes back in the response.
            headers["X-Trace-Id"] = trace_id
        last_exc: Exception | None = None
        delay = 0.0
        attempt = 0
        stale_retry_left = True
        while attempt <= self.retries:
            if delay:
                time.sleep(delay)
            # Default exponential backoff for the *next* attempt; a 429/503
            # with a Retry-After header overrides it below.
            delay = self.backoff * (2 ** attempt)
            conn, reused = self._pool.acquire()
            try:
                if reused and chaos.should_fire("client.reset"):
                    # Simulate the server having closed the pooled socket
                    # between requests — exercised through the same except
                    # clause a real stale keep-alive reset takes.
                    conn.close()
                    raise ConnectionResetError(
                        "chaos: injected stale keep-alive reset"
                    )
                conn.request(method, path, body, headers)
                resp = conn.getresponse()
                raw = resp.read()
                status = resp.status
                retry_after = resp.headers.get("Retry-After")
                self.last_trace_id = resp.headers.get("X-Trace-Id")
                keep = resp.headers.get("Connection", "").lower() != "close"
            except (http.client.HTTPException, ConnectionError, OSError) as exc:
                # Stale keep-alive connections surface here; drop the
                # socket and retry on a fresh one.
                self._pool.discard(conn)
                if reused and isinstance(exc, _STALE_RESET_EXCS):
                    if (method == "GET" or idempotent) and stale_retry_left:
                        # The socket idled past the server's keep-alive
                        # window; the request never ran.  One immediate
                        # retry on a fresh connection, not counted against
                        # the retry budget.  ``idempotent`` POSTs (ingest:
                        # content-hash dedup) take the same free retry.
                        stale_retry_left = False
                        delay = 0.0
                        continue
                    if method != "GET" and not idempotent:
                        # A non-idempotent request may already have been
                        # processed before the reset: fail fast, typed.
                        raise ServingError(
                            f"pooled keep-alive connection to "
                            f"{self.host}:{self.port} was reset mid-"
                            f"{method}; not retried (the request may "
                            f"already have been processed)",
                            status=503,
                            code="connection_reset",
                        ) from exc
                last_exc = exc
                attempt += 1
                continue
            if keep:
                self._pool.release(conn)
            else:
                self._pool.discard(conn)
            if status in _RETRYABLE_STATUS and attempt < self.retries:
                if retry_after:
                    try:
                        delay = min(float(retry_after), _RETRY_AFTER_CAP_S)
                    except ValueError:
                        pass  # non-numeric hint: keep the backoff default
                attempt += 1
                continue
            try:
                parsed = json.loads(raw) if raw else {}
            except json.JSONDecodeError as exc:
                raise ServingError(
                    f"server returned non-JSON body (status {status}): {raw[:120]!r}",
                    status=status,
                    code="bad_response",
                ) from exc
            return status, parsed
        raise ServingError(
            f"could not reach {self.host}:{self.port} after "
            f"{self.retries + 1} attempt(s): {last_exc}",
            status=503,
            code="connection_error",
        )

    def _call(self, method: str, path: str, payload: dict | None = None,
              trace_id: str | None = None, *, idempotent: bool = False) -> dict:
        """Request + raise a typed ServingError on any error payload."""
        status, body = self._request(
            method, path, payload, trace_id=trace_id, idempotent=idempotent
        )
        if status >= 400 or (isinstance(body, dict) and "error" in body):
            err = ErrorResponse.from_body(body, status=status)
            raise ServingError(
                err.message or f"HTTP {status}",
                status=status,
                code=err.code,
                field=err.field,
            )
        return body

    # ------------------------------------------------------------- predict
    def predict_retweeters(
        self,
        cascade_id: int,
        *,
        user_ids: list[int] | None = None,
        interval: int | None = None,
        top_k: int | None = None,
        trace_id: str | None = None,
    ) -> RetweeterResponse:
        """Score candidate retweeters of one cascade.

        Passing ``trace_id`` forces a server-side trace of this request;
        fetch its span tree afterwards with :meth:`trace`.
        """
        req = RetweeterRequest.validate(
            {"cascade_id": cascade_id, "user_ids": user_ids,
             "interval": interval, "top_k": top_k}
        )
        body = self._call(
            "POST", "/v1/predict/retweeters", req.to_dict(), trace_id=trace_id
        )
        return self._parse(RetweeterResponse, body)

    def predict_hategen(
        self, user_id: int, hashtag: str, timestamp: float, *,
        trace_id: str | None = None,
    ) -> HateGenResponse:
        """Score one (user, hashtag, timestamp) hate-generation query."""
        req = HateGenRequest.validate(
            {"user_id": user_id, "hashtag": hashtag, "timestamp": timestamp}
        )
        body = self._call(
            "POST", "/v1/predict/hategen", req.to_dict(), trace_id=trace_id
        )
        return self._parse(HateGenResponse, body)

    def predict_many(self, kind: str, requests: list) -> BatchPredictResponse:
        """Many payloads in one HTTP call, fanned into the micro-batcher.

        ``requests`` entries may be wire dicts or request-schema objects;
        each is validated client-side before anything goes on the wire.
        Per-item failures come back as :class:`ErrorResponse` entries —
        only transport/whole-batch problems raise.
        """
        schema = request_schema_for(kind)
        wire = []
        for item in requests:
            if isinstance(item, Schema):
                item = item.to_dict()
            wire.append(schema.validate(item).to_dict())
        payload = BatchRequest.validate({"requests": wire}).to_dict()
        body = self._call("POST", f"/v1/batch/{kind}", payload)
        return BatchPredictResponse.from_dict(kind, body, strict=self.strict)

    # ------------------------------------------------------------- ingest
    def ingest(self, events: list, *, trace_id: str | None = None) -> IngestResponse:
        """Durably append a batch of events to the server's event log.

        ``events`` entries may be wire dicts (``{"kind": "retweet",
        "tweet_id": 17, "user_id": 3, "timestamp": 40.0}``) or
        :mod:`repro.store` event objects; each is validated client-side
        by the same schema layer the server runs.  Item-level failures
        come back inside :class:`IngestResponse` — only transport or
        whole-batch problems raise.

        Unlike the other POSTs, this one *is* retried after a stale
        keep-alive reset (and on 429/503 like everything else): every
        event is content-hashed server-side, so a replayed batch
        deduplicates and acks with the original sequence numbers instead
        of double-applying.
        """
        wire = []
        for item in events:
            if hasattr(item, "to_wire"):
                item = item.to_wire()
            wire.append(validate_event_payload(item))
        payload = IngestRequest.validate({"events": wire}).to_dict()
        body = self._call(
            "POST", "/v1/ingest", payload, trace_id=trace_id, idempotent=True
        )
        return IngestResponse.from_dict(body)

    # ------------------------------------------------------------- models
    def models(self) -> ModelsResponse:
        """Every registry model with its versions and aliases."""
        return ModelsResponse.from_dict(self._call("GET", "/v1/models"))

    def model(self, name: str, version: int | None = None) -> dict:
        """The manifest of one model version (latest by default)."""
        suffix = f"?version={int(version)}" if version is not None else ""
        return self._call("GET", f"/v1/models/{name}{suffix}")

    def versions(self, name: str) -> VersionsResponse:
        """Committed versions + aliases of one model (aliases accepted)."""
        body = self._call("GET", f"/v1/models/{name}/versions")
        return self._parse(VersionsResponse, body)

    def reload(
        self, name: str, *, version: int | None = None, alias: str | None = None
    ) -> ReloadResponse:
        """Hot-swap the serving predictor to a bundle version (default latest)."""
        req = ReloadRequest.validate({"version": version, "alias": alias})
        body = self._call("POST", f"/v1/models/{name}/reload", req.to_dict())
        return self._parse(ReloadResponse, body)

    # ------------------------------------------------------------- health
    def health(self) -> HealthResponse:
        """Liveness + loaded-model descriptions."""
        return self._parse(HealthResponse, self._call("GET", "/v1/healthz"))

    def metrics(self) -> dict:
        """Per-predictor latency/throughput/cache counters (free-form)."""
        return self._call("GET", "/v1/metrics")

    # ------------------------------------------------------------- tracing
    def traces(self) -> list[dict]:
        """One-line summaries of the server's most recent traces."""
        return self._call("GET", "/v1/traces")["traces"]

    def trace(self, trace_id: str) -> dict:
        """The full span tree of one trace (404 -> ServingError)."""
        return self._call("GET", f"/v1/traces/{trace_id}")

    # ----------------------------------------------------------- lifecycle
    def close(self) -> None:
        self._pool.close()

    def __enter__(self) -> "ServingClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def parse_response(kind: str, body: dict):
    """Typed response object for a raw ``/v1/predict/{kind}`` body."""
    return response_schema_for(kind).validate(body, unknown="ignore")

"""Seeded random-number-generator plumbing.

Every stochastic component in the library accepts a ``random_state`` that is
either ``None``, an integer seed, or a ``numpy.random.Generator``.  This
module normalises those three spellings so components never construct
generators ad hoc, which keeps experiments reproducible end to end.
"""

from __future__ import annotations

import numpy as np

RandomState = "int | np.random.Generator | None"


def ensure_rng(random_state: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for any accepted seed spelling.

    Parameters
    ----------
    random_state:
        ``None`` for OS entropy, an ``int`` seed, or an existing generator
        (returned unchanged so callers can share a stream).
    """
    if random_state is None:
        return np.random.default_rng()
    if isinstance(random_state, np.random.Generator):
        return random_state
    if isinstance(random_state, (int, np.integer)):
        return np.random.default_rng(int(random_state))
    raise TypeError(
        f"random_state must be None, int, or numpy Generator, got {type(random_state).__name__}"
    )


def spawn_rngs(random_state: int | np.random.Generator | None, n: int) -> list[np.random.Generator]:
    """Split one seed into ``n`` independent child generators.

    Children are derived through :class:`numpy.random.SeedSequence` spawning,
    so they are statistically independent and stable across runs for a fixed
    parent seed.
    """
    if n < 0:
        raise ValueError(f"n must be non-negative, got {n}")
    parent = ensure_rng(random_state)
    seeds = parent.integers(0, 2**63 - 1, size=n)
    return [np.random.default_rng(int(s)) for s in seeds]

"""Minimal ASCII plotting used by figure-reproduction benchmarks.

The paper's figures are line/bar charts; benchmarks print an ASCII rendering
plus the underlying series so the shape is inspectable without matplotlib.
"""

from __future__ import annotations

from collections.abc import Sequence


def ascii_bars(
    labels: Sequence[str],
    values: Sequence[float],
    *,
    width: int = 40,
    title: str | None = None,
) -> str:
    """Render a horizontal bar chart. Values must be non-negative."""
    if len(labels) != len(values):
        raise ValueError("labels and values must have the same length")
    vmax = max(values) if values else 0.0
    label_w = max((len(l) for l in labels), default=0)
    out = [title] if title else []
    for label, value in zip(labels, values):
        if value < 0:
            raise ValueError(f"ascii_bars requires non-negative values, got {value}")
        n = 0 if vmax == 0 else int(round(width * value / vmax))
        out.append(f"{label.ljust(label_w)} | {'#' * n} {value:.4g}")
    return "\n".join(out)


def ascii_series(
    series: dict[str, Sequence[float]],
    *,
    width: int = 64,
    height: int = 12,
    title: str | None = None,
) -> str:
    """Render one or more numeric series as a crude line chart.

    Each series is resampled to ``width`` columns and plotted with its own
    glyph; the legend maps glyphs to series names.
    """
    glyphs = "*o+x@%&"
    if not series:
        return title or ""
    vmax = max(max(v) for v in series.values() if len(v))
    vmin = min(min(v) for v in series.values() if len(v))
    span = (vmax - vmin) or 1.0
    grid = [[" "] * width for _ in range(height)]
    legend = []
    for gi, (name, values) in enumerate(series.items()):
        glyph = glyphs[gi % len(glyphs)]
        legend.append(f"{glyph} = {name}")
        n = len(values)
        if n == 0:
            continue
        for col in range(width):
            src = col * (n - 1) / (width - 1) if width > 1 else 0
            val = values[int(round(src))]
            row = height - 1 - int(round((val - vmin) / span * (height - 1)))
            grid[row][col] = glyph
    out = [title] if title else []
    out.append(f"max={vmax:.4g}")
    out.extend("".join(row) for row in grid)
    out.append(f"min={vmin:.4g}")
    out.append("  ".join(legend))
    return "\n".join(out)

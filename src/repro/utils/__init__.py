"""Shared utilities: seeded randomness, validation, and console rendering."""

from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.tables import render_table
from repro.utils.asciiplot import ascii_bars, ascii_series
from repro.utils.validation import (
    check_array,
    check_binary_labels,
    check_consistent_length,
    check_fitted,
)

__all__ = [
    "ensure_rng",
    "spawn_rngs",
    "render_table",
    "ascii_bars",
    "ascii_series",
    "check_array",
    "check_binary_labels",
    "check_consistent_length",
    "check_fitted",
]

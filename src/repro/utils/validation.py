"""Input-validation helpers shared across the ``repro.ml`` estimators."""

from __future__ import annotations

import numpy as np


class NotFittedError(RuntimeError):
    """Raised when ``predict``/``transform`` is called before ``fit``."""


def check_array(X, *, ndim: int = 2, dtype=np.float64, name: str = "X") -> np.ndarray:
    """Coerce ``X`` to a finite ndarray with the expected dimensionality."""
    arr = np.asarray(X, dtype=dtype)
    if arr.ndim != ndim:
        raise ValueError(f"{name} must be {ndim}-dimensional, got shape {arr.shape}")
    if arr.size and not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} contains NaN or infinite values")
    return arr


def check_consistent_length(*arrays) -> None:
    """Raise if the first axes of the given arrays disagree."""
    lengths = [len(a) for a in arrays if a is not None]
    if len(set(lengths)) > 1:
        raise ValueError(f"Inconsistent lengths: {lengths}")


def check_binary_labels(y, name: str = "y") -> np.ndarray:
    """Coerce labels to an int array of {0, 1} values."""
    arr = np.asarray(y)
    if arr.ndim != 1:
        raise ValueError(f"{name} must be 1-dimensional, got shape {arr.shape}")
    uniq = np.unique(arr)
    if not np.all(np.isin(uniq, (0, 1))):
        raise ValueError(f"{name} must contain only 0/1 labels, got values {uniq[:10]}")
    return arr.astype(np.int64)


def check_fitted(estimator, attribute: str) -> None:
    """Raise :class:`NotFittedError` unless ``estimator.attribute`` exists."""
    if getattr(estimator, attribute, None) is None:
        raise NotFittedError(
            f"{type(estimator).__name__} is not fitted yet; call fit() first"
        )

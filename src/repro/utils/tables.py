"""Plain-text table rendering for benchmark reports.

Benchmarks print paper-style tables to stdout; this keeps the formatting in
one place so every table in ``benchmarks/`` looks the same.
"""

from __future__ import annotations

from collections.abc import Sequence


def _fmt(value, ndigits: int = 3) -> str:
    if isinstance(value, float):
        return f"{value:.{ndigits}f}"
    return str(value)


def render_table(
    headers: Sequence[str],
    rows: Sequence[Sequence],
    *,
    title: str | None = None,
    ndigits: int = 3,
) -> str:
    """Render rows as an aligned monospace table.

    Parameters
    ----------
    headers:
        Column names.
    rows:
        Row values; floats are formatted to ``ndigits`` decimals.
    title:
        Optional caption printed above the table.
    """
    str_rows = [[_fmt(v, ndigits) for v in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in str_rows:
        if len(row) != len(headers):
            raise ValueError(
                f"row has {len(row)} cells but table has {len(headers)} columns"
            )
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))

    def line(cells: Sequence[str]) -> str:
        return " | ".join(c.ljust(w) for c, w in zip(cells, widths))

    sep = "-+-".join("-" * w for w in widths)
    out = []
    if title:
        out.append(title)
    out.append(line(headers))
    out.append(sep)
    out.extend(line(r) for r in str_rows)
    return "\n".join(out)

"""Memory-mapped, LRU-paged row matrices for world-scale feature stores.

The dense :class:`~repro.features.store.FeatureStore` allocates
``np.zeros((n_users, d))`` up front — resident memory linear in world
size, which caps worlds near 10^4 users.  :class:`PagedMatrix` keeps the
matrix in a sparse temporary file instead and pages fixed-size row
blocks through a bounded LRU of in-memory copies:

- reads/writes touch the backing file through **transient**
  ``np.memmap`` views scoped to one block (created, copied, unmapped) —
  a persistent whole-file mapping would count every page ever touched
  against the process high-water RSS, defeating the point;
- resident state is ``max_pages`` block copies plus one in-flight block
  view, so RSS is bounded by the page budget, not ``n_rows``;
- the backing file is created sparse (``ftruncate``), so untouched
  regions of a million-row matrix cost neither RAM nor disk.

:class:`ValidityBitmap` packs the per-row "has this row been filled"
flag into bits (vs the dense store's byte-per-row bool array) with the
small ndarray-assignment surface the store uses.
"""

from __future__ import annotations

import os
import tempfile
import time
from collections import OrderedDict

import numpy as np

from repro import chaos
from repro.obs import log as obs_log

__all__ = ["PagedMatrix", "PagedIOError", "ValidityBitmap"]

_log = obs_log.get_logger("repro.features.paged")

#: I/O attempts per block operation (1 initial + retries with tiny backoff).
_IO_ATTEMPTS = 3
_IO_BACKOFF_S = 0.002


class PagedIOError(OSError):
    """Block I/O against the backing file failed after retries.

    Carries the failing ``path``/``bid``/``op`` so the feature store can
    decide to recompute the rows through its builder path instead of
    failing the request.
    """

    def __init__(self, op: str, bid: int, path: str, cause: OSError):
        super().__init__(
            cause.errno or 0,
            f"paged {op} of block {bid} failed after {_IO_ATTEMPTS} attempts: {cause}",
        )
        self.op = op
        self.bid = bid
        self.filename = path
        self.__cause__ = cause


class ValidityBitmap:
    """Packed per-row validity bits with ndarray-style assignment.

    Supports exactly the access patterns the feature store uses:
    ``bm[i]`` (scalar bool), ``bm[idx_array]`` (bool array),
    ``bm[idx] = True`` and ``bm[:] = False``.
    """

    def __init__(self, n: int):
        self.n = int(n)
        self._bits = np.zeros((self.n + 7) // 8, dtype=np.uint8)

    def __len__(self) -> int:
        return self.n

    def __getitem__(self, idx):
        if isinstance(idx, slice):
            idx = np.arange(*idx.indices(self.n))
            return (self._bits[idx >> 3] >> (idx & 7).astype(np.uint8)) & 1 == 1
        arr = np.asarray(idx)
        if arr.ndim == 0:
            i = int(arr)
            return bool((self._bits[i >> 3] >> (i & 7)) & 1)
        return (self._bits[arr >> 3] >> (arr & 7).astype(np.uint8)) & 1 == 1

    def __setitem__(self, idx, value) -> None:
        if isinstance(idx, slice):
            if idx == slice(None) and not value:
                self._bits[:] = 0
                return
            idx = np.arange(*idx.indices(self.n))
        arr = np.atleast_1d(np.asarray(idx))
        bytes_ = arr >> 3
        masks = np.uint8(1) << (arr & 7).astype(np.uint8)
        if value:
            np.bitwise_or.at(self._bits, bytes_, masks)
        else:
            np.bitwise_and.at(self._bits, bytes_, ~masks)

    def count(self) -> int:
        """Number of set bits."""
        return int(np.unpackbits(self._bits).sum())


class PagedMatrix:
    """A ``(n_rows, n_cols)`` matrix in a sparse file, paged by row block.

    Parameters
    ----------
    n_rows, n_cols, dtype:
        Logical matrix shape and element type.
    page_rows:
        Rows per block (the paging granularity).
    max_pages:
        LRU budget: at most this many blocks stay resident as ndarray
        copies.  Peak resident bytes ≈
        ``max_pages * page_rows * n_cols * itemsize``.
    dir:
        Directory for the backing file (default: the system tempdir, or
        ``REPRO_FEATURE_MMAP_DIR`` when set).
    """

    def __init__(
        self,
        n_rows: int,
        n_cols: int,
        dtype=np.float64,
        *,
        page_rows: int = 256,
        max_pages: int = 64,
        dir: str | None = None,
    ):
        if n_rows < 0 or n_cols <= 0:
            raise ValueError(f"bad shape ({n_rows}, {n_cols})")
        if page_rows <= 0 or max_pages <= 0:
            raise ValueError("page_rows and max_pages must be positive")
        self.shape = (int(n_rows), int(n_cols))
        self.dtype = np.dtype(dtype)
        self.page_rows = int(page_rows)
        self.max_pages = int(max_pages)
        self._nbytes = self.shape[0] * self.shape[1] * self.dtype.itemsize
        dir = dir or os.environ.get("REPRO_FEATURE_MMAP_DIR") or None
        fd, self.path = tempfile.mkstemp(prefix="repro-paged-", suffix=".mmap", dir=dir)
        self._fd = fd
        os.ftruncate(fd, max(self._nbytes, 1))
        # block id -> ndarray copy of the block's rows; insertion order = LRU.
        self._pages: "OrderedDict[int, np.ndarray]" = OrderedDict()
        self._dirty: set[int] = set()
        self._degraded: set[int] = set()
        self.stats = {
            "hits": 0,
            "misses": 0,
            "evictions": 0,
            "writebacks": 0,
            "io_retries": 0,
            "io_errors": 0,
            "degraded_blocks": 0,
        }
        self._closed = False

    # ------------------------------------------------------------ block I/O
    def _block_rows(self, bid: int) -> tuple[int, int]:
        lo = bid * self.page_rows
        return lo, min(lo + self.page_rows, self.shape[0])

    def _block_view(self, bid: int, mode: str) -> np.ndarray:
        """A transient memmap over one block — caller must drop it promptly."""
        lo, hi = self._block_rows(bid)
        return np.memmap(
            self.path,
            dtype=self.dtype,
            mode=mode,
            offset=lo * self.shape[1] * self.dtype.itemsize,
            shape=(hi - lo, self.shape[1]),
        )

    def _with_retries(self, op: str, bid: int, attempt_fn):
        """Run one block I/O op, retrying transient ``OSError`` with backoff."""
        last: OSError | None = None
        for attempt in range(_IO_ATTEMPTS):
            try:
                if chaos.should_fire(f"paged.{op}"):
                    raise chaos.io_error(f"paged.{op}", self.path)
                return attempt_fn()
            except OSError as exc:
                last = exc
                if attempt + 1 < _IO_ATTEMPTS:
                    self.stats["io_retries"] += 1
                    time.sleep(_IO_BACKOFF_S * 2**attempt)
        self.stats["io_errors"] += 1
        _log.error("paged.io_failed", op=op, bid=bid, path=self.path, error=str(last))
        raise PagedIOError(op, bid, self.path, last)

    def _mark_degraded(self, bid: int) -> None:
        self._degraded.add(bid)
        self.stats["degraded_blocks"] = len(self._degraded)

    @property
    def degraded_blocks(self) -> frozenset:
        """Blocks that hit persistent I/O errors (read failed, or dirty
        data is being held in memory because writeback failed)."""
        return frozenset(self._degraded)

    def _writeback(self, bid: int, block: np.ndarray) -> None:
        def _do():
            mm = self._block_view(bid, "r+")
            mm[:] = block
            mm.flush()
            del mm

        self._with_retries("write", bid, _do)
        self.stats["writebacks"] += 1
        if bid in self._degraded:
            self._degraded.discard(bid)
            self.stats["degraded_blocks"] = len(self._degraded)

    def _read_block(self, bid: int) -> np.ndarray:
        def _do():
            mm = self._block_view(bid, "r")
            block = np.array(mm)  # resident copy; the mapping itself is dropped
            del mm
            return block

        return self._with_retries("read", bid, _do)

    def _get_block(self, bid: int) -> np.ndarray:
        block = self._pages.get(bid)
        if block is not None:
            self._pages.move_to_end(bid)
            self.stats["hits"] += 1
            return block
        self.stats["misses"] += 1
        while len(self._pages) >= self.max_pages:
            old_bid, old_block = self._pages.popitem(last=False)
            self.stats["evictions"] += 1
            if old_bid in self._dirty:
                try:
                    self._writeback(old_bid, old_block)
                    self._dirty.discard(old_bid)
                except PagedIOError:
                    # Never drop dirty data: pin the block back at MRU (still
                    # dirty, now degraded) and run one page over budget until
                    # a later writeback succeeds.
                    self._pages[old_bid] = old_block
                    self._pages.move_to_end(old_bid)
                    self._mark_degraded(old_bid)
                    _log.warning(
                        "paged.writeback_deferred", bid=old_bid, path=self.path
                    )
                    break
        try:
            block = self._read_block(bid)
        except PagedIOError:
            self._mark_degraded(bid)
            raise
        self._pages[bid] = block
        return block

    # -------------------------------------------------------------- row API
    def read_rows(self, rows) -> np.ndarray:
        """(len(rows), n_cols) gather, paging blocks in as needed."""
        rows = np.asarray(rows, dtype=np.int64)
        out = np.empty((len(rows), self.shape[1]), dtype=self.dtype)
        if len(rows) == 0:
            return out
        bids = rows // self.page_rows
        for bid in np.unique(bids):
            block = self._get_block(int(bid))
            sel = bids == bid
            out[sel] = block[rows[sel] - int(bid) * self.page_rows]
        return out

    def read_row(self, row: int) -> np.ndarray:
        """One row (a copy, like ``read_rows``)."""
        bid, off = divmod(int(row), self.page_rows)
        return self._get_block(bid)[off].copy()

    def write_rows(self, rows, values) -> None:
        """Scatter ``values`` into the matrix, marking touched blocks dirty."""
        rows = np.asarray(rows, dtype=np.int64)
        values = np.asarray(values, dtype=self.dtype)
        if len(rows) == 0:
            return
        bids = rows // self.page_rows
        for bid in np.unique(bids):
            bid = int(bid)
            block = self._get_block(bid)
            sel = bids == bid
            block[rows[sel] - bid * self.page_rows] = values[sel]
            self._dirty.add(bid)

    @property
    def resident_pages(self) -> int:
        return len(self._pages)

    @property
    def resident_nbytes(self) -> int:
        return sum(b.nbytes for b in self._pages.values())

    # ------------------------------------------------------------ lifecycle
    def flush(self) -> None:
        """Write every dirty resident block back to the file.

        A block whose writeback keeps failing stays dirty (and degraded);
        the first persistent failure is re-raised after every block has
        been attempted, so one bad block can't block the rest.
        """
        first_err: PagedIOError | None = None
        for bid in sorted(self._dirty):
            try:
                self._writeback(bid, self._pages[bid])
            except PagedIOError as exc:
                self._mark_degraded(bid)
                if first_err is None:
                    first_err = exc
                continue
            self._dirty.discard(bid)
        if first_err is not None:
            raise first_err

    def clear(self) -> None:
        """Drop resident pages and re-sparse the backing file (all zeros)."""
        self._pages.clear()
        self._dirty.clear()
        self._degraded.clear()
        self.stats["degraded_blocks"] = 0
        os.ftruncate(self._fd, 0)
        os.ftruncate(self._fd, max(self._nbytes, 1))

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._pages.clear()
        self._dirty.clear()
        try:
            os.close(self._fd)
        except OSError:
            pass
        try:
            os.unlink(self.path)
        except OSError:
            pass

    def __del__(self):  # pragma: no cover - best-effort cleanup
        try:
            self.close()
        except Exception:
            pass

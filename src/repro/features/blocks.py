"""Block-structured row assembly for columnar samples.

A RETINA candidate row is ``[peer | history | endogenous | tweet]`` where the
last two blocks are identical for every candidate of a cascade.  Samples
store the per-candidate block as an ``(n, d_cand)`` matrix and the shared
per-cascade block once as a ``(d_shared,)`` vector; full rows exist only
transiently, assembled here for exactly the rows a forward pass needs.
"""

from __future__ import annotations

import numpy as np

__all__ = ["assemble_rows"]


def assemble_rows(
    cand_block: np.ndarray, shared_block: np.ndarray, idx=None
) -> np.ndarray:
    """Materialise full feature rows ``[cand_block[i] | shared_block]``.

    Parameters
    ----------
    cand_block:
        (n, d_cand) per-row features.
    shared_block:
        (d_shared,) features tiled into every row.
    idx:
        Optional row selection (any numpy fancy index); ``None`` assembles
        all rows.

    Returns a fresh ``(len(idx), d_cand + d_shared)`` array whose values are
    bit-identical to concatenating the blocks row by row.
    """
    block = np.asarray(cand_block) if idx is None else np.asarray(cand_block)[idx]
    shared = np.asarray(shared_block)
    n, d_cand = block.shape
    out = np.empty((n, d_cand + shared.shape[0]), dtype=np.result_type(block, shared))
    out[:, :d_cand] = block
    out[:, d_cand:] = shared
    return out

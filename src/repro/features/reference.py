"""The seed per-candidate feature path, frozen as a reference.

This module preserves the original (pre-columnar) RETINA feature algorithm
verbatim: a fresh per-pair BFS for every candidate, per-user history blocks
computed one at a time, a single-document tf-idf transform per cascade, and
a Python loop over interval labels.  It exists so that

- the golden parity tests can assert the columnar pipeline reproduces the
  seed features bit-for-bit, and
- ``benchmarks/bench_feature_build.py`` can time before vs after on the
  same fitted extractor.

Nothing in the library's hot path imports this module.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted

__all__ = ["ReferenceSample", "build_sample_reference", "build_samples_reference"]


@dataclass
class ReferenceSample:
    """Dense seed-path sample: the tiled ``user_features`` matrix and labels."""

    candidate_set: object
    user_features: np.ndarray
    tweet_vec: np.ndarray
    news_vecs: np.ndarray
    news_tfidf: np.ndarray
    labels: np.ndarray
    interval_labels: np.ndarray | None = None


def _reference_user_block(base, user_id: int, cache: dict) -> dict:
    """Seed ``HateGenFeatureExtractor._user_block``, byte for byte.

    Recomputes the per-user history block from the raw world — deliberately
    independent of :class:`~repro.features.store.FeatureStore` so parity
    failures in the store cannot hide here.
    """
    cached = cache.get(user_id)
    if cached is not None:
        return cached
    world = base.world
    recent = world.user_history_before(user_id, 0.0, base.history_size)
    texts = [t.text for t in recent]
    joined = " ".join(texts)
    tfidf = (
        base.text_vectorizer_.transform([joined])[0]
        if joined
        else np.zeros(len(base.text_vectorizer_.vocabulary_))
    )
    n_hate = sum(t.is_hate for t in recent)
    n_non = len(recent) - n_hate
    hate_ratio = n_hate / (n_non + 1.0)
    lex_vec = base.lexicon.vector_over(texts)
    rts_hate = rts_non = n_rt_hate = n_rt_non = 0
    for c in world.cascades:
        if c.root.user_id != user_id:
            continue
        if c.root.is_hate:
            rts_hate += c.size
            n_rt_hate += 1 if c.size > 0 else 0
        else:
            rts_non += c.size
            n_rt_non += 1 if c.size > 0 else 0
    rt_count_ratio = rts_hate / (rts_non + 1.0)
    rt_tweet_ratio = n_rt_hate / (n_rt_non + 1.0)
    user = world.users[user_id]
    scalars = np.array(
        [
            hate_ratio,
            rt_count_ratio,
            rt_tweet_ratio,
            float(world.network.follower_count(user_id)),
            user.account_age_days / 365.0,
            float(len({t.hashtag for t in recent})),
        ]
    )
    if texts:
        doc_vecs = [base.doc2vec_.infer_vector(t, random_state=0) for t in texts[-5:]]
        mean_vec = np.mean(doc_vecs, axis=0)
    else:
        mean_vec = np.zeros(base.doc2vec_dim)
    block = {"history": np.concatenate([tfidf, lex_vec, scalars]), "doc_vec": mean_vec}
    cache[user_id] = block
    return block


def build_sample_reference(
    extractor,
    cascade,
    *,
    interval_edges_hours=None,
    candidate_set=None,
    random_state=None,
    _user_cache: dict | None = None,
):
    """Seed ``RetinaFeatureExtractor.build_sample``: one candidate at a time."""
    from repro.diffusion.cascade import build_candidate_set

    check_fitted(extractor, "base_")
    base = extractor.base_
    rng = ensure_rng(
        random_state if random_state is not None else extractor.random_state
    )
    cs = candidate_set or build_candidate_set(
        cascade,
        extractor.world.network,
        n_negatives=extractor.n_negatives,
        random_state=rng,
    )
    root = cascade.root
    # Seed tweet block: one single-document transform per cascade.
    tfidf = extractor.tweet_vectorizer_.transform([root.text])[0]
    tweet_block = np.concatenate([tfidf, base.lexicon.vector(root.text)])
    endo = base._endogen_block(root.timestamp)
    cache = _user_cache if _user_cache is not None else {}
    rows = []
    for uid in cs.users:
        hist = _reference_user_block(base, uid, cache)["history"]
        # Seed peer block: a fresh BFS per (root, candidate) pair.
        spl = extractor.world.network.shortest_path_length(
            root.user_id, uid, cutoff=4
        )
        prior = extractor._retweeted_before.get((root.user_id, uid), 0)
        peer = np.array([float(spl), float(prior)])
        rows.append(np.concatenate([peer, hist, endo, tweet_block]))
    user_features = np.stack(rows)
    tweet_vec = base.doc2vec_.infer_vector(root.text, random_state=0)
    news_vecs = extractor._news_vectors(root.timestamp)
    news_tfidf = base._exogen_block(root.timestamp)

    interval_labels = None
    if interval_edges_hours is not None:
        edges = np.asarray(interval_edges_hours, dtype=np.float64)
        n_int = len(edges) - 1
        interval_labels = np.zeros((len(cs.users), n_int))
        rt_time = {r.user_id: r.timestamp - root.timestamp for r in cascade.retweets}
        for i, uid in enumerate(cs.users):
            dt = rt_time.get(uid)
            if dt is None:
                continue
            j = int(np.searchsorted(edges, dt, side="right")) - 1
            j = min(max(j, 0), n_int - 1)
            interval_labels[i, j] = 1.0
    return ReferenceSample(
        candidate_set=cs,
        user_features=user_features,
        tweet_vec=tweet_vec,
        news_vecs=news_vecs,
        news_tfidf=news_tfidf,
        labels=cs.labels.astype(np.float64),
        interval_labels=interval_labels,
    )


def build_samples_reference(
    extractor,
    cascades,
    *,
    interval_edges_hours=None,
    random_state=None,
    user_cache: dict | None = None,
):
    """Seed ``build_samples``: the per-candidate path over a cascade list.

    User blocks are cached across cascades (matching the seed extractor's
    lifetime cache) but never shared with the columnar store, so parity
    checks stay independent.  Pass ``user_cache`` to keep the cache across
    calls — the benchmark uses that to time the warm steady state.
    """
    rng = ensure_rng(
        random_state if random_state is not None else extractor.random_state
    )
    cache: dict = user_cache if user_cache is not None else {}
    return [
        build_sample_reference(
            extractor,
            c,
            interval_edges_hours=interval_edges_hours,
            random_state=rng,
            _user_cache=cache,
        )
        for c in cascades
    ]

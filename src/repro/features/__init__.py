"""Columnar, block-structured feature pipeline (paper Sec. IV / V-A).

``repro.features`` is the shared substrate under both prediction tasks:

- :class:`FeatureStore` — dense/CSR per-user feature arrays (history
  matrix, mean Doc2Vec vectors, prior-retweet counts, cached single-source
  peer distances), built once per fitted extractor and shared by
  ``repro.core.retina``, ``repro.core.hategen`` and ``repro.serving``;
- :func:`assemble_rows` — lazy assembly of block-structured sample rows,
  so per-cascade blocks are stored once instead of tiled per candidate;
- :func:`build_sample_reference` / :func:`build_samples_reference` — the
  frozen seed per-candidate path, kept for golden parity tests and the
  before/after feature-build benchmark.
"""

from repro.features.blocks import assemble_rows
from repro.features.reference import (
    ReferenceSample,
    build_sample_reference,
    build_samples_reference,
)
from repro.features.store import FeatureStore

__all__ = [
    "FeatureStore",
    "assemble_rows",
    "ReferenceSample",
    "build_sample_reference",
    "build_samples_reference",
]

"""Columnar per-user feature store shared by the RETINA and hate-gen paths.

The paper's per-candidate features decompose into blocks that depend only on
the user (activity history H_{i,t}, mean Doc2Vec vector), only on the
(root, candidate) pair (peer distance, prior retweets), or only on the
cascade (endogenous/tweet blocks).  The seed pipeline recomputed or
re-looked-up these one candidate at a time; :class:`FeatureStore` keeps them
as dense matrices and CSR arrays keyed by user id so whole candidate lists
are a fancy-index away:

- ``history`` — (n_users, d_hist) dense matrix of per-user history blocks,
  filled lazily in *batches* (one tf-idf transform per ``ensure`` call);
- ``doc_vecs`` — (n_users, d2v) mean Doc2Vec vectors for the topic feature;
- prior-retweet counts — CSR over (root user, candidate) pairs, looked up
  for a whole candidate list with one ``searchsorted``;
- peer distances — one single-source BFS per root user
  (:meth:`InformationNetwork.distances_from`), cached across cascades that
  share a root.

Every value is bit-identical to the seed per-candidate computation: batch
tf-idf rows equal single-document rows, BFS layers equal per-pair BFS hop
counts, and scalar features are computed with the same expressions in the
same order.
"""

from __future__ import annotations

import os

import numpy as np

from repro.features.paged import PagedIOError, PagedMatrix, ValidityBitmap
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.parallel import ShmArena, WorkerPool, resolve_workers

__all__ = ["FeatureStore"]

_log = obs_log.get_logger("repro.features.store")

_DEGRADED_READS = obs_metrics.REGISTRY.counter(
    "repro_store_degraded_reads_total",
    "Paged feature reads served by recomputing rows after block I/O failure.",
    labels=("matrix",),
)

_INVALIDATIONS = obs_metrics.REGISTRY.counter(
    "repro_store_invalidations_total",
    "Feature-store structures surgically invalidated by ingested events.",
    labels=("structure",),
)

#: Scalars appended to each user's history block, in seed order: hate ratio,
#: retweet-count ratio, retweeted-tweet ratio, follower count, account age
#: (years), number of distinct recent hashtags.
N_HISTORY_SCALARS = 6

#: Byte budget for cached frozen-path BFS distance arrays (int16 per user).
_DIST_ARRAY_CACHE_BYTES = 64 << 20


class _IdentityIndex:
    """user id -> store row for the contiguous ``0..n-1`` id space.

    World-scale stores would otherwise pay a million-entry Python dict just
    to map ``uid`` to ``uid``.  Implements the mapping surface the store
    uses (``[]``, ``get``, ``in``).
    """

    __slots__ = ("n",)

    def __init__(self, n: int):
        self.n = int(n)

    def __getitem__(self, u: int) -> int:
        i = int(u)
        if 0 <= i < self.n:
            return i
        raise KeyError(u)

    def get(self, u, default=None):
        i = int(u)
        return i if 0 <= i < self.n else default

    def __contains__(self, u) -> bool:
        i = int(u)
        return 0 <= i < self.n


class FeatureStore:
    """Dense/CSR per-user feature arrays over one synthetic world.

    Parameters
    ----------
    world:
        The :class:`~repro.data.synthetic.SyntheticWorld` to index.
    text_vectorizer / lexicon / doc2vec:
        The fitted text models of the owning extractor; user blocks are
        computed with these, so the store is built at ``fit``/``from_state``
        time.
    history_size:
        Recent-tweet window of H_{i,t} (paper: 30).
    doc2vec_dim:
        Dimensionality of the mean user Doc2Vec vector.
    workers:
        Default worker count for batched :meth:`ensure` fills (``None``
        resolves through ``REPRO_NUM_WORKERS``, then 1).  Parallel fills
        are bit-identical to serial ones for every worker count: each
        user's block is a pure function of that user's history.
    storage:
        ``"dense"`` (default) keeps resident ``(n_users, d)`` matrices —
        the historical layout.  ``"paged"`` backs both matrices with
        memory-mapped :class:`~repro.features.paged.PagedMatrix` files and
        a bounded LRU of row blocks, so resident memory follows the page
        budget (``REPRO_FEATURE_PAGE_ROWS`` × ``REPRO_FEATURE_MAX_PAGES``)
        instead of world size.  Every value read back is bit-identical
        between modes.  ``None`` resolves through
        ``REPRO_FEATURE_STORAGE``, then ``"dense"``.
    """

    def __init__(
        self,
        world,
        *,
        text_vectorizer,
        lexicon,
        doc2vec,
        history_size: int,
        doc2vec_dim: int,
        workers: int | None = None,
        storage: str | None = None,
    ):
        self.world = world
        self.workers = workers
        self.text_vectorizer = text_vectorizer
        self.lexicon = lexicon
        self.doc2vec = doc2vec
        self.history_size = history_size
        self.doc2vec_dim = doc2vec_dim
        storage = storage or os.environ.get("REPRO_FEATURE_STORAGE", "dense")
        if storage not in ("dense", "paged"):
            raise ValueError(f"unknown feature storage {storage!r}")
        self.storage = storage

        user_ids = getattr(world.users, "user_ids", None)
        if user_ids is not None:
            self._uids = np.asarray(user_ids, dtype=np.int64)
        else:
            self._uids = np.array(sorted(world.users), dtype=np.int64)
        n = len(self._uids)
        if n and self._uids[0] == 0 and self._uids[-1] == n - 1:
            self._index = _IdentityIndex(n)
        else:
            self._index = {int(u): i for i, u in enumerate(self._uids)}
        d_text = len(text_vectorizer.vocabulary_)
        self._d_hist = d_text + len(lexicon) + N_HISTORY_SCALARS
        if storage == "paged":
            page_rows = int(os.environ.get("REPRO_FEATURE_PAGE_ROWS", "256"))
            max_pages = int(os.environ.get("REPRO_FEATURE_MAX_PAGES", "64"))
            self.history = PagedMatrix(
                n, self._d_hist, page_rows=page_rows, max_pages=max_pages
            )
            self.doc_vecs = PagedMatrix(
                n, doc2vec_dim, page_rows=page_rows, max_pages=max_pages
            )
        else:
            self.history = np.zeros((n, self._d_hist))
            self.doc_vecs = np.zeros((n, doc2vec_dim))
        self._built = ValidityBitmap(n)

        # One pass over the world: in-window tweets grouped per user (order
        # preserved, mirroring ``user_history_before``) and retweet-reception
        # sums per root user (the seed recomputed these per user per block).
        in_window: dict[int, list] = {}
        for tw in world.tweets:
            in_window.setdefault(tw.user_id, []).append(tw)
        self._in_window = in_window
        self._rts_hate = np.zeros(n, dtype=np.int64)
        self._rts_non = np.zeros(n, dtype=np.int64)
        self._n_rt_hate = np.zeros(n, dtype=np.int64)
        self._n_rt_non = np.zeros(n, dtype=np.int64)
        for c in world.cascades:
            i = self._index.get(c.root.user_id)
            if i is None:
                continue
            if c.root.is_hate:
                self._rts_hate[i] += c.size
                self._n_rt_hate[i] += 1 if c.size > 0 else 0
            else:
                self._rts_non[i] += c.size
                self._n_rt_non[i] += 1 if c.size > 0 else 0

        # Prior-retweet CSR (set by the RETINA extractor from its train split).
        self._prior_indptr: np.ndarray | None = None
        self._prior_cols: np.ndarray | None = None
        self._prior_data: np.ndarray | None = None

        # Single-source BFS results keyed by (root, cutoff).  FIFO-capped:
        # the per-root dicts are the store's only large variable-size
        # entries, and a long-running server must not grow without bound.
        self._dist_cache: dict[tuple[int, int], dict[int, int]] = {}
        self._dist_cache_cap = 4096
        # Frozen-network counterpart: int16 per-row distance arrays, capped
        # by bytes (a per-root dict at 10^6 users would be ~100x larger).
        self._dist_arr_cache: dict[tuple[int, int], np.ndarray] = {}
        self._dist_arr_cache_cap = max(1, _DIST_ARRAY_CACHE_BYTES // max(1, 2 * n))
        # Doc2Vec tweet embeddings keyed by tweet text (inference is
        # deterministic at random_state=0 and depends only on the text, so
        # rebuilds and serving share it and edited copies can never alias).
        self._tweet_vec_cache: dict[str, np.ndarray] = {}
        #: Reads served by recomputation after persistent paged I/O failure.
        self.degraded_reads = 0
        #: Highest event-log sequence number already reflected here.  A
        #: store built over an already-replayed world starts at that
        #: world's watermark — its init pass saw those events' effects.
        self._applied_seq = int(getattr(world, "_store_watermark", 0))

    # ---------------------------------------------------------------- sizes
    @property
    def n_users(self) -> int:
        return len(self._uids)

    @property
    def history_dim(self) -> int:
        """Width of one user history block."""
        return self._d_hist

    # ------------------------------------------------------- history blocks
    def _recent(self, uid: int) -> list:
        """The user's ``history_size`` most recent tweets before t=0.

        Mirrors ``SyntheticWorld.user_history_before(uid, 0.0, k)`` exactly
        (pool order, stable sort) but reads the pre-grouped in-window index
        instead of scanning every world tweet per user.
        """
        pool = list(self.world.history.get(uid, []))
        pool.extend(self._in_window.get(uid, []))
        pool = [tw for tw in pool if tw.timestamp < 0.0]
        pool.sort(key=lambda tw: tw.timestamp)
        return pool[-self.history_size :]

    def _user_blocks(self, missing: list[int]) -> tuple[np.ndarray, np.ndarray]:
        """(history rows, mean Doc2Vec rows) for a list of unbuilt users.

        The tf-idf transform of the joined history texts — the widest part
        of the block — runs once over the whole list; each row of a batch
        transform is bit-identical to the single-document transform the
        seed path ran, and every other block is a pure function of one
        user's history, so any partition of ``missing`` produces identical
        rows (what makes the parallel fill exact).
        """
        recents = {uid: self._recent(uid) for uid in missing}
        joined = [" ".join(t.text for t in recents[uid]) for uid in missing]
        tfidf = self.text_vectorizer.transform(joined)
        hist = np.empty((len(missing), self._d_hist))
        docv = np.zeros((len(missing), self.doc2vec_dim))
        world = self.world
        for k, uid in enumerate(missing):
            i = self._index[uid]
            recent = recents[uid]
            texts = [t.text for t in recent]
            n_hate = sum(t.is_hate for t in recent)
            n_non = len(recent) - n_hate
            hate_ratio = n_hate / (n_non + 1.0)
            lex_vec = self.lexicon.vector_over(texts)
            rt_count_ratio = int(self._rts_hate[i]) / (int(self._rts_non[i]) + 1.0)
            rt_tweet_ratio = int(self._n_rt_hate[i]) / (int(self._n_rt_non[i]) + 1.0)
            user = world.users[uid]
            scalars = np.array(
                [
                    hate_ratio,
                    rt_count_ratio,
                    rt_tweet_ratio,
                    float(world.network.follower_count(uid)),
                    user.account_age_days / 365.0,
                    float(len({t.hashtag for t in recent})),
                ]
            )
            hist[k] = np.concatenate([tfidf[k], lex_vec, scalars])
            if texts:
                # Batched inference kernel; bit-identical to per-document
                # infer_vector calls with the same fixed seed.
                doc_vecs = self.doc2vec.transform(texts[-5:], random_state=0)
                docv[k] = np.mean(doc_vecs, axis=0)
        return hist, docv

    def _user_blocks_parallel(
        self, missing: list[int], n_workers: int
    ) -> tuple[np.ndarray, np.ndarray]:
        """Partition ``missing`` across forked workers writing into shm."""
        m = len(missing)
        arena = ShmArena(
            ShmArena.nbytes_for(
                ((m, self._d_hist), np.float64), ((m, self.doc2vec_dim), np.float64)
            )
        )
        hist = arena.alloc((m, self._d_hist))
        docv = arena.alloc((m, self.doc2vec_dim))
        cuts = np.linspace(0, m, n_workers + 1).astype(np.int64)
        bounds = [(int(lo), int(hi)) for lo, hi in zip(cuts[:-1], cuts[1:]) if hi > lo]

        def _fill(b):
            lo, hi = b
            h, v = self._user_blocks(missing[lo:hi])
            hist[lo:hi] = h
            docv[lo:hi] = v
            return hi - lo

        try:
            with WorkerPool(n_workers, {"fill": _fill}, name="repro-features") as pool:
                pool.map("fill", bounds)
            return hist.copy(), docv.copy()
        finally:
            arena.release()

    def ensure(self, user_ids, workers: int | None = None) -> None:
        """Compute history blocks for any not-yet-built users, in one batch.

        With ``workers`` (or the store/``REPRO_NUM_WORKERS`` default) > 1
        and enough missing users to amortise a fork, the list is split into
        contiguous per-worker slices whose rows are written straight into a
        shared-memory matrix — bit-identical to the serial fill.
        """
        missing = [
            int(u) for u in dict.fromkeys(user_ids) if not self._built[self._index[u]]
        ]
        if not missing:
            return
        n = resolve_workers(workers if workers is not None else self.workers)
        if n > 1 and len(missing) >= max(8, 2 * n):
            hist, docv = self._user_blocks_parallel(missing, n)
        else:
            hist, docv = self._user_blocks(missing)
        idx = np.fromiter(
            (self._index[u] for u in missing), dtype=np.int64, count=len(missing)
        )
        if self.storage == "paged":
            self.history.write_rows(idx, hist)
            self.doc_vecs.write_rows(idx, docv)
        else:
            self.history[idx] = hist
            self.doc_vecs[idx] = docv
        self._built[idx] = True

    def _rebuild_rows(self, idx: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Recompute (history, doc-vec) rows for store indices ``idx``.

        ``_user_blocks`` is a pure function of one user's world state, so
        the recomputed rows are bit-identical to what the paged file held —
        this is the degraded-read path when block I/O fails persistently.
        """
        uids = [int(self._uids[i]) for i in idx]
        return self._user_blocks(uids)

    def _degraded_read(self, matrix, which: str, idx: np.ndarray) -> np.ndarray:
        """Serve a failed paged read by rebuilding the rows from the world."""
        _DEGRADED_READS.inc(matrix=which)
        self.degraded_reads += 1
        _log.warning("store.degraded_read", matrix=which, n_rows=int(len(idx)))
        hist, docv = self._rebuild_rows(idx)
        values = hist if which == "history" else docv
        try:  # heal the backing store when the fault was transient
            matrix.write_rows(idx, values)
        except PagedIOError:
            pass
        return values

    def history_rows(self, user_ids) -> np.ndarray:
        """(n, d_hist) history blocks for a user list (built on demand).

        Paged storage: a block read that fails after retries is served by
        recomputing the rows through the builder path (bit-identical) —
        the request degrades to slower, never to an error.
        """
        self.ensure(user_ids)
        idx = np.fromiter(
            (self._index[u] for u in user_ids), dtype=np.int64, count=len(user_ids)
        )
        if self.storage == "paged":
            try:
                return self.history.read_rows(idx)
            except PagedIOError:
                return self._degraded_read(self.history, "history", idx)
        return self.history[idx]

    def user_block(self, user_id: int) -> dict:
        """Seed-shaped ``{"history": ..., "doc_vec": ...}`` for one user."""
        self.ensure([user_id])
        i = self._index[user_id]
        if self.storage == "paged":
            idx = np.array([i], dtype=np.int64)
            try:
                history = self.history.read_row(i)
            except PagedIOError:
                history = self._degraded_read(self.history, "history", idx)[0]
            try:
                doc_vec = self.doc_vecs.read_row(i)
            except PagedIOError:
                doc_vec = self._degraded_read(self.doc_vecs, "doc_vecs", idx)[0]
            return {"history": history, "doc_vec": doc_vec}
        return {"history": self.history[i], "doc_vec": self.doc_vecs[i]}

    def doc_vec(self, user_id: int) -> np.ndarray:
        """Mean Doc2Vec vector of one user's recent history."""
        self.ensure([user_id])
        if self.storage == "paged":
            i = self._index[user_id]
            try:
                return self.doc_vecs.read_row(i)
            except PagedIOError:
                idx = np.array([i], dtype=np.int64)
                return self._degraded_read(self.doc_vecs, "doc_vecs", idx)[0]
        return self.doc_vecs[self._index[user_id]]

    def tweet_vec(self, tweet) -> np.ndarray:
        """Cached deterministic Doc2Vec embedding of one tweet's text."""
        vec = self._tweet_vec_cache.get(tweet.text)
        if vec is None:
            vec = self.doc2vec.infer_vector(tweet.text, random_state=0)
            self._tweet_vec_cache[tweet.text] = vec
        return vec

    # ------------------------------------------------------- prior retweets
    def set_prior_retweets(self, counts: dict[tuple[int, int], int]) -> None:
        """Index (root user, candidate) -> prior-retweet count as CSR arrays.

        ``counts`` comes from the RETINA extractor's train split; rows are
        root users, columns candidates, both in store index space.
        """
        triples = sorted(
            (self._index[ru], self._index[cu], int(n))
            for (ru, cu), n in counts.items()
            if ru in self._index and cu in self._index
        )
        n = self.n_users
        indptr = np.zeros(n + 1, dtype=np.int64)
        cols = np.empty(len(triples), dtype=np.int64)
        data = np.empty(len(triples), dtype=np.int64)
        for k, (ri, ci, cnt) in enumerate(triples):
            indptr[ri + 1] += 1
            cols[k] = ci
            data[k] = cnt
        self._prior_indptr = np.cumsum(indptr)
        self._prior_cols = cols
        self._prior_data = data

    def prior_counts(self, root_user: int, user_ids) -> np.ndarray:
        """(n,) prior-retweet counts of each candidate toward ``root_user``."""
        out = np.zeros(len(user_ids))
        if self._prior_indptr is None:
            return out
        ri = self._index.get(root_user)
        if ri is None:
            return out
        lo, hi = self._prior_indptr[ri], self._prior_indptr[ri + 1]
        if hi == lo:
            return out
        cols = self._prior_cols[lo:hi]
        data = self._prior_data[lo:hi]
        tgt = np.fromiter(
            (self._index.get(u, -1) for u in user_ids),
            dtype=np.int64,
            count=len(user_ids),
        )
        pos = np.searchsorted(cols, tgt)
        pos_c = np.minimum(pos, len(cols) - 1)
        found = (cols[pos_c] == tgt) & (pos < len(cols))
        out[found] = data[pos_c[found]]
        return out

    # -------------------------------------------------------- peer features
    def distances(self, source: int, cutoff: int = 4) -> dict[int, int]:
        """Cached single-source BFS distances from ``source``."""
        key = (source, cutoff)
        cached = self._dist_cache.get(key)
        if cached is None:
            cached = self.world.network.distances_from(source, cutoff)
            while len(self._dist_cache) >= self._dist_cache_cap:
                self._dist_cache.pop(next(iter(self._dist_cache)))
            self._dist_cache[key] = cached
        return cached

    def distance_array(self, source: int, cutoff: int = 4) -> np.ndarray:
        """Cached (n,) int16 BFS distances per CSR row (frozen networks).

        ``cutoff + 1`` marks unreached rows — value-identical to
        ``distances(source, cutoff).get(uid, cutoff + 1)`` for every user,
        at ~2 bytes/user instead of a Python dict entry.
        """
        key = (source, cutoff)
        cached = self._dist_arr_cache.get(key)
        if cached is None:
            cached = self.world.network.distances_array_from(source, cutoff)
            while len(self._dist_arr_cache) >= self._dist_arr_cache_cap:
                self._dist_arr_cache.pop(next(iter(self._dist_arr_cache)))
            self._dist_arr_cache[key] = cached
        return cached

    def peer_block(self, root_user: int, user_ids, cutoff: int = 4) -> np.ndarray:
        """(n, 2) peer block [shortest path, prior retweets] for a user list.

        One BFS from the root covers every candidate; the seed path ran one
        BFS per (root, candidate) pair.  Frozen networks use the vectorised
        array BFS and a row gather; unfrozen ones the per-root dict — the
        two produce identical values.
        """
        far = cutoff + 1
        network = self.world.network
        if getattr(network, "is_frozen", False):
            arr = self.distance_array(root_user, cutoff)
            rows = network.row_index(user_ids)
            spl = np.where(rows >= 0, arr[np.maximum(rows, 0)], far).astype(np.float64)
        else:
            dist = self.distances(root_user, cutoff)
            spl = np.fromiter(
                (dist.get(u, far) for u in user_ids),
                dtype=np.float64,
                count=len(user_ids),
            )
        return np.stack([spl, self.prior_counts(root_user, user_ids)], axis=1)

    # ----------------------------------------------------------- live ingest
    def _invalidate_distances(self, followee: int, follower: int) -> int:
        """Drop cached BFS results a new ``followee -> follower`` edge stales.

        A cached distance map/array from source ``s`` changes only when the
        new edge shortens the follower's distance: ``d_s(followee) + 1 <
        d_s(follower)`` (absent/unreached = ``cutoff + 1``).  Everything
        else keeps serving — distances elsewhere cannot shrink through an
        edge that doesn't improve its own endpoint.
        """
        dropped = 0
        stale_keys = [
            key
            for key, dmap in self._dist_cache.items()
            if dmap.get(followee, key[1] + 1) + 1 < dmap.get(follower, key[1] + 1)
        ]
        for key in stale_keys:
            del self._dist_cache[key]
        dropped += len(stale_keys)
        if self._dist_arr_cache:
            network = self.world.network
            erow = network._row(followee) if getattr(network, "is_frozen", False) else -1
            frow = network._row(follower) if erow >= 0 else -1
            if erow < 0 or frow < 0:
                dropped += len(self._dist_arr_cache)
                self._dist_arr_cache.clear()
            else:
                stale = [
                    key
                    for key, arr in self._dist_arr_cache.items()
                    if int(arr[erow]) + 1 < int(arr[frow])
                ]
                for key in stale:
                    del self._dist_arr_cache[key]
                dropped += len(stale)
        return dropped

    def apply_events(self, stored_events) -> dict[str, int]:
        """Surgically fold already-world-applied events into the store.

        Call *after* :func:`repro.store.apply_events_to_world` mutated this
        store's world.  Guarded by a per-store watermark, so overlapping
        batches (and stores sharing one world) are safe.  Rebuilding a
        dirtied history row later reads the updated counters/world, so the
        row is bit-identical to a cold build over the mutated world.

        Returns per-structure invalidation counts (also exported on the
        ``repro_store_invalidations_total`` counter).
        """
        counts = {
            "history_row": 0,
            "retweet_counts": 0,
            "distance_cache": 0,
            "in_window": 0,
        }
        events = [s for s in stored_events if s.seq > self._applied_seq]
        if not events:
            return counts
        cascade_index = getattr(self.world, "_store_cascade_index", None) or {}
        # Pre-scan so each retweet knows its cascade's size *before* it:
        # by the time we run, the world already holds the whole batch.
        batch_rts: dict[int, int] = {}
        for s in events:
            if s.event.kind == "retweet":
                batch_rts[s.event.tweet_id] = batch_rts.get(s.event.tweet_id, 0) + 1
        seen_rts: dict[int, int] = {}
        dirty_rows: set[int] = set()
        for s in events:
            ev = s.event
            if ev.kind == "tweet":
                cascade = cascade_index.get(ev.tweet_id)
                if cascade is not None:
                    bucket = self._in_window.setdefault(ev.user_id, [])
                    if all(t is not cascade.root for t in bucket):
                        bucket.append(cascade.root)
                        counts["in_window"] += 1
                i = self._index.get(ev.user_id)
                if i is not None:
                    dirty_rows.add(int(i))
            elif ev.kind == "retweet":
                cascade = cascade_index.get(ev.tweet_id)
                if cascade is None:
                    continue
                seen = seen_rts.get(ev.tweet_id, 0)
                pre_size = cascade.size - batch_rts[ev.tweet_id] + seen
                seen_rts[ev.tweet_id] = seen + 1
                i = self._index.get(cascade.root.user_id)
                if i is None:
                    continue
                if cascade.root.is_hate:
                    self._rts_hate[i] += 1
                    if pre_size == 0:
                        self._n_rt_hate[i] += 1
                else:
                    self._rts_non[i] += 1
                    if pre_size == 0:
                        self._n_rt_non[i] += 1
                counts["retweet_counts"] += 1
                dirty_rows.add(int(i))
            elif ev.kind == "follow":
                # The followee's history row embeds their follower count.
                i = self._index.get(ev.followee)
                if i is not None:
                    dirty_rows.add(int(i))
                counts["distance_cache"] += self._invalidate_distances(
                    ev.followee, ev.follower
                )
            # hashtag events touch no store structure: catalog membership
            # is pinned at the extractor layer.
        for i in dirty_rows:
            self._built[i] = False
        counts["history_row"] = len(dirty_rows)
        self._applied_seq = events[-1].seq
        for structure, n in counts.items():
            if n:
                _INVALIDATIONS.inc(n, structure=structure)
        return counts

    # ------------------------------------------------------------ lifecycle
    def invalidate(self) -> None:
        """Drop every lazily built block and BFS result (for benchmarks)."""
        self._built[:] = False
        if self.storage == "paged":
            self.history.clear()
            self.doc_vecs.clear()
        else:
            self.history[:] = 0.0
            self.doc_vecs[:] = 0.0
        self._dist_cache.clear()
        self._dist_arr_cache.clear()
        self._tweet_vec_cache.clear()

    def close(self) -> None:
        """Release paged backing files (no-op for dense storage)."""
        if self.storage == "paged":
            self.history.close()
            self.doc_vecs.close()

"""Online inference: model registry, micro-batching engine, HTTP API v1.

Turns trained pipelines into persistent, low-latency prediction services:

- :mod:`repro.serving.registry` — versioned on-disk bundles (weights +
  fitted feature-extractor state + manifest metadata) with aliases;
- :mod:`repro.serving.schemas` — declarative request/response schemas,
  one validation layer shared by server, engine, and client;
- :mod:`repro.serving.engine` — predictors with vectorised micro-batching,
  LRU feature caches, and atomic model hot-swap;
- :mod:`repro.serving.server` — stdlib ``ThreadingHTTPServer`` JSON API
  (``/v1/predict/{kind}``, ``/v1/batch/{kind}``, ``/v1/models*``,
  ``/v1/healthz``, ``/v1/metrics``; legacy unversioned routes kept via a
  deprecation shim).

The matching Python client lives in :mod:`repro.client`.
"""

from repro.serving.cache import LRUCache
from repro.serving.engine import (
    HateGenPredictor,
    InferenceEngine,
    RetweeterPredictor,
    ServingError,
    engine_from_store,
    predictor_for_bundle,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import (
    HateGenBundle,
    ModelRegistry,
    RegistryError,
    RetinaBundle,
)
from repro.serving.server import PredictionServer, serve_forever
from repro.serving import schemas

__all__ = [
    "LRUCache",
    "ServingMetrics",
    "ModelRegistry",
    "RegistryError",
    "RetinaBundle",
    "HateGenBundle",
    "RetweeterPredictor",
    "HateGenPredictor",
    "InferenceEngine",
    "ServingError",
    "PredictionServer",
    "serve_forever",
    "engine_from_store",
    "predictor_for_bundle",
    "schemas",
]

"""Online inference: model registry, micro-batching engine, HTTP API.

Turns trained pipelines into persistent, low-latency prediction services:

- :mod:`repro.serving.registry` — versioned on-disk bundles (weights +
  fitted feature-extractor state + manifest metadata);
- :mod:`repro.serving.engine` — predictors with vectorised micro-batching
  and LRU feature caches;
- :mod:`repro.serving.server` — stdlib ``ThreadingHTTPServer`` JSON API
  (``/predict/retweeters``, ``/predict/hategen``, ``/healthz``,
  ``/metrics``).
"""

from repro.serving.cache import LRUCache
from repro.serving.engine import (
    HateGenPredictor,
    InferenceEngine,
    RetweeterPredictor,
    ServingError,
    engine_from_store,
    predictor_for_bundle,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import HateGenBundle, ModelRegistry, RetinaBundle
from repro.serving.server import PredictionServer, serve_forever

__all__ = [
    "LRUCache",
    "ServingMetrics",
    "ModelRegistry",
    "RetinaBundle",
    "HateGenBundle",
    "RetweeterPredictor",
    "HateGenPredictor",
    "InferenceEngine",
    "ServingError",
    "PredictionServer",
    "serve_forever",
    "engine_from_store",
    "predictor_for_bundle",
]

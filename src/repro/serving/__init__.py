"""Online inference: model registry, micro-batching engine, HTTP API v1.

Turns trained pipelines into persistent, low-latency prediction services:

- :mod:`repro.serving.registry` — versioned on-disk bundles (weights +
  fitted feature-extractor state + manifest metadata) with aliases;
- :mod:`repro.serving.schemas` — declarative request/response schemas,
  one validation layer shared by server, engine, and client;
- :mod:`repro.serving.engine` — predictors with vectorised micro-batching,
  LRU feature caches, and atomic model hot-swap;
- :mod:`repro.serving.routes` — the front-end-agnostic route core (one
  handler table, error shaping, legacy deprecation shim) shared by both
  HTTP front ends;
- :mod:`repro.serving.aio` — the HTTP front end: a single-event-loop
  ``asyncio`` HTTP/1.1 server (keep-alive, pipelining, future bridging
  into the micro-batcher) answering ``/v1/predict/{kind}``,
  ``/v1/batch/{kind}``, ``/v1/models*``, ``/v1/healthz``,
  ``/v1/metrics`` (legacy unversioned routes kept via a deprecation
  shim).  The classic ``ThreadingHTTPServer`` front end was retired
  after its deprecation window; ``PredictionServer``/``serve_forever``
  remain as aliases of the asyncio implementations;
- :mod:`repro.serving.admission` — bounded accept queue, per-route and
  per-tenant token buckets, and watermark-hysteresis load shedding
  (429 + ``Retry-After``) driven by the engine's live queue signals.

The matching Python client lives in :mod:`repro.client`.
"""

from repro.serving.admission import (
    AdmissionConfig,
    AdmissionController,
    TokenBucket,
)
from repro.serving.aio import AsyncPredictionServer, serve_forever_async
from repro.serving.cache import LRUCache
from repro.serving.engine import (
    HateGenPredictor,
    InferenceEngine,
    RetweeterPredictor,
    ServingError,
    engine_from_store,
    predictor_for_bundle,
)
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import (
    HateGenBundle,
    ModelRegistry,
    RegistryCorruptError,
    RegistryError,
    RetinaBundle,
)
from repro.serving.routes import RouteCore
from repro.serving import schemas

# Compatibility aliases from the retired threaded front end: the asyncio
# server is a drop-in (same constructor and lifecycle surface).
PredictionServer = AsyncPredictionServer
serve_forever = serve_forever_async

__all__ = [
    "AdmissionConfig",
    "AdmissionController",
    "AsyncPredictionServer",
    "RouteCore",
    "TokenBucket",
    "serve_forever_async",
    "LRUCache",
    "ServingMetrics",
    "ModelRegistry",
    "RegistryCorruptError",
    "RegistryError",
    "RetinaBundle",
    "HateGenBundle",
    "RetweeterPredictor",
    "HateGenPredictor",
    "InferenceEngine",
    "ServingError",
    "PredictionServer",
    "serve_forever",
    "engine_from_store",
    "predictor_for_bundle",
    "schemas",
]

"""Asyncio HTTP/1.1 front-end for the inference engine — API v1.

The server drives the front-end-agnostic
:class:`~repro.serving.routes.RouteCore` (which owns every ``/v1/*``
route, error shape, and the legacy deprecation shim); the transport is a
single event loop on :func:`asyncio.start_server`:

- hand-rolled HTTP/1.1 parsing (request line + headers via
  ``readline``), keep-alive by default, and pipelined requests served
  in order straight out of the reader buffer;
- engine hand-off via :func:`asyncio.wrap_future` around the
  ``concurrent.futures.Future`` that :meth:`InferenceEngine.submit`
  already returns — the event loop *awaits* the micro-batcher without
  parking a thread per in-flight request, so thousands of concurrent
  requests cost coroutines, not stacks;
- admission control (:mod:`repro.serving.admission`) runs after route
  resolution but before the body is read, so a shed request costs one
  decision and one small write;
- the only executor hop is ``asyncio.to_thread`` around model reloads,
  which genuinely block (bundle deserialisation).

The event loop runs in a daemon thread so synchronous callers (tests,
the benchmark, the CLI) use this class like any blocking server:
``start()``/``stop()``, ``with`` support, ``port=0`` for an ephemeral
port.  (The historical ``ThreadingHTTPServer`` front end was retired
after its one-release deprecation window; ``PredictionServer`` is now an
alias of this class.)
"""

from __future__ import annotations

import asyncio
import socket
import threading

from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.engine import InferenceEngine, ServingError
from repro.serving.registry import ModelRegistry
from repro.serving.routes import (
    HTTP_REQUESTS,
    MAX_BODY_BYTES,
    TENANT_HEADER,
    TRACE_ID_RE,
    Reply,
    Resolved,
    RouteCore,
    route_label,
)

__all__ = ["AsyncPredictionServer", "serve_forever_async"]


def _build_admission(admission, engine) -> AdmissionController | None:
    """Normalise the ``admission=`` argument the server accepts."""
    if admission is None:
        return None
    if isinstance(admission, AdmissionConfig):
        admission = AdmissionController(admission)
    if admission._depth_fn is None:
        admission.bind_engine(engine)
    return admission

_log = obs_log.get_logger("repro.serving.aio")

#: Hard parser bounds — a hostile peer can't make us buffer unboundedly.
_MAX_LINE = 16 * 1024
_MAX_HEADERS = 100

#: Requests that died before a reply could be computed: the peer vanished
#: or stalled while we were still reading its head or body.  Labelled by
#: where in the request the abort happened.
_ABORTED = obs_metrics.REGISTRY.counter(
    "repro_aio_aborted_requests_total",
    "Requests aborted mid-read (client disconnect or stall)",
    labels=("stage",),
)

_STATUS_PHRASES = {
    200: "OK", 400: "Bad Request", 404: "Not Found", 405: "Method Not Allowed",
    409: "Conflict", 413: "Content Too Large", 429: "Too Many Requests",
    500: "Internal Server Error", 503: "Service Unavailable",
}


class _BadRequest(Exception):
    """Protocol-level garbage: answer 400 (if possible) and hang up."""


class AsyncPredictionServer:
    """Owns the asyncio HTTP server + engine lifecycle.

    Exported as ``repro.serving.PredictionServer`` as well (the alias the
    retired threaded front end left behind): same constructor shape,
    ``start``/``stop``/``address``/``url`` surface, and route behaviour
    (all routing delegates to :class:`~repro.serving.routes.RouteCore`).
    """

    def __init__(
        self,
        engine: InferenceEngine,
        host: str = "127.0.0.1",
        port: int = 8000,
        *,
        registry: ModelRegistry | str | None = None,
        verbose: bool = False,
        request_timeout: float = 60.0,
        admission: AdmissionController | AdmissionConfig | None = None,
        keepalive_timeout: float = 75.0,
        header_timeout: float = 10.0,
    ):
        self.engine = engine
        if registry is not None and not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        self.admission = _build_admission(admission, engine)
        self.core = RouteCore(
            engine,
            registry=registry,
            request_timeout=request_timeout,
            admission=self.admission,
        )
        self.verbose = verbose
        self.request_timeout = request_timeout
        self.keepalive_timeout = keepalive_timeout
        #: Budget for each *subsequent* line of a request head.  A slow-loris
        #: peer that trickles one header byte at a time can hold the first
        #: line open for the keep-alive window, but after that every line
        #: must arrive within this budget or the connection is dropped.
        self.header_timeout = header_timeout
        self._host = host
        self._port = port
        self._bound: tuple[str, int] | None = None
        self._loop: asyncio.AbstractEventLoop | None = None
        self._stop_event: asyncio.Event | None = None
        self._thread: threading.Thread | None = None
        self._started = threading.Event()
        self._startup_error: BaseException | None = None
        self._conn_tasks: set[asyncio.Task] = set()

    # ------------------------------------------------------------ lifecycle
    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound."""
        if self._bound is None:
            raise RuntimeError("server not started")
        return self._bound

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "AsyncPredictionServer":
        """Start the engine worker and the event loop (daemon thread)."""
        self.engine.start()
        if self._thread is None or not self._thread.is_alive():
            self._started.clear()
            self._startup_error = None
            self._thread = threading.Thread(
                target=lambda: asyncio.run(self._main()),
                name="repro-serving-aio",
                daemon=True,
            )
            self._thread.start()
            if not self._started.wait(timeout=10.0):
                raise RuntimeError("asyncio front end failed to start in 10s")
            if self._startup_error is not None:
                raise self._startup_error
        return self

    def stop(self) -> None:
        if self._loop is not None and self._thread is not None and self._thread.is_alive():
            self._loop.call_soon_threadsafe(self._stop_event.set)
            self._thread.join(timeout=10.0)
        self._thread = None
        self.engine.stop()

    def __enter__(self) -> "AsyncPredictionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    async def _main(self) -> None:
        self._loop = asyncio.get_running_loop()
        self._stop_event = asyncio.Event()
        try:
            server = await asyncio.start_server(
                self._serve_connection, self._host, self._port, backlog=512
            )
        except BaseException as exc:
            self._startup_error = exc
            self._started.set()
            return
        self._bound = server.sockets[0].getsockname()[:2]
        self._started.set()
        async with server:
            await self._stop_event.wait()
        for task in list(self._conn_tasks):
            task.cancel()
        if self._conn_tasks:
            await asyncio.gather(*self._conn_tasks, return_exceptions=True)

    # ----------------------------------------------------------- connection
    async def _serve_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        task = asyncio.current_task()
        self._conn_tasks.add(task)
        sock = writer.get_extra_info("socket")
        if sock is not None:
            # One response goes out as one write, but predict replies can
            # follow a tiny 100-ms-earlier write on keep-alive connections;
            # never let Nagle + delayed ACK stall them.
            sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
        try:
            while True:
                keep_alive = await self._serve_one(reader, writer)
                if not keep_alive:
                    break
        except (asyncio.CancelledError, ConnectionError,
                asyncio.IncompleteReadError, asyncio.TimeoutError):
            pass
        except _BadRequest as exc:
            try:
                self._write_reply(
                    writer, "other", "?", None,
                    Reply(400, {"error": {"code": "bad_request",
                                          "message": str(exc), "field": None}},
                          close=True),
                )
                await writer.drain()
            except (ConnectionError, RuntimeError):
                pass
        except Exception as exc:  # keep the listener alive
            _log.error(
                "aio.connection_error",
                error=f"{type(exc).__name__}: {exc}"[:400],
            )
        finally:
            self._conn_tasks.discard(task)
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                pass

    async def _read_request_head(
        self, reader: asyncio.StreamReader
    ) -> tuple[str, str, str, dict] | None:
        """Parse ``(method, target, version, headers)``; None on clean EOF.

        The keep-alive idle timeout applies only to the *first* line of a
        request — mid-request stalls fall under the body-read timeout.
        """
        try:
            line = await asyncio.wait_for(
                reader.readline(), timeout=self.keepalive_timeout
            )
        except asyncio.TimeoutError:
            return None
        if not line:
            return None
        if len(line) > _MAX_LINE:
            raise _BadRequest("request line too long")
        parts = line.decode("latin-1").strip().split()
        if len(parts) != 3 or not parts[2].startswith("HTTP/1."):
            raise _BadRequest(f"malformed request line {line!r:.80}")
        method, target, version = parts
        headers: dict[str, str] = {}
        for _ in range(_MAX_HEADERS):
            try:
                line = await asyncio.wait_for(
                    reader.readline(), timeout=self.header_timeout
                )
            except asyncio.TimeoutError:
                # Slow-loris: the head started but a header line stalled.
                _ABORTED.inc(stage="head")
                raise _BadRequest("header read timed out") from None
            if line == b"":
                # Peer vanished mid-head: abort quietly, nothing to answer.
                _ABORTED.inc(stage="head")
                return None
            if line in (b"\r\n", b"\n"):
                break
            if len(line) > _MAX_LINE:
                raise _BadRequest("header line too long")
            name, sep, value = line.decode("latin-1").partition(":")
            if not sep:
                raise _BadRequest(f"malformed header line {line!r:.80}")
            headers[name.strip().lower()] = value.strip()
        else:
            raise _BadRequest("too many headers")
        return method, target, version, headers

    async def _serve_one(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> bool:
        """Serve one request; return False when the connection must close."""
        head = await self._read_request_head(reader)
        if head is None:
            return False
        method, target, version, headers = head
        wants_close = (
            headers.get("connection", "").lower() == "close"
            or (version == "HTTP/1.0"
                and headers.get("connection", "").lower() != "keep-alive")
        )
        path, query = _split_target(target)
        route = route_label(path)
        core = self.core

        if method not in ("GET", "POST"):
            self._write_reply(
                writer, route, method, None,
                Reply(405, {"error": {"code": "method_not_allowed",
                                      "message": f"method {method!r} not supported",
                                      "field": None}},
                      close=True),
            )
            await writer.drain()
            return False

        try:
            resolved = core.resolve(method, path)
        except ServingError as exc:
            # Unknown route / unknown kind: any POST body was never read,
            # so the connection is out of sync — close it.
            reply = core.error_reply(
                exc, core.unresolved(method, path), close=(method == "POST")
            )
            self._write_reply(writer, route, method, None, reply)
            await writer.drain()
            return not reply.close and not wants_close

        if method == "GET":
            reply = await self._handle_get(core, resolved, query)
            self._write_reply(writer, route, method, None, reply)
            await writer.drain()
            return not wants_close

        # POST: admission gate before the body read, then trace + dispatch.
        admitted = core.check_admission(resolved, headers.get(TENANT_HEADER.lower()))
        if admitted is not None and not admitted.admitted:
            self._write_reply(
                writer, route, method, None, core.shed_reply(admitted, resolved)
            )
            await writer.drain()
            return False
        try:
            inbound = (headers.get("x-trace-id") or "").strip()
            if not TRACE_ID_RE.match(inbound):
                inbound = ""
            root = (
                obs_trace.start_trace(
                    "http.request",
                    trace_id=inbound or None,
                    sampled=True if inbound else None,
                    method="POST",
                    route=route,
                )
                if resolved.traced
                else obs_trace.NOOP
            )
            with root:
                reply = await self._handle_post(
                    core, resolved, reader, headers, query
                )
                self._write_reply(writer, route, method, root.trace_id, reply)
            await writer.drain()
            return not reply.close and not wants_close
        finally:
            if admitted is not None:
                core.admission.release()

    # ------------------------------------------------------------- handlers
    async def _handle_get(
        self, core: RouteCore, resolved: Resolved, query: dict
    ) -> Reply:
        try:
            return core.dispatch_simple(resolved, query, {})
        except Exception as exc:
            return core.error_reply(exc, resolved)

    async def _handle_post(
        self,
        core: RouteCore,
        resolved: Resolved,
        reader: asyncio.StreamReader,
        headers: dict,
        query: dict,
    ) -> Reply:
        # Body size policing before the read: answer 413 off the headers
        # alone so an oversized body is never buffered.
        try:
            length = int(headers.get("content-length") or 0)
        except ValueError:
            raise _BadRequest("bad Content-Length") from None
        if length > MAX_BODY_BYTES:
            return core.error_reply(core.body_too_large(length), resolved, close=True)
        raw = b""
        if length > 0:
            try:
                raw = await asyncio.wait_for(
                    reader.readexactly(length), timeout=self.request_timeout
                )
            except (asyncio.IncompleteReadError, asyncio.TimeoutError,
                    ConnectionError):
                # The peer disconnected (or stalled) mid-body: nothing was
                # dispatched, nobody to answer — count and hang up.
                _ABORTED.inc(stage="body")
                raise
        try:
            payload = core.parse_body(raw, optional=(resolved.op == "reload"))
        except ServingError as exc:
            # An unparseable body was still *read*, so keep-alive survives;
            # a missing one means there is nothing to resync on — close.
            return core.error_reply(
                exc, resolved, close=(exc.code == "missing_body")
            )

        try:
            if resolved.op == "predict":
                return await self._predict(core, resolved, payload)
            if resolved.op == "batch":
                return await self._batch(core, resolved, payload)
            # Reload genuinely blocks (bundle deserialisation): the one
            # executor hop in this front end.
            return await asyncio.to_thread(
                core.dispatch_simple, resolved, query, payload
            )
        except Exception as exc:
            return core.error_reply(exc, resolved)

    async def _predict(
        self, core: RouteCore, resolved: Resolved, payload: dict
    ) -> Reply:
        future = core.submit(resolved.kind, payload)
        try:
            result = await asyncio.wait_for(
                asyncio.wrap_future(future), timeout=self.request_timeout
            )
        except asyncio.TimeoutError:
            core.engine.record_timeout(resolved.kind)
            future.cancel()
            return core.overloaded_reply(resolved)
        return core.predict_reply(result, resolved)

    async def _batch(
        self, core: RouteCore, resolved: Resolved, payload: dict
    ) -> Reply:
        futures = core.submit_batch(resolved.kind, payload)
        wrapped = [asyncio.wrap_future(f) for f in futures]
        if wrapped:
            await asyncio.wait(wrapped, timeout=self.request_timeout)
        results = []
        for aw in wrapped:
            if not aw.done():
                core.engine.record_timeout(resolved.kind)
                aw.cancel()
                results.append(core.overloaded_result())
            elif aw.cancelled():
                results.append(core.overloaded_result())
            elif aw.exception() is not None:
                exc = aw.exception()
                results.append(
                    ServingError(
                        f"{type(exc).__name__}: {exc}", status=500, code="internal"
                    ).as_result()
                )
            else:
                results.append(aw.result())
        return core.batch_reply(results)

    # --------------------------------------------------------------- writer
    def _write_reply(
        self,
        writer: asyncio.StreamWriter,
        route: str,
        method: str,
        trace_id: str | None,
        reply: Reply,
    ) -> None:
        """Serialise one response and queue it as a single write."""
        with obs_trace.span("http.serialize", status=reply.status):
            body = reply.body_bytes()
        HTTP_REQUESTS.inc(route=route, method=method, status=str(reply.status))
        phrase = _STATUS_PHRASES.get(reply.status, "Unknown")
        lines = [
            f"HTTP/1.1 {reply.status} {phrase}",
            "Server: repro-serving-aio/1",
            f"Content-Type: {reply.content_type}",
            f"Content-Length: {len(body)}",
        ]
        headers = dict(reply.headers)
        if trace_id is not None:
            headers["X-Trace-Id"] = trace_id
        lines.extend(f"{name}: {value}" for name, value in headers.items())
        if reply.close:
            lines.append("Connection: close")
        head = ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")
        writer.write(head + body)


def _split_target(target: str) -> tuple[str, dict]:
    """Split a request target into (path, query dict-of-lists)."""
    from urllib.parse import parse_qs, urlsplit

    parts = urlsplit(target)
    return parts.path.rstrip("/") or "/", parse_qs(parts.query)


def serve_forever_async(
    engine: InferenceEngine,
    host: str,
    port: int,
    *,
    registry: ModelRegistry | str | None = None,
    verbose: bool = True,
    admission: AdmissionController | AdmissionConfig | None = None,
) -> None:
    """Blocking serve loop for the CLI (Ctrl-C to stop)."""
    server = AsyncPredictionServer(
        engine, host, port, registry=registry, verbose=verbose, admission=admission
    )
    server.start()
    host_, port_ = server.address
    print(
        f"serving on http://{host_}:{port_}  "
        f"(async front end; models: {sorted(engine.predictors)})"
    )
    try:
        while True:
            server._thread.join(timeout=1.0)
            if not server._thread.is_alive():
                break
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()

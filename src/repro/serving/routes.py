"""Front-end-agnostic route core behind the HTTP serving front end.

The asyncio front end (:mod:`repro.serving.aio`) owns no route logic —
any transport driving this module speaks the same API v1 contract
byte-for-byte (which is how the retired threaded front end stayed
byte-identical during its deprecation window):

1. :meth:`RouteCore.resolve` maps ``(method, path)`` to a
   :class:`Resolved` route *before any body bytes are read*, so unknown
   routes (and unknown predictor kinds) are answered 404 with
   ``Connection: close`` without consuming the payload, and admission
   control can refuse a request before waiting on its body;
2. the front end performs its transport-specific I/O (read body bytes,
   blocking or ``await``-ing as appropriate);
3. :meth:`RouteCore.dispatch` (or the async-friendly
   ``submit``/``*_reply`` pieces for engine-bound routes) turns the
   parsed payload into a :class:`Reply` — status, JSON-ready body,
   headers, and whether the connection must close.

Legacy-shim shaping (flat error bodies, ``Deprecation`` headers) and the
structured-error contract live here too, so they cannot drift between
front ends.
"""

from __future__ import annotations

import json
import re
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout

from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.serving.engine import InferenceEngine, ServingError
from repro.serving.registry import (
    ModelRegistry,
    RegistryCorruptError,
    RegistryError,
)
from repro.serving.schemas import (
    BatchRequest,
    IngestRequest,
    ReloadRequest,
    request_schema_for,
)
from repro.store import StoreIOError

__all__ = [
    "MAX_BODY_BYTES",
    "Reply",
    "Resolved",
    "RouteCore",
    "route_label",
    "HTTP_REQUESTS",
    "TRACE_ID_RE",
    "TENANT_HEADER",
]

MAX_BODY_BYTES = 8 * 1024 * 1024

#: Request header naming the tenant for per-tenant admission quotas.
TENANT_HEADER = "X-Api-Key"

_MODEL_PATH_RE = re.compile(r"^/v1/models/([A-Za-z0-9._-]+)(/versions|/reload)?$")

#: Client-supplied trace ids are used verbatim when well-formed; anything
#: else is ignored so a hostile header can't pollute the trace store keys.
TRACE_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")

_log = obs_log.get_logger("repro.serving.routes")

HTTP_REQUESTS = obs_metrics.REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP responses by templated route, method, and status code.",
    ("route", "method", "status"),
)
_CACHE_HIT_RATIO = obs_metrics.REGISTRY.gauge(
    "repro_cache_hit_ratio",
    "Serving cache hit ratio per predictor/cache (refreshed at scrape).",
    ("kind", "cache"),
)
_PREDICTOR_REQUESTS = obs_metrics.REGISTRY.gauge(
    "repro_predictor_requests",
    "Lifetime requests served per predictor (refreshed at scrape).",
    ("kind",),
)


def route_label(path: str) -> str:
    """Template a request path into a bounded-cardinality metric label."""
    if path in ("/", "/healthz", "/metrics", "/v1/healthz", "/v1/metrics",
                "/v1/models", "/v1/traces", "/v1/ingest"):
        return path
    if path.startswith("/v1/predict/"):
        return "/v1/predict/{kind}"
    if path.startswith("/predict/"):
        return "/predict/{kind}"
    if path.startswith("/v1/batch/"):
        return "/v1/batch/{kind}"
    if path.startswith("/v1/traces/"):
        return "/v1/traces/{id}"
    m = _MODEL_PATH_RE.match(path)
    if m:
        return "/v1/models/{name}" + (m.group(2) or "")
    return "other"


class Reply:
    """One response, transport-agnostic: the front end serialises it."""

    __slots__ = ("status", "obj", "text", "content_type", "headers", "close")

    def __init__(self, status: int, obj: dict | None = None, *,
                 text: str | None = None,
                 content_type: str = "application/json",
                 headers: dict | None = None, close: bool = False):
        self.status = status
        self.obj = obj
        self.text = text
        self.content_type = content_type
        self.headers = headers or {}
        self.close = close

    def body_bytes(self) -> bytes:
        if self.text is not None:
            return self.text.encode("utf-8")
        return json.dumps(self.obj).encode("utf-8")


class Resolved:
    """One resolved route: everything known before the body is read."""

    __slots__ = ("op", "method", "label", "legacy", "headers", "kind", "name",
                 "trace_id", "traced", "sheddable", "needs_body", "raw_path")

    def __init__(self, op: str, method: str, label: str, *, legacy: bool = False,
                 headers: dict | None = None, kind: str | None = None,
                 name: str | None = None, trace_id: str | None = None,
                 traced: bool = False, sheddable: bool = False,
                 needs_body: bool = False, raw_path: str = ""):
        self.op = op
        self.method = method
        self.label = label
        self.legacy = legacy
        self.headers = headers or {}
        self.kind = kind
        self.name = name
        self.trace_id = trace_id
        self.traced = traced
        self.sheddable = sheddable
        self.needs_body = needs_body
        self.raw_path = raw_path


def _deprecation_headers(successor: str) -> dict:
    return {
        "Deprecation": "true",
        "Link": f'<{successor}>; rel="successor-version"',
    }


_OVERLOADED_MSG = "the engine did not answer in time; retry later"


class RouteCore:
    """The route table + handlers, shared verbatim by both front ends.

    ``admission`` (an :class:`~repro.serving.admission.AdmissionController`
    or ``None``) gates the sheddable routes and surfaces its counters in
    the ``/v1/metrics`` body.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        *,
        registry: ModelRegistry | None = None,
        request_timeout: float = 60.0,
        admission=None,
    ):
        self.engine = engine
        self.registry = registry
        self.request_timeout = request_timeout
        self.admission = admission

    # ------------------------------------------------------------ resolve
    def resolve(self, method: str, path: str) -> Resolved:
        """Map ``(method, path)`` to a route, *before* any body is read.

        Raises :class:`ServingError` 404 for unknown routes and unknown
        predictor kinds — the front ends answer those with
        ``Connection: close`` since the request body was never consumed.
        """
        label = route_label(path)
        if method == "GET":
            legacy_map = {"/healthz": "/v1/healthz", "/metrics": "/v1/metrics"}
            legacy = path in legacy_map
            headers = None
            if legacy:
                headers = _deprecation_headers(legacy_map[path])
                path = legacy_map[path]
            if path == "/v1/healthz":
                return Resolved("healthz", method, label, legacy=legacy,
                                headers=headers)
            if path == "/v1/metrics":
                return Resolved("metrics", method, label, legacy=legacy,
                                headers=headers)
            if path == "/v1/traces":
                return Resolved("traces", method, label)
            if path.startswith("/v1/traces/"):
                return Resolved("trace", method, label,
                                trace_id=path[len("/v1/traces/"):])
            if path == "/v1/models":
                return Resolved("models", method, label)
            m = _MODEL_PATH_RE.match(path)
            if m and m.group(2) in (None, "/versions"):
                op = "versions" if m.group(2) == "/versions" else "model"
                return Resolved(op, method, label, name=m.group(1))
        elif method == "POST":
            legacy = path.startswith("/predict/")
            headers = None
            if legacy:
                headers = _deprecation_headers("/v1" + path)
                path = "/v1" + path
            if path.startswith("/v1/predict/"):
                kind = path[len("/v1/predict/"):]
                request_schema_for(kind)  # unknown kind -> 404 before body
                return Resolved("predict", method, label, legacy=legacy,
                                headers=headers, kind=kind, traced=True,
                                sheddable=True, needs_body=True)
            if path.startswith("/v1/batch/"):
                kind = path[len("/v1/batch/"):]
                request_schema_for(kind)
                return Resolved("batch", method, label, kind=kind, traced=True,
                                sheddable=True, needs_body=True)
            if path == "/v1/ingest":
                # Sheddable: an overloaded server refuses ingest before the
                # body read, and the client retries safely (dedup makes a
                # replayed POST idempotent).
                return Resolved("ingest", method, label, traced=True,
                                sheddable=True, needs_body=True)
            m = _MODEL_PATH_RE.match(path)
            if m and m.group(2) == "/reload":
                return Resolved("reload", method, label, name=m.group(1))
        raise ServingError(
            f"no route {path!r}", status=404, code="unknown_route"
        )

    def unresolved(self, method: str, path: str) -> Resolved:
        """Placeholder for a request :meth:`resolve` rejected.

        Carries just enough (legacy flag, deprecation headers, metric
        label) for :meth:`error_reply` to shape the refusal exactly as
        the matching route would have.
        """
        legacy = method == "POST" and path.startswith("/predict/")
        headers = _deprecation_headers("/v1" + path) if legacy else None
        return Resolved("error", method, route_label(path), legacy=legacy,
                        headers=headers, raw_path=path)

    # --------------------------------------------------------------- body
    def parse_body(self, raw: bytes, *, optional: bool = False) -> dict:
        """Parse already-read body bytes into a JSON object payload."""
        if not raw:
            if optional:
                return {}
            raise ServingError("request body required", code="missing_body")
        with obs_trace.span("handler.parse", bytes=len(raw)):
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ServingError(
                    f"invalid JSON body: {exc}", code="invalid_json"
                ) from exc
            if not isinstance(payload, dict):
                raise ServingError("body must be a JSON object", code="invalid_type")
        return payload

    def body_too_large(self, length: int) -> ServingError:
        return ServingError(
            f"body too large ({length} bytes; the limit is {MAX_BODY_BYTES})",
            status=413,
            code="body_too_large",
        )

    # ----------------------------------------------------------- dispatch
    def dispatch(self, r: Resolved, query: dict, payload: dict) -> Reply:
        """Blocking dispatch: resolve -> engine -> shaped reply, in one call."""
        if r.op == "predict":
            result = self.engine.predict(
                r.kind, payload, timeout=self.request_timeout
            )
            return self.predict_reply(result, r)
        if r.op == "batch":
            futures = self.submit_batch(r.kind, payload)
            return self.batch_reply(self.collect_batch(r.kind, futures))
        return self.dispatch_simple(r, query, payload)

    def dispatch_simple(self, r: Resolved, query: dict, payload: dict) -> Reply:
        """Every non-engine route: cheap, synchronous, front-end-shared."""
        if r.op == "healthz":
            return Reply(200, {"status": "ok", "api": "v1",
                               "models": self.engine.describe()},
                         headers=r.headers)
        if r.op == "metrics":
            if query.get("format", [""])[0] == "prometheus":
                return self.prometheus_reply()
            body = self.engine.metrics()
            if not r.legacy:
                # New top-level blocks; the legacy /metrics body keeps its
                # pre-v1 shape (per-predictor entries only).
                body["http"] = {"responses": HTTP_REQUESTS.snapshot()}
                body["dispatch"] = self.engine.dispatch_health()
                store = self.engine.store_stats()
                if store is not None:
                    body["store"] = store
                if self.admission is not None:
                    body["admission"] = self.admission.snapshot()
            return Reply(200, body, headers=r.headers)
        if r.op == "traces":
            return Reply(200, {"traces": obs_trace.STORE.summaries()})
        if r.op == "trace":
            tree = obs_trace.STORE.trace(r.trace_id)
            if tree is None:
                raise ServingError(
                    f"unknown trace {r.trace_id!r}", status=404,
                    code="unknown_trace",
                )
            return Reply(200, tree)
        if r.op == "models":
            return Reply(200, self._models_payload())
        if r.op == "model":
            version = query.get("version")
            if version is not None:
                try:
                    version = int(version[0])
                except ValueError:
                    raise ServingError(
                        f"version: {version[0]!r} is not a valid int",
                        code="invalid_type",
                        field="version",
                    ) from None
            return Reply(200, self._registry().manifest(r.name, version))
        if r.op == "versions":
            return Reply(200, self._versions_payload(r.name))
        if r.op == "reload":
            return Reply(200, self._handle_reload(r.name, payload))
        if r.op == "ingest":
            req = IngestRequest.validate(payload)
            return Reply(200, self.engine.ingest(req.events))
        raise ServingError(f"no route {r.raw_path!r}", status=404,
                           code="unknown_route")

    # ------------------------------------------------------ predict/batch
    def submit(self, kind: str, payload: dict) -> Future:
        """Engine handoff for one request (the async path awaits this)."""
        return self.engine.submit(kind, payload)

    def predict_reply(self, result: dict, r: Resolved) -> Reply:
        if "error" in result:
            status = int(result.get("status", 400))
            err = result["error"]
            if r.legacy:
                message = err.get("message") if isinstance(err, dict) else str(err)
                return Reply(status, {"error": message, "status": status},
                             headers=r.headers)
            return Reply(status, {"error": err}, headers=r.headers)
        return Reply(200, result, headers=r.headers)

    def submit_batch(self, kind: str, payload: dict) -> list[Future]:
        batch = BatchRequest.validate(payload)
        return [self.engine.submit(kind, item) for item in batch.requests]

    def collect_batch(self, kind: str, futures: list[Future]) -> list[dict]:
        """Blocking per-future wait; timeouts/errors become item results."""
        results = []
        for future in futures:
            try:
                results.append(future.result(timeout=self.request_timeout))
            except FutureTimeout:
                self.engine.record_timeout(kind)
                future.cancel()
                results.append(self.overloaded_result())
            except Exception as exc:
                results.append(
                    ServingError(
                        f"{type(exc).__name__}: {exc}", status=500, code="internal"
                    ).as_result()
                )
        return results

    def batch_reply(self, results: list[dict]) -> Reply:
        n_errors = sum(1 for result in results if "error" in result)
        return Reply(
            200,
            {"results": results, "n_ok": len(results) - n_errors,
             "n_errors": n_errors},
        )

    def overloaded_result(self) -> dict:
        return ServingError(
            _OVERLOADED_MSG, status=503, code="overloaded"
        ).as_result()

    def overloaded_reply(self, r: Resolved) -> Reply:
        """503 for a request the engine accepted but never answered."""
        return self.error_reply(
            ServingError(_OVERLOADED_MSG, status=503, code="overloaded"),
            r,
            extra_headers={"Retry-After": "1"},
        )

    # ---------------------------------------------------------- admission
    def check_admission(self, r: Resolved, tenant: str | None):
        """Admit-or-shed decision for a resolved route (None = no gate)."""
        if self.admission is None or not r.sheddable:
            return None
        decision = self.admission.admit(r.label, tenant)
        if decision.admitted:
            return decision
        return decision

    def shed_reply(self, decision, r: Resolved) -> Reply:
        """429 + ``Retry-After``; always closes (the body was never read)."""
        exc = ServingError(
            f"request shed ({decision.reason}); retry after "
            f"{decision.retry_after_header}s",
            status=429,
            code="shed_" + decision.reason,
        )
        reply = self.error_reply(
            exc, r, extra_headers={"Retry-After": decision.retry_after_header}
        )
        reply.close = True
        return reply

    # -------------------------------------------------------------- errors
    def error_reply(self, exc: BaseException, r: Resolved | None, *,
                    close: bool = False, extra_headers: dict | None = None) -> Reply:
        """Any handler exception -> the structured (or legacy) error reply."""
        legacy = r.legacy if r is not None else False
        headers = dict(r.headers) if r is not None else {}
        if extra_headers:
            headers.update(extra_headers)
        if isinstance(exc, RegistryCorruptError):
            # The version exists but failed integrity checks; reload aborts
            # before any swap, so the old predictor keeps serving.
            exc = ServingError(str(exc), status=409, code="model_corrupt")
        elif isinstance(exc, RegistryError):
            exc = ServingError(str(exc), status=404, code="model_not_found")
        elif isinstance(exc, StoreIOError):
            # Append/fsync failure: nothing past the last acked event was
            # accepted, and acked events are durable — safe to retry.
            exc = ServingError(str(exc), status=503, code="store_io")
        if isinstance(exc, ServingError):
            if legacy:
                body = {"error": str(exc), "status": exc.status}
            else:
                body = exc.as_error()
            return Reply(exc.status, body, headers=headers, close=close)
        _log.error(
            "http.internal_error",
            route=r.label if r is not None else "other",
            method=r.method if r is not None else "?",
            error=f"{type(exc).__name__}: {exc}"[:400],
        )
        message = f"{type(exc).__name__}: {exc}"
        if legacy:
            body = {"error": message, "status": 500}
        else:
            body = {"error": {"code": "internal", "message": message,
                              "field": None}}
        return Reply(500, body, headers=headers, close=close)

    # ------------------------------------------------------------ helpers
    def _registry(self) -> ModelRegistry:
        if self.registry is None:
            raise ServingError(
                "no model registry attached to this server; start it with "
                "`repro serve --store ...` to enable model lifecycle routes",
                status=503,
                code="registry_unavailable",
            )
        return self.registry

    def _models_payload(self) -> dict:
        registry = self._registry()
        models = []
        for name in registry.list_models():
            versions = registry.list_versions(name)
            manifest = registry.manifest(name)
            models.append(
                {
                    "name": name,
                    "kind": manifest["kind"],
                    "versions": versions,
                    "latest": versions[-1],
                    "aliases": {
                        alias: target["version"]
                        for alias, target in registry.aliases(name).items()
                    },
                }
            )
        return {"models": models}

    def _versions_payload(self, name: str) -> dict:
        registry = self._registry()
        name, _ = registry.resolve(name)
        versions = registry.list_versions(name)
        return {
            "name": name,
            "versions": versions,
            "latest": versions[-1],
            "aliases": {
                alias: target["version"]
                for alias, target in registry.aliases(name).items()
            },
        }

    def _handle_reload(self, name: str, payload: dict) -> dict:
        registry = self._registry()
        req = ReloadRequest.validate(payload)
        version = req.version
        if req.alias is not None:
            alias_name, alias_version = registry.resolve(req.alias)
            if alias_name != registry.resolve(name)[0]:
                raise ServingError(
                    f"alias {req.alias!r} points at model {alias_name!r}, "
                    f"not {name!r}",
                    status=409,
                    code="alias_mismatch",
                    field="alias",
                )
            version = alias_version if version is None else version
        return self.engine.reload_model(registry, name, version)

    def prometheus_reply(self) -> Reply:
        """``/v1/metrics?format=prometheus`` — text exposition.

        Scrape-time gauges (cache hit ratios, per-predictor request
        totals) are refreshed from one engine snapshot first, so
        Prometheus sees the same numbers the JSON body would report;
        admission gauges are callback-backed and refresh themselves.
        """
        for kind, entry in self.engine.metrics().items():
            for cache_name, stats in (entry.get("caches") or {}).items():
                if not isinstance(stats, dict):
                    continue  # the "stale" marker rides alongside the caches
                _CACHE_HIT_RATIO.set(
                    stats.get("hit_rate", 0.0), kind=kind, cache=cache_name
                )
            _PREDICTOR_REQUESTS.set(entry.get("requests", 0), kind=kind)
        return Reply(
            200,
            text=obs_metrics.REGISTRY.render(),
            content_type="text/plain; version=0.0.4; charset=utf-8",
        )

"""Stdlib HTTP front-end for the inference engine.

Endpoints (all JSON)::

    POST /predict/retweeters   {"cascade_id": 17, "user_ids": [3, 5], ...}
    POST /predict/hategen      {"user_id": 3, "hashtag": "ht0", "timestamp": 100.0}
    GET  /healthz              liveness + loaded-model info
    GET  /metrics              per-predictor latency/throughput/cache counters

Built on ``ThreadingHTTPServer`` — each connection gets a thread, and all
threads funnel their requests through the shared
:class:`~repro.serving.engine.InferenceEngine`, which is what makes
micro-batching across concurrent clients happen.
"""

from __future__ import annotations

import json
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.serving.engine import InferenceEngine, ServingError

__all__ = ["PredictionServer", "serve_forever"]

MAX_BODY_BYTES = 8 * 1024 * 1024


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serving/1"
    protocol_version = "HTTP/1.1"
    # Headers and body go out as separate small writes; without TCP_NODELAY
    # they collide with delayed ACKs and every keep-alive response after the
    # first stalls ~40 ms.
    disable_nagle_algorithm = True

    # ------------------------------------------------------------- plumbing
    def log_message(self, fmt, *args):  # noqa: D102 — quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def _send_json(self, status: int, obj: dict) -> None:
        body = json.dumps(obj).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _read_json(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length <= 0:
            raise ServingError("request body required")
        if length > MAX_BODY_BYTES:
            raise ServingError(f"body too large ({length} bytes)", status=413)
        raw = self.rfile.read(length)
        try:
            payload = json.loads(raw)
        except json.JSONDecodeError as exc:
            raise ServingError(f"invalid JSON body: {exc}") from exc
        if not isinstance(payload, dict):
            raise ServingError("body must be a JSON object")
        return payload

    # ------------------------------------------------------------- routes
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        if self.path == "/healthz":
            self._send_json(
                200, {"status": "ok", "models": self.server.engine.describe()}
            )
        elif self.path == "/metrics":
            self._send_json(200, self.server.engine.metrics())
        else:
            self._send_json(404, {"error": f"no route {self.path!r}"})

    def do_POST(self) -> None:  # noqa: N802 — http.server API
        if not self.path.startswith("/predict/"):
            self._send_json(404, {"error": f"no route {self.path!r}"})
            return
        kind = self.path[len("/predict/") :]
        try:
            payload = self._read_json()
            result = self.server.engine.predict(
                kind, payload, timeout=self.server.request_timeout
            )
        except ServingError as exc:
            self._send_json(exc.status, exc.as_result())
            return
        except Exception as exc:  # engine/model failure — keep serving
            self._send_json(500, {"error": f"{type(exc).__name__}: {exc}"})
            return
        if "error" in result:
            self._send_json(int(result.get("status", 400)), result)
        else:
            self._send_json(200, result)


class _EngineHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # Default backlog (5) drops connections under bursty load; raise it so
    # the throughput benchmark's connection churn doesn't see RSTs.
    request_queue_size = 128

    def __init__(self, address, engine: InferenceEngine, *, verbose: bool, request_timeout: float):
        super().__init__(address, _Handler)
        self.engine = engine
        self.verbose = verbose
        self.request_timeout = request_timeout


class PredictionServer:
    """Owns the HTTP server + engine lifecycle.

    ``port=0`` binds an ephemeral port (the actual one is in ``address``),
    which is what the tests and the throughput benchmark use.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        host: str = "127.0.0.1",
        port: int = 8000,
        *,
        verbose: bool = False,
        request_timeout: float = 60.0,
    ):
        self.engine = engine
        self._httpd = _EngineHTTPServer(
            (host, port), engine, verbose=verbose, request_timeout=request_timeout
        )
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "PredictionServer":
        """Start the engine worker and serve HTTP in a background thread."""
        self.engine.start()
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serving-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.engine.stop()

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_forever(engine: InferenceEngine, host: str, port: int, *, verbose: bool = True) -> None:
    """Blocking serve loop for the CLI (Ctrl-C to stop)."""
    server = PredictionServer(engine, host, port, verbose=verbose)
    server.engine.start()
    host_, port_ = server.address
    print(f"serving on http://{host_}:{port_}  (models: {sorted(engine.predictors)})")
    try:
        server._httpd.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()

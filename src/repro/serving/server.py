"""Stdlib HTTP front-end for the inference engine — API v1.

Versioned endpoints (all JSON)::

    POST /v1/predict/retweeters      one RetweeterRequest -> scores/ranking
    POST /v1/predict/hategen         one HateGenRequest   -> score/label
    POST /v1/batch/{kind}            {"requests": [...]} fanned into the
                                     micro-batcher, answered in one call
    GET  /v1/models                  registry models / versions / aliases
    GET  /v1/models/{name}           manifest (?version=N; aliases accepted)
    GET  /v1/models/{name}/versions  committed versions + aliases
    POST /v1/models/{name}/reload    load a bundle version and atomically
                                     swap the serving predictor
    GET  /v1/healthz                 liveness + loaded-model info
    GET  /v1/metrics                 latency/throughput/cache counters

Errors are structured (``{"error": {"code", "message", "field"}}``) with
the status on the HTTP line; payloads validate through
:mod:`repro.serving.schemas` before they reach a predictor.

The pre-v1 unversioned routes (``/predict/{kind}``, ``/healthz``,
``/metrics``) keep working through a deprecation shim that delegates to
the v1 handlers, flattens errors back to the legacy
``{"error": "...", "status": N}`` shape, and adds a ``Deprecation: true``
header plus a ``Link`` to the successor route.

Built on ``ThreadingHTTPServer`` — each connection gets a thread, and all
threads funnel their requests through the shared
:class:`~repro.serving.engine.InferenceEngine`, which is what makes
micro-batching across concurrent clients happen.
"""

from __future__ import annotations

import json
import re
import threading
from concurrent.futures import TimeoutError as FutureTimeout
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.serving.engine import InferenceEngine, ServingError
from repro.serving.registry import ModelRegistry, RegistryError
from repro.serving.schemas import (
    BatchRequest,
    ReloadRequest,
    request_schema_for,
)

__all__ = ["PredictionServer", "serve_forever", "MAX_BODY_BYTES"]

MAX_BODY_BYTES = 8 * 1024 * 1024

_MODEL_PATH_RE = re.compile(r"^/v1/models/([A-Za-z0-9._-]+)(/versions|/reload)?$")

_log = obs_log.get_logger("repro.serving.server")

_HTTP_REQUESTS = obs_metrics.REGISTRY.counter(
    "repro_http_requests_total",
    "HTTP responses by templated route, method, and status code.",
    ("route", "method", "status"),
)
_CACHE_HIT_RATIO = obs_metrics.REGISTRY.gauge(
    "repro_cache_hit_ratio",
    "Serving cache hit ratio per predictor/cache (refreshed at scrape).",
    ("kind", "cache"),
)
_PREDICTOR_REQUESTS = obs_metrics.REGISTRY.gauge(
    "repro_predictor_requests",
    "Lifetime requests served per predictor (refreshed at scrape).",
    ("kind",),
)

#: Client-supplied trace ids are used verbatim when well-formed; anything
#: else is ignored so a hostile header can't pollute the trace store keys.
_TRACE_ID_RE = re.compile(r"^[A-Za-z0-9_-]{1,64}$")


def _route_label(path: str) -> str:
    """Template a request path into a bounded-cardinality metric label."""
    if path in ("/", "/healthz", "/metrics", "/v1/healthz", "/v1/metrics",
                "/v1/models", "/v1/traces"):
        return path
    if path.startswith("/v1/predict/"):
        return "/v1/predict/{kind}"
    if path.startswith("/predict/"):
        return "/predict/{kind}"
    if path.startswith("/v1/batch/"):
        return "/v1/batch/{kind}"
    if path.startswith("/v1/traces/"):
        return "/v1/traces/{id}"
    m = _MODEL_PATH_RE.match(path)
    if m:
        return "/v1/models/{name}" + (m.group(2) or "")
    return "other"


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serving/1"
    protocol_version = "HTTP/1.1"
    # Headers and body go out as separate small writes; without TCP_NODELAY
    # they collide with delayed ACKs and every keep-alive response after the
    # first stalls ~40 ms.
    disable_nagle_algorithm = True
    # Per-request telemetry state, reset at the top of each do_* call.
    _route = "other"
    _trace_id: str | None = None

    # ------------------------------------------------------------- plumbing
    def log_message(self, fmt, *args):  # noqa: D102 — quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def _send_json(
        self, status: int, obj: dict, *, close: bool = False, headers: dict | None = None
    ) -> None:
        with obs_trace.span("http.serialize", status=status):
            body = json.dumps(obj).encode("utf-8")
        _HTTP_REQUESTS.inc(route=self._route, method=self.command, status=str(status))
        if self._trace_id is not None:
            headers = {**(headers or {}), "X-Trace-Id": self._trace_id}
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        if close:
            # The request body (if any) was not consumed: the connection is
            # out of sync for keep-alive, so tell the client and close it
            # rather than leaving it hanging on a half-read socket.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _send_error(self, exc: ServingError, *, legacy: bool, close: bool = False,
                    headers: dict | None = None) -> None:
        if legacy:
            self._send_json(
                exc.status,
                {"error": str(exc), "status": exc.status},
                close=close,
                headers=headers,
            )
        else:
            self._send_json(exc.status, exc.as_error(), close=close, headers=headers)

    def _deprecation_headers(self, successor: str) -> dict:
        return {
            "Deprecation": "true",
            "Link": f'<{successor}>; rel="successor-version"',
        }

    def _read_json(self, *, optional: bool = False) -> dict:
        """Parse the request body, policing size *before* reading it.

        An oversized ``Content-Length`` is answered 413 without touching
        ``rfile`` — the caller then closes the connection, so the server
        never buffers (or waits on) a body it already rejected.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise ServingError(
                f"body too large ({length} bytes; the limit is {MAX_BODY_BYTES})",
                status=413,
                code="body_too_large",
            )
        if length <= 0:
            if optional:
                return {}
            raise ServingError("request body required", code="missing_body")
        with obs_trace.span("handler.parse", bytes=length):
            raw = self.rfile.read(length)
            try:
                payload = json.loads(raw)
            except json.JSONDecodeError as exc:
                raise ServingError(
                    f"invalid JSON body: {exc}", code="invalid_json"
                ) from exc
            if not isinstance(payload, dict):
                raise ServingError("body must be a JSON object", code="invalid_type")
        return payload

    def _registry(self) -> ModelRegistry:
        registry = self.server.registry
        if registry is None:
            raise ServingError(
                "no model registry attached to this server; start it with "
                "`repro serve --store ...` to enable model lifecycle routes",
                status=503,
                code="registry_unavailable",
            )
        return registry

    # --------------------------------------------------------------- GET
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path, query = self._split_path()
        self._route = _route_label(path)
        self._trace_id = None
        legacy_map = {"/healthz": "/v1/healthz", "/metrics": "/v1/metrics"}
        headers = None
        legacy = path in legacy_map
        if legacy:
            headers = self._deprecation_headers(legacy_map[path])
            path = legacy_map[path]
        try:
            if path == "/v1/healthz":
                self._send_json(
                    200,
                    {"status": "ok", "api": "v1", "models": self.server.engine.describe()},
                    headers=headers,
                )
            elif path == "/v1/metrics":
                if query.get("format", [""])[0] == "prometheus":
                    self._send_prometheus()
                else:
                    payload = self.server.engine.metrics()
                    if not legacy:
                        # New top-level block; the legacy /metrics body keeps
                        # its pre-v1 shape (per-predictor entries only).
                        payload["http"] = {"responses": _HTTP_REQUESTS.snapshot()}
                    self._send_json(200, payload, headers=headers)
            elif path == "/v1/traces":
                self._send_json(200, {"traces": obs_trace.STORE.summaries()})
            elif path.startswith("/v1/traces/"):
                trace_id = path[len("/v1/traces/"):]
                tree = obs_trace.STORE.trace(trace_id)
                if tree is None:
                    raise ServingError(
                        f"unknown trace {trace_id!r}", status=404, code="unknown_trace"
                    )
                self._send_json(200, tree)
            elif path == "/v1/models":
                self._send_json(200, self._models_payload())
            else:
                m = _MODEL_PATH_RE.match(path)
                if m and m.group(2) in (None, "/versions"):
                    name = m.group(1)
                    if m.group(2) == "/versions":
                        self._send_json(200, self._versions_payload(name))
                    else:
                        version = query.get("version")
                        if version is not None:
                            try:
                                version = int(version[0])
                            except ValueError:
                                raise ServingError(
                                    f"version: {version[0]!r} is not a valid int",
                                    code="invalid_type",
                                    field="version",
                                ) from None
                        self._send_json(
                            200, self._registry().manifest(name, version)
                        )
                else:
                    raise ServingError(
                        f"no route {self.path!r}", status=404, code="unknown_route"
                    )
        except RegistryError as exc:
            self._send_error(
                ServingError(str(exc), status=404, code="model_not_found"),
                legacy=False,
            )
        except ServingError as exc:
            self._send_error(exc, legacy=headers is not None, headers=headers)
        except Exception as exc:  # keep serving
            _log.error(
                "http.internal_error",
                route=self._route,
                method="GET",
                error=f"{type(exc).__name__}: {exc}"[:400],
            )
            self._send_json(
                500,
                {"error": {"code": "internal", "message": f"{type(exc).__name__}: {exc}",
                           "field": None}},
            )

    def _send_prometheus(self) -> None:
        """``/v1/metrics?format=prometheus`` — text exposition of the registry.

        Scrape-time gauges (cache hit ratios, per-predictor request totals)
        are refreshed from one engine snapshot first, so Prometheus sees the
        same numbers the JSON body would report.
        """
        for kind, entry in self.server.engine.metrics().items():
            for cache_name, stats in (entry.get("caches") or {}).items():
                if not isinstance(stats, dict):
                    continue  # the "stale" marker rides alongside the caches
                _CACHE_HIT_RATIO.set(
                    stats.get("hit_rate", 0.0), kind=kind, cache=cache_name
                )
            _PREDICTOR_REQUESTS.set(entry.get("requests", 0), kind=kind)
        _HTTP_REQUESTS.inc(route=self._route, method="GET", status="200")
        body = obs_metrics.REGISTRY.render().encode("utf-8")
        self.send_response(200)
        self.send_header("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _split_path(self) -> tuple[str, dict]:
        parts = urlsplit(self.path)
        return parts.path.rstrip("/") or "/", parse_qs(parts.query)

    def _models_payload(self) -> dict:
        registry = self._registry()
        models = []
        for name in registry.list_models():
            versions = registry.list_versions(name)
            manifest = registry.manifest(name)
            models.append(
                {
                    "name": name,
                    "kind": manifest["kind"],
                    "versions": versions,
                    "latest": versions[-1],
                    "aliases": {
                        alias: target["version"]
                        for alias, target in registry.aliases(name).items()
                    },
                }
            )
        return {"models": models}

    def _versions_payload(self, name: str) -> dict:
        registry = self._registry()
        name, _ = registry.resolve(name)
        versions = registry.list_versions(name)
        return {
            "name": name,
            "versions": versions,
            "latest": versions[-1],
            "aliases": {
                alias: target["version"]
                for alias, target in registry.aliases(name).items()
            },
        }

    # --------------------------------------------------------------- POST
    def do_POST(self) -> None:  # noqa: N802 — http.server API
        path, _ = self._split_path()
        self._route = _route_label(path)
        self._trace_id = None
        legacy = False
        headers = None
        if path.startswith("/predict/"):
            legacy = True
            headers = self._deprecation_headers("/v1" + path)
            path = "/v1" + path
        # Prediction routes get a trace: a client-supplied X-Trace-Id always
        # forces sampling (and is echoed back); otherwise the configured
        # sample rate decides.  The id is None when the trace isn't sampled,
        # which turns every downstream span into a no-op.
        inbound = (self.headers.get("X-Trace-Id") or "").strip()
        if not _TRACE_ID_RE.match(inbound):
            inbound = ""
        traced = path.startswith("/v1/predict/") or path.startswith("/v1/batch/")
        root = (
            obs_trace.start_trace(
                "http.request",
                trace_id=inbound or None,
                sampled=True if inbound else None,
                method="POST",
                route=self._route,
            )
            if traced
            else obs_trace.NOOP
        )
        with root:
            self._trace_id = root.trace_id
            try:
                if path.startswith("/v1/predict/"):
                    self._handle_predict(path[len("/v1/predict/"):], legacy, headers)
                elif path.startswith("/v1/batch/"):
                    self._handle_batch(path[len("/v1/batch/"):])
                else:
                    m = _MODEL_PATH_RE.match(path)
                    if m and m.group(2) == "/reload":
                        self._handle_reload(m.group(1))
                    else:
                        # Unknown POST route: the body (if any) was never
                        # read, so close the connection to keep keep-alive
                        # clients in sync.
                        raise _Fatal(
                            ServingError(
                                f"no route {self.path!r}",
                                status=404,
                                code="unknown_route",
                            )
                        )
            except _Fatal as fatal:
                self._send_error(fatal.error, legacy=legacy, close=True, headers=headers)
            except RegistryError as exc:
                self._send_error(
                    ServingError(str(exc), status=404, code="model_not_found"),
                    legacy=legacy,
                    headers=headers,
                )
            except ServingError as exc:
                self._send_error(exc, legacy=legacy, headers=headers)
            except FutureTimeout:
                self._send_error(
                    ServingError(
                        "the engine did not answer in time; retry later",
                        status=503,
                        code="overloaded",
                    ),
                    legacy=legacy,
                    headers={**(headers or {}), "Retry-After": "1"},
                )
            except Exception as exc:  # engine/model failure — keep serving
                _log.error(
                    "http.internal_error",
                    route=self._route,
                    method="POST",
                    error=f"{type(exc).__name__}: {exc}"[:400],
                )
                body = {"error": {"code": "internal",
                                  "message": f"{type(exc).__name__}: {exc}",
                                  "field": None}}
                if legacy:
                    body = {"error": f"{type(exc).__name__}: {exc}", "status": 500}
                self._send_json(500, body, headers=headers)

    def _read_body_or_fatal(self, *, optional: bool = False) -> dict:
        """Read + parse the body; size violations become fatal (close)."""
        try:
            return self._read_json(optional=optional)
        except ServingError as exc:
            if exc.code in ("body_too_large", "missing_body"):
                raise _Fatal(exc) from None
            raise

    def _handle_predict(self, kind: str, legacy: bool, headers: dict | None) -> None:
        # Body first (so a 404 for an unknown kind still leaves the
        # keep-alive connection in sync), size policing before the read.
        payload = self._read_body_or_fatal()
        request_schema_for(kind)
        result = self.server.engine.predict(
            kind, payload, timeout=self.server.request_timeout
        )
        self._send_result(result, legacy, headers)

    def _send_result(self, result: dict, legacy: bool, headers: dict | None) -> None:
        if "error" in result:
            status = int(result.get("status", 400))
            err = result["error"]
            if legacy:
                message = err.get("message") if isinstance(err, dict) else str(err)
                self._send_json(
                    status, {"error": message, "status": status}, headers=headers
                )
            else:
                self._send_json(status, {"error": err}, headers=headers)
        else:
            self._send_json(200, result, headers=headers)

    def _handle_batch(self, kind: str) -> None:
        payload = self._read_body_or_fatal()
        request_schema_for(kind)
        batch = BatchRequest.validate(payload)
        engine = self.server.engine
        futures = [engine.submit(kind, item) for item in batch.requests]
        results, n_errors = [], 0
        for future in futures:
            try:
                result = future.result(timeout=self.server.request_timeout)
            except FutureTimeout:
                result = ServingError(
                    "the engine did not answer in time; retry later",
                    status=503,
                    code="overloaded",
                ).as_result()
            except Exception as exc:
                result = ServingError(
                    f"{type(exc).__name__}: {exc}", status=500, code="internal"
                ).as_result()
            if "error" in result:
                n_errors += 1
            results.append(result)
        self._send_json(
            200,
            {"results": results, "n_ok": len(results) - n_errors, "n_errors": n_errors},
        )

    def _handle_reload(self, name: str) -> None:
        registry = self._registry()
        req = ReloadRequest.validate(self._read_body_or_fatal(optional=True))
        version = req.version
        if req.alias is not None:
            alias_name, alias_version = registry.resolve(req.alias)
            if alias_name != registry.resolve(name)[0]:
                raise ServingError(
                    f"alias {req.alias!r} points at model {alias_name!r}, "
                    f"not {name!r}",
                    status=409,
                    code="alias_mismatch",
                    field="alias",
                )
            version = alias_version if version is None else version
        info = self.server.engine.reload_model(registry, name, version)
        self._send_json(200, info)


class _Fatal(Exception):
    """An error answered without consuming the request body (close conn)."""

    def __init__(self, error: ServingError):
        super().__init__(str(error))
        self.error = error


class _EngineHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # Default backlog (5) drops connections under bursty load; raise it so
    # the throughput benchmark's connection churn doesn't see RSTs.
    request_queue_size = 128

    def __init__(self, address, engine: InferenceEngine, *, verbose: bool,
                 request_timeout: float, registry: ModelRegistry | None):
        super().__init__(address, _Handler)
        self.engine = engine
        self.verbose = verbose
        self.request_timeout = request_timeout
        self.registry = registry


class PredictionServer:
    """Owns the HTTP server + engine lifecycle.

    ``port=0`` binds an ephemeral port (the actual one is in ``address``),
    which is what the tests and the throughput benchmark use.  Passing a
    ``registry`` (a :class:`ModelRegistry` or its root path) enables the
    model-lifecycle routes (``/v1/models*``, reload).
    """

    def __init__(
        self,
        engine: InferenceEngine,
        host: str = "127.0.0.1",
        port: int = 8000,
        *,
        registry: ModelRegistry | str | None = None,
        verbose: bool = False,
        request_timeout: float = 60.0,
    ):
        self.engine = engine
        if registry is not None and not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        self._httpd = _EngineHTTPServer(
            (host, port), engine, verbose=verbose,
            request_timeout=request_timeout, registry=registry,
        )
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "PredictionServer":
        """Start the engine worker and serve HTTP in a background thread."""
        self.engine.start()
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serving-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.engine.stop()

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_forever(
    engine: InferenceEngine,
    host: str,
    port: int,
    *,
    registry: ModelRegistry | str | None = None,
    verbose: bool = True,
) -> None:
    """Blocking serve loop for the CLI (Ctrl-C to stop)."""
    server = PredictionServer(engine, host, port, registry=registry, verbose=verbose)
    server.engine.start()
    host_, port_ = server.address
    print(f"serving on http://{host_}:{port_}  (models: {sorted(engine.predictors)})")
    try:
        server._httpd.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()

"""Threaded HTTP front-end for the inference engine — API v1.

Versioned endpoints (all JSON)::

    POST /v1/predict/retweeters      one RetweeterRequest -> scores/ranking
    POST /v1/predict/hategen         one HateGenRequest   -> score/label
    POST /v1/batch/{kind}            {"requests": [...]} fanned into the
                                     micro-batcher, answered in one call
    GET  /v1/models                  registry models / versions / aliases
    GET  /v1/models/{name}           manifest (?version=N; aliases accepted)
    GET  /v1/models/{name}/versions  committed versions + aliases
    POST /v1/models/{name}/reload    load a bundle version and atomically
                                     swap the serving predictor
    GET  /v1/healthz                 liveness + loaded-model info
    GET  /v1/metrics                 latency/throughput/cache counters

All route logic — dispatch, error shaping, the legacy ``/predict/*``
deprecation shim — lives in :class:`repro.serving.routes.RouteCore`,
shared byte-for-byte with the asyncio front end
(:mod:`repro.serving.aio`).  This module only does the
``ThreadingHTTPServer`` transport work: each connection gets a thread,
and all threads funnel their requests through the shared
:class:`~repro.serving.engine.InferenceEngine`, which is what makes
micro-batching across concurrent clients happen.

Resolution happens *before* the body is read, so unknown routes, unknown
predictor kinds, and admission-control rejections (429 + ``Retry-After``)
answer without consuming the payload — those responses carry
``Connection: close`` since the connection is out of sync for keep-alive.
"""

from __future__ import annotations

import threading
from concurrent.futures import TimeoutError as FutureTimeout
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from urllib.parse import parse_qs, urlsplit

from repro.obs import trace as obs_trace
from repro.serving.admission import AdmissionConfig, AdmissionController
from repro.serving.engine import InferenceEngine, ServingError
from repro.serving.registry import ModelRegistry
from repro.serving.routes import (
    HTTP_REQUESTS as _HTTP_REQUESTS,
)
from repro.serving.routes import (
    MAX_BODY_BYTES,
    TENANT_HEADER,
    Reply,
    RouteCore,
)
from repro.serving.routes import (
    TRACE_ID_RE as _TRACE_ID_RE,
)
from repro.serving.routes import (
    route_label as _route_label,
)

__all__ = ["PredictionServer", "serve_forever", "MAX_BODY_BYTES"]


def _build_admission(admission, engine) -> AdmissionController | None:
    """Normalise the ``admission=`` argument both front ends accept."""
    if admission is None:
        return None
    if isinstance(admission, AdmissionConfig):
        admission = AdmissionController(admission)
    if admission._depth_fn is None:
        admission.bind_engine(engine)
    return admission


class _Handler(BaseHTTPRequestHandler):
    server_version = "repro-serving/1"
    protocol_version = "HTTP/1.1"
    # Headers and body go out as separate small writes; without TCP_NODELAY
    # they collide with delayed ACKs and every keep-alive response after the
    # first stalls ~40 ms.
    disable_nagle_algorithm = True
    # Per-request telemetry state, reset at the top of each do_* call.
    _route = "other"
    _trace_id: str | None = None

    # ------------------------------------------------------------- plumbing
    def log_message(self, fmt, *args):  # noqa: D102 — quiet by default
        if getattr(self.server, "verbose", False):
            super().log_message(fmt, *args)

    def _send_reply(self, reply: Reply) -> None:
        with obs_trace.span("http.serialize", status=reply.status):
            body = reply.body_bytes()
        _HTTP_REQUESTS.inc(
            route=self._route, method=self.command, status=str(reply.status)
        )
        headers = dict(reply.headers)
        if self._trace_id is not None:
            headers["X-Trace-Id"] = self._trace_id
        self.send_response(reply.status)
        self.send_header("Content-Type", reply.content_type)
        self.send_header("Content-Length", str(len(body)))
        for name, value in headers.items():
            self.send_header(name, value)
        if reply.close:
            # The request body (if any) was not consumed: the connection is
            # out of sync for keep-alive, so tell the client and close it
            # rather than leaving it hanging on a half-read socket.
            self.send_header("Connection", "close")
            self.close_connection = True
        self.end_headers()
        self.wfile.write(body)

    def _split_path(self) -> tuple[str, dict]:
        parts = urlsplit(self.path)
        return parts.path.rstrip("/") or "/", parse_qs(parts.query)

    def _read_body_or_fatal(self, core: RouteCore, *, optional: bool = False) -> dict:
        """Read + parse the body, policing size *before* reading it.

        An oversized ``Content-Length`` is answered 413 without touching
        ``rfile`` — the connection then closes, so the server never
        buffers (or waits on) a body it already rejected.
        """
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise _Fatal(core.body_too_large(length))
        raw = self.rfile.read(length) if length > 0 else b""
        try:
            return core.parse_body(raw, optional=optional)
        except ServingError as exc:
            if exc.code == "missing_body":
                raise _Fatal(exc) from None
            raise

    # --------------------------------------------------------------- GET
    def do_GET(self) -> None:  # noqa: N802 — http.server API
        path, query = self._split_path()
        self._route = _route_label(path)
        self._trace_id = None
        core: RouteCore = self.server.core
        resolved = None
        try:
            resolved = core.resolve("GET", path)
            reply = core.dispatch_simple(resolved, query, {})
        except Exception as exc:  # keep serving
            reply = core.error_reply(
                exc, resolved if resolved is not None else core.unresolved("GET", path)
            )
        self._send_reply(reply)

    # --------------------------------------------------------------- POST
    def do_POST(self) -> None:  # noqa: N802 — http.server API
        path, query = self._split_path()
        self._route = _route_label(path)
        self._trace_id = None
        core: RouteCore = self.server.core
        try:
            resolved = core.resolve("POST", path)
        except ServingError as exc:
            # Unknown route / unknown kind: the body was never read, so
            # close the connection to keep keep-alive clients in sync.
            self._send_reply(
                core.error_reply(exc, core.unresolved("POST", path), close=True)
            )
            return
        # Admission runs after resolve but before the trace and the body
        # read: a shed request costs one decision and one small write.
        admitted = core.check_admission(resolved, self.headers.get(TENANT_HEADER))
        if admitted is not None and not admitted.admitted:
            self._send_reply(core.shed_reply(admitted, resolved))
            return
        # Prediction routes get a trace: a client-supplied X-Trace-Id always
        # forces sampling (and is echoed back); otherwise the configured
        # sample rate decides.  The id is None when the trace isn't sampled,
        # which turns every downstream span into a no-op.
        inbound = (self.headers.get("X-Trace-Id") or "").strip()
        if not _TRACE_ID_RE.match(inbound):
            inbound = ""
        root = (
            obs_trace.start_trace(
                "http.request",
                trace_id=inbound or None,
                sampled=True if inbound else None,
                method="POST",
                route=self._route,
            )
            if resolved.traced
            else obs_trace.NOOP
        )
        try:
            with root:
                self._trace_id = root.trace_id
                try:
                    payload = self._read_body_or_fatal(
                        core, optional=(resolved.op == "reload")
                    )
                    reply = core.dispatch(resolved, query, payload)
                except _Fatal as fatal:
                    reply = core.error_reply(fatal.error, resolved, close=True)
                except FutureTimeout:
                    reply = core.overloaded_reply(resolved)
                except Exception as exc:  # engine/model failure — keep serving
                    reply = core.error_reply(exc, resolved)
                self._send_reply(reply)
        finally:
            if admitted is not None:
                core.admission.release()


class _Fatal(Exception):
    """An error answered without consuming the request body (close conn)."""

    def __init__(self, error: ServingError):
        super().__init__(str(error))
        self.error = error


class _EngineHTTPServer(ThreadingHTTPServer):
    daemon_threads = True
    allow_reuse_address = True
    # Default backlog (5) drops connections under bursty load; raise it so
    # the throughput benchmark's connection churn doesn't see RSTs.
    request_queue_size = 128

    def __init__(self, address, core: RouteCore, *, verbose: bool):
        super().__init__(address, _Handler)
        self.core = core
        self.engine = core.engine
        self.verbose = verbose
        self.request_timeout = core.request_timeout
        self.registry = core.registry


class PredictionServer:
    """Owns the HTTP server + engine lifecycle.

    ``port=0`` binds an ephemeral port (the actual one is in ``address``),
    which is what the tests and the throughput benchmark use.  Passing a
    ``registry`` (a :class:`ModelRegistry` or its root path) enables the
    model-lifecycle routes (``/v1/models*``, reload).  Passing
    ``admission`` (an :class:`AdmissionController` or
    :class:`AdmissionConfig`) gates the prediction routes behind the
    admission controller; ``None`` (the default) admits everything.
    """

    def __init__(
        self,
        engine: InferenceEngine,
        host: str = "127.0.0.1",
        port: int = 8000,
        *,
        registry: ModelRegistry | str | None = None,
        verbose: bool = False,
        request_timeout: float = 60.0,
        admission: AdmissionController | AdmissionConfig | None = None,
    ):
        self.engine = engine
        if registry is not None and not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        self.registry = registry
        self.admission = _build_admission(admission, engine)
        self.core = RouteCore(
            engine,
            registry=registry,
            request_timeout=request_timeout,
            admission=self.admission,
        )
        self._httpd = _EngineHTTPServer((host, port), self.core, verbose=verbose)
        self._thread: threading.Thread | None = None

    @property
    def address(self) -> tuple[str, int]:
        """(host, port) actually bound."""
        return self._httpd.server_address[:2]

    @property
    def url(self) -> str:
        host, port = self.address
        return f"http://{host}:{port}"

    def start(self) -> "PredictionServer":
        """Start the engine worker and serve HTTP in a background thread."""
        self.engine.start()
        if self._thread is None or not self._thread.is_alive():
            self._thread = threading.Thread(
                target=self._httpd.serve_forever,
                name="repro-serving-http",
                daemon=True,
            )
            self._thread.start()
        return self

    def stop(self) -> None:
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=10.0)
            self._thread = None
        self.engine.stop()

    def __enter__(self) -> "PredictionServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()


def serve_forever(
    engine: InferenceEngine,
    host: str,
    port: int,
    *,
    registry: ModelRegistry | str | None = None,
    verbose: bool = True,
    admission: AdmissionController | AdmissionConfig | None = None,
) -> None:
    """Blocking serve loop for the CLI (Ctrl-C to stop)."""
    server = PredictionServer(
        engine, host, port, registry=registry, verbose=verbose, admission=admission
    )
    server.engine.start()
    host_, port_ = server.address
    print(f"serving on http://{host_}:{port_}  (models: {sorted(engine.predictors)})")
    try:
        server._httpd.serve_forever()
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        server.stop()

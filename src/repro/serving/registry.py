"""Versioned on-disk model registry for trained predictor bundles.

A *bundle* is everything needed to answer prediction queries without
re-training: model weights, the fitted feature-extractor state, the world
configuration (so the deterministic synthetic world can be regenerated at
load time), and manifest metadata (kind, mode, feature dims, train config,
metrics).

Store layout::

    <root>/
      <name>/
        v0001/
          manifest.json      # kind, dims, world/train config, metrics
          weights.npz        # RETINA state dict        (kind == "retina")
          model.pkl          # fitted classifier chain  (kind == "hategen")
          extractor.json     # feature-extractor state, JSON part
          extractor.npz      # feature-extractor state, ndarray part

Versions are immutable and monotonically increasing; ``save_bundle``
writes into a temp directory and renames it so readers never observe a
half-written version.  Extractor state splits into JSON + ``.npz`` via a
generic nested-dict flattener (ndarray leaves go to the npz keyed by their
path), keeping every artifact inspectable with stdlib + numpy only.

Aliases (``set_alias("prod", name, version)``) live in a root-level
``aliases.json`` rewritten atomically (temp file + ``os.replace``), so an
alias either points at its old target or its new one — never at a torn
file.  Every read API accepts an alias wherever it accepts a model name.

Lookups that find nothing raise :class:`RegistryError` (a
``FileNotFoundError`` subclass) carrying the searched ``root``/``name``/
``version`` so the serving API can surface them as 404s with a useful
message instead of opaque 500s.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import pickle
import re
import shutil
import time
import zipfile
from dataclasses import dataclass, field

import numpy as np

from repro import chaos
from repro.core.hategen.features import HateGenFeatureExtractor
from repro.core.retina.features import RetinaFeatureExtractor
from repro.core.retina.model import RETINA
from repro.data.synthetic import SyntheticWorld, SyntheticWorldConfig
from repro.obs import log as obs_log

__all__ = [
    "RetinaBundle",
    "HateGenBundle",
    "ModelRegistry",
    "RegistryError",
    "RegistryCorruptError",
]

_log = obs_log.get_logger("repro.serving.registry")

MANIFEST_SCHEMA = 1
_ARRAY_KEY = "__ndarray__"
_VERSION_RE = re.compile(r"^v(\d{4,})$")
_NAME_RE = re.compile(r"[A-Za-z0-9._-]+")
ALIASES_FILE = "aliases.json"


class RegistryError(FileNotFoundError):
    """A registry lookup found nothing; records what was searched.

    Subclasses ``FileNotFoundError`` so pre-v1 callers that caught that
    keep working, while the serving API can map it to a 404 with the
    searched ``root``/``name``/``version`` in the message.
    """

    def __init__(
        self,
        message: str,
        *,
        root: str | None = None,
        name: str | None = None,
        version: int | None = None,
    ):
        super().__init__(message)
        self.root = root
        self.name = name
        self.version = version


class RegistryCorruptError(RegistryError):
    """A committed bundle exists but failed integrity checks at load.

    Raised on checksum mismatch, truncated/undecodable artifacts, or a
    torn manifest.  Distinct from :class:`RegistryError` so the serving
    API can answer 409 ("the version you named is damaged") instead of
    404 ("no such version") — and keep the old predictor serving.
    """


def _sha256(path: str) -> str:
    digest = hashlib.sha256()
    with open(path, "rb") as fh:
        for chunk in iter(lambda: fh.read(1 << 20), b""):
            digest.update(chunk)
    return digest.hexdigest()


def _fsync_file(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


def _fsync_dir(path: str) -> None:
    fd = os.open(path, os.O_RDONLY)
    try:
        os.fsync(fd)
    finally:
        os.close(fd)


# ----------------------------------------------------------- state <-> disk
def _split_arrays(obj, arrays: dict, path: tuple):
    """Replace ndarray leaves with references; collect them into ``arrays``."""
    if isinstance(obj, np.ndarray):
        key = "/".join(path)
        arrays[key] = obj
        return {_ARRAY_KEY: key}
    if isinstance(obj, dict):
        return {k: _split_arrays(v, arrays, path + (str(k),)) for k, v in obj.items()}
    if isinstance(obj, (list, tuple)):
        return [_split_arrays(v, arrays, path + (str(i),)) for i, v in enumerate(obj)]
    if isinstance(obj, (np.integer,)):
        return int(obj)
    if isinstance(obj, (np.floating,)):
        return float(obj)
    if obj is None or isinstance(obj, (str, int, float, bool)):
        return obj
    raise TypeError(f"cannot serialize {type(obj).__name__} at {'/'.join(path)}")


def _join_arrays(obj, arrays: dict):
    """Inverse of :func:`_split_arrays`."""
    if isinstance(obj, dict):
        if set(obj) == {_ARRAY_KEY}:
            return arrays[obj[_ARRAY_KEY]]
        return {k: _join_arrays(v, arrays) for k, v in obj.items()}
    if isinstance(obj, list):
        return [_join_arrays(v, arrays) for v in obj]
    return obj


def save_state(directory: str, stem: str, state: dict) -> None:
    """Persist a nested state dict as ``<stem>.json`` + ``<stem>.npz``."""
    arrays: dict[str, np.ndarray] = {}
    meta = _split_arrays(state, arrays, ())
    with open(os.path.join(directory, f"{stem}.json"), "w") as fh:
        json.dump(meta, fh)
    np.savez(os.path.join(directory, f"{stem}.npz"), **arrays)


def load_state(directory: str, stem: str) -> dict:
    """Load a state dict written by :func:`save_state`."""
    with open(os.path.join(directory, f"{stem}.json")) as fh:
        meta = json.load(fh)
    with np.load(os.path.join(directory, f"{stem}.npz")) as data:
        arrays = {k: data[k] for k in data.files}
    return _join_arrays(meta, arrays)


# ------------------------------------------------------------------ bundles
@dataclass
class RetinaBundle:
    """A trained RETINA model plus everything needed to serve it."""

    model: RETINA
    extractor: RetinaFeatureExtractor
    world_config: SyntheticWorldConfig
    train_config: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    kind = "retina"

    def model_spec(self) -> dict:
        """Constructor arguments that rebuild an identical architecture."""
        m = self.model
        return {
            "user_dim": self.extractor.user_feature_dim,
            "tweet_dim": self.extractor.news_doc2vec_dim,
            "news_dim": self.extractor.news_doc2vec_dim,
            "hdim": m.hdim,
            "mode": m.mode,
            "use_exogenous": m.use_exogenous,
            "n_intervals": m.n_intervals,
            "recurrent_cell": m.recurrent_cell,
        }


@dataclass
class HateGenBundle:
    """A fitted hate-generation classifier chain plus its extractor.

    ``transforms`` are applied in order to the raw feature matrix before
    ``model`` (typically the fitted ``StandardScaler``, optionally PCA or
    the top-k selector, matching the training variant).
    """

    model: object
    transforms: list
    extractor: HateGenFeatureExtractor
    world_config: SyntheticWorldConfig
    model_key: str = ""
    variant: str = ""
    train_config: dict = field(default_factory=dict)
    metrics: dict = field(default_factory=dict)

    kind = "hategen"


# ----------------------------------------------------------------- registry
class ModelRegistry:
    """Append-only versioned store of predictor bundles under one root dir."""

    def __init__(self, root: str):
        self.root = str(root)
        os.makedirs(self.root, exist_ok=True)

    # ------------------------------------------------------------- listing
    def list_models(self) -> list[str]:
        """Model names with at least one committed version."""
        names = []
        for entry in sorted(os.listdir(self.root)):
            if os.path.isdir(os.path.join(self.root, entry)) and self.list_versions(entry):
                names.append(entry)
        return names

    def list_versions(self, name: str) -> list[int]:
        """Committed version numbers for ``name``, ascending."""
        model_dir = os.path.join(self.root, name)
        if not os.path.isdir(model_dir):
            return []
        versions = []
        for entry in os.listdir(model_dir):
            m = _VERSION_RE.match(entry)
            if m and os.path.exists(os.path.join(model_dir, entry, "manifest.json")):
                versions.append(int(m.group(1)))
        return sorted(versions)

    def latest_version(self, name: str) -> int:
        versions = self.list_versions(name)
        if not versions:
            raise RegistryError(
                f"no versions of model {name!r} in registry {self.root!r}",
                root=self.root,
                name=name,
            )
        return versions[-1]

    def _version_dir(self, name: str, version: int) -> str:
        return os.path.join(self.root, name, f"v{version:04d}")

    def resolve(self, ref: str, version: int | None = None) -> tuple[str, int]:
        """``(name, version)`` for a model name or alias.

        A model name resolves to itself (``version`` or its latest); an
        alias resolves to its pinned target — an explicit ``version``
        then overrides the pin.  Model names shadow aliases.
        """
        if self.list_versions(ref):
            return ref, version if version is not None else self.latest_version(ref)
        target = self.aliases().get(ref)
        if target is not None:
            return target["name"], version if version is not None else target["version"]
        raise RegistryError(
            f"no model or alias {ref!r} in registry {self.root!r}",
            root=self.root,
            name=ref,
            version=version,
        )

    def manifest(self, name: str, version: int | None = None) -> dict:
        """The manifest of one version (latest by default; aliases accepted)."""
        name, version = self.resolve(name, version)
        path = os.path.join(self._version_dir(name, version), "manifest.json")
        if not os.path.exists(path):
            raise RegistryError(
                f"no manifest for model {name!r} v{version:04d} in registry "
                f"{self.root!r} (committed versions: {self.list_versions(name)})",
                root=self.root,
                name=name,
                version=version,
            )
        try:
            with open(path) as fh:
                return json.load(fh)
        except (json.JSONDecodeError, UnicodeDecodeError) as exc:
            raise RegistryCorruptError(
                f"manifest for model {name!r} v{version:04d} in registry "
                f"{self.root!r} is not valid JSON: {exc}",
                root=self.root,
                name=name,
                version=version,
            ) from exc

    # ------------------------------------------------------------- aliases
    def _aliases_path(self) -> str:
        return os.path.join(self.root, ALIASES_FILE)

    def aliases(self, name: str | None = None) -> dict[str, dict]:
        """``{alias: {"name", "version"}}``, optionally for one model only."""
        try:
            with open(self._aliases_path()) as fh:
                aliases = json.load(fh)
        except FileNotFoundError:
            return {}
        if name is not None:
            aliases = {a: t for a, t in aliases.items() if t["name"] == name}
        return aliases

    def _write_aliases(self, aliases: dict[str, dict]) -> None:
        """Atomically rewrite ``aliases.json`` (temp file + rename)."""
        tmp = os.path.join(self.root, f".{ALIASES_FILE}.tmp-{os.getpid()}")
        with open(tmp, "w") as fh:
            json.dump(aliases, fh, indent=2, sort_keys=True)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, self._aliases_path())
        _fsync_dir(self.root)

    def set_alias(self, alias: str, name: str, version: int | None = None) -> dict:
        """Point ``alias`` at ``name``/``version`` (latest pinned at call time).

        The target version must be committed; an alias may not shadow an
        existing model name.  Returns the stored target.
        """
        if not _NAME_RE.fullmatch(alias):
            raise ValueError(f"invalid alias {alias!r}")
        if self.list_versions(alias):
            raise ValueError(f"alias {alias!r} would shadow a model of the same name")
        version = version if version is not None else self.latest_version(name)
        if version not in self.list_versions(name):
            raise RegistryError(
                f"cannot alias {alias!r}: model {name!r} has no committed "
                f"v{version:04d} in registry {self.root!r}",
                root=self.root,
                name=name,
                version=version,
            )
        target = {"name": name, "version": int(version)}
        aliases = self.aliases()
        aliases[alias] = target
        self._write_aliases(aliases)
        return target

    def delete_alias(self, alias: str) -> bool:
        """Drop ``alias``; returns whether it existed."""
        aliases = self.aliases()
        existed = aliases.pop(alias, None) is not None
        if existed:
            self._write_aliases(aliases)
        return existed

    # -------------------------------------------------------------- saving
    def save_bundle(self, name: str, bundle) -> dict:
        """Persist a bundle as the next version of ``name``; return its manifest."""
        if not _NAME_RE.fullmatch(name):
            raise ValueError(f"invalid model name {name!r}")
        if name in self.aliases():
            raise ValueError(f"model name {name!r} is already taken by an alias")
        if bundle.kind not in ("retina", "hategen"):
            raise ValueError(f"unknown bundle kind {bundle.kind!r}")
        model_dir = os.path.join(self.root, name)
        os.makedirs(model_dir, exist_ok=True)
        tmp_dir = os.path.join(model_dir, f".tmp-{os.getpid()}-{id(bundle):x}")
        os.makedirs(tmp_dir)
        try:
            manifest = {
                "schema": MANIFEST_SCHEMA,
                "name": name,
                "kind": bundle.kind,
                "created_at": time.time(),
                "world_config": dataclasses.asdict(bundle.world_config),
                "train_config": dict(bundle.train_config),
                "metrics": {k: float(v) for k, v in bundle.metrics.items()},
                # Highest event-log seq already reflected in the bundle's
                # world at fit time; replay after a restart resumes past it
                # (the extractor state carries its own fine-grained
                # watermark for the train-derived structures).
                "store_watermark": int(
                    getattr(bundle.extractor.world, "_store_watermark", 0)
                ),
            }
            if bundle.kind == "retina":
                manifest["model"] = bundle.model_spec()
                manifest["feature_dims"] = {
                    "user": bundle.extractor.user_feature_dim,
                    "tweet": bundle.extractor.news_doc2vec_dim,
                    "news": bundle.extractor.news_doc2vec_dim,
                }
                manifest["n_parameters"] = bundle.model.n_parameters()
                bundle.model.save(os.path.join(tmp_dir, "weights.npz"))
            else:
                manifest["model"] = {
                    "model_key": bundle.model_key,
                    "variant": bundle.variant,
                }
                with open(os.path.join(tmp_dir, "model.pkl"), "wb") as fh:
                    pickle.dump(
                        {"model": bundle.model, "transforms": list(bundle.transforms)},
                        fh,
                    )
            save_state(tmp_dir, "extractor", bundle.extractor.to_state())
            # Per-file SHA-256 over every artifact: a truncated or bit-rotted
            # file is detected at load instead of surfacing as an unpickling
            # traceback mid-reload.
            manifest["files"] = {
                entry: _sha256(os.path.join(tmp_dir, entry))
                for entry in sorted(os.listdir(tmp_dir))
            }
            if chaos.should_fire("registry.save"):
                # Torn-write injection: truncate the first artifact *after*
                # checksumming, so the damage is exactly what load must catch.
                victim = os.path.join(tmp_dir, sorted(manifest["files"])[0])
                size = os.path.getsize(victim)
                with open(victim, "rb+") as fh:
                    fh.truncate(max(size // 2, 1))
                _log.warning("registry.chaos_truncated", name=name, file=victim)
            # Claim a version by renaming into place; a concurrent saver that
            # wins the same number makes the rename fail, so recompute and
            # retry rather than discarding a fully trained bundle.
            for _ in range(100):
                versions = self.list_versions(name)
                version = (versions[-1] + 1) if versions else 1
                manifest["version"] = version
                # Manifest last: its presence marks the version as committed.
                with open(os.path.join(tmp_dir, "manifest.json"), "w") as fh:
                    json.dump(manifest, fh, indent=2, sort_keys=True)
                    fh.flush()
                    os.fsync(fh.fileno())
                # Durability before visibility: every artifact and the temp
                # directory itself hit disk before the rename publishes them.
                for entry in os.listdir(tmp_dir):
                    _fsync_file(os.path.join(tmp_dir, entry))
                _fsync_dir(tmp_dir)
                try:
                    os.rename(tmp_dir, self._version_dir(name, version))
                    _fsync_dir(model_dir)
                    break
                except OSError:
                    if not os.path.exists(self._version_dir(name, version)):
                        raise
                    # A concurrent saver won this version number; retry with
                    # the next one.
                    _log.warning(
                        "registry.version_claim_retry", name=name, version=version
                    )
            else:
                raise RuntimeError(
                    f"could not claim a version for {name!r} after 100 attempts"
                )
        except BaseException as exc:
            _log.error(
                "registry.save_failed",
                name=name,
                error=f"{type(exc).__name__}: {exc}"[:400],
            )
            shutil.rmtree(tmp_dir, ignore_errors=True)
            raise
        return manifest

    # ------------------------------------------------------------- loading
    def _verify_files(self, manifest: dict, directory: str) -> None:
        """Check recorded per-file SHA-256 digests (pre-checksum bundles skip)."""
        files = manifest.get("files")
        if not files:
            return
        for fname, digest in sorted(files.items()):
            path = os.path.join(directory, fname)
            try:
                actual = _sha256(path)
            except OSError as exc:
                raise RegistryCorruptError(
                    f"bundle {manifest['name']!r} v{manifest['version']:04d} "
                    f"is missing artifact {fname!r}: {exc}",
                    root=self.root,
                    name=manifest["name"],
                    version=manifest["version"],
                ) from exc
            if actual != digest:
                _log.error(
                    "registry.checksum_mismatch",
                    name=manifest["name"],
                    version=manifest["version"],
                    file=fname,
                )
                raise RegistryCorruptError(
                    f"bundle {manifest['name']!r} v{manifest['version']:04d} "
                    f"artifact {fname!r} failed its SHA-256 check "
                    f"(expected {digest[:12]}…, got {actual[:12]}…)",
                    root=self.root,
                    name=manifest["name"],
                    version=manifest["version"],
                )

    def load_bundle(
        self, name: str, version: int | None = None, *, world: SyntheticWorld | None = None
    ):
        """Load a bundle (latest version by default; aliases accepted).

        The synthetic world is regenerated from the manifest's recorded
        config unless an already-built ``world`` is supplied (it must come
        from the same config for features to match training).
        """
        manifest = self.manifest(name, version)
        directory = self._version_dir(manifest["name"], manifest["version"])
        self._verify_files(manifest, directory)
        world_config = SyntheticWorldConfig(**manifest["world_config"])
        if world is None:
            world = SyntheticWorld.generate(world_config)
        elif world.config != world_config:
            raise ValueError(
                f"supplied world config {world.config} does not match the "
                f"bundle's recorded config {world_config}"
            )
        try:
            state = load_state(directory, "extractor")
            if manifest["kind"] == "retina":
                extractor = RetinaFeatureExtractor.from_state(world, state)
                model = RETINA(**manifest["model"], random_state=0)
                model.load(os.path.join(directory, "weights.npz"))
                model.eval()
                return RetinaBundle(
                    model=model,
                    extractor=extractor,
                    world_config=world_config,
                    train_config=manifest["train_config"],
                    metrics=manifest["metrics"],
                )
            extractor = HateGenFeatureExtractor.from_state(world, state)
            with open(os.path.join(directory, "model.pkl"), "rb") as fh:
                payload = pickle.load(fh)
        except RegistryError:
            raise
        except (
            zipfile.BadZipFile,
            pickle.UnpicklingError,
            json.JSONDecodeError,
            UnicodeDecodeError,
            EOFError,
            KeyError,
            ValueError,
            OSError,
        ) as exc:
            raise RegistryCorruptError(
                f"bundle {manifest['name']!r} v{manifest['version']:04d} in "
                f"registry {self.root!r} failed to decode: "
                f"{type(exc).__name__}: {exc}",
                root=self.root,
                name=manifest["name"],
                version=manifest["version"],
            ) from exc
        return HateGenBundle(
            model=payload["model"],
            transforms=payload["transforms"],
            extractor=extractor,
            world_config=world_config,
            model_key=manifest["model"]["model_key"],
            variant=manifest["model"]["variant"],
            train_config=manifest["train_config"],
            metrics=manifest["metrics"],
        )

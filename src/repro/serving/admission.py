"""Admission control for the serving front ends: quotas + load shedding.

The serving tier's failure mode used to be *silent saturation*: the
micro-batching engine queues work without bound, so under overload every
client sees a 30 s timeout (or a 503 long after the damage is done).
:class:`AdmissionController` moves the rejection to the front door — a
request is either admitted (and will get an answer within the latency
envelope) or refused immediately with ``429`` + ``Retry-After``:

- **bounded accept queue** — at most ``max_pending`` admitted requests
  may be in flight through the engine at once;
- **per-route token buckets** — each sheddable route (the ``/v1/predict``
  and ``/v1/batch`` families) refills at ``route_rps`` tokens/s with a
  ``route_burst`` ceiling;
- **per-tenant token buckets** — tenants are identified by the
  ``X-Api-Key`` request header (absent header = the anonymous tenant),
  each with its own ``tenant_rps``/``tenant_burst`` bucket so one hot
  client cannot starve the rest;
- **saturation watermarks with hysteresis** — when the engine queue
  depth or queue age crosses its high watermark the controller starts
  shedding sheddable requests, and keeps shedding until the signal falls
  below the low watermark (no flapping at the boundary).  The
  ``Retry-After`` it returns is computed from the live queue-age signal,
  so clients back off proportionally to how far behind the engine is.

Every knob has a ``REPRO_ADMIT_*`` environment variable (see
:meth:`AdmissionConfig.from_env`); rates of ``0`` disable that quota.
All decisions are cheap (one lock, a few float ops) and thread-safe:
the asyncio front end calls in from its event-loop thread while metrics
readers snapshot from others.
"""

from __future__ import annotations

import math
import os
import threading
import time
from collections import OrderedDict
from dataclasses import dataclass

from repro.obs import metrics as obs_metrics

__all__ = [
    "TokenBucket",
    "AdmissionConfig",
    "AdmissionController",
    "Decision",
    "ANON_TENANT",
]

#: Tenant label used when a request carries no ``X-Api-Key`` header.
ANON_TENANT = "anonymous"

_ADMITTED = obs_metrics.REGISTRY.counter(
    "repro_requests_admitted_total",
    "Requests admitted through the admission controller, by route.",
    ("route",),
)
_SHED = obs_metrics.REGISTRY.counter(
    "repro_requests_shed_total",
    "Requests refused with 429 by the admission controller.",
    ("route", "reason"),
)
_SHEDDING = obs_metrics.REGISTRY.gauge(
    "repro_admission_shedding",
    "1 while the saturation shedder is active (watermark hysteresis).",
)
_PENDING = obs_metrics.REGISTRY.gauge(
    "repro_admission_pending",
    "Admitted requests currently in flight through the engine.",
)
_TENANT_TOKENS = obs_metrics.REGISTRY.gauge(
    "repro_tenant_tokens",
    "Token-bucket level per tenant (refreshed at scrape).",
    ("tenant",),
)


class TokenBucket:
    """A thread-safe token bucket: ``rate`` tokens/s up to ``burst``.

    The bucket starts full.  :meth:`try_take` is the only mutating entry
    point; refill is computed lazily from the elapsed time, so an idle
    bucket costs nothing.  ``rate <= 0`` means *unlimited* — every take
    succeeds and :meth:`retry_after` is always 0.
    """

    __slots__ = ("rate", "burst", "_tokens", "_stamp", "_lock")

    def __init__(self, rate: float, burst: float | None = None):
        self.rate = float(rate)
        self.burst = float(burst if burst is not None else max(1.0, rate))
        if self.rate > 0 and self.burst < 1.0:
            raise ValueError(f"burst must be >= 1 token, got {self.burst}")
        self._tokens = self.burst
        self._stamp: float | None = None
        self._lock = threading.Lock()

    def _refill(self, now: float) -> None:
        if self._stamp is None:
            self._stamp = now
            return
        elapsed = now - self._stamp
        if elapsed > 0:
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
            self._stamp = now

    def try_take(self, n: float = 1.0, now: float | None = None) -> bool:
        """Take ``n`` tokens if available; never blocks."""
        if self.rate <= 0:
            return True
        if now is None:
            now = time.monotonic()
        with self._lock:
            self._refill(now)
            if self._tokens >= n:
                self._tokens -= n
                return True
            return False

    def tokens(self, now: float | None = None) -> float:
        """Current level (after lazy refill); ``inf`` for unlimited buckets."""
        if self.rate <= 0:
            return math.inf
        if now is None:
            now = time.monotonic()
        with self._lock:
            self._refill(now)
            return self._tokens

    def retry_after(self, n: float = 1.0, now: float | None = None) -> float:
        """Seconds until ``n`` tokens will be available (0 when they are)."""
        if self.rate <= 0:
            return 0.0
        if now is None:
            now = time.monotonic()
        with self._lock:
            self._refill(now)
            deficit = n - self._tokens
        return max(0.0, deficit / self.rate)


@dataclass(frozen=True)
class Decision:
    """The outcome of one admission check."""

    admitted: bool
    reason: str = "admitted"
    retry_after_s: float = 0.0

    @property
    def retry_after_header(self) -> str:
        """``Retry-After`` is delta-seconds; whole seconds, at least 1."""
        return str(max(1, math.ceil(self.retry_after_s)))


_ADMITTED_DECISION = Decision(True)


def _env_float(name: str, default: float) -> float:
    raw = os.environ.get(name, "").strip()
    if not raw:
        return default
    try:
        return float(raw)
    except ValueError:
        raise ValueError(f"{name} must be a number, got {raw!r}") from None


@dataclass
class AdmissionConfig:
    """Knobs of the admission controller (all overridable via env vars).

    ============================  =======================================
    env var                       field
    ============================  =======================================
    ``REPRO_ADMIT``               ``enabled`` (``0``/``false`` disables)
    ``REPRO_ADMIT_MAX_PENDING``   ``max_pending``
    ``REPRO_ADMIT_RPS``           ``route_rps`` (0 = unlimited)
    ``REPRO_ADMIT_BURST``         ``route_burst``
    ``REPRO_ADMIT_TENANT_RPS``    ``tenant_rps`` (0 = unlimited)
    ``REPRO_ADMIT_TENANT_BURST``  ``tenant_burst``
    ``REPRO_ADMIT_DEPTH_HIGH``    ``depth_high`` (queue depth watermark)
    ``REPRO_ADMIT_DEPTH_LOW``     ``depth_low``
    ``REPRO_ADMIT_AGE_HIGH``      ``age_high_s`` (queue age watermark)
    ``REPRO_ADMIT_AGE_LOW``       ``age_low_s``
    ============================  =======================================
    """

    enabled: bool = True
    #: Admitted-but-unanswered requests allowed in flight at once.
    max_pending: int = 512
    #: Per-route token rate (requests/s); 0 disables the route quota.
    route_rps: float = 0.0
    route_burst: float | None = None
    #: Per-tenant token rate (requests/s); 0 disables the tenant quota.
    tenant_rps: float = 0.0
    tenant_burst: float | None = None
    #: Engine queue depth that starts (high) / stops (low) shedding.
    depth_high: int = 256
    depth_low: int = 64
    #: Engine queue age (seconds) that starts / stops shedding.
    age_high_s: float = 1.0
    age_low_s: float = 0.25
    #: Distinct tenant buckets retained (oldest evicted first).
    max_tenants: int = 1024

    def __post_init__(self):
        if self.max_pending < 1:
            raise ValueError(f"max_pending must be >= 1, got {self.max_pending}")
        if self.depth_low > self.depth_high:
            raise ValueError(
                f"depth_low ({self.depth_low}) must be <= depth_high "
                f"({self.depth_high})"
            )
        if self.age_low_s > self.age_high_s:
            raise ValueError(
                f"age_low_s ({self.age_low_s}) must be <= age_high_s "
                f"({self.age_high_s})"
            )

    @classmethod
    def from_env(cls) -> "AdmissionConfig":
        """The config described by the ``REPRO_ADMIT_*`` environment."""
        enabled = os.environ.get("REPRO_ADMIT", "1").strip().lower() not in (
            "0", "false", "no", "off",
        )
        burst = _env_float("REPRO_ADMIT_BURST", 0.0)
        tenant_burst = _env_float("REPRO_ADMIT_TENANT_BURST", 0.0)
        return cls(
            enabled=enabled,
            max_pending=int(_env_float("REPRO_ADMIT_MAX_PENDING", cls.max_pending)),
            route_rps=_env_float("REPRO_ADMIT_RPS", cls.route_rps),
            route_burst=burst or None,
            tenant_rps=_env_float("REPRO_ADMIT_TENANT_RPS", cls.tenant_rps),
            tenant_burst=tenant_burst or None,
            depth_high=int(_env_float("REPRO_ADMIT_DEPTH_HIGH", cls.depth_high)),
            depth_low=int(_env_float("REPRO_ADMIT_DEPTH_LOW", cls.depth_low)),
            age_high_s=_env_float("REPRO_ADMIT_AGE_HIGH", cls.age_high_s),
            age_low_s=_env_float("REPRO_ADMIT_AGE_LOW", cls.age_low_s),
        )


class AdmissionController:
    """Admit-or-shed gate shared by both HTTP front ends.

    The controller never touches a request body — it decides from the
    route label, the tenant header, and the engine's live saturation
    signals, which is what lets both front ends answer 429 *before*
    reading (or even waiting for) the payload.

    ``depth_fn``/``age_fn`` are zero-argument callables returning the
    engine queue depth and the age of its oldest queued request;
    :meth:`bind_engine` wires them from an :class:`InferenceEngine`.
    """

    def __init__(
        self,
        config: AdmissionConfig | None = None,
        *,
        depth_fn=None,
        age_fn=None,
        clock=time.monotonic,
    ):
        self.config = config or AdmissionConfig()
        self._clock = clock
        self._depth_fn = depth_fn
        self._age_fn = age_fn
        self._lock = threading.Lock()
        self._pending = 0
        self._shedding = False
        self._route_buckets: dict[str, TokenBucket] = {}
        self._tenants: OrderedDict[str, TokenBucket] = OrderedDict()
        self.n_admitted = 0
        self.n_shed = 0
        _PENDING.set_fn(lambda: self._pending)
        _SHEDDING.set_fn(lambda: 1.0 if self._shedding else 0.0)
        _TENANT_TOKENS.set_fn(self._tenant_token_levels)

    # ------------------------------------------------------------- wiring
    def bind_engine(self, engine) -> "AdmissionController":
        """Read saturation signals straight off an ``InferenceEngine``."""
        self._depth_fn = lambda: len(engine._queued_arrivals)
        self._age_fn = engine._queue_age_s
        return self

    def _tenant_token_levels(self) -> dict[tuple, float]:
        with self._lock:
            buckets = list(self._tenants.items())
        now = self._clock()
        return {
            (tenant,): -1.0 if math.isinf(b.tokens(now)) else round(b.tokens(now), 3)
            for tenant, b in buckets
        }

    # ----------------------------------------------------------- decision
    def _saturated(self) -> tuple[bool, float]:
        """(currently shedding?, queue age) after the hysteresis update."""
        depth = self._depth_fn() if self._depth_fn is not None else 0
        age = self._age_fn() if self._age_fn is not None else 0.0
        cfg = self.config
        with self._lock:
            if self._shedding:
                if depth <= cfg.depth_low and age <= cfg.age_low_s:
                    self._shedding = False
            else:
                if depth >= cfg.depth_high or age >= cfg.age_high_s:
                    self._shedding = True
            return self._shedding, age

    def _route_bucket(self, route: str) -> TokenBucket:
        with self._lock:
            bucket = self._route_buckets.get(route)
            if bucket is None:
                cfg = self.config
                bucket = self._route_buckets[route] = TokenBucket(
                    cfg.route_rps, cfg.route_burst
                )
            return bucket

    def _tenant_bucket(self, tenant: str) -> TokenBucket:
        with self._lock:
            bucket = self._tenants.get(tenant)
            if bucket is None:
                cfg = self.config
                bucket = self._tenants[tenant] = TokenBucket(
                    cfg.tenant_rps, cfg.tenant_burst
                )
                while len(self._tenants) > cfg.max_tenants:
                    self._tenants.popitem(last=False)
            else:
                self._tenants.move_to_end(tenant)
            return bucket

    def admit(self, route: str, tenant: str | None = None) -> Decision:
        """Decide one request; an admitted one MUST be :meth:`release`-d."""
        cfg = self.config
        if not cfg.enabled:
            return _ADMITTED_DECISION
        now = self._clock()

        shedding, age = self._saturated()
        if shedding:
            # Back off proportionally to how far behind the engine is: the
            # queue age is how long its head has already waited, so 2x that
            # is a decent guess for when the backlog will have cleared.
            decision = Decision(False, "engine_saturated", max(1.0, 2.0 * age))
        elif self._pending >= cfg.max_pending:
            decision = Decision(False, "queue_full", 1.0)
        else:
            route_bucket = self._route_bucket(route)
            if not route_bucket.try_take(now=now):
                decision = Decision(
                    False, "route_quota", route_bucket.retry_after(now=now)
                )
            else:
                tenant_bucket = self._tenant_bucket(tenant or ANON_TENANT)
                if not tenant_bucket.try_take(now=now):
                    decision = Decision(
                        False, "tenant_quota", tenant_bucket.retry_after(now=now)
                    )
                else:
                    with self._lock:
                        self._pending += 1
                        self.n_admitted += 1
                    _ADMITTED.inc(route=route)
                    return _ADMITTED_DECISION
        with self._lock:
            self.n_shed += 1
        _SHED.inc(route=route, reason=decision.reason)
        return decision

    def release(self) -> None:
        """An admitted request finished (answered or failed)."""
        with self._lock:
            if self._pending > 0:
                self._pending -= 1

    # ------------------------------------------------------------- stats
    @property
    def shedding(self) -> bool:
        return self._shedding

    @property
    def pending(self) -> int:
        return self._pending

    def snapshot(self) -> dict:
        """JSON-ready counters for ``/v1/metrics``."""
        with self._lock:
            return {
                "enabled": self.config.enabled,
                "admitted": self.n_admitted,
                "shed": self.n_shed,
                "pending": self._pending,
                "shedding": self._shedding,
                "max_pending": self.config.max_pending,
                "tenants": len(self._tenants),
            }

"""Per-request latency / throughput counters for the serving layer.

Latencies are kept in a bounded ring so percentile queries stay O(window)
and memory stays constant under sustained traffic.  All methods are
thread-safe; HTTP handler threads record while ``/metrics`` reads.
"""

from __future__ import annotations

import threading
import time
from collections import deque

import numpy as np

__all__ = ["ServingMetrics"]


class ServingMetrics:
    """Rolling counters for one predictor endpoint.

    Parameters
    ----------
    window:
        Number of most recent request latencies retained for percentile
        estimates.
    """

    def __init__(self, window: int = 4096, clock=time.perf_counter):
        if window < 1:
            raise ValueError(f"window must be >= 1, got {window}")
        self._clock = clock
        self._lock = threading.Lock()
        self._latencies: deque[float] = deque(maxlen=window)
        self._arrivals: deque[float] = deque(maxlen=window)
        self._started = clock()
        self.n_requests = 0
        self.n_items = 0
        self.n_batches = 0
        self.n_errors = 0

    def record(self, latency_s: float, n_items: int = 1) -> None:
        """Record one served request of ``n_items`` predictions."""
        with self._lock:
            self.n_requests += 1
            self.n_items += n_items
            self._latencies.append(latency_s)
            self._arrivals.append(self._clock())

    def record_batch(self) -> None:
        """Record one engine batch execution."""
        with self._lock:
            self.n_batches += 1

    def record_error(self) -> None:
        with self._lock:
            self.n_errors += 1

    def percentiles(self, qs=(50.0, 95.0)) -> dict[str, float]:
        """Latency percentiles in milliseconds over the rolling window."""
        with self._lock:
            lat = np.fromiter(self._latencies, dtype=np.float64)
        if lat.size == 0:
            return {f"p{int(q)}_ms": 0.0 for q in qs}
        return {
            f"p{int(q)}_ms": round(float(np.percentile(lat, q)) * 1e3, 3) for q in qs
        }

    def snapshot(self) -> dict:
        """Counters + percentiles, JSON-ready for ``/metrics``.

        ``requests_per_s`` divides lifetime requests by total uptime, so
        after any idle stretch it understates the live rate — it is kept
        as the lifetime average, and ``requests_per_s_window`` reports
        the rate over the latency window's wall-clock span (requests in
        the window / time since the oldest windowed arrival), which
        decays naturally when traffic stops.
        """
        with self._lock:
            now = self._clock()
            uptime = now - self._started
            n_req, n_items = self.n_requests, self.n_items
            n_batches, n_errors = self.n_batches, self.n_errors
            window_n = len(self._arrivals)
            window_span = (now - self._arrivals[0]) if self._arrivals else 0.0
        window_rate = (
            round(window_n / max(window_span, 1e-3), 3) if window_n else 0.0
        )
        snap = {
            "requests": n_req,
            "predictions": n_items,
            "batches": n_batches,
            "errors": n_errors,
            "uptime_s": round(uptime, 3),
            "requests_per_s": round(n_req / uptime, 3) if uptime > 0 else 0.0,
            "requests_per_s_window": window_rate,
            "window_s": round(window_span, 3),
            "mean_batch_size": round(n_req / n_batches, 3) if n_batches else 0.0,
        }
        snap.update(self.percentiles())
        return snap

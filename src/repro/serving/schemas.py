"""API v1 schemas: declarative request/response contracts + validation.

One validation layer shared by every surface of the serving API — the
HTTP server, the inference engine's predictors, and the Python client —
so a payload is checked by exactly the same code no matter where it
enters the system.

A schema is a dataclass plus a tuple of :class:`FieldSpec` entries
(type, required/default, range, item type, size caps).  ``validate``
coerces and checks a wire dict into a typed instance; failures raise
:class:`ServingError` carrying a machine-readable ``code``, the
offending ``field``, and the HTTP status — serialised on the wire as::

    {"error": {"code": "out_of_range", "message": "...", "field": "top_k"}}

Unknown keys are rejected by default (``unknown="error"``) so typos like
``"casacde_id"`` fail loudly instead of silently predicting for the
default audience.
"""

from __future__ import annotations

from dataclasses import dataclass, field as dc_field
from typing import Any, Callable, ClassVar

__all__ = [
    "ServingError",
    "FieldSpec",
    "Schema",
    "RetweeterRequest",
    "HateGenRequest",
    "BatchRequest",
    "ReloadRequest",
    "IngestRequest",
    "IngestResponse",
    "validate_event_payload",
    "EVENT_FIELDS",
    "MAX_INGEST_EVENTS",
    "PredictResponse",
    "RetweeterResponse",
    "HateGenResponse",
    "BatchPredictResponse",
    "ErrorResponse",
    "ModelInfo",
    "ModelsResponse",
    "VersionsResponse",
    "ReloadResponse",
    "HealthResponse",
    "request_schema_for",
    "response_schema_for",
    "MAX_BATCH_REQUESTS",
]

#: Per-call cap on ``/v1/batch/{kind}`` fan-out (keeps one HTTP request
#: from monopolising the micro-batcher).
MAX_BATCH_REQUESTS = 1024


class ServingError(ValueError):
    """Request-level failure with a machine-readable error contract.

    Carries the HTTP ``status``, a stable ``code`` (``missing_field``,
    ``invalid_type``, ``out_of_range``, ``unknown_field``, ``not_found``,
    ``overloaded``, ...) and optionally the ``field`` that failed.
    """

    def __init__(
        self,
        message: str,
        status: int = 400,
        *,
        code: str = "invalid_request",
        field: str | None = None,
    ):
        super().__init__(message)
        self.status = int(status)
        self.code = str(code)
        self.field = field

    def as_error(self) -> dict:
        """The v1 wire body: ``{"error": {"code", "message", "field"}}``."""
        return {
            "error": {"code": self.code, "message": str(self), "field": self.field}
        }

    def as_result(self) -> dict:
        """Engine-internal per-payload result (wire body + resolved status)."""
        out = self.as_error()
        out["status"] = self.status
        return out


# ------------------------------------------------------------- field specs
@dataclass(frozen=True)
class FieldSpec:
    """One declaratively validated field of a request/response schema.

    ``type`` is the target builtin (``int``/``float``/``str``/``bool``/
    ``list``/``dict``); numeric fields coerce ints, floats and numeric
    strings but never booleans.  ``ge``/``lt`` bound numerics, ``item``
    coerces list elements, ``non_empty``/``max_len`` bound containers,
    and ``check`` is an escape hatch for shapes the spec can't express
    (it receives the coerced value and returns the final one).
    """

    name: str
    type: type
    required: bool = False
    default: Any = None
    ge: float | None = None
    lt: float | None = None
    item: type | None = None
    non_empty: bool = False
    max_len: int | None = None
    check: Callable[[Any], Any] | None = None


def _coerce(value, target: type, field: str):
    """Coerce one scalar to ``target`` or raise a typed ServingError."""
    if type(value) is target:
        # Exact-type fast path for the hot serving path; ``type() is``
        # (not isinstance) so bool never slips through an int/float spec.
        return value
    if target in (int, float):
        if isinstance(value, bool):
            raise ServingError(
                f"{field}: {value!r} is not a valid {target.__name__}",
                code="invalid_type",
                field=field,
            )
        try:
            return target(value)
        except (TypeError, ValueError) as exc:
            raise ServingError(
                f"{field}: {value!r} is not a valid {target.__name__}",
                code="invalid_type",
                field=field,
            ) from exc
    if target is str:
        if not isinstance(value, str):
            raise ServingError(
                f"{field}: expected a string, got {type(value).__name__}",
                code="invalid_type",
                field=field,
            )
        return value
    if target is bool:
        if not isinstance(value, bool):
            raise ServingError(
                f"{field}: expected a boolean, got {type(value).__name__}",
                code="invalid_type",
                field=field,
            )
        return value
    if target is list:
        if not isinstance(value, (list, tuple)):
            raise ServingError(
                f"{field}: expected a list, got {type(value).__name__}",
                code="invalid_type",
                field=field,
            )
        return list(value)
    if target is dict:
        if not isinstance(value, dict):
            raise ServingError(
                f"{field}: expected an object, got {type(value).__name__}",
                code="invalid_type",
                field=field,
            )
        return value
    raise TypeError(f"unsupported field type {target!r} for {field}")  # spec bug


def _validate_field(spec: FieldSpec, value):
    value = _coerce(value, spec.type, spec.name)
    if spec.type is list:
        if spec.non_empty and not value:
            raise ServingError(
                f"{spec.name} must be a non-empty list",
                code="empty",
                field=spec.name,
            )
        if spec.max_len is not None and len(value) > spec.max_len:
            raise ServingError(
                f"{spec.name} holds {len(value)} entries; the limit is {spec.max_len}",
                code="too_large",
                field=spec.name,
            )
        if spec.item is not None and any(type(v) is not spec.item for v in value):
            value = [_coerce(v, spec.item, f"{spec.name} entry") for v in value]
    if spec.ge is not None and value < spec.ge:
        raise ServingError(
            f"{spec.name} must be >= {spec.ge:g}, got {value}",
            code="out_of_range",
            field=spec.name,
        )
    if spec.lt is not None and value >= spec.lt:
        raise ServingError(
            f"{spec.name} must be < {spec.lt:g}, got {value}",
            code="out_of_range",
            field=spec.name,
        )
    if spec.check is not None:
        value = spec.check(value)
    return value


def validate_payload(
    payload,
    fields: tuple[FieldSpec, ...],
    *,
    schema: str,
    unknown: str = "error",
    known: frozenset | None = None,
) -> dict:
    """Validate a wire dict against a field-spec tuple; return typed values.

    ``unknown`` is the unknown-key policy: ``"error"`` rejects keys no
    spec names, ``"ignore"`` drops them.  A present-but-``null`` optional
    field counts as absent; a ``null`` required field is missing.
    """
    if not isinstance(payload, dict):
        raise ServingError(
            f"{schema} payload must be a JSON object, got {type(payload).__name__}",
            code="invalid_type",
        )
    if unknown == "error":
        if known is None:
            known = frozenset(f.name for f in fields)
        for key in payload:
            if key not in known:
                raise ServingError(
                    f"{schema} does not accept field {key!r}",
                    code="unknown_field",
                    field=str(key),
                )
    values: dict[str, Any] = {}
    for spec in fields:
        value = payload.get(spec.name)
        if value is None:
            if spec.required:
                raise ServingError(
                    f"missing required field {spec.name!r}",
                    code="missing_field",
                    field=spec.name,
                )
            values[spec.name] = spec.default
            continue
        values[spec.name] = _validate_field(spec, value)
    return values


# ------------------------------------------------------------ schema base
class Schema:
    """Base for declarative wire schemas (dataclass + ``__fields__``)."""

    __fields__: ClassVar[tuple[FieldSpec, ...]] = ()
    #: Requests drop ``None`` optionals from the wire; responses keep them
    #: (``"interval": null`` is part of the response contract).
    __omit_none__: ClassVar[bool] = False

    @classmethod
    def _known_fields(cls) -> frozenset:
        known = cls.__dict__.get("_known_cache")
        if known is None:
            known = frozenset(f.name for f in cls.__fields__)
            cls._known_cache = known
        return known

    @classmethod
    def validate(cls, payload, *, unknown: str = "error"):
        """Coerce + check a wire dict into a typed instance."""
        return cls(**validate_payload(
            payload, cls.__fields__, schema=cls.__name__, unknown=unknown,
            known=cls._known_fields(),
        ))

    @classmethod
    def from_wire(cls, body: dict):
        """Trusting constructor for server responses: no re-validation,
        unknown keys dropped.  The client hot path uses this (the server
        already built the body from validated inputs); ``validate`` is the
        strict variant the CI contract check runs."""
        return cls(**{f.name: body.get(f.name, f.default) for f in cls.__fields__})

    def to_dict(self) -> dict:
        """The wire representation."""
        out = {}
        for spec in self.__fields__:
            value = getattr(self, spec.name)
            if value is None and self.__omit_none__:
                continue
            out[spec.name] = value
        return out


def _scores_check(value: dict) -> dict:
    for k, v in value.items():
        if not isinstance(k, str) or isinstance(v, bool) or not isinstance(v, (int, float)):
            raise ServingError(
                f"scores must map user-id strings to numbers (got {k!r}: {v!r})",
                code="invalid_type",
                field="scores",
            )
    return value


def _ranking_check(value: list) -> list:
    for entry in value:
        if (
            not isinstance(entry, (list, tuple))
            or len(entry) != 2
            or isinstance(entry[1], bool)
            or not isinstance(entry[1], (int, float))
        ):
            raise ServingError(
                f"ranking entries must be [user_id, score] pairs (got {entry!r})",
                code="invalid_type",
                field="ranking",
            )
    return [list(entry) for entry in value]


# --------------------------------------------------------------- requests
@dataclass
class RetweeterRequest(Schema):
    """``POST /v1/predict/retweeters`` — who will retweet cascade ``cascade_id``?"""

    cascade_id: int
    user_ids: list[int] | None = None
    interval: int | None = None
    top_k: int | None = None

    __omit_none__ = True
    __fields__ = (
        FieldSpec("cascade_id", int, required=True),
        FieldSpec("user_ids", list, item=int, non_empty=True),
        FieldSpec("interval", int, ge=0),
        FieldSpec("top_k", int, ge=1),
    )


@dataclass
class HateGenRequest(Schema):
    """``POST /v1/predict/hategen`` — will the user post hate on the hashtag at ``timestamp``?"""

    user_id: int
    hashtag: str
    timestamp: float

    __omit_none__ = True
    __fields__ = (
        FieldSpec("user_id", int, required=True),
        FieldSpec("hashtag", str, required=True),
        FieldSpec("timestamp", float, required=True),
    )


@dataclass
class BatchRequest(Schema):
    """``POST /v1/batch/{kind}`` — many predict payloads in one HTTP call."""

    requests: list

    __fields__ = (
        FieldSpec(
            "requests", list, required=True, non_empty=True, max_len=MAX_BATCH_REQUESTS
        ),
    )


#: Per-call cap on ``/v1/ingest`` batch size (mirrors the batch route cap).
MAX_INGEST_EVENTS = 1024

#: Wire contract of one ingest event, per kind.  The same FieldSpec layer
#: that checks predict payloads checks events — on the server before the
#: append, and in the client before the POST.
EVENT_FIELDS: dict[str, tuple[FieldSpec, ...]] = {
    "tweet": (
        FieldSpec("kind", str, required=True),
        FieldSpec("tweet_id", int, required=True, ge=0),
        FieldSpec("user_id", int, required=True, ge=0),
        FieldSpec("hashtag", str, required=True),
        FieldSpec("text", str, required=True),
        FieldSpec("timestamp", float, required=True, ge=0),
        FieldSpec("is_hate", bool, default=False),
    ),
    "retweet": (
        FieldSpec("kind", str, required=True),
        FieldSpec("tweet_id", int, required=True, ge=0),
        FieldSpec("user_id", int, required=True, ge=0),
        FieldSpec("timestamp", float, required=True, ge=0),
    ),
    "follow": (
        FieldSpec("kind", str, required=True),
        FieldSpec("followee", int, required=True, ge=0),
        FieldSpec("follower", int, required=True, ge=0),
    ),
    "hashtag": (
        FieldSpec("kind", str, required=True),
        FieldSpec("tag", str, required=True),
        FieldSpec("theme", str, default="none"),
    ),
}


def validate_event_payload(item) -> dict:
    """Schema-validate one ingest event dict; returns the coerced wire dict.

    Dispatches on ``kind`` then runs the matching FieldSpec tuple, so a
    typo'd field or a boolean user id fails with the same typed error
    contract every other route speaks.
    """
    if not isinstance(item, dict):
        raise ServingError(
            f"event must be a JSON object, got {type(item).__name__}",
            code="invalid_type",
        )
    kind = item.get("kind")
    if kind not in EVENT_FIELDS:
        raise ServingError(
            f"unknown event kind {kind!r}; expected one of {sorted(EVENT_FIELDS)}",
            code="unknown_event_kind",
            field="kind",
        )
    return validate_payload(item, EVENT_FIELDS[kind], schema=f"{kind} event")


@dataclass
class IngestRequest(Schema):
    """``POST /v1/ingest`` — a batch of events for the durable store.

    Item-level validation (kind dispatch + per-kind fields) happens in
    the engine so each bad item becomes a per-item error instead of
    failing the batch.
    """

    events: list

    __fields__ = (
        FieldSpec(
            "events", list, required=True, non_empty=True,
            max_len=MAX_INGEST_EVENTS,
        ),
    )


@dataclass
class ReloadRequest(Schema):
    """``POST /v1/models/{name}/reload`` body (may be empty: latest version)."""

    version: int | None = None
    alias: str | None = None

    __omit_none__ = True
    __fields__ = (
        FieldSpec("version", int, ge=1),
        FieldSpec("alias", str),
    )


# -------------------------------------------------------------- responses
@dataclass
class PredictResponse(Schema):
    """Marker base for per-request prediction responses."""


@dataclass
class RetweeterResponse(PredictResponse):
    """Scores + descending ranking for one retweeter query."""

    cascade_id: int
    mode: str
    scores: dict
    ranking: list
    interval: int | None = None

    __fields__ = (
        FieldSpec("cascade_id", int, required=True),
        FieldSpec("mode", str, required=True),
        FieldSpec("scores", dict, required=True, check=_scores_check),
        FieldSpec("ranking", list, required=True, check=_ranking_check),
        FieldSpec("interval", int, ge=0),
    )


@dataclass
class HateGenResponse(PredictResponse):
    """Score + label for one (user, hashtag, timestamp) hate-gen query."""

    user_id: int
    hashtag: str
    timestamp: float
    score: float
    label: int
    probabilistic: bool

    __fields__ = (
        FieldSpec("user_id", int, required=True),
        FieldSpec("hashtag", str, required=True),
        FieldSpec("timestamp", float, required=True),
        FieldSpec("score", float, required=True),
        FieldSpec("label", int, required=True),
        FieldSpec("probabilistic", bool, required=True),
    )


@dataclass
class ErrorResponse(Schema):
    """Structured error: stable code, human message, offending field."""

    code: str
    message: str
    field: str | None = None
    status: int = 400

    __fields__ = (
        FieldSpec("code", str, required=True),
        FieldSpec("message", str, required=True),
        FieldSpec("field", str),
        FieldSpec("status", int, default=400),
    )

    def to_dict(self) -> dict:
        """The v1 wire body (``status`` travels as the HTTP status)."""
        return {
            "error": {"code": self.code, "message": self.message, "field": self.field}
        }

    @classmethod
    def from_body(cls, body: dict, status: int = 400) -> "ErrorResponse":
        """Parse a v1 (or legacy string) error body."""
        err = body.get("error") if isinstance(body, dict) else None
        if isinstance(err, dict):
            return cls(
                code=str(err.get("code", "error")),
                message=str(err.get("message", "")),
                field=err.get("field"),
                status=int(body.get("status", status)),
            )
        return cls(
            code="error",
            message=str(err if err is not None else body),
            status=int(body.get("status", status)) if isinstance(body, dict) else status,
        )


@dataclass
class BatchPredictResponse:
    """``/v1/batch/{kind}`` result: per-item responses in request order.

    ``results`` holds one :class:`PredictResponse` subclass instance per
    successful item and one :class:`ErrorResponse` per failed item.
    """

    results: list
    n_ok: int = 0
    n_errors: int = 0

    def to_dict(self) -> dict:
        items = []
        for r in self.results:
            if isinstance(r, ErrorResponse):
                item = r.to_dict()
                item["status"] = r.status
            else:
                item = r.to_dict()
            items.append(item)
        return {"results": items, "n_ok": self.n_ok, "n_errors": self.n_errors}

    @classmethod
    def from_dict(cls, kind: str, body: dict, *, strict: bool = False) -> "BatchPredictResponse":
        schema = response_schema_for(kind)
        results = []
        for item in body.get("results", []):
            if isinstance(item, dict) and "error" in item:
                results.append(ErrorResponse.from_body(item))
            elif strict:
                results.append(schema.validate(item, unknown="ignore"))
            else:
                results.append(schema.from_wire(item))
        return cls(
            results=results,
            n_ok=int(body.get("n_ok", sum(not isinstance(r, ErrorResponse) for r in results))),
            n_errors=int(body.get("n_errors", sum(isinstance(r, ErrorResponse) for r in results))),
        )


@dataclass
class IngestResponse:
    """``POST /v1/ingest`` result: per-event acks in request order.

    Each ``results`` entry is either an ack — ``{"seq", "hash",
    "deduped", "kind"}`` — or a per-item error body (``{"error": {...},
    "status": ...}``); a duplicate submission acks with the original
    event's sequence number and ``deduped: true``.
    """

    results: list
    accepted: int = 0
    deduped: int = 0
    n_errors: int = 0
    last_seq: int = 0

    def to_dict(self) -> dict:
        return {
            "results": self.results,
            "accepted": self.accepted,
            "deduped": self.deduped,
            "n_errors": self.n_errors,
            "last_seq": self.last_seq,
        }

    @classmethod
    def from_dict(cls, body: dict) -> "IngestResponse":
        results = list(body.get("results", []))
        return cls(
            results=results,
            accepted=int(body.get("accepted", 0)),
            deduped=int(body.get("deduped", 0)),
            n_errors=int(
                body.get("n_errors", sum("error" in r for r in results))
            ),
            last_seq=int(body.get("last_seq", 0)),
        )

    @property
    def seqs(self) -> list:
        """Assigned sequence number per event (``None`` for failed items)."""
        return [r.get("seq") for r in self.results]


@dataclass
class ModelInfo(Schema):
    """One registry model in ``GET /v1/models``."""

    name: str
    kind: str
    versions: list
    latest: int
    aliases: dict = dc_field(default_factory=dict)

    __fields__ = (
        FieldSpec("name", str, required=True),
        FieldSpec("kind", str, required=True),
        FieldSpec("versions", list, required=True, item=int),
        FieldSpec("latest", int, required=True),
        FieldSpec("aliases", dict, default=None),
    )

    def __post_init__(self):
        if self.aliases is None:
            self.aliases = {}


@dataclass
class ModelsResponse:
    """``GET /v1/models`` — every committed model with versions + aliases."""

    models: list

    def to_dict(self) -> dict:
        return {"models": [m.to_dict() for m in self.models]}

    @classmethod
    def from_dict(cls, body: dict) -> "ModelsResponse":
        return cls(
            models=[
                ModelInfo.validate(m, unknown="ignore")
                for m in body.get("models", [])
            ]
        )


@dataclass
class VersionsResponse(Schema):
    """``GET /v1/models/{name}/versions``."""

    name: str
    versions: list
    latest: int
    aliases: dict = dc_field(default_factory=dict)

    __fields__ = (
        FieldSpec("name", str, required=True),
        FieldSpec("versions", list, required=True, item=int),
        FieldSpec("latest", int, required=True),
        FieldSpec("aliases", dict, default=None),
    )

    def __post_init__(self):
        if self.aliases is None:
            self.aliases = {}


@dataclass
class ReloadResponse(Schema):
    """``POST /v1/models/{name}/reload`` — which bundle is now serving."""

    name: str
    version: int
    kind: str
    previous_version: int | None = None

    __fields__ = (
        FieldSpec("name", str, required=True),
        FieldSpec("version", int, required=True),
        FieldSpec("kind", str, required=True),
        FieldSpec("previous_version", int),
    )


@dataclass
class HealthResponse(Schema):
    """``GET /v1/healthz`` — liveness + loaded-model descriptions."""

    status: str
    models: dict
    api: str = "v1"

    __fields__ = (
        FieldSpec("status", str, required=True),
        FieldSpec("models", dict, required=True),
        FieldSpec("api", str, default="v1"),
    )


# ------------------------------------------------------------- dispatch
_REQUEST_SCHEMAS: dict[str, type[Schema]] = {
    "retweeters": RetweeterRequest,
    "hategen": HateGenRequest,
}
_RESPONSE_SCHEMAS: dict[str, type[PredictResponse]] = {
    "retweeters": RetweeterResponse,
    "hategen": HateGenResponse,
}


def request_schema_for(kind: str) -> type[Schema]:
    """The request schema validating ``/v1/predict/{kind}`` payloads."""
    try:
        return _REQUEST_SCHEMAS[kind]
    except KeyError:
        raise ServingError(
            f"unknown predictor kind {kind!r}; expected one of {sorted(_REQUEST_SCHEMAS)}",
            status=404,
            code="unknown_predictor",
        ) from None


def response_schema_for(kind: str) -> type[PredictResponse]:
    """The response schema for ``/v1/predict/{kind}`` results."""
    try:
        return _RESPONSE_SCHEMAS[kind]
    except KeyError:
        raise ServingError(
            f"unknown predictor kind {kind!r}; expected one of {sorted(_RESPONSE_SCHEMAS)}",
            status=404,
            code="unknown_predictor",
        ) from None

"""Thread-safe LRU cache for extracted features.

Feature extraction dominates serving latency (tf-idf transforms, Doc2Vec
inference, graph lookups), so the engine memoises per-candidate feature
rows keyed by ``(user, cascade, interval)``.  A plain ``OrderedDict`` with
a lock is sufficient: entries are small ndarrays and the hot path is a
single dict lookup.
"""

from __future__ import annotations

import threading
from collections import OrderedDict

__all__ = ["LRUCache"]

_MISSING = object()


class LRUCache:
    """Bounded mapping with least-recently-used eviction.

    Parameters
    ----------
    maxsize:
        Entry cap; inserting beyond it evicts the least recently used key.
        ``0`` disables caching entirely (every ``get`` misses).
    """

    def __init__(self, maxsize: int = 4096):
        if maxsize < 0:
            raise ValueError(f"maxsize must be >= 0, got {maxsize}")
        self.maxsize = maxsize
        self._data: OrderedDict = OrderedDict()
        self._lock = threading.Lock()
        self.hits = 0
        self.misses = 0

    def __len__(self) -> int:
        with self._lock:
            return len(self._data)

    def get(self, key, default=None):
        """Value for ``key`` (marking it recently used) or ``default``."""
        with self._lock:
            value = self._data.get(key, _MISSING)
            if value is _MISSING:
                self.misses += 1
                return default
            self._data.move_to_end(key)
            self.hits += 1
            return value

    def put(self, key, value) -> None:
        """Insert/refresh ``key``, evicting the LRU entry when full."""
        if self.maxsize == 0:
            return
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
            self._data[key] = value
            while len(self._data) > self.maxsize:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()

    def evict_if(self, predicate) -> int:
        """Drop every entry whose key matches ``predicate``; returns count.

        The surgical counterpart of :meth:`clear` for live ingest: an
        event invalidates only the keys it touches (e.g. one cascade's
        feature rows), and the rest of the cache keeps its heat.
        """
        with self._lock:
            stale = [k for k in self._data if predicate(k)]
            for k in stale:
                del self._data[k]
            return len(stale)

    @property
    def hit_rate(self) -> float:
        """Fraction of lookups served from cache (0.0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0

    def stats(self) -> dict:
        """Atomic counters snapshot for the ``/metrics`` endpoint.

        Size, hits and misses are read under one lock acquisition, so the
        snapshot is internally consistent (``hit_rate`` is computed from
        the very counters reported) even while other threads hit the cache
        — what makes multi-worker cache-efficacy aggregation trustworthy.
        """
        with self._lock:
            size = len(self._data)
            hits = self.hits
            misses = self.misses
        total = hits + misses
        return {
            "size": size,
            "maxsize": self.maxsize,
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / total, 4) if total else 0.0,
        }

"""Online inference engine: predictors + vectorised micro-batching.

Two predictor classes answer queries against a loaded bundle:

- :class:`RetweeterPredictor` — "who will retweet cascade c?" — scores
  candidate users with a trained RETINA model;
- :class:`HateGenPredictor` — "will user u post hate on hashtag h at t?" —
  scores (user, hashtag, time) triples with a fitted classifier chain.

Both validate payloads through :mod:`repro.serving.schemas` (the same
layer the HTTP server and the Python client use) and expose
``predict_batch(payloads)`` whose work is vectorised: small per-candidate
feature blocks are LRU-cached by (user, cascade, interval) and
batch-built through the columnar extractor on misses, full rows are
assembled once per micro-batch, and a single model forward covers every
request that shares a context.  :class:`InferenceEngine` wraps the
predictors with a queue + worker thread that coalesces concurrent
requests into micro-batches, which is what the HTTP layer submits to.

Model lifecycle: :meth:`InferenceEngine.reload_model` loads a bundle
version from a registry and atomically swaps the serving predictor —
in-flight micro-batches finish on the old predictor, new ones run inline
during the swap, and the multi-process dispatch pool (when enabled)
re-forks onto a fresh shared-memory arena holding the new weights.
"""

from __future__ import annotations

import collections
import dataclasses
import os
import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeout
from dataclasses import dataclass, field

import numpy as np

from repro.diffusion.cascade import build_candidate_set
from repro.obs import log as obs_log
from repro.obs import metrics as obs_metrics
from repro.obs import trace as obs_trace
from repro.parallel import (
    ShmArena,
    WorkerCrashed,
    WorkerPool,
    fork_available,
    resolve_workers,
)
from repro.core.hategen.features import DAY_HOURS
from repro.serving.cache import LRUCache
from repro.serving.metrics import ServingMetrics
from repro.serving.registry import HateGenBundle, ModelRegistry, RetinaBundle
from repro.serving.schemas import (
    HateGenRequest,
    RetweeterRequest,
    ServingError,
    validate_event_payload,
)
from repro.store import (
    EventLog,
    StoredEvent,
    apply_events_to_world,
    event_from_wire,
    event_hash,
    validate_event_for_world,
)

__all__ = [
    "ServingError",
    "RetweeterPredictor",
    "HateGenPredictor",
    "InferenceEngine",
    "predictor_for_bundle",
    "engine_from_store",
    "KIND_FOR_BUNDLE",
]

#: Bundle kind (registry manifest) -> predictor kind (API route).
KIND_FOR_BUNDLE = {"retina": "retweeters", "hategen": "hategen"}

_log = obs_log.get_logger("repro.serving.engine")

#: End-to-end latency through the engine in fixed log-scale buckets —
#: mergeable across processes/scrapes, unlike the rolling deque window.
_LATENCY = obs_metrics.REGISTRY.histogram(
    "repro_request_latency_seconds",
    "End-to-end request latency through the inference engine (seconds).",
    ("kind",),
)
_QUEUE_DEPTH = obs_metrics.REGISTRY.gauge(
    "repro_engine_queue_depth",
    "Requests sitting in the engine queue, not yet gathered into a batch.",
)
_QUEUE_AGE = obs_metrics.REGISTRY.gauge(
    "repro_engine_queue_age_seconds",
    "Age of the oldest request still waiting in the engine queue.",
)
_BATCHES = obs_metrics.REGISTRY.counter(
    "repro_engine_batches_total",
    "Micro-batches executed, by predictor kind and execution site.",
    ("kind", "site"),
)
_TIMEOUTS = obs_metrics.REGISTRY.counter(
    "repro_requests_timed_out_total",
    "Requests whose waiter gave up before the engine answered, by kind.",
    ("kind",),
)
_DISPATCH_DEGRADED = obs_metrics.REGISTRY.counter(
    "repro_engine_dispatch_degraded_total",
    "Dispatch generations abandoned for inline execution, by reason.",
    ("reason",),
)

#: Crash-loop circuit breaker: this many worker crashes inside the window
#: degrades the engine to inline dispatch instead of respawning forever.
_CRASH_LIMIT = int(os.environ.get("REPRO_SERVE_CRASH_LIMIT", "5"))
_CRASH_WINDOW_S = float(os.environ.get("REPRO_SERVE_CRASH_WINDOW_S", "30"))


# ------------------------------------------------------------- retweeters
class RetweeterPredictor:
    """Scores candidate retweeters of a cascade with a RETINA bundle.

    Payloads validate against :class:`~repro.serving.schemas.RetweeterRequest`
    (``cascade_id`` required; optional ``user_ids``/``interval``/``top_k``,
    the candidate audience defaulting to the cascade's deterministic one).

    Per-candidate feature blocks (peer + history, without the per-cascade
    tail) are cached by ``(user, cascade, interval)``; the per-cascade
    context (tweet/news embeddings, shared endogenous + tweet block) is
    cached separately, so a cold user on a warm cascade only pays its small
    block — built batched through the columnar extractor — and full rows are
    assembled once per micro-batch.
    """

    kind = "retweeters"

    def __init__(self, bundle: RetinaBundle, *, cache_size: int = 8192):
        self.bundle = bundle
        self.model = bundle.model
        self.extractor = bundle.extractor
        self.world = bundle.extractor.world
        self._cascades = {c.root.tweet_id: c for c in self.world.cascades}
        # Dynamic-mode rows are identical across intervals (features are
        # interval-independent); the interval tag keys the cache per the
        # model's unroll length so a bundle swap cannot alias rows.
        self._interval_tag = self.model.n_intervals if self.model.mode == "dynamic" else 0
        self.feature_cache = LRUCache(cache_size)
        self.context_cache = LRUCache(max(64, cache_size // 64))
        self.metrics = ServingMetrics()
        #: Event-log watermark: highest store seq already folded into this
        #: predictor's caches.  A predictor built over an already-replayed
        #: world starts at the world's watermark (its ``_cascades`` map and
        #: empty caches already reflect those events).
        self._applied_seq = int(getattr(self.world, "_store_watermark", 0))
        #: ``{"name", "version"}`` of the registry bundle this predictor
        #: serves, set by :func:`engine_from_store` / reloads.
        self.source: dict | None = None

    def describe(self) -> dict:
        out = {
            "kind": self.kind,
            "mode": self.model.mode,
            "use_exogenous": self.model.use_exogenous,
            "n_parameters": self.model.n_parameters(),
            "n_cascades": len(self._cascades),
            "user_feature_dim": self.extractor.user_feature_dim,
        }
        if self.source is not None:
            out["source"] = dict(self.source)
        return out

    # ------------------------------------------------------------ features
    def _cascade(self, cascade_id: int):
        cascade = self._cascades.get(cascade_id)
        if cascade is None:
            raise ServingError(
                f"unknown cascade_id {cascade_id}",
                status=404,
                code="not_found",
                field="cascade_id",
            )
        return cascade

    def _context(self, cascade) -> dict:
        """Per-cascade blocks shared by every candidate row.

        ``shared`` is the endogenous + root-tweet block stored once per
        cascade; candidate rows cache only their small per-user block and
        the full matrix is assembled per micro-batch.
        """
        ctx = self.context_cache.get(cascade.root.tweet_id)
        if ctx is None:
            ext = self.extractor
            root = cascade.root
            ctx = {
                "shared": np.concatenate(
                    [ext.base_._endogen_block(root.timestamp),
                     ext._root_tweet_block(cascade)]
                ),
                "tweet_vec": ext.store_.tweet_vec(root),
                "news_vecs": ext._news_vectors(root.timestamp),
            }
            self.context_cache.put(cascade.root.tweet_id, ctx)
        return ctx

    def _candidate_rows(self, cascade, uids: list[int]) -> np.ndarray:
        """(n, d_cand) per-candidate blocks, cache-first with batched misses.

        Cache hits are per-(user, cascade, interval) lookups as before, but
        every miss in the batch is built in one call to the extractor's
        columnar ``candidate_block`` — one BFS and one store gather instead
        of per-key scalar lookups.
        """
        rows: list[np.ndarray | None] = [None] * len(uids)
        missing: list[tuple[int, int]] = []
        cid = cascade.root.tweet_id
        for i, uid in enumerate(uids):
            row = self.feature_cache.get((uid, cid, self._interval_tag))
            if row is None:
                missing.append((i, uid))
            else:
                rows[i] = row
        if missing:
            built = self.extractor.candidate_block(cascade, [u for _, u in missing])
            for (i, uid), row in zip(missing, built):
                row = row.copy()  # a view would pin the whole batch buffer
                rows[i] = row
                self.feature_cache.put((uid, cid, self._interval_tag), row)
        return np.stack(rows)

    def default_candidates(self, cascade) -> list[int]:
        """Deterministic candidate audience when the query names no users."""
        cs = build_candidate_set(
            cascade,
            self.world.network,
            n_negatives=self.extractor.n_negatives,
            random_state=0,
        )
        return list(cs.users)

    # ---------------------------------------------------------- live ingest
    def apply_events(self, stored_events: list[StoredEvent]) -> dict:
        """Fold durable store events into the live serving state.

        Applies the events to the world (watermark-guarded no-op when a
        co-resident predictor sharing the world got there first) and the
        extractor, registers new cascades for lookup, then surgically
        evicts only the cache entries the events invalidate:

        - candidate rows for users whose history row / prior-retweet count
          changed (tweet author, retweet root author, retweeter, followee);
        - per-cascade contexts whose day's trending set a new tweet moved;
        - the whole candidate-row cache on a follow — rows embed
          shortest-path lengths and the changed distances cannot be mapped
          back to cached keys without a BFS per cached cascade.
        """
        events = [s for s in stored_events if s.seq > self._applied_seq]
        if not events:
            return {}
        apply_events_to_world(self.world, events)
        counts = self.extractor.apply_events(events)
        index = getattr(self.world, "_store_cascade_index", None) or {}
        dirty_users: set[int] = set()
        dirty_days: set[int] = set()
        clear_features = False
        for s in events:
            ev = s.event
            if ev.kind == "tweet":
                cascade = index.get(ev.tweet_id)
                if cascade is not None:
                    self._cascades[ev.tweet_id] = cascade
                dirty_users.add(ev.user_id)
                dirty_days.add(int(ev.timestamp // DAY_HOURS))
            elif ev.kind == "retweet":
                dirty_users.add(ev.user_id)
                cascade = self._cascades.get(ev.tweet_id)
                if cascade is not None:
                    dirty_users.add(cascade.root.user_id)
            elif ev.kind == "follow":
                dirty_users.add(ev.followee)
                clear_features = True
        self._applied_seq = events[-1].seq
        evicted = 0
        if clear_features:
            evicted += len(self.feature_cache)
            self.feature_cache.clear()
        elif dirty_users:
            evicted += self.feature_cache.evict_if(lambda k: k[0] in dirty_users)
        if dirty_days:
            cascades = self._cascades

            def _stale_context(cid) -> bool:
                c = cascades.get(cid)
                return (
                    c is not None
                    and int(c.root.timestamp // DAY_HOURS) in dirty_days
                )

            evicted += self.context_cache.evict_if(_stale_context)
        counts["cache_evictions"] = evicted
        return counts

    # ----------------------------------------------------------- prediction
    def _validate(self, payload: dict) -> dict:
        req = RetweeterRequest.validate(payload)
        cascade = self._cascade(req.cascade_id)
        user_ids = req.user_ids
        if user_ids is None:
            user_ids = self.default_candidates(cascade)
        unknown = [u for u in user_ids if u not in self.world.users]
        if unknown:
            raise ServingError(
                f"unknown user_ids {unknown[:5]}",
                status=404,
                code="not_found",
                field="user_ids",
            )
        if req.interval is not None:
            if self.model.mode != "dynamic":
                raise ServingError(
                    "interval queries require a dynamic-mode model",
                    code="invalid_request",
                    field="interval",
                )
            if req.interval >= self.model.n_intervals:
                raise ServingError(
                    f"interval must be in [0, {self.model.n_intervals}), "
                    f"got {req.interval}",
                    code="out_of_range",
                    field="interval",
                )
        return {
            "cascade": cascade,
            "user_ids": user_ids,
            "interval": req.interval,
            "top_k": req.top_k,
        }

    def predict_batch(self, payloads: list[dict]) -> list[dict]:
        """Answer a micro-batch; per-payload errors become error results.

        Requests sharing a cascade share one candidate batch, and *all*
        cascades in the micro-batch are scored by one packed, mask-aware
        forward (``RETINA.predict_proba_packed``): candidate rows stack
        into a single matrix, the exogenous attention runs over the padded
        per-cascade news sequences, and no tape is built.  A micro-batch
        spanning one cascade produces bit-identical scores to the tape
        forward; packing more cascades changes BLAS row counts, which can
        move scores by ~1 ulp (the same sensitivity a request already has
        to its candidate-set composition).
        """
        results: list[dict | None] = [None] * len(payloads)
        groups: dict[int, list[int]] = {}
        parsed: list[dict | None] = [None] * len(payloads)
        for i, payload in enumerate(payloads):
            try:
                parsed[i] = self._validate(payload)
            except ServingError as exc:
                results[i] = exc.as_result()
                continue
            groups.setdefault(parsed[i]["cascade"].root.tweet_id, []).append(i)

        packs, positions = [], []
        n_rows = 0
        feature_span = obs_trace.batch_span("serve.feature_build")
        with feature_span:
            hits0 = self.feature_cache.hits
            misses0 = self.feature_cache.misses
            for cascade_id, idxs in groups.items():
                cascade = parsed[idxs[0]]["cascade"]
                ctx = self._context(cascade)
                users: list[int] = []
                position: dict[int, int] = {}
                for i in idxs:
                    for uid in parsed[i]["user_ids"]:
                        if uid not in position:
                            position[uid] = len(users)
                            users.append(uid)
                cand = self._candidate_rows(cascade, users)
                n_rows += len(users)
                packs.append((cand, ctx["shared"], ctx["tweet_vec"], ctx["news_vecs"]))
                positions.append(position)
            feature_span.annotate(
                cache_hits=self.feature_cache.hits - hits0,
                cache_misses=self.feature_cache.misses - misses0,
                rows=n_rows,
            )

        with obs_trace.batch_span(
            "model.forward", kind=self.kind, rows=n_rows, cascades=len(groups)
        ):
            probas = self.model.predict_proba_packed(packs)
        for (cascade_id, idxs), position, proba in zip(groups.items(), positions, probas):
            if self.model.mode == "dynamic":
                static_scores = self.model.static_score_from_dynamic(proba)
            else:
                static_scores = proba
            for i in idxs:
                req = parsed[i]
                if req["interval"] is not None:
                    scores = proba[:, req["interval"]]
                else:
                    scores = static_scores
                picked = [(uid, float(scores[position[uid]])) for uid in req["user_ids"]]
                ranking = sorted(picked, key=lambda us: -us[1])
                if req["top_k"] is not None:
                    ranking = ranking[: req["top_k"]]
                results[i] = {
                    "cascade_id": cascade_id,
                    "mode": self.model.mode,
                    "interval": req["interval"],
                    "scores": {str(uid): score for uid, score in picked},
                    "ranking": [[uid, score] for uid, score in ranking],
                }
        return results


# ---------------------------------------------------------------- hategen
class HateGenPredictor:
    """Scores (user, hashtag, timestamp) hate-generation queries.

    Payloads validate against :class:`~repro.serving.schemas.HateGenRequest`.
    Feature vectors are cached by the query triple; the whole micro-batch
    is transformed and scored in one classifier call.
    """

    kind = "hategen"

    def __init__(self, bundle: HateGenBundle, *, cache_size: int = 8192):
        self.bundle = bundle
        self.model = bundle.model
        self.transforms = list(bundle.transforms)
        self.extractor = bundle.extractor
        self.world = bundle.extractor.world
        self._hashtags = {spec.tag for spec in self.world.catalog}
        self.feature_cache = LRUCache(cache_size)
        self.metrics = ServingMetrics()
        #: Event-log watermark (see :class:`RetweeterPredictor`).
        self._applied_seq = int(getattr(self.world, "_store_watermark", 0))
        self.source: dict | None = None

    def describe(self) -> dict:
        out = {
            "kind": self.kind,
            "model_key": self.bundle.model_key,
            "variant": self.bundle.variant,
            "n_users": len(self.world.users),
            "n_hashtags": len(self._hashtags),
        }
        if self.source is not None:
            out["source"] = dict(self.source)
        return out

    # ---------------------------------------------------------- live ingest
    def apply_events(self, stored_events: list[StoredEvent]) -> dict:
        """Fold durable store events into the live serving state.

        World + extractor application are watermark-guarded (shared worlds
        apply once).  Newly registered hashtags become queryable — scored
        with a zero endogenous slot, since the fitted dimensionality is
        pinned to the catalog at fit time.  Cached sample vectors are
        evicted for users whose history row changed and for timestamps on
        days whose trending set moved.
        """
        events = [s for s in stored_events if s.seq > self._applied_seq]
        if not events:
            return {}
        apply_events_to_world(self.world, events)
        counts = self.extractor.apply_events(events)
        index = getattr(self.world, "_store_cascade_index", None) or {}
        dirty_users: set[int] = set()
        dirty_days: set[int] = set()
        for s in events:
            ev = s.event
            if ev.kind == "tweet":
                dirty_users.add(ev.user_id)
                dirty_days.add(int(ev.timestamp // DAY_HOURS))
            elif ev.kind == "retweet":
                dirty_users.add(ev.user_id)
                cascade = index.get(ev.tweet_id)
                if cascade is not None:
                    dirty_users.add(cascade.root.user_id)
            elif ev.kind == "follow":
                dirty_users.add(ev.followee)
            elif ev.kind == "hashtag":
                self._hashtags.add(ev.tag)
        self._applied_seq = events[-1].seq
        evicted = 0
        if dirty_users or dirty_days:
            evicted = self.feature_cache.evict_if(
                lambda k: k[0] in dirty_users
                or int(k[2] // DAY_HOURS) in dirty_days
            )
        counts["cache_evictions"] = evicted
        return counts

    def _validate(self, payload: dict) -> dict:
        req = HateGenRequest.validate(payload)
        if req.user_id not in self.world.users:
            raise ServingError(
                f"unknown user_id {req.user_id}",
                status=404,
                code="not_found",
                field="user_id",
            )
        if req.hashtag not in self._hashtags:
            raise ServingError(
                f"unknown hashtag {req.hashtag!r}",
                status=404,
                code="not_found",
                field="hashtag",
            )
        return {
            "user_id": req.user_id,
            "hashtag": req.hashtag,
            "timestamp": req.timestamp,
        }

    def _vector(self, req: dict) -> np.ndarray:
        key = (req["user_id"], req["hashtag"], req["timestamp"])
        vec = self.feature_cache.get(key)
        if vec is None:
            vec = self.extractor.sample_vector(
                req["user_id"], req["hashtag"], req["timestamp"]
            )
            self.feature_cache.put(key, vec)
        return vec

    def _scores(self, X: np.ndarray) -> np.ndarray:
        if hasattr(self.model, "predict_proba"):
            return self.model.predict_proba(X)[:, 1]
        return self.model.decision_function(X)

    def predict_batch(self, payloads: list[dict]) -> list[dict]:
        results: list[dict | None] = [None] * len(payloads)
        parsed, live = [], []
        for i, payload in enumerate(payloads):
            try:
                parsed.append(self._validate(payload))
                live.append(i)
            except ServingError as exc:
                results[i] = exc.as_result()
        if live:
            feature_span = obs_trace.batch_span("serve.feature_build")
            with feature_span:
                hits0, misses0 = self.feature_cache.hits, self.feature_cache.misses
                X = np.stack([self._vector(req) for req in parsed])
                feature_span.annotate(
                    cache_hits=self.feature_cache.hits - hits0,
                    cache_misses=self.feature_cache.misses - misses0,
                    rows=len(parsed),
                )
            with obs_trace.batch_span("model.forward", kind=self.kind, rows=len(parsed)):
                for t in self.transforms:
                    X = t.transform(X)
                scores = self._scores(X)
                labels = self.model.predict(X)
            for req, i, score, label in zip(parsed, live, scores, labels):
                results[i] = {
                    **req,
                    "score": float(score),
                    "label": int(label),
                    "probabilistic": hasattr(self.model, "predict_proba"),
                }
        return results


# ----------------------------------------------------------------- engine
@dataclass
class _Request:
    kind: str
    payload: dict
    future: Future
    submitted_at: float = field(default_factory=time.perf_counter)
    #: ``(trace_id, parent_span_id)`` of the sampled trace this request
    #: belongs to (None when untraced) — rides the dispatch task tuple
    #: into pool workers so their spans land in the right trace.
    trace: tuple[str, str] | None = None
    dequeued_at: float = 0.0


_SHUTDOWN = object()


class _DispatchRetired(RuntimeError):
    """The dispatch generation is draining for a swap/stop; go inline."""


class _PoolDispatch:
    """One generation of multi-process dispatch: pool + arena + collector.

    Bundling the per-pool state (worker pool, shared-weights arena,
    collector thread, pending-futures map) into a disposable object lets
    the engine *retire* a whole generation atomically during a model
    swap: the retired pool stops accepting micro-batches (new ones run
    inline on the parent), drains what it already owns — resolved by its
    own collector — and a fresh generation forks over a new arena holding
    the new weights.
    """

    def __init__(self, engine: "InferenceEngine", n_workers: int):
        self.engine = engine
        self.n_workers = n_workers
        params = []
        for predictor in engine.predictors.values():
            model = getattr(predictor, "model", None)
            if hasattr(model, "parameters"):
                params.extend(model.parameters())
        self.arena: ShmArena | None = None
        views: list[np.ndarray] = []
        if params:
            self.arena = ShmArena(
                ShmArena.nbytes_for(*((p.data.shape, p.data.dtype) for p in params))
            )
            views = [self.arena.place(p.data) for p in params]

        def _rebase(_idx: int) -> None:
            # Runs in each forked worker: parameter tensors point at the
            # shared segment, so the copy-on-write images of the weight
            # matrices are dropped and every worker reads the same pages.
            for p, v in zip(params, views):
                p.data = v

        # Serving dispatch respawns crashed workers (capped backoff) so one
        # bad request can't permanently halve capacity; the circuit breaker
        # below still degrades to inline on a crash *loop*.
        self.pool = WorkerPool(
            n_workers,
            {
                "batch": engine._worker_batch,
                "stats": engine._worker_cache_stats,
                "apply": engine._worker_apply,
            },
            initializer=_rebase,
            name="repro-serve",
            respawn=True,
        )
        self.lock = threading.Lock()
        self.pending: dict[int, tuple[str, object]] = {}
        self.retired = False
        self.failed = threading.Event()
        self.stop_event = threading.Event()
        self.collector = threading.Thread(
            target=self._collect, name="repro-serve-collector", daemon=True
        )
        self.collector.start()

    # -------------------------------------------------------------- submit
    def submit_batch(self, kind: str, payloads: list[dict], group) -> None:
        traces = [r.trace for r in group]
        with self.lock:
            if self.retired:
                raise _DispatchRetired
            tid = self.pool.submit("batch", (kind, payloads, traces))
            self.pending[tid] = (kind, group)

    def stats(self, timeout: float = 5.0) -> list[dict]:
        """Per-worker ``{kind: caches}`` snapshots via targeted stats tasks."""
        futures: list[Future] = []
        with self.lock:
            for i in range(self.pool.n_workers):
                future: Future = Future()
                tid = self.pool.submit("stats", None, worker=i)
                self.pending[tid] = ("__stats__", future)
                futures.append(future)
        return [f.result(timeout=timeout) for f in futures]

    def apply(self, stored_events, timeout: float = 30.0) -> None:
        """Broadcast store events to every worker and wait for the barrier.

        Each forked worker holds its own copy-on-write predictor state, so
        ingest must reach all of them; the per-predictor watermarks make a
        delivery to a freshly respawned worker (forked from the already
        updated parent) a no-op rather than a double-apply.
        """
        futures: list[Future] = []
        with self.lock:
            if self.retired:
                raise _DispatchRetired
            for i in range(self.pool.n_workers):
                future: Future = Future()
                tid = self.pool.submit("apply", stored_events, worker=i)
                self.pending[tid] = ("__apply__", future)
                futures.append(future)
        for f in futures:
            f.result(timeout=timeout)

    # ----------------------------------------------------------- lifecycle
    def retire(self) -> None:
        """Stop accepting micro-batches; in-flight ones keep resolving."""
        with self.lock:
            self.retired = True

    def drain(self, timeout: float = 30.0) -> bool:
        """Wait until every in-flight batch resolved (or the pool failed)."""
        deadline = time.perf_counter() + timeout
        while time.perf_counter() < deadline:
            if self.failed.is_set():
                return True  # fail() already resolved everything
            with self.lock:
                if not self.pending:
                    return True
            time.sleep(0.005)
        return False

    def fail(self, *, reason: str = "pool_broken",
             code: str = "worker_crashed") -> None:
        """Fail all in-flight work (crash loop / queues closed under us)."""
        with self.lock:
            if self.failed.is_set():
                return
            self.failed.set()
            self.retired = True
            pending = list(self.pending.values())
            self.pending.clear()
        _log.error(
            "dispatch.degraded",
            reason=reason,
            n_workers=self.n_workers,
            n_pending_batches=len(pending),
            crashes=self.pool.crashes,
            detail="dispatch abandoned; in-flight requests failed, engine "
                   "falls back to inline execution",
        )
        _DISPATCH_DEGRADED.inc(reason=reason)
        for tag, group in pending:
            exc: BaseException = ServingError(
                "serving worker crashed; request failed",
                status=503,
                code=code,
            )
            if tag in ("__stats__", "__apply__"):
                group.set_exception(RuntimeError("serving worker pool died"))
                continue
            predictor = self.engine.predictors.get(tag)
            if predictor is not None:
                predictor.metrics.record_error()
            for r in group:
                if r.future.set_running_or_notify_cancel():
                    r.future.set_exception(exc)
        self.pool.close()
        if self.arena is not None:
            self.arena.release()
            self.arena = None
        self.engine._dispatch_failed(self)

    # --------------------------------------------------------------- health
    def health(self) -> dict:
        """Live dispatch state for the v1 metrics body."""
        return {
            "configured_workers": self.n_workers,
            "live_workers": self.pool.width(),
            "crashes": self.pool.crashes,
            "respawns": self.pool.respawns,
            "degraded": self.failed.is_set(),
        }

    def close(self) -> None:
        """Stop the collector and tear down pool + arena (idempotent)."""
        self.stop_event.set()
        if self.collector is not threading.current_thread():
            self.collector.join(timeout=10.0)
        self.pool.close()
        if self.arena is not None:
            self.arena.release()
            self.arena = None

    # ------------------------------------------------------------ collector
    def _collect(self) -> None:
        """Resolve futures as worker results arrive (collector thread)."""
        while True:
            if self.failed.is_set():
                return
            try:
                got = self.pool.result(timeout=0.2)
            except WorkerCrashed:
                self.fail()
                return
            except (OSError, ValueError):
                # Queues closed under us (a stuck batch outlived its drain
                # window): still fail whatever is in flight so clients get
                # an error now instead of a silent predict() timeout.
                self.fail()
                return
            if got is None:
                with self.lock:
                    idle = not self.pending
                if idle and self.stop_event.is_set():
                    return
                continue
            tid, ok, value = got
            with self.lock:
                entry = self.pending.pop(tid, None)
            if entry is None:
                continue
            tag, group = entry
            if tag in ("__stats__", "__apply__"):
                if ok:
                    group.set_result(value)
                elif isinstance(value, BaseException):
                    group.set_exception(value)
                else:
                    group.set_exception(RuntimeError(value))
                continue
            predictor = self.engine.predictors[tag]
            if not ok:
                predictor.metrics.record_error()
                if isinstance(value, WorkerCrashed):
                    # The worker died mid-batch: its requests fail once with
                    # a typed 503, the pool respawns the slot, and a crash
                    # *loop* trips the breaker into inline dispatch.
                    _log.error(
                        "worker.crashed_in_batch",
                        kind=tag,
                        n_requests=len(group),
                        error=str(value)[:400],
                    )
                    exc: BaseException = ServingError(
                        "serving worker crashed; request failed",
                        status=503,
                        code="worker_crashed",
                    )
                    for r in group:
                        if r.future.set_running_or_notify_cancel():
                            r.future.set_exception(exc)
                    if self.pool.crashes_in_window(_CRASH_WINDOW_S) >= _CRASH_LIMIT:
                        _log.error(
                            "dispatch.crash_loop",
                            crashes_in_window=self.pool.crashes_in_window(
                                _CRASH_WINDOW_S
                            ),
                            window_s=_CRASH_WINDOW_S,
                            limit=_CRASH_LIMIT,
                        )
                        self.fail(reason="crash_loop")
                        return
                    continue
                _log.error(
                    "worker.batch_failed",
                    kind=tag,
                    n_requests=len(group),
                    error=str(value)[:400],
                )
                exc = RuntimeError(f"worker batch failed: {value}")
                for r in group:
                    if r.future.set_running_or_notify_cancel():
                        r.future.set_exception(exc)
                continue
            outcomes, worker_spans = value
            if worker_spans:
                # Child spans recorded inside the fork worker: adopt them
                # before resolving futures so a client that immediately
                # fetches its trace sees the complete cross-process tree.
                obs_trace.STORE.adopt(worker_spans)
            self.engine._deliver(predictor, group, outcomes)


class InferenceEngine:
    """Coalesces concurrent requests into vectorised micro-batches.

    A gather thread drains the request queue: the first request is taken
    blocking, then up to ``max_batch_size - 1`` more are gathered until
    ``max_wait_ms`` elapses, grouped by predictor kind, and executed via
    ``predict_batch``.  Under load, batches fill instantly; an idle stream
    degenerates to per-request execution with ~``max_wait_ms`` of added
    latency at most.

    With ``workers`` > 1 (``None`` resolves through ``REPRO_NUM_WORKERS``,
    then 1), micro-batches are dispatched round-robin to that many forked
    worker processes instead of being executed inline, so batches run
    concurrently across cores.  Model weights are packed into a read-only
    shared-memory arena before the fork and each worker rebases its
    parameter tensors onto it, so the big matrices are mapped once,
    machine-wide.  Scores are bit-identical to the in-process path — the
    workers run the very same ``predict_batch`` on the very same bytes.
    ``workers=1`` is exactly the pre-existing single-thread engine.

    :meth:`swap_predictor` replaces the predictor serving a kind with
    zero dropped requests: the dispatch pool is retired (new batches run
    inline on the old predictor), drained, the predictor reference is
    swapped — atomic under the GIL — and a fresh pool forks over a new
    shared-memory arena with the new weights.
    """

    def __init__(
        self,
        predictors: dict[str, object],
        *,
        max_batch_size: int = 64,
        max_wait_ms: float = 2.0,
        workers: int | None = None,
    ):
        if not predictors:
            raise ValueError("engine needs at least one predictor")
        if max_batch_size < 1:
            raise ValueError(f"max_batch_size must be >= 1, got {max_batch_size}")
        if max_wait_ms < 0:
            raise ValueError(f"max_wait_ms must be >= 0, got {max_wait_ms}")
        self.predictors = dict(predictors)
        self.max_batch_size = max_batch_size
        self.max_wait_ms = max_wait_ms
        self.workers = workers
        self._queue: queue.SimpleQueue = queue.SimpleQueue()
        self._worker: threading.Thread | None = None
        self._dispatch: _PoolDispatch | None = None
        self._swap_lock = threading.Lock()
        self._last_worker_caches: list[dict] | None = None
        #: Arrival stamps of queued-but-ungathered requests (deque ops are
        #: atomic), backing the queue depth/age saturation gauges.
        self._queued_arrivals: collections.deque[float] = collections.deque()
        self._depth_fn = None
        #: Set at the top of :meth:`stop`: new submissions are refused with
        #: a typed 503 and the gather loop fails whatever is still queued.
        self._stopping = threading.Event()
        #: Dispatch generations that degraded to inline over this engine's
        #: lifetime (survives the _PoolDispatch objects themselves).
        self._dispatch_degraded_total = 0
        #: Durable event log (see :mod:`repro.store`) backing live ingest;
        #: attached by :meth:`attach_store`, ``None`` = ingest disabled.
        self.event_log: EventLog | None = None
        #: Serialises ingest batches: append order defines the replayable
        #: history, so two concurrent POSTs must not interleave validation
        #: against a half-applied world.
        self._ingest_lock = threading.Lock()

    def _queue_age_s(self) -> float:
        try:
            return time.perf_counter() - self._queued_arrivals[0]
        except IndexError:
            return 0.0

    # ----------------------------------------------------------- lifecycle
    def start(self) -> "InferenceEngine":
        if self._worker is not None and self._worker.is_alive():
            return self
        self._stopping.clear()
        n = resolve_workers(self.workers)
        if n > 1 and fork_available() and self._dispatch is None:
            self._dispatch = _PoolDispatch(self, n)
        # Saturation signals for admission control: how deep the request
        # queue is and how long its head has been waiting.  The last
        # started engine owns the gauges (one engine per serving process).
        self._depth_fn = lambda: len(self._queued_arrivals)
        _QUEUE_DEPTH.set_fn(self._depth_fn)
        _QUEUE_AGE.set_fn(self._queue_age_s)
        self._worker = threading.Thread(
            target=self._run, name="repro-inference-engine", daemon=True
        )
        self._worker.start()
        return self

    def stop(self) -> None:
        """Stop threads, drain in-flight work, tear down pool + arena.

        Safe to call repeatedly (and from ``__exit__`` after a crash): every
        step is guarded, so a second call is a no-op.
        """
        self._stopping.set()
        if self._worker is not None:
            self._queue.put(_SHUTDOWN)
            self._worker.join(timeout=10.0)
            self._worker = None
            if _QUEUE_DEPTH._fn is getattr(self, "_depth_fn", None):
                # Unwire only our own callbacks: a newer engine may have
                # claimed the gauges since this one started.
                _QUEUE_DEPTH.set_fn(None)
                _QUEUE_AGE.set_fn(None)
        # The gather loop is gone (or never ran): anything still queued —
        # a submit that raced past the _stopping gate, or one made before
        # start() — would leave its waiter to hit the generic timeout.
        # Fail it with a typed shutdown error instead.
        self._fail_queued()
        with self._swap_lock:
            dispatch, self._dispatch = self._dispatch, None
        if dispatch is not None:
            dispatch.retire()
            if not dispatch.drain(timeout=10.0):
                # Batches stuck in dead/hung workers: resolve their waiters
                # with a typed shutdown error rather than a silent timeout.
                dispatch.fail(reason="shutdown", code="engine_shutdown")
                dispatch.close()
                return
            try:
                # Last look at the worker-side caches so /metrics stays
                # meaningful after shutdown (benchmarks read it there).
                self._last_worker_caches = dispatch.stats(timeout=5.0)
            except Exception:
                pass
            dispatch.close()

    def __enter__(self) -> "InferenceEngine":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()

    # ------------------------------------------------------ model lifecycle
    def swap_predictor(self, kind: str, predictor, *, drain_timeout: float = 30.0):
        """Atomically replace the predictor serving ``kind``; returns the old.

        In-flight micro-batches finish on the old predictor.  With a
        dispatch pool, the old generation is retired (new batches execute
        inline on the parent during the swap), drained, and a fresh pool
        forks over a new shared-memory arena holding the new weights.
        """
        with self._swap_lock:
            old = self.predictors.get(kind)
            dispatch, self._dispatch = self._dispatch, None
            if dispatch is None:
                self.predictors[kind] = predictor
                return old
            dispatch.retire()
            dispatch.drain(timeout=drain_timeout)
            try:
                self._last_worker_caches = dispatch.stats(timeout=5.0)
            except Exception:
                pass
            self.predictors[kind] = predictor
            dispatch.close()
            if not dispatch.failed.is_set():
                self._dispatch = _PoolDispatch(self, dispatch.n_workers)
            return old

    def reload_model(
        self, registry: ModelRegistry | str, name: str, version: int | None = None
    ) -> dict:
        """Load a registry bundle and swap it in; returns what's serving now.

        ``name`` may be a model name or an alias.  The existing predictor's
        world is reused when the manifest records the same world config, so
        a reload pays bundle I/O — not world regeneration.
        """
        if not isinstance(registry, ModelRegistry):
            registry = ModelRegistry(registry)
        manifest = registry.manifest(name, version)
        kind = KIND_FOR_BUNDLE[manifest["kind"]]
        old = self.predictors.get(kind)
        world = None
        if old is not None and dataclasses.asdict(old.world.config) == manifest["world_config"]:
            world = old.world
        bundle = registry.load_bundle(manifest["name"], manifest["version"], world=world)
        predictor = predictor_for_bundle(bundle)
        predictor.source = {"name": manifest["name"], "version": manifest["version"]}
        if self.event_log is not None:
            # Replay the durable log through the incoming predictor before
            # it serves: ingested events survive a model swap, whether the
            # new bundle shares the old (already-replayed) world or brings
            # a fresh one.
            predictor.apply_events(self.event_log.events(0))
        previous = self.swap_predictor(kind, predictor)
        prev_source = getattr(previous, "source", None) or {}
        return {
            "name": manifest["name"],
            "version": manifest["version"],
            "kind": kind,
            "previous_version": prev_source.get("version"),
        }

    # ------------------------------------------------------------- ingest
    def attach_store(self, event_log: EventLog) -> int:
        """Attach the durable event log and replay it into every predictor.

        Replays the full log: each predictor resumes past its own
        watermark (the bundle's recorded ``prior_seq`` / the shared
        world's ``_store_watermark``), so events ingested before a restart
        are reconstructed and events a bundle was fitted on are not
        double-applied.  Call before :meth:`start` so dispatch workers
        fork from the replayed state.  Returns the number of log events.
        """
        self.event_log = event_log
        events = event_log.events(0)
        if events:
            for predictor in self.predictors.values():
                predictor.apply_events(events)
            _log.info(
                "store.replayed",
                events=len(events),
                last_seq=event_log.last_seq,
            )
        return len(events)

    def ingest(self, items: list[dict]) -> dict:
        """Durably append a batch of events and fold them into serving state.

        Per item: schema validation, then semantic validation against the
        serving world(s), then a crash-safe append to the event log — the
        item is acked (its assigned ``seq`` returned) only after fsync.
        A content-hash duplicate skips validation and application and is
        acked with its original seq, which is what makes the whole POST
        idempotent and safe to retry.  Item failures don't fail the batch;
        a :class:`~repro.store.StoreIOError` does (nothing past the last
        acked item was accepted).

        Inside one batch, earlier items take effect before later ones are
        validated (a tweet can be retweeted by the next item).
        """
        if self.event_log is None:
            raise ServingError(
                "no event log attached to this engine; start the server "
                "from a model store to enable ingest",
                status=503,
                code="store_unavailable",
            )
        if self._stopping.is_set():
            raise ServingError(
                "engine is shutting down; request refused",
                status=503,
                code="engine_shutdown",
            )
        worlds: dict[int, object] = {
            id(p.world): p.world for p in self.predictors.values()
        }
        results: list[dict] = []
        accepted = deduped = errors = 0
        applied: list[StoredEvent] = []
        with self._ingest_lock:
            with obs_trace.span("ingest.append", events=len(items)):
                for item in items:
                    try:
                        wire = validate_event_payload(item)
                        event = event_from_wire(wire)
                    except ServingError as exc:
                        results.append(exc.as_result())
                        errors += 1
                        continue
                    except ValueError as exc:
                        results.append(
                            ServingError(
                                str(exc), code="invalid_event"
                            ).as_result()
                        )
                        errors += 1
                        continue
                    # Duplicates skip semantic validation: the original is
                    # already applied, so re-validating would reject it
                    # ("already retweeted") instead of acking its seq.
                    if self.event_log.seq_for_hash(event_hash(event)) is None:
                        msg = None
                        for world in worlds.values():
                            msg = validate_event_for_world(world, event)
                            if msg is not None:
                                break
                        if msg is not None:
                            results.append(
                                ServingError(
                                    msg, status=409, code="invalid_event"
                                ).as_result()
                            )
                            errors += 1
                            continue
                    seq, h, was_dup = self.event_log.append(event)
                    if was_dup:
                        deduped += 1
                    else:
                        stored = StoredEvent(seq=seq, hash=h, event=event)
                        # Apply to the world(s) now so later items in this
                        # batch validate against the updated state.
                        for world in worlds.values():
                            apply_events_to_world(world, [stored])
                        applied.append(stored)
                        accepted += 1
                    results.append(
                        {"seq": seq, "hash": h, "deduped": was_dup,
                         "kind": event.kind}
                    )
            if applied:
                with obs_trace.span("ingest.invalidate", events=len(applied)):
                    for predictor in self.predictors.values():
                        predictor.apply_events(applied)
                    self._broadcast_apply(applied)
        with obs_trace.span("ingest.reply"):
            return {
                "results": results,
                "accepted": accepted,
                "deduped": deduped,
                "n_errors": errors,
                "last_seq": self.event_log.last_seq,
            }

    def _broadcast_apply(self, applied: list[StoredEvent]) -> None:
        """Push applied events into every dispatch worker (barrier).

        A retired dispatch is fine — the replacement generation forks from
        the already-updated parent.  A worker that *fails* to apply would
        keep serving stale state, so that degrades the whole generation to
        inline execution on the (correct) parent.
        """
        dispatch = self._dispatch
        if dispatch is None:
            return
        try:
            dispatch.apply(applied)
        except _DispatchRetired:
            pass
        except Exception as exc:
            _log.error(
                "ingest.worker_apply_failed",
                error=f"{type(exc).__name__}: {exc}"[:400],
                events=len(applied),
            )
            dispatch.fail(reason="ingest_apply_failed")

    def store_stats(self) -> dict | None:
        """Event-log + watermark block for the ``/v1/metrics`` body."""
        if self.event_log is None:
            return None
        stats = self.event_log.stats()
        stats["watermarks"] = {
            kind: int(getattr(p, "_applied_seq", 0))
            for kind, p in self.predictors.items()
        }
        return stats

    # ------------------------------------------------------------- submit
    def submit(self, kind: str, payload: dict) -> Future:
        """Enqueue one request; resolve its result via the returned future.

        Requests submitted before :meth:`start` are buffered and served in
        the first micro-batch once the worker runs.
        """
        if self._stopping.is_set():
            raise ServingError(
                "engine is shutting down; request refused",
                status=503,
                code="engine_shutdown",
            )
        predictor = self.predictors.get(kind)
        if predictor is None:
            raise ServingError(
                f"unknown predictor {kind!r}; loaded: {sorted(self.predictors)}",
                status=404,
                code="unknown_predictor",
            )
        request = _Request(
            kind=kind,
            payload=payload,
            future=Future(),
            trace=obs_trace.current_context(),
        )
        self._queued_arrivals.append(request.submitted_at)
        self._queue.put(request)
        return request.future

    def predict(self, kind: str, payload: dict, timeout: float | None = 30.0) -> dict:
        """Blocking convenience wrapper around :meth:`submit`.

        A timed-out wait is not silent: it emits a ``request_timeout``
        span event and bumps ``repro_requests_timed_out_total`` before
        cancelling the future and re-raising.
        """
        future = self.submit(kind, payload)
        try:
            return future.result(timeout=timeout)
        except FutureTimeout:
            self.record_timeout(kind)
            future.cancel()
            raise

    def record_timeout(self, kind: str) -> None:
        """A waiter gave up on a submitted request before it was answered.

        Emits a zero-duration ``request_timeout`` span event into the
        caller's trace (when sampled) so the trace tree shows *why* the
        request ended, and counts it in
        ``repro_requests_timed_out_total``.
        """
        _TIMEOUTS.inc(kind=kind)
        ctx = obs_trace.current_context()
        if ctx is not None:
            trace_id, parent_id = ctx
            now = time.perf_counter()
            obs_trace.record_span(
                trace_id, "request_timeout", now, now,
                parent_id=parent_id, kind=kind,
            )

    # ------------------------------------------------------------- worker
    def _gather(self) -> list:
        """Block for one request, then coalesce more until batch/deadline."""
        first = self._queue.get()
        if first is _SHUTDOWN:
            return [first]
        self._dequeue(first)
        batch = [first]
        deadline = time.perf_counter() + self.max_wait_ms / 1e3
        while len(batch) < self.max_batch_size:
            remaining = deadline - time.perf_counter()
            if remaining <= 0:
                break
            try:
                item = self._queue.get(timeout=remaining)
            except queue.Empty:
                break
            batch.append(item)
            if item is _SHUTDOWN:
                break
            self._dequeue(item)
        return batch

    def _dequeue(self, request: _Request) -> None:
        request.dequeued_at = time.perf_counter()
        try:
            self._queued_arrivals.popleft()
        except IndexError:
            pass

    def _run(self) -> None:
        while True:
            batch = self._gather()
            shutdown = _SHUTDOWN in batch
            requests = [r for r in batch if r is not _SHUTDOWN]
            by_kind: dict[str, list[_Request]] = {}
            for r in requests:
                by_kind.setdefault(r.kind, []).append(r)
            assembled_at = time.perf_counter()
            for r in requests:
                if r.trace is None:
                    continue
                trace_id, parent_id = r.trace
                obs_trace.record_span(
                    trace_id,
                    "engine.queue_wait",
                    r.submitted_at,
                    r.dequeued_at,
                    parent_id=parent_id,
                )
                obs_trace.record_span(
                    trace_id,
                    "engine.batch_assembly",
                    r.dequeued_at,
                    assembled_at,
                    parent_id=parent_id,
                    batch_size=len(by_kind[r.kind]),
                )
            for kind, group in by_kind.items():
                self.predictors[kind].metrics.record_batch()
                dispatch = self._dispatch
                if dispatch is not None:
                    try:
                        dispatch.submit_batch(kind, [r.payload for r in group], group)
                        _BATCHES.inc(kind=kind, site="worker")
                        continue
                    except _DispatchRetired:
                        pass  # draining for a swap/stop: serve inline
                    except Exception:  # pool broken mid-submit: serve inline
                        dispatch.fail()
                _BATCHES.inc(kind=kind, site="inline")
                self._execute_inline(kind, group)
            if shutdown:
                self._fail_queued()
                return

    def _fail_queued(self) -> None:
        """Fail every request still in the queue with a typed shutdown error."""
        exc = ServingError(
            "engine shut down before the request was served",
            status=503,
            code="engine_shutdown",
        )
        while True:
            try:
                item = self._queue.get_nowait()
            except queue.Empty:
                return
            if item is _SHUTDOWN:
                continue
            self._dequeue(item)
            if item.future.set_running_or_notify_cancel():
                item.future.set_exception(exc)

    def _execute_inline(self, kind: str, group: list[_Request]) -> None:
        predictor = self.predictors[kind]
        try:
            with obs_trace.batch_context([r.trace for r in group]):
                outcomes = predictor.predict_batch([r.payload for r in group])
        except BaseException as exc:  # engine must survive bad batches
            predictor.metrics.record_error()
            for r in group:
                if not r.future.set_running_or_notify_cancel():
                    continue
                r.future.set_exception(exc)
            return
        self._deliver(predictor, group, outcomes)

    def _deliver(self, predictor, group: list[_Request], outcomes: list) -> None:
        now = time.perf_counter()
        for r, outcome in zip(group, outcomes):
            if isinstance(outcome, dict) and "error" in outcome:
                predictor.metrics.record_error()
                n_items = 0
            elif isinstance(outcome, dict) and "scores" in outcome:
                n_items = len(outcome["scores"])
            else:
                n_items = 1
            predictor.metrics.record(now - r.submitted_at, n_items=n_items)
            _LATENCY.observe(now - r.submitted_at, kind=predictor.kind)
            if r.future.set_running_or_notify_cancel():
                r.future.set_result(outcome)

    # ----------------------------------------------- multi-process dispatch
    def _worker_batch(self, task):
        """Runs inside a pool worker: execute one kind-grouped micro-batch.

        Returns ``(outcomes, spans)``: spans recorded during the batch are
        captured into a sink and shipped back with the result so the parent
        can stitch them into the originating traces (the worker's own span
        store dies with the fork).
        """
        kind, payloads, traces = task
        contexts = [t for t in traces if t]
        if not contexts:
            return self.predictors[kind].predict_batch(payloads), ()
        sink: list = []
        with obs_trace.batch_context(
            contexts, sink=sink, common={"in_worker": True, "pid": os.getpid()}
        ):
            outcomes = self.predictors[kind].predict_batch(payloads)
        return outcomes, tuple(sink)

    def _worker_cache_stats(self, _payload) -> dict:
        """Runs inside a pool worker: this worker's per-predictor caches."""
        return {
            kind: _predictor_cache_stats(predictor)
            for kind, predictor in self.predictors.items()
        }

    def _worker_apply(self, stored_events) -> bool:
        """Runs inside a pool worker: fold ingested events into its state.

        The worker's copy-on-write world/predictors diverge from the
        parent here by design — each process applies the same events to
        its own copies, which the parity tests pin as bit-identical.
        """
        for predictor in self.predictors.values():
            predictor.apply_events(stored_events)
        return True

    def _dispatch_failed(self, dispatch: _PoolDispatch) -> None:
        """A dispatch generation died; fall back to inline execution."""
        self._dispatch_degraded_total += 1
        if self._dispatch is dispatch:
            self._dispatch = None

    def dispatch_health(self) -> dict:
        """Worker-dispatch recovery state for the v1 metrics body.

        ``mode`` is ``"workers"`` while a live dispatch generation serves
        batches, ``"inline"`` otherwise (single-worker engines, post-breaker
        degradation, or mid-swap).
        """
        dispatch = self._dispatch
        out = {
            "mode": "workers" if dispatch is not None else "inline",
            "degraded_generations": self._dispatch_degraded_total,
            "crash_limit": _CRASH_LIMIT,
            "crash_window_s": _CRASH_WINDOW_S,
        }
        if dispatch is not None:
            out.update(dispatch.health())
        return out

    # ------------------------------------------------------------- health
    def metrics(self) -> dict:
        """Per-predictor counters + cache stats for ``/metrics``.

        In multi-process mode the caches live in the dispatch workers, so
        each worker is polled for an atomic snapshot and the counters are
        aggregated per cache (with the per-worker breakdown attached) —
        the multi-worker hit ratio is first-class, not inferred.  After
        shutdown the last snapshot taken during :meth:`stop` is reported.
        """
        worker_caches: list[dict] | None = None
        stale = False
        dispatch = self._dispatch
        if dispatch is not None:
            try:
                worker_caches = dispatch.stats(timeout=5.0)
            except Exception as exc:
                _log.warning(
                    "dispatch.stats_failed",
                    error=f"{type(exc).__name__}: {exc}"[:400],
                    n_workers=dispatch.n_workers,
                )
                worker_caches = None
        if worker_caches is None and self._last_worker_caches is not None:
            # Serving the snapshot taken at the last drain — mark it so a
            # reader never mistakes frozen counters for live ones.
            worker_caches = self._last_worker_caches
            stale = True
        out = {}
        for kind, predictor in self.predictors.items():
            entry = dict(predictor.metrics.snapshot())
            if worker_caches:
                entry["caches"] = _aggregate_cache_stats(
                    [wc.get(kind, {}) for wc in worker_caches]
                )
                if stale:
                    entry["caches"]["stale"] = True
                entry["workers"] = len(worker_caches)
            else:
                entry["caches"] = _predictor_cache_stats(predictor)
                entry["workers"] = 1
            out[kind] = entry
        return out

    def describe(self) -> dict:
        """Static model info for ``/healthz``."""
        return {kind: p.describe() for kind, p in self.predictors.items()}


# ---------------------------------------------------------- cache plumbing
def _predictor_cache_stats(predictor) -> dict:
    """Atomic stats of every LRU cache a predictor exposes."""
    caches = {}
    if hasattr(predictor, "feature_cache"):
        caches["features"] = predictor.feature_cache.stats()
    if hasattr(predictor, "context_cache"):
        caches["contexts"] = predictor.context_cache.stats()
    return caches


def _aggregate_cache_stats(per_worker: list[dict]) -> dict:
    """Sum per-worker cache counters; keep the per-worker hit ratios."""
    out: dict = {}
    for name in sorted({n for wc in per_worker for n in wc}):
        stats = [wc[name] for wc in per_worker if name in wc]
        hits = sum(s["hits"] for s in stats)
        misses = sum(s["misses"] for s in stats)
        total = hits + misses
        out[name] = {
            "size": sum(s["size"] for s in stats),
            "maxsize": sum(s["maxsize"] for s in stats),
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / total, 4) if total else 0.0,
            "per_worker": [s["hit_rate"] for s in stats],
        }
    return out


# -------------------------------------------------------------- bootstrap
def predictor_for_bundle(bundle):
    """The predictor class matching a bundle's kind."""
    if bundle.kind == "retina":
        return RetweeterPredictor(bundle)
    return HateGenPredictor(bundle)


def engine_from_store(
    store: str | ModelRegistry,
    names: list[str] | None = None,
    *,
    max_batch_size: int = 64,
    max_wait_ms: float = 2.0,
    workers: int | None = None,
    with_events: bool = True,
) -> InferenceEngine:
    """Build an engine from registry bundles (what ``repro serve`` runs).

    Loads the latest version of each named model (default: every model in
    the store); bundles recorded against the same world config share one
    regenerated world so startup pays world generation once.  Each
    predictor remembers its registry source, so ``/v1/models/{name}/reload``
    can swap it later.

    With ``with_events`` (the default) the durable event log living at
    ``<store>/events`` is opened and replayed through every predictor, so
    events ingested before a restart are already serving when this
    returns.
    """
    registry = store if isinstance(store, ModelRegistry) else ModelRegistry(store)
    names = list(names) if names else registry.list_models()
    if not names:
        from repro.serving.registry import RegistryError

        raise RegistryError(
            f"no models found in registry {registry.root!r}", root=registry.root
        )
    predictors: dict[str, object] = {}
    world = None
    for name in names:
        manifest = registry.manifest(name)
        shared = (
            world
            if world is not None
            and dataclasses.asdict(world.config) == manifest["world_config"]
            else None
        )
        bundle = registry.load_bundle(name, world=shared)
        world = bundle.extractor.world
        predictor = predictor_for_bundle(bundle)
        predictor.source = {"name": manifest["name"], "version": manifest["version"]}
        if predictor.kind in predictors:
            raise ValueError(
                f"two bundles of kind {predictor.kind!r} requested; each kind "
                f"can only be served by one model (got {names})"
            )
        predictors[predictor.kind] = predictor
    engine = InferenceEngine(
        predictors,
        max_batch_size=max_batch_size,
        max_wait_ms=max_wait_ms,
        workers=workers,
    )
    if with_events:
        engine.attach_store(EventLog(os.path.join(registry.root, "events")))
    return engine

"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Generate a synthetic world and print its Table II statistics.
``analyze``
    Print the Figure 1-3 analyses for a generated world.
``train-retina``
    Train RETINA on a generated world, report test metrics, and optionally
    save a serving bundle to a model registry.
``train-hategen``
    Run the hate-generation pipeline (one model/variant), report metrics,
    and optionally save a serving bundle.
``serve``
    Load registry bundles and serve predictions over the API v1 HTTP
    surface (including ``/v1/models*`` lifecycle routes).
``predict``
    One-shot prediction — in-process from a registry bundle
    (``--store``), or against a running server via the
    :class:`repro.client.ServingClient` SDK (``--url``).
``ingest``
    Stream JSONL events (file or stdin) into a running server's durable
    event log via ``POST /v1/ingest``.

All world-building commands accept ``--seed``, ``--scale``, ``--users``,
``--hashtags`` to control the world.
"""

from __future__ import annotations

import argparse
import json
import sys
import time

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Hate is the New Infodemic' (ICDE 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_world_args(p):
        p.add_argument("--seed", type=int, default=0, help="world RNG seed")
        p.add_argument("--scale", type=float, default=0.03, help="Table II tweet-count scale")
        p.add_argument("--users", type=int, default=300, help="number of users")
        p.add_argument("--hashtags", type=int, default=10, help="number of hashtags")
        p.add_argument("--news", type=int, default=1000, help="number of news articles")

    def add_workers_arg(p):
        p.add_argument(
            "--workers", type=int, default=None, metavar="N",
            help="worker processes (default: $REPRO_NUM_WORKERS, then CPU count)",
        )

    g = sub.add_parser("generate", help="generate a world and print Table II stats")
    add_world_args(g)

    a = sub.add_parser("analyze", help="print Figure 1-3 analyses")
    add_world_args(a)

    r = sub.add_parser("train-retina", help="train RETINA and report metrics")
    add_world_args(r)
    add_workers_arg(r)
    r.add_argument("--shard-size", type=int, default=8,
                   help="cascades aggregated per optimiser step when training "
                        "with > 1 worker (worker-count-invariant)")
    r.add_argument("--mode", choices=("static", "dynamic"), default="static")
    r.add_argument("--epochs", type=int, default=6)
    r.add_argument("--no-exogenous", action="store_true", help="train the dagger variant")
    r.add_argument("--save", type=str, default=None, metavar="STORE",
                   help="model-registry directory to save a serving bundle into")
    r.add_argument("--name", type=str, default="retina",
                   help="bundle name inside the registry (with --save)")

    h = sub.add_parser("train-hategen", help="run the hate-generation pipeline")
    add_world_args(h)
    add_workers_arg(h)
    h.add_argument("--model", default="dectree", help="model key (Table III)")
    h.add_argument("--variant", default="ds", help="processing variant (Table IV)")
    h.add_argument("--save", type=str, default=None, metavar="STORE",
                   help="model-registry directory to save a serving bundle into")
    h.add_argument("--name", type=str, default="hategen",
                   help="bundle name inside the registry (with --save)")

    s = sub.add_parser("serve", help="serve registry bundles over HTTP")
    s.add_argument("--store", required=True, help="model-registry directory")
    s.add_argument("--name", action="append", default=None, metavar="NAME",
                   help="bundle name to load (repeatable; default: every model)")
    s.add_argument("--host", default="127.0.0.1")
    s.add_argument("--port", type=int, default=8000)
    s.add_argument("--batch-size", type=int, default=64,
                   help="micro-batch cap of the inference engine")
    s.add_argument("--wait-ms", type=float, default=2.0,
                   help="micro-batch coalescing window in milliseconds")
    add_workers_arg(s)
    s.add_argument("--no-admission", action="store_true",
                   help="disable admission control (quotas + load shedding; "
                        "tunable via REPRO_ADMIT_* env vars)")
    s.add_argument("--quiet", action="store_true", help="suppress request logs")

    i = sub.add_parser("ingest", help="stream JSONL events into a running server")
    i.add_argument("--url", required=True, metavar="URL",
                   help="base URL of a running server")
    i.add_argument("events", metavar="FILE",
                   help="JSONL file of events, one object per line ('-' = stdin)")
    i.add_argument("--batch-size", type=int, default=256,
                   help="events per POST /v1/ingest call")
    i.add_argument("--quiet", action="store_true",
                   help="print only the final summary line")

    p = sub.add_parser("predict", help="one-shot prediction from a registry bundle")
    p.add_argument("--store", default=None, help="model-registry directory (in-process)")
    p.add_argument("--url", default=None, metavar="URL",
                   help="base URL of a running server (predict via the client SDK)")
    p.add_argument("--name", required=True, help="bundle name to load")
    p.add_argument("--version", type=int, default=None, help="bundle version (default latest)")
    p.add_argument("--cascade", type=int, default=None, help="cascade id (retina bundles)")
    p.add_argument("--users", type=int, nargs="*", default=None,
                   help="candidate user ids (retina bundles; default: audience)")
    p.add_argument("--interval", type=int, default=None,
                   help="dynamic-mode time interval index")
    p.add_argument("--top-k", type=int, default=10, help="ranking size to print")
    p.add_argument("--user", type=int, default=None, help="user id (hategen bundles)")
    p.add_argument("--hashtag", type=str, default=None, help="hashtag (hategen bundles)")
    p.add_argument("--timestamp", type=float, default=None,
                   help="query time in hours (hategen bundles)")
    return parser


def _resolved_workers(args) -> int:
    """CLI worker policy: flag, then $REPRO_NUM_WORKERS, then CPU count."""
    import os

    from repro.parallel import resolve_workers

    return resolve_workers(args.workers, default=os.cpu_count() or 1)


def _make_dataset(args):
    from repro.data import HateDiffusionDataset, SyntheticWorldConfig

    config = SyntheticWorldConfig(
        scale=args.scale,
        n_hashtags=args.hashtags,
        n_users=args.users,
        n_news=args.news,
        seed=args.seed,
    )
    return HateDiffusionDataset.generate(config)


def _cmd_generate(args) -> int:
    from repro.utils.tables import render_table

    dataset = _make_dataset(args)
    stats = dataset.world.hashtag_stats()
    rows = [
        [s["tag"][:24], s["tweets"], round(s["avg_rt"], 2), s["users"], round(s["pct_hate"], 2)]
        for s in stats
    ]
    print(render_table(["hashtag", "tweets", "avgRT", "users", "%hate"], rows,
                       title=f"Synthetic world (seed={args.seed}, scale={args.scale})"))
    world = dataset.world
    print(f"\ntotal: {len(world.tweets)} tweets, {len(world.users)} users, "
          f"{world.network.n_follows} follows, {len(world.news)} news articles")
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis import diffusion_curves, echo_chamber_comparison, hashtag_hate_distribution
    from repro.utils.asciiplot import ascii_bars, ascii_series

    world = _make_dataset(args).world
    curves = diffusion_curves(world, n_points=15)
    print(ascii_series(curves["retweets"], title="Fig 1a — avg retweets over time"))
    print()
    print(ascii_series(curves["susceptible"], title="Fig 1b — avg susceptible users"))
    print()
    dist = hashtag_hate_distribution(world)
    tags = sorted(dist, key=lambda t: -dist[t]["hate_fraction"])
    print(ascii_bars([t[:22] for t in tags], [dist[t]["hate_fraction"] for t in tags],
                     title="Fig 2 — hate fraction per hashtag"))
    print()
    echo = echo_chamber_comparison(world)
    print("Echo-chamber metrics (hate vs non-hate cascades):")
    for key in ("community_entropy", "internal_density", "audience_overlap"):
        print(f"  {key:>20}: hate {echo['hate'][key]:.3f}  non-hate {echo['non_hate'][key]:.3f}")
    return 0


def _cmd_train_retina(args) -> int:
    from repro.core.retina import (
        RETINA,
        RetinaFeatureExtractor,
        RetinaTrainer,
        evaluate_binary,
        evaluate_ranking,
    )

    dataset = _make_dataset(args)
    workers = _resolved_workers(args)
    train, test = dataset.cascade_split(random_state=args.seed)
    print(f"{len(train)} train / {len(test)} test cascades; extracting features "
          f"({workers} worker{'s' if workers != 1 else ''}) ...")
    extractor = RetinaFeatureExtractor(
        dataset.world, random_state=args.seed, workers=workers
    ).fit(train)
    edges = RetinaTrainer.default_interval_edges()
    t0 = time.perf_counter()
    tr = extractor.build_samples(train, interval_edges_hours=edges, random_state=0)
    te = extractor.build_samples(test, interval_edges_hours=edges, random_state=1)
    dt = time.perf_counter() - t0
    n_built = len(tr) + len(te)
    print(f"built {n_built} cascade samples in {dt:.2f}s "
          f"({n_built / max(dt, 1e-9):.0f} cascades/s, columnar pipeline)")
    model = RETINA(
        user_dim=extractor.user_feature_dim,
        tweet_dim=extractor.news_doc2vec_dim,
        news_dim=extractor.news_doc2vec_dim,
        mode=args.mode,
        use_exogenous=not args.no_exogenous,
        random_state=args.seed,
    )
    print(f"training RETINA-{args.mode[0].upper()} ({model.n_parameters()} parameters, "
          f"{args.epochs} epochs) ...")
    # The sharded data-parallel schedule changes the optimiser schedule
    # (bit-identical across worker counts at a fixed --shard-size, but not
    # to the seed per-cascade loop), so it engages only on an explicit
    # opt-in — the --workers flag or $REPRO_NUM_WORKERS — never from the
    # CPU-count default, which would make default results host-dependent.
    import os as _os

    explicit = args.workers is not None or bool(_os.environ.get("REPRO_NUM_WORKERS"))
    trainer = RetinaTrainer(
        model,
        epochs=args.epochs,
        random_state=args.seed,
        workers=workers if explicit and workers > 1 else None,
        shard_size=args.shard_size,
    ).fit(tr)
    queries = [(s.labels.astype(int), trainer.predict_static_scores(s)) for s in te]
    metrics = {**evaluate_binary(queries), **evaluate_ranking(queries)}
    for name, value in metrics.items():
        print(f"  {name:>10}: {value:.4f}")
    if args.save:
        from repro.serving import ModelRegistry, RetinaBundle

        manifest = ModelRegistry(args.save).save_bundle(
            args.name,
            RetinaBundle(
                model=model,
                extractor=extractor,
                world_config=dataset.world.config,
                train_config={"epochs": args.epochs, "mode": args.mode,
                              "seed": args.seed},
                metrics=metrics,
            ),
        )
        print(f"bundle saved: {args.name} v{manifest['version']:04d} in {args.save}")
    return 0


def _cmd_train_hategen(args) -> int:
    from repro.core.hategen import HateGenFeatureExtractor, HateGenerationPipeline

    dataset = _make_dataset(args)
    workers = _resolved_workers(args)
    train, test = dataset.hategen_split(random_state=args.seed)
    print(f"{len(train)} train / {len(test)} test tweets; extracting features "
          f"({workers} worker{'s' if workers != 1 else ''}) ...")
    extractor = HateGenFeatureExtractor(
        dataset.world, random_state=args.seed, workers=workers
    )
    pipeline = HateGenerationPipeline(extractor, random_state=args.seed)
    X_tr, y_tr, X_te, y_te = pipeline.prepare(train, test)
    result = pipeline.run(args.model, args.variant, X_tr, y_tr, X_te, y_te)
    print(f"  model={args.model} variant={args.variant}")
    print(f"  macro-F1 {result.macro_f1:.4f}  ACC {result.accuracy:.4f}  AUC {result.auc:.4f}")
    if args.save:
        from repro.serving import HateGenBundle, ModelRegistry

        manifest = ModelRegistry(args.save).save_bundle(
            args.name,
            HateGenBundle(
                model=pipeline.fitted_model_,
                transforms=pipeline.fitted_transforms_,
                extractor=extractor,
                world_config=dataset.world.config,
                model_key=args.model,
                variant=args.variant,
                train_config={"seed": args.seed},
                metrics={"macro_f1": result.macro_f1, "accuracy": result.accuracy,
                         "auc": result.auc},
            ),
        )
        print(f"bundle saved: {args.name} v{manifest['version']:04d} in {args.save}")
    return 0


def _cmd_serve(args) -> int:
    from repro.serving import (
        AdmissionConfig,
        ModelRegistry,
        engine_from_store,
        serve_forever_async,
    )

    registry = ModelRegistry(args.store)
    try:
        engine = engine_from_store(
            registry,
            args.name,
            max_batch_size=args.batch_size,
            max_wait_ms=args.wait_ms,
            workers=_resolved_workers(args),
        )
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    admission = None if args.no_admission else AdmissionConfig.from_env()
    serve_forever_async(
        engine, args.host, args.port, registry=registry,
        verbose=not args.quiet, admission=admission,
    )
    return 0


def _cmd_predict(args) -> int:
    if (args.store is None) == (args.url is None):
        print("predict needs exactly one of --store or --url", file=sys.stderr)
        return 2

    def build_payload(kind: str) -> dict | None:
        if kind == "retina":
            if args.cascade is None:
                print("retina bundles need --cascade", file=sys.stderr)
                return None
            payload = {"cascade_id": args.cascade, "top_k": args.top_k}
            if args.users is not None:
                payload["user_ids"] = args.users
            if args.interval is not None:
                payload["interval"] = args.interval
            return payload
        if args.user is None or args.hashtag is None or args.timestamp is None:
            print("hategen bundles need --user, --hashtag and --timestamp",
                  file=sys.stderr)
            return None
        return {"user_id": args.user, "hashtag": args.hashtag,
                "timestamp": args.timestamp}

    if args.url is not None:
        from repro.client import ServingClient, ServingError

        with ServingClient(args.url) as client:
            try:
                manifest = client.model(args.name, version=args.version)
                payload = build_payload(manifest["kind"])
                if payload is None:
                    return 2
                if manifest["kind"] == "retina":
                    result = client.predict_retweeters(
                        payload["cascade_id"],
                        user_ids=payload.get("user_ids"),
                        interval=payload.get("interval"),
                        top_k=payload.get("top_k"),
                    )
                else:
                    result = client.predict_hategen(
                        payload["user_id"], payload["hashtag"], payload["timestamp"]
                    )
            except ServingError as exc:
                print(json.dumps(exc.as_result(), indent=2), file=sys.stderr)
                return 1
        print(json.dumps(result.to_dict(), indent=2))
        return 0

    from repro.serving import ModelRegistry, predictor_for_bundle

    registry = ModelRegistry(args.store)
    try:
        bundle = registry.load_bundle(args.name, version=args.version)
    except FileNotFoundError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    predictor = predictor_for_bundle(bundle)
    payload = build_payload(bundle.kind)
    if payload is None:
        return 2
    result = predictor.predict_batch([payload])[0]
    print(json.dumps(result, indent=2))
    return 0 if "error" not in result else 1


def _cmd_ingest(args) -> int:
    from repro.client import ServingClient, ServingError
    from repro.serving.schemas import MAX_INGEST_EVENTS

    batch_size = max(1, min(int(args.batch_size), MAX_INGEST_EVENTS))
    fh = sys.stdin if args.events == "-" else open(args.events)
    accepted = deduped = errors = sent = 0
    last_seq = 0
    try:
        with ServingClient(args.url) as client:
            batch: list[dict] = []

            def flush() -> None:
                nonlocal accepted, deduped, errors, last_seq, sent
                if not batch:
                    return
                resp = client.ingest(batch)
                sent += len(batch)
                accepted += resp.accepted
                deduped += resp.deduped
                errors += resp.n_errors
                last_seq = resp.last_seq
                if not args.quiet:
                    for item, result in zip(batch, resp.results):
                        if "error" in result:
                            err = result["error"]
                            print(f"REJECT {json.dumps(item)}: "
                                  f"{err.get('code')}: {err.get('message')}",
                                  file=sys.stderr)
                batch.clear()

            for lineno, line in enumerate(fh, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    event = json.loads(line)
                except json.JSONDecodeError as exc:
                    print(f"line {lineno}: invalid JSON: {exc}", file=sys.stderr)
                    errors += 1
                    continue
                batch.append(event)
                if len(batch) >= batch_size:
                    flush()
            flush()
    except ServingError as exc:
        print(json.dumps(exc.as_result(), indent=2), file=sys.stderr)
        return 1
    finally:
        if fh is not sys.stdin:
            fh.close()
    print(json.dumps({
        "sent": sent, "accepted": accepted, "deduped": deduped,
        "errors": errors, "last_seq": last_seq,
    }))
    return 0 if errors == 0 else 1


_COMMANDS = {
    "generate": _cmd_generate,
    "analyze": _cmd_analyze,
    "train-retina": _cmd_train_retina,
    "train-hategen": _cmd_train_hategen,
    "serve": _cmd_serve,
    "predict": _cmd_predict,
    "ingest": _cmd_ingest,
}


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

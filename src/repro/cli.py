"""Command-line interface: ``python -m repro <command>``.

Commands
--------
``generate``
    Generate a synthetic world and print its Table II statistics.
``analyze``
    Print the Figure 1-3 analyses for a generated world.
``train-retina``
    Train RETINA on a generated world, report test metrics, and optionally
    save the weights.
``train-hategen``
    Run the hate-generation pipeline (one model/variant) and report
    metrics.

All commands accept ``--seed``, ``--scale``, ``--users``, ``--hashtags``
to control the world.
"""

from __future__ import annotations

import argparse
import sys

import numpy as np

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Reproduction of 'Hate is the New Infodemic' (ICDE 2021)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    def add_world_args(p):
        p.add_argument("--seed", type=int, default=0, help="world RNG seed")
        p.add_argument("--scale", type=float, default=0.03, help="Table II tweet-count scale")
        p.add_argument("--users", type=int, default=300, help="number of users")
        p.add_argument("--hashtags", type=int, default=10, help="number of hashtags")
        p.add_argument("--news", type=int, default=1000, help="number of news articles")

    g = sub.add_parser("generate", help="generate a world and print Table II stats")
    add_world_args(g)

    a = sub.add_parser("analyze", help="print Figure 1-3 analyses")
    add_world_args(a)

    r = sub.add_parser("train-retina", help="train RETINA and report metrics")
    add_world_args(r)
    r.add_argument("--mode", choices=("static", "dynamic"), default="static")
    r.add_argument("--epochs", type=int, default=6)
    r.add_argument("--no-exogenous", action="store_true", help="train the dagger variant")
    r.add_argument("--save", type=str, default=None, help="path to save weights (.npz)")

    h = sub.add_parser("train-hategen", help="run the hate-generation pipeline")
    add_world_args(h)
    h.add_argument("--model", default="dectree", help="model key (Table III)")
    h.add_argument("--variant", default="ds", help="processing variant (Table IV)")
    return parser


def _make_dataset(args):
    from repro.data import HateDiffusionDataset, SyntheticWorldConfig

    config = SyntheticWorldConfig(
        scale=args.scale,
        n_hashtags=args.hashtags,
        n_users=args.users,
        n_news=args.news,
        seed=args.seed,
    )
    return HateDiffusionDataset.generate(config)


def _cmd_generate(args) -> int:
    from repro.utils.tables import render_table

    dataset = _make_dataset(args)
    stats = dataset.world.hashtag_stats()
    rows = [
        [s["tag"][:24], s["tweets"], round(s["avg_rt"], 2), s["users"], round(s["pct_hate"], 2)]
        for s in stats
    ]
    print(render_table(["hashtag", "tweets", "avgRT", "users", "%hate"], rows,
                       title=f"Synthetic world (seed={args.seed}, scale={args.scale})"))
    world = dataset.world
    print(f"\ntotal: {len(world.tweets)} tweets, {len(world.users)} users, "
          f"{world.network.n_follows} follows, {len(world.news)} news articles")
    return 0


def _cmd_analyze(args) -> int:
    from repro.analysis import diffusion_curves, echo_chamber_comparison, hashtag_hate_distribution
    from repro.utils.asciiplot import ascii_bars, ascii_series

    world = _make_dataset(args).world
    curves = diffusion_curves(world, n_points=15)
    print(ascii_series(curves["retweets"], title="Fig 1a — avg retweets over time"))
    print()
    print(ascii_series(curves["susceptible"], title="Fig 1b — avg susceptible users"))
    print()
    dist = hashtag_hate_distribution(world)
    tags = sorted(dist, key=lambda t: -dist[t]["hate_fraction"])
    print(ascii_bars([t[:22] for t in tags], [dist[t]["hate_fraction"] for t in tags],
                     title="Fig 2 — hate fraction per hashtag"))
    print()
    echo = echo_chamber_comparison(world)
    print("Echo-chamber metrics (hate vs non-hate cascades):")
    for key in ("community_entropy", "internal_density", "audience_overlap"):
        print(f"  {key:>20}: hate {echo['hate'][key]:.3f}  non-hate {echo['non_hate'][key]:.3f}")
    return 0


def _cmd_train_retina(args) -> int:
    from repro.core.retina import (
        RETINA,
        RetinaFeatureExtractor,
        RetinaTrainer,
        evaluate_binary,
        evaluate_ranking,
    )

    dataset = _make_dataset(args)
    train, test = dataset.cascade_split(random_state=args.seed)
    print(f"{len(train)} train / {len(test)} test cascades; extracting features ...")
    extractor = RetinaFeatureExtractor(dataset.world, random_state=args.seed).fit(train)
    edges = RetinaTrainer.default_interval_edges()
    tr = extractor.build_samples(train, interval_edges_hours=edges, random_state=0)
    te = extractor.build_samples(test, interval_edges_hours=edges, random_state=1)
    model = RETINA(
        user_dim=extractor.user_feature_dim,
        tweet_dim=extractor.news_doc2vec_dim,
        news_dim=extractor.news_doc2vec_dim,
        mode=args.mode,
        use_exogenous=not args.no_exogenous,
        random_state=args.seed,
    )
    print(f"training RETINA-{args.mode[0].upper()} ({model.n_parameters()} parameters, "
          f"{args.epochs} epochs) ...")
    trainer = RetinaTrainer(model, epochs=args.epochs, random_state=args.seed).fit(tr)
    queries = [(s.labels.astype(int), trainer.predict_static_scores(s)) for s in te]
    metrics = {**evaluate_binary(queries), **evaluate_ranking(queries)}
    for name, value in metrics.items():
        print(f"  {name:>10}: {value:.4f}")
    if args.save:
        model.save(args.save)
        print(f"weights saved to {args.save}")
    return 0


def _cmd_train_hategen(args) -> int:
    from repro.core.hategen import HateGenFeatureExtractor, HateGenerationPipeline

    dataset = _make_dataset(args)
    train, test = dataset.hategen_split(random_state=args.seed)
    print(f"{len(train)} train / {len(test)} test tweets; extracting features ...")
    extractor = HateGenFeatureExtractor(dataset.world, random_state=args.seed)
    pipeline = HateGenerationPipeline(extractor, random_state=args.seed)
    X_tr, y_tr, X_te, y_te = pipeline.prepare(train, test)
    result = pipeline.run(args.model, args.variant, X_tr, y_tr, X_te, y_te)
    print(f"  model={args.model} variant={args.variant}")
    print(f"  macro-F1 {result.macro_f1:.4f}  ACC {result.accuracy:.4f}  AUC {result.auc:.4f}")
    return 0


_COMMANDS = {
    "generate": _cmd_generate,
    "analyze": _cmd_analyze,
    "train-retina": _cmd_train_retina,
    "train-hategen": _cmd_train_hategen,
}


def main(argv=None) -> int:
    """CLI entry point; returns the process exit code."""
    args = build_parser().parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())

"""repro — reproduction of "Hate is the New Infodemic" (ICDE 2021).

A topic-aware model of hate-speech generation and retweet diffusion on a
(synthetic) Twitter information network, including:

- :mod:`repro.core.hategen` — feature-rich classifiers predicting whether a
  user will post hateful content on a given hashtag (paper Sec. IV).
- :mod:`repro.core.retina` — RETINA, a neural retweeter-prediction model with
  exogenous (news) scaled dot-product attention (paper Sec. V).
- :mod:`repro.serving` + :mod:`repro.client` — the API v1 serving stack
  (typed schemas, versioned model registry with aliases + hot reload,
  micro-batching HTTP server) and its stdlib client SDK.
- Substrates built from scratch on numpy/scipy/networkx: a classical-ML
  toolkit (:mod:`repro.ml`), a text toolkit (:mod:`repro.text`), a reverse-
  mode autograd neural framework (:mod:`repro.nn`), an information-network
  layer (:mod:`repro.graph`), diffusion baselines (:mod:`repro.diffusion`),
  hate-speech detectors (:mod:`repro.hatedetect`), and a generative synthetic
  Twitter world (:mod:`repro.data`).
"""

__version__ = "1.0.0"

__all__ = [
    "__version__",
]

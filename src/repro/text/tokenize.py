"""Tweet-aware tokenisation.

Hashtags are kept as single ``#token`` units (the paper treats hashtags as
individual tokens when training Doc2Vec, Sec. IV-B), mentions are preserved
as ``@user``, and URLs are collapsed to a placeholder so they neither pollute
the vocabulary nor leak per-tweet identifiers.
"""

from __future__ import annotations

import re

_URL_RE = re.compile(r"https?://\S+|www\.\S+")
_TOKEN_RE = re.compile(r"[#@]?\w+", re.UNICODE)

URL_PLACEHOLDER = "<url>"


def tokenize(text: str, *, lowercase: bool = True, keep_urls: bool = False) -> list[str]:
    """Split text into tweet tokens.

    Parameters
    ----------
    lowercase:
        Casefold tokens (hashtag matching in the paper is case-insensitive).
    keep_urls:
        When False (default), URLs become a single ``<url>`` placeholder.
    """
    if not isinstance(text, str):
        raise TypeError(f"expected str, got {type(text).__name__}")
    if lowercase:
        text = text.lower()
    if not keep_urls:
        text = _URL_RE.sub(f" {URL_PLACEHOLDER} ", text)
    tokens = []
    for piece in text.split():
        if piece == URL_PLACEHOLDER:
            tokens.append(piece)
            continue
        tokens.extend(_TOKEN_RE.findall(piece))
    return tokens


def ngrams(tokens: list[str], n: int) -> list[str]:
    """Contiguous n-grams joined by spaces; returns [] when len < n."""
    if n < 1:
        raise ValueError(f"n must be >= 1, got {n}")
    if n == 1:
        return list(tokens)
    return [" ".join(tokens[i : i + n]) for i in range(len(tokens) - n + 1)]

"""Text-processing substrate: tokenisation, TF-IDF, Doc2Vec, hate lexicon.

Replaces the paper's use of gensim (Doc2Vec) and scikit-learn
(TfidfVectorizer) with from-scratch implementations over numpy.
"""

from repro.text.tokenize import ngrams, tokenize
from repro.text.tfidf import TfidfVectorizer
from repro.text.doc2vec import Doc2Vec
from repro.text.lexicon import HateLexicon, default_hate_lexicon
from repro.text.similarity import cosine_similarity, pairwise_cosine

__all__ = [
    "tokenize",
    "ngrams",
    "TfidfVectorizer",
    "Doc2Vec",
    "HateLexicon",
    "default_hate_lexicon",
    "cosine_similarity",
    "pairwise_cosine",
]

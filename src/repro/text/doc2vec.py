"""Doc2Vec: distributed document representations (PV-DBOW).

The paper uses gensim Doc2Vec (50-d for tweets, 500-d for news headlines;
Sec. VI-D) for the exogenous-attention inputs and for the user-topic
relatedness feature.  This is a from-scratch PV-DBOW [Le & Mikolov 2014]
trained with negative sampling: each document vector is optimised to predict
the words it contains against noise words sampled from the unigram^0.75
distribution.

``infer_vector`` optimises a fresh document vector against the frozen word
matrix, mirroring gensim's inference step, so unseen tweets/news can be
embedded after training.
"""

from __future__ import annotations

import numpy as np

from repro.parallel import ShmArena, WorkerPool, resolve_workers
from repro.text.tokenize import tokenize
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted


def _sigmoid(z: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(z, -30.0, 30.0)))


class Doc2Vec:
    """PV-DBOW document embeddings with negative sampling.

    Parameters
    ----------
    vector_size:
        Embedding dimensionality (paper: 50 for tweets, 500 for news).
    epochs:
        Full passes over the corpus.
    negative:
        Negative samples per positive word.
    min_count:
        Words rarer than this are dropped from the vocabulary.
    alpha:
        Initial learning rate, linearly decayed to ``alpha/10``.
    """

    def __init__(
        self,
        vector_size: int = 50,
        epochs: int = 20,
        negative: int = 5,
        min_count: int = 2,
        alpha: float = 0.05,
        window_subsample: int = 32,
        random_state=None,
        tokenizer=None,
    ):
        if vector_size < 1:
            raise ValueError(f"vector_size must be >= 1, got {vector_size}")
        if negative < 1:
            raise ValueError(f"negative must be >= 1, got {negative}")
        self.vector_size = vector_size
        self.epochs = epochs
        self.negative = negative
        self.min_count = min_count
        self.alpha = alpha
        self.window_subsample = window_subsample
        self.random_state = random_state
        self.tokenizer = tokenizer
        self.vocab_: dict[str, int] | None = None
        self.word_vectors_: np.ndarray | None = None
        self.doc_vectors_: np.ndarray | None = None
        self._noise_cdf: np.ndarray | None = None

    def _tokenize(self, doc: str) -> list[str]:
        tok = self.tokenizer or tokenize
        return tok(doc)

    def _doc_word_ids(self, doc: str) -> np.ndarray:
        ids = [self.vocab_[w] for w in self._tokenize(doc) if w in self.vocab_]
        return np.asarray(ids, dtype=np.int64)

    def _sample_noise(self, rng: np.random.Generator, size: int) -> np.ndarray:
        u = rng.random(size)
        return np.searchsorted(self._noise_cdf, u)

    def fit(self, documents) -> "Doc2Vec":
        """Train document and word vectors on the corpus."""
        docs = list(documents)
        if not docs:
            raise ValueError("cannot fit on an empty corpus")
        rng = ensure_rng(self.random_state)
        counts: dict[str, int] = {}
        tokenized = []
        for doc in docs:
            toks = self._tokenize(doc)
            tokenized.append(toks)
            for w in toks:
                counts[w] = counts.get(w, 0) + 1
        vocab_words = sorted(w for w, c in counts.items() if c >= self.min_count)
        if not vocab_words:
            # Degenerate corpus: fall back to keeping everything.
            vocab_words = sorted(counts)
        self.vocab_ = {w: i for i, w in enumerate(vocab_words)}
        V = len(vocab_words)
        D = len(docs)
        k = self.vector_size

        freq = np.array([counts[w] for w in vocab_words], dtype=np.float64) ** 0.75
        self._noise_cdf = np.cumsum(freq / freq.sum())

        self.word_vectors_ = (rng.random((V, k)) - 0.5) / k
        self.doc_vectors_ = (rng.random((D, k)) - 0.5) / k

        word_ids = [
            np.asarray([self.vocab_[w] for w in toks if w in self.vocab_], dtype=np.int64)
            for toks in tokenized
        ]
        order = np.arange(D)
        for epoch in range(self.epochs):
            lr = self.alpha * max(0.1, 1.0 - epoch / max(1, self.epochs))
            rng.shuffle(order)
            for d in order:
                ids = word_ids[d]
                if len(ids) == 0:
                    continue
                if len(ids) > self.window_subsample:
                    ids = rng.choice(ids, size=self.window_subsample, replace=False)
                self._update_doc(d, ids, lr, rng)
        return self

    def _update_doc(self, d: int, ids: np.ndarray, lr: float, rng) -> None:
        """One negative-sampling SGD step for document ``d`` on words ``ids``."""
        dv = self.doc_vectors_[d]
        n_pos = len(ids)
        neg = self._sample_noise(rng, n_pos * self.negative)
        targets = np.concatenate([ids, neg])
        labels = np.concatenate([np.ones(n_pos), np.zeros(len(neg))])
        W = self.word_vectors_[targets]
        scores = _sigmoid(W @ dv)
        err = (scores - labels)[:, None]  # (m, 1)
        grad_doc = (err * W).sum(axis=0)
        self.word_vectors_[targets] -= lr * err * dv[None, :]
        dv -= lr * grad_doc

    def infer_vector(
        self, document: str, *, epochs: int = 25, random_state=None
    ) -> np.ndarray:
        """Embed an unseen document against the frozen word matrix.

        The noise sampling and word-vector gathers for every epoch are
        hoisted out of the SGD loop: one generator call consumes the exact
        same random stream as the per-epoch calls did, and a single fancy
        index replaces per-epoch gathers, so the returned vector is
        bit-identical to the naive loop at a fraction of the overhead.
        """
        check_fitted(self, "word_vectors_")
        rng = ensure_rng(
            random_state if random_state is not None else self.random_state
        )
        ids = self._doc_word_ids(document)
        dv = (rng.random(self.vector_size) - 0.5) / self.vector_size
        if len(ids) == 0:
            return dv
        n_pos = len(ids)
        n_neg = n_pos * self.negative
        neg = np.searchsorted(
            self._noise_cdf, rng.random(epochs * n_neg).reshape(epochs, n_neg)
        )
        targets = np.concatenate(
            [np.broadcast_to(ids, (epochs, n_pos)), neg], axis=1
        )
        W_all = self.word_vectors_[targets]  # (epochs, n_pos + n_neg, k)
        labels = np.concatenate([np.ones(n_pos), np.zeros(n_neg)])
        for epoch in range(epochs):
            lr = self.alpha * max(0.1, 1.0 - epoch / epochs)
            W = W_all[epoch]
            scores = _sigmoid(W @ dv)
            err = (scores - labels)[:, None]
            dv -= lr * (err * W).sum(axis=0)
        return dv

    def transform(
        self,
        documents,
        *,
        epochs: int = 25,
        random_state=None,
        block_elems: int = 8_000_000,
        workers: int | None = None,
    ) -> np.ndarray:
        """Infer vectors for a batch of documents with one blocked kernel.

        Bit-identical to ``np.stack([self.infer_vector(d) for d in docs])``:
        every document keeps its own RNG stream (a fresh generator per
        document for seed-style ``random_state``, sequential draws in
        document order for a shared generator), and all noise draws and
        word-vector gathers are hoisted into ``(docs, epochs, m, k)``
        blocks.  Documents are bucketed by their in-vocabulary length so
        every stacked matmul slice has exactly the reference gemv's shape —
        stacked ``np.matmul`` equals its 2-D slices bit for bit, whereas
        zero-padding rows would shift BLAS row blocking and flip low bits.

        Parameters
        ----------
        epochs / random_state:
            As in :meth:`infer_vector`.
        block_elems:
            Soft cap on a bucket's gathered block size (floats) — larger
            buckets are processed in document-order chunks.
        workers:
            Process count for the SGD phase (``None`` resolves through
            ``REPRO_NUM_WORKERS``, then 1).  All RNG draws happen first on
            the parent in document order (preserving any shared generator's
            stream), then the per-bucket chunks — each an independent
            stacked kernel — are distributed across forked workers that
            write their document vectors into a shared-memory output
            matrix.  Bit-identical to serial for every worker count.
        """
        check_fitted(self, "word_vectors_")
        docs = list(documents)
        D = len(docs)
        k = self.vector_size
        out = np.empty((D, k))
        if D == 0:
            return out
        seed = random_state if random_state is not None else self.random_state
        shared = isinstance(seed, np.random.Generator)

        # ---- per-document draws, in document order ----------------------
        # (Draw order is what preserves a shared generator's stream.)
        by_m: dict[int, list[int]] = {}
        negs: list[np.ndarray | None] = []
        ids_list: list[np.ndarray] = []
        for di, doc in enumerate(docs):
            rng = seed if shared else ensure_rng(seed)
            ids = self._doc_word_ids(doc)
            ids_list.append(ids)
            out[di] = (rng.random(k) - 0.5) / k
            if len(ids):
                n_neg = len(ids) * self.negative
                negs.append(
                    np.searchsorted(
                        self._noise_cdf,
                        rng.random(epochs * n_neg).reshape(epochs, n_neg),
                    )
                )
                by_m.setdefault(len(ids), []).append(di)
            else:
                negs.append(None)  # empty/OOV doc: keep the init vector

        # ---- bucketed, blocked SGD --------------------------------------
        # The chunk list is identical for every worker count; each chunk is
        # an independent stacked kernel over its own documents, so running
        # chunks on forked workers (writing into a shared-memory ``out``)
        # cannot change a single bit of any document's vector.
        tasks: list[tuple[int, list[int]]] = []
        for n_pos, members in by_m.items():
            m = n_pos * (1 + self.negative)
            chunk = max(1, block_elems // max(1, epochs * m * k))
            for lo in range(0, len(members), chunk):
                tasks.append((n_pos, members[lo : lo + chunk]))

        def _sgd_chunk(task) -> int:
            n_pos, group = task
            m = n_pos * (1 + self.negative)
            L = len(group)
            targets = np.empty((L, epochs, m), dtype=np.int64)
            for row, di in enumerate(group):
                targets[row, :, :n_pos] = ids_list[di]
                targets[row, :, n_pos:] = negs[di]
            W_all = self.word_vectors_[targets]  # (L, epochs, m, k)
            labels = np.concatenate(
                [np.ones(n_pos), np.zeros(n_pos * self.negative)]
            )
            dv = out[group]
            for epoch in range(epochs):
                lr = self.alpha * max(0.1, 1.0 - epoch / epochs)
                W = W_all[:, epoch]
                scores = _sigmoid(np.matmul(W, dv[:, :, None])[:, :, 0])
                err = scores - labels
                dv -= lr * (err[:, :, None] * W).sum(axis=1)
            out[group] = dv
            return L

        n_workers = resolve_workers(workers)
        if n_workers > 1 and len(tasks) > 1 and D >= max(8, 2 * n_workers):
            arena = ShmArena(ShmArena.nbytes_for(((D, k), np.float64)))
            try:
                shared = arena.alloc((D, k))
                shared[...] = out
                out = shared  # _sgd_chunk reads/writes through the closure
                with WorkerPool(
                    n_workers, {"sgd": _sgd_chunk}, name="repro-doc2vec"
                ) as pool:
                    pool.map("sgd", tasks)
                return shared.copy()
            finally:
                arena.release()
        for task in tasks:
            _sgd_chunk(task)
        return out

    def word_vector(self, word: str) -> np.ndarray:
        """Vector of an in-vocabulary word (zeros when OOV)."""
        check_fitted(self, "word_vectors_")
        idx = self.vocab_.get(word)
        if idx is None:
            return np.zeros(self.vector_size)
        return self.word_vectors_[idx].copy()

    # -------------------------------------------------------- serialization
    def to_state(self) -> dict:
        """Fitted state as a plain dict (ndarray leaves allowed)."""
        check_fitted(self, "word_vectors_")
        if self.tokenizer is not None:
            raise ValueError("cannot serialize a Doc2Vec with a custom tokenizer")
        return {
            "params": {
                "vector_size": self.vector_size,
                "epochs": self.epochs,
                "negative": self.negative,
                "min_count": self.min_count,
                "alpha": self.alpha,
                "window_subsample": self.window_subsample,
            },
            "vocab": sorted(self.vocab_, key=self.vocab_.get),
            "word_vectors": self.word_vectors_.copy(),
            "doc_vectors": self.doc_vectors_.copy(),
            "noise_cdf": self._noise_cdf.copy(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "Doc2Vec":
        """Rebuild a fitted model from :meth:`to_state` output.

        ``infer_vector`` on the restored model reproduces the original
        bit-for-bit when called with an explicit ``random_state``.
        """
        model = cls(**state["params"])
        model.vocab_ = {w: i for i, w in enumerate(state["vocab"])}
        model.word_vectors_ = np.asarray(state["word_vectors"], dtype=np.float64)
        model.doc_vectors_ = np.asarray(state["doc_vectors"], dtype=np.float64)
        model._noise_cdf = np.asarray(state["noise_cdf"], dtype=np.float64)
        if model.word_vectors_.shape != (len(model.vocab_), model.vector_size):
            raise ValueError(
                f"word_vectors shape {model.word_vectors_.shape} inconsistent with "
                f"vocab size {len(model.vocab_)} x vector_size {model.vector_size}"
            )
        return model

"""Vector similarity helpers."""

from __future__ import annotations

import numpy as np


def cosine_similarity(a: np.ndarray, b: np.ndarray) -> float:
    """Cosine similarity of two 1-d vectors; 0.0 when either is zero."""
    a = np.asarray(a, dtype=np.float64)
    b = np.asarray(b, dtype=np.float64)
    if a.shape != b.shape:
        raise ValueError(f"shape mismatch: {a.shape} vs {b.shape}")
    na = np.linalg.norm(a)
    nb = np.linalg.norm(b)
    if na == 0.0 or nb == 0.0:
        return 0.0
    return float(np.dot(a, b) / (na * nb))


def pairwise_cosine(A: np.ndarray, B: np.ndarray) -> np.ndarray:
    """``(n, m)`` cosine similarities between rows of ``A`` and ``B``."""
    A = np.asarray(A, dtype=np.float64)
    B = np.asarray(B, dtype=np.float64)
    if A.ndim != 2 or B.ndim != 2 or A.shape[1] != B.shape[1]:
        raise ValueError(f"incompatible shapes: {A.shape} vs {B.shape}")
    na = np.linalg.norm(A, axis=1)
    nb = np.linalg.norm(B, axis=1)
    na[na == 0.0] = 1.0
    nb[nb == 0.0] = 1.0
    return (A @ B.T) / np.outer(na, nb)

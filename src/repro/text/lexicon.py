"""Hate lexicon features (paper Sec. IV-A and VI-B).

The paper uses a manually pruned lexicon of 209 Hindi/English words and
phrases from Kapoor et al. [17].  The full list is not published; we include
the example terms the paper itself cites plus a closed set of synthetic slur
tokens that the synthetic tweet generator injects into hateful tweets, so
the lexicon-frequency feature exercises the identical code path.
"""

from __future__ import annotations

import numpy as np

from repro.text.tokenize import tokenize

# Terms quoted in the paper (Sec. VI-B) as examples of its lexicon.
PAPER_EXAMPLE_TERMS = (
    "harami",
    "jhalla",
    "haathi",
    "mulla",
    "bakar",
    "aktakvadi",
    "jamai",
)

# Synthetic slur tokens emitted by repro.data's tweet generator.  They are
# deliberately non-words so no real slur list needs shipping.
SYNTHETIC_TERMS = tuple(f"slur{i}" for i in range(40))


class HateLexicon:
    """A closed vocabulary of hate-signal terms with counting helpers."""

    def __init__(self, terms=None):
        terms = tuple(terms) if terms is not None else PAPER_EXAMPLE_TERMS + SYNTHETIC_TERMS
        if not terms:
            raise ValueError("lexicon must contain at least one term")
        self.terms = tuple(dict.fromkeys(t.lower() for t in terms))  # dedupe, keep order
        self._index = {t: i for i, t in enumerate(self.terms)}

    def __len__(self) -> int:
        return len(self.terms)

    def __contains__(self, term: str) -> bool:
        return term.lower() in self._index

    def vector(self, text: str) -> np.ndarray:
        """Frequency vector HL over the lexicon for one text (paper Sec. IV-A)."""
        v = np.zeros(len(self.terms))
        for tok in tokenize(text):
            idx = self._index.get(tok)
            if idx is not None:
                v[idx] += 1.0
        return v

    def vector_over(self, texts) -> np.ndarray:
        """Aggregate frequency vector over an iterable of texts."""
        v = np.zeros(len(self.terms))
        for text in texts:
            v += self.vector(text)
        return v

    def count(self, text: str) -> int:
        """Total lexicon hits in one text."""
        return int(self.vector(text).sum())

    def contains_hate_term(self, text: str) -> bool:
        """True when any lexicon term occurs in the text."""
        return self.count(text) > 0


def default_hate_lexicon() -> HateLexicon:
    """The library-wide default lexicon (paper terms + synthetic terms)."""
    return HateLexicon()

"""TF-IDF vectorisation with idf-ranked vocabulary truncation.

The paper (Sec. IV-A) uses "unigram and bigram features weighted by tf-idf
... keep the top 300 features sorted by their idf values"; ``max_features``
with ``rank_by='idf'`` reproduces exactly that selection rule, while
``rank_by='count'`` gives the more common frequency-ranked truncation.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, TransformerMixin
from repro.parallel import WorkerPool, resolve_workers
from repro.text.tokenize import ngrams, tokenize
from repro.utils.validation import check_fitted


class TfidfVectorizer(BaseEstimator, TransformerMixin):
    """Convert raw documents to a dense TF-IDF matrix.

    Parameters
    ----------
    ngram_range:
        ``(lo, hi)`` inclusive n-gram sizes; the paper uses ``(1, 2)``.
    max_features:
        Vocabulary cap; selection order is controlled by ``rank_by``.
    rank_by:
        ``'idf'`` (paper's rule: rarest terms first, document frequency > 1
        required) or ``'count'`` (most frequent first).
    min_df:
        Minimum document frequency for a term to enter the vocabulary.
    sublinear_tf:
        Use ``1 + log(tf)`` instead of raw counts.
    n_workers:
        Process count for corpus counting in :meth:`fit` (``None`` resolves
        through ``REPRO_NUM_WORKERS``, then 1).  Shard counts are merged in
        shard order, so the fitted vocabulary and idf vector are identical
        for every worker count.  Runtime knob — excluded from
        :meth:`to_state`.
    """

    def __init__(
        self,
        ngram_range: tuple[int, int] = (1, 1),
        max_features: int | None = None,
        rank_by: str = "count",
        min_df: int = 1,
        sublinear_tf: bool = False,
        tokenizer=None,
        n_workers: int | None = None,
    ):
        lo, hi = ngram_range
        if lo < 1 or hi < lo:
            raise ValueError(f"invalid ngram_range: {ngram_range}")
        if rank_by not in ("idf", "count"):
            raise ValueError(f"rank_by must be 'idf' or 'count', got {rank_by!r}")
        if min_df < 1:
            raise ValueError(f"min_df must be >= 1, got {min_df}")
        self.ngram_range = ngram_range
        self.max_features = max_features
        self.rank_by = rank_by
        self.min_df = min_df
        self.sublinear_tf = sublinear_tf
        self.tokenizer = tokenizer
        self.n_workers = n_workers
        self.vocabulary_: dict[str, int] | None = None
        self.idf_: np.ndarray | None = None

    def _analyze(self, doc: str) -> list[str]:
        tok = self.tokenizer or tokenize
        tokens = tok(doc)
        lo, hi = self.ngram_range
        feats: list[str] = []
        for n in range(lo, hi + 1):
            feats.extend(ngrams(tokens, n))
        return feats

    def fit(self, documents, y=None) -> "TfidfVectorizer":
        docs = list(documents)
        if not docs:
            raise ValueError("cannot fit on an empty corpus")
        df, cf = self._corpus_counts(docs)
        n_docs = len(docs)
        terms = [t for t, d in df.items() if d >= self.min_df]
        if self.max_features is not None and len(terms) > self.max_features:
            if self.rank_by == "idf":
                # Rarest first, but require df >= 2 when possible so the
                # vocabulary is not dominated by hapax legomena.
                robust = [t for t in terms if df[t] >= 2] or terms
                robust.sort(key=lambda t: (df[t], t))
                terms = robust[: self.max_features]
            else:
                terms.sort(key=lambda t: (-cf[t], t))
                terms = terms[: self.max_features]
        terms.sort()
        self.vocabulary_ = {t: i for i, t in enumerate(terms)}
        dfs = np.array([df[t] for t in terms], dtype=np.float64)
        # Smoothed idf, matching the scikit-learn formula.
        self.idf_ = np.log((1.0 + n_docs) / (1.0 + dfs)) + 1.0
        return self

    def _corpus_counts(self, docs: list[str]) -> tuple[dict, dict]:
        """(document frequency, collection frequency) over the corpus.

        With ``n_workers`` > 1 the corpus is split into contiguous shards
        counted in parallel; integer shard counts merged in shard order are
        exactly the serial counts, so the fitted state cannot differ.
        """

        def _count(shard) -> tuple[dict, dict]:
            sdf: dict[str, int] = {}
            scf: dict[str, int] = {}
            for doc in shard:
                feats = self._analyze(doc)
                for term in feats:
                    scf[term] = scf.get(term, 0) + 1
                for term in set(feats):
                    sdf[term] = sdf.get(term, 0) + 1
            return sdf, scf

        n = resolve_workers(self.n_workers)
        if n <= 1 or len(docs) < max(64, 8 * n):
            return _count(docs)
        cuts = np.linspace(0, len(docs), n + 1).astype(np.int64)
        bounds = [(int(lo), int(hi)) for lo, hi in zip(cuts[:-1], cuts[1:]) if hi > lo]
        with WorkerPool(
            len(bounds), {"count": lambda b: _count(docs[b[0] : b[1]])},
            name="repro-tfidf",
        ) as pool:
            parts = pool.map("count", bounds)
        df: dict[str, int] = {}
        cf: dict[str, int] = {}
        for sdf, scf in parts:
            for term, c in sdf.items():
                df[term] = df.get(term, 0) + c
            for term, c in scf.items():
                cf[term] = cf.get(term, 0) + c
        return df, cf

    def transform(self, documents) -> np.ndarray:
        check_fitted(self, "vocabulary_")
        docs = list(documents)
        X = np.zeros((len(docs), len(self.vocabulary_)))
        for i, doc in enumerate(docs):
            for term in self._analyze(doc):
                j = self.vocabulary_.get(term)
                if j is not None:
                    X[i, j] += 1.0
        if self.sublinear_tf:
            nz = X > 0
            X[nz] = 1.0 + np.log(X[nz])
        X *= self.idf_
        norms = np.linalg.norm(X, axis=1)
        norms[norms == 0.0] = 1.0
        return X / norms[:, None]

    def get_feature_names(self) -> list[str]:
        """Vocabulary terms in column order."""
        check_fitted(self, "vocabulary_")
        names = [""] * len(self.vocabulary_)
        for term, idx in self.vocabulary_.items():
            names[idx] = term
        return names

    # -------------------------------------------------------- serialization
    def to_state(self) -> dict:
        """Fitted state as a plain dict (ndarray leaves allowed)."""
        check_fitted(self, "vocabulary_")
        if self.tokenizer is not None:
            raise ValueError("cannot serialize a vectorizer with a custom tokenizer")
        return {
            "params": {
                "ngram_range": list(self.ngram_range),
                "max_features": self.max_features,
                "rank_by": self.rank_by,
                "min_df": self.min_df,
                "sublinear_tf": self.sublinear_tf,
            },
            "vocabulary": self.get_feature_names(),
            "idf": self.idf_.copy(),
        }

    @classmethod
    def from_state(cls, state: dict) -> "TfidfVectorizer":
        """Rebuild a fitted vectorizer from :meth:`to_state` output."""
        params = dict(state["params"])
        params["ngram_range"] = tuple(params["ngram_range"])
        vec = cls(**params)
        vec.vocabulary_ = {t: i for i, t in enumerate(state["vocabulary"])}
        vec.idf_ = np.asarray(state["idf"], dtype=np.float64)
        if len(vec.idf_) != len(vec.vocabulary_):
            raise ValueError(
                f"idf length {len(vec.idf_)} != vocabulary size {len(vec.vocabulary_)}"
            )
        return vec

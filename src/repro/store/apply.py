"""Applying stored events to an in-memory world, idempotently.

:func:`apply_events_to_world` is the single place world state mutates
after generation.  It is watermark-guarded: each world remembers the
highest sequence number already applied (``world._store_watermark``), so
predictors sharing one world object can each hand it the same event
batch without double-applying.  Mutations are append-only and ordered by
sequence number, which is what makes replay-from-empty reproduce the
exact walk a cold build would have taken.

:func:`validate_event_for_world` is the semantic gate the ingest route
runs per item *before* anything reaches the log — schema-valid events
that reference unknown users/tweets/hashtags are rejected there with a
per-item error instead of poisoning the durable log.
"""

from __future__ import annotations

import math

from repro.data.schema import Cascade, HashtagSpec, Retweet, Tweet
from repro.store.events import Event, StoredEvent

__all__ = ["apply_events_to_world", "validate_event_for_world"]


def _cascade_index(world) -> dict:
    """Root tweet id -> Cascade, cached on the world and kept fresh here."""
    index = getattr(world, "_store_cascade_index", None)
    if index is None or len(index) != len(world.cascades):
        index = {c.root.tweet_id: c for c in world.cascades}
        world._store_cascade_index = index
    return index


def validate_event_for_world(world, event: Event) -> str | None:
    """Reason one event cannot apply to this world, or None when it can.

    The check is against *current* state — inside a batch, earlier items
    take effect before later ones are validated (a batch may register a
    hashtag and tweet with it).
    """
    kind = event.kind
    if kind == "tweet":
        if event.user_id not in world.users:
            return f"unknown user_id {event.user_id}"
        if event.hashtag not in world.theme_of:
            return (
                f"unknown hashtag {event.hashtag!r} "
                f"(register it with a hashtag event first)"
            )
        if not math.isfinite(event.timestamp) or event.timestamp < 0.0:
            return "timestamp must be finite and >= 0"
        if event.tweet_id in _cascade_index(world):
            return f"tweet_id {event.tweet_id} already exists"
    elif kind == "retweet":
        if event.user_id not in world.users:
            return f"unknown user_id {event.user_id}"
        cascade = _cascade_index(world).get(event.tweet_id)
        if cascade is None:
            return f"unknown cascade root tweet_id {event.tweet_id}"
        if not math.isfinite(event.timestamp) or event.timestamp < 0.0:
            return "timestamp must be finite and >= 0"
        if any(rt.user_id == event.user_id for rt in cascade.retweets):
            return (
                f"user {event.user_id} already retweeted "
                f"cascade {event.tweet_id}"
            )
    elif kind == "follow":
        if event.followee not in world.users:
            return f"unknown followee {event.followee}"
        if event.follower not in world.users:
            return f"unknown follower {event.follower}"
        if event.followee == event.follower:
            return "a user cannot follow themself"
        if world.network.follows(event.follower, event.followee):
            return (
                f"user {event.follower} already follows {event.followee}"
            )
    elif kind == "hashtag":
        if event.tag in world.theme_of:
            return f"hashtag {event.tag!r} already registered"
        if not event.tag:
            return "tag must be non-empty"
    else:  # pragma: no cover - event_from_wire rejects unknown kinds
        return f"unknown event kind {kind!r}"
    return None


def _apply_one(world, event: Event) -> None:
    kind = event.kind
    if kind == "tweet":
        tweet = Tweet(
            tweet_id=event.tweet_id,
            user_id=event.user_id,
            hashtag=event.hashtag,
            text=event.text,
            timestamp=float(event.timestamp),
            is_hate=bool(event.is_hate),
        )
        cascade = Cascade(root=tweet)
        world.tweets.append(tweet)
        world.cascades.append(cascade)
        _cascade_index(world)[tweet.tweet_id] = cascade
    elif kind == "retweet":
        cascade = _cascade_index(world).get(event.tweet_id)
        if cascade is not None:
            cascade.retweets.append(
                Retweet(user_id=event.user_id, timestamp=float(event.timestamp))
            )
    elif kind == "follow":
        # Frozen networks route this into the CSR overlay; an edge that
        # already exists is a no-op (add_follow returns False).
        world.network.add_follow(event.followee, event.follower)
    elif kind == "hashtag":
        if event.tag not in world.theme_of:
            world.catalog.append(
                HashtagSpec(
                    tag=event.tag,
                    n_tweets=0,
                    avg_retweets=0.0,
                    n_users=0,
                    pct_hate=0.0,
                    theme=event.theme,
                )
            )
            world.theme_of[event.tag] = event.theme


def apply_events_to_world(world, stored_events) -> list[StoredEvent]:
    """Apply stored events past the world's watermark; returns those applied.

    Safe to call repeatedly with overlapping batches: events at or below
    ``world._store_watermark`` are skipped, so N predictors sharing one
    world object can each forward the same ingest batch.
    """
    watermark = getattr(world, "_store_watermark", 0)
    applied: list[StoredEvent] = []
    for stored in stored_events:
        if stored.seq <= watermark:
            continue
        _apply_one(world, stored.event)
        watermark = stored.seq
        applied.append(stored)
    world._store_watermark = watermark
    return applied

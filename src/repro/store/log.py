"""Crash-safe append-only segment-file event log.

Layout: ``<root>/segment-000001.log``, ``segment-000002.log``, ... where
each segment is a sequence of records::

    [4-byte LE length][4-byte LE CRC32 of payload][payload bytes]

and the payload is the canonical JSON of ``{"seq", "hash", "event"}``.
Appends go to the last segment; a new segment starts when the current
one exceeds ``segment_max_bytes`` (the directory is fsynced when a
segment is created, matching the registry's fsync-before-rename
contract).  Every acked append has been flushed *and* fsynced — a
SIGKILL mid-append can only leave a torn tail, never lose an acked
record.

Reopen replays every segment to rebuild the in-memory state (dedup map,
per-entity indexes, last sequence number).  A torn record at the very
end of the *last* segment is the expected crash artefact and is
truncated away; a corrupt record anywhere else — including one with
intact records after it, which no crash of the fsync-per-append writer
can produce — is real damage and surfaces as a typed
:class:`StoreIOError`.

Chaos points: ``store.append`` fires before any bytes are written (the
append fails cleanly); ``store.fsync`` fires after the write, in which
case the tail is rolled back (ftruncate) before the typed error
propagates so in-memory and on-disk state stay in step.
"""

from __future__ import annotations

import json
import os
import struct
import threading
import zlib

from repro import chaos
from repro.obs.metrics import REGISTRY
from repro.store.events import Event, StoredEvent, event_from_wire, event_hash

__all__ = ["EventLog", "StoreIOError"]

_HEADER = struct.Struct("<II")  # (payload length, payload crc32)

#: Events accepted into the log, by kind.
_EVENTS_TOTAL = REGISTRY.counter(
    "repro_store_events_total",
    "Events appended to the durable event log",
    labels=("kind",),
)
#: Appends answered from the content-hash dedup map (no new record).
_DEDUP_HITS = REGISTRY.counter(
    "repro_store_dedup_hits_total",
    "Appends deduplicated by content hash (idempotent resubmissions)",
)


class StoreIOError(OSError):
    """Typed failure of the event log's disk layer (surface as 503)."""

    code = "store_io"

    def __init__(self, message: str, *, path: str | None = None):
        super().__init__(message)
        self.path = path


def _segment_name(index: int) -> str:
    return f"segment-{index:06d}.log"


def _entity_keys(event: Event):
    """Index keys ``(entity_type, id)`` one event should appear under."""
    kind = event.kind
    if kind == "tweet":
        yield ("user", event.user_id)
        yield ("tweet", event.tweet_id)
        yield ("tag", event.hashtag)
    elif kind == "retweet":
        yield ("user", event.user_id)
        yield ("tweet", event.tweet_id)
    elif kind == "follow":
        yield ("user", event.followee)
        yield ("user", event.follower)
    elif kind == "hashtag":
        yield ("tag", event.tag)


class EventLog:
    """Durable append-only log with content-hash dedup and replay.

    Thread-safe: appends serialise on an internal lock (the serving
    engine calls ``append`` from request handlers while ``events`` may
    stream for replay).
    """

    def __init__(self, root: str, *, segment_max_bytes: int = 4 << 20,
                 fsync: bool = True):
        self.root = root
        self.segment_max_bytes = int(segment_max_bytes)
        self._fsync_enabled = bool(fsync)
        self._lock = threading.RLock()
        self._records: list[StoredEvent] = []
        self._by_hash: dict[str, int] = {}        # hash -> seq
        self._entity_index: dict[tuple, list[int]] = {}
        self._dedup_hits = 0
        self._truncated_tail_bytes = 0
        self._fh = None
        self._segment_index = 0
        self._segment_bytes = 0
        try:
            os.makedirs(self.root, exist_ok=True)
            self._replay_from_disk()
            self._open_tail()
        except StoreIOError:
            raise
        except OSError as exc:
            raise StoreIOError(
                f"could not open event log at {self.root}: {exc}",
                path=self.root,
            ) from exc

    # ---------------------------------------------------------------- open
    def _segments(self) -> list[int]:
        out = []
        for name in os.listdir(self.root):
            if name.startswith("segment-") and name.endswith(".log"):
                try:
                    out.append(int(name[len("segment-"):-len(".log")]))
                except ValueError:
                    continue
        return sorted(out)

    def _replay_from_disk(self) -> None:
        segments = self._segments()
        for pos, index in enumerate(segments):
            path = os.path.join(self.root, _segment_name(index))
            last = pos == len(segments) - 1
            good = self._scan_segment(path, is_last=last)
            if last:
                self._segment_index = index
                self._segment_bytes = good
        if not segments:
            self._segment_index = 1

    def _scan_segment(self, path: str, *, is_last: bool) -> int:
        """Replay one segment; returns the byte offset of the good tail."""
        with open(path, "rb") as fh:
            data = fh.read()
        off = 0
        n = len(data)
        while off < n:
            rest = n - off
            # A crash can only tear the *physically final* record: every
            # append fsyncs before acking, so nothing is ever written after
            # an unsynced record.  An incomplete header/payload, or a CRC
            # mismatch on the final record (partial page flush), is the
            # crash artefact; a CRC mismatch with valid data *after* it is
            # damage no crash could produce.
            torn = rest < _HEADER.size
            if not torn:
                length, crc = _HEADER.unpack_from(data, off)
                payload = data[off + _HEADER.size: off + _HEADER.size + length]
                torn = len(payload) < length or (
                    zlib.crc32(payload) != crc
                    and off + _HEADER.size + length == n
                )
                if not torn and zlib.crc32(payload) != crc:
                    raise StoreIOError(
                        f"corrupt record at byte {off} of {path} with "
                        f"intact records after it", path=path,
                    )
            if torn:
                if not is_last:
                    raise StoreIOError(
                        f"corrupt record at byte {off} of non-final "
                        f"segment {path}", path=path,
                    )
                # Crash artefact: drop the torn tail of the last segment.
                self._truncated_tail_bytes = n - off
                with open(path, "r+b") as fh:
                    fh.truncate(off)
                    fh.flush()
                    self._fsync(fh, path)
                return off
            try:
                rec = json.loads(payload)
                event = event_from_wire(rec["event"])
                stored = StoredEvent(int(rec["seq"]), str(rec["hash"]), event)
            except (ValueError, KeyError, TypeError) as exc:
                raise StoreIOError(
                    f"undecodable record at byte {off} of {path}: {exc}",
                    path=path,
                ) from exc
            if stored.seq != len(self._records) + 1:
                raise StoreIOError(
                    f"sequence gap in {path}: record {stored.seq} after "
                    f"{len(self._records)} events", path=path,
                )
            self._admit(stored)
            off += _HEADER.size + length
        return off

    def _admit(self, stored: StoredEvent) -> None:
        """Record one stored event in the in-memory indexes."""
        self._records.append(stored)
        self._by_hash[stored.hash] = stored.seq
        for key in _entity_keys(stored.event):
            self._entity_index.setdefault(key, []).append(stored.seq)

    def _open_tail(self) -> None:
        path = os.path.join(self.root, _segment_name(self._segment_index))
        existed = os.path.exists(path)
        self._fh = open(path, "ab")
        if not existed:
            self._fsync_dir()

    # -------------------------------------------------------------- append
    def _fsync(self, fh, path: str) -> None:
        if not self._fsync_enabled:
            return
        if chaos.should_fire("store.fsync"):
            err = chaos.io_error("store.fsync", path)
            raise StoreIOError(str(err), path=path) from err
        os.fsync(fh.fileno())

    def _fsync_dir(self) -> None:
        if not self._fsync_enabled:
            return
        fd = os.open(self.root, os.O_RDONLY)
        try:
            os.fsync(fd)
        finally:
            os.close(fd)

    def _roll_segment(self) -> None:
        self._fh.close()
        self._segment_index += 1
        self._segment_bytes = 0
        self._open_tail()

    def append(self, event: Event) -> tuple[int, str, bool]:
        """Durably append one event; returns ``(seq, hash, deduped)``.

        A resubmission (same content hash) is a no-op returning the
        original sequence number with ``deduped=True`` — the property
        that makes ingest idempotent and therefore retryable.
        """
        h = event_hash(event)
        with self._lock:
            seq = self._by_hash.get(h)
            if seq is not None:
                self._dedup_hits += 1
                _DEDUP_HITS.inc()
                return seq, h, True
            if self._fh is None:
                raise StoreIOError("event log is closed", path=self.root)
            if chaos.should_fire("store.append"):
                # Fires before any bytes hit disk: clean, typed failure.
                raise StoreIOError(
                    f"chaos: injected append failure "
                    f"[chaos point store.append] at {self.root}",
                    path=self.root,
                )
            if self._segment_bytes >= self.segment_max_bytes:
                self._roll_segment()
            seq = len(self._records) + 1
            stored = StoredEvent(seq, h, event)
            payload = json.dumps(
                stored.to_wire(), sort_keys=True, separators=(",", ":")
            ).encode("utf-8")
            record = _HEADER.pack(len(payload), zlib.crc32(payload)) + payload
            path = os.path.join(self.root, _segment_name(self._segment_index))
            start = self._segment_bytes
            try:
                self._fh.write(record)
                self._fh.flush()
                self._fsync(self._fh, path)
            except OSError as exc:
                # Roll the tail back so disk matches memory; if even the
                # rollback fails the next reopen's torn-tail scan fixes it.
                try:
                    self._fh.truncate(start)
                    self._fh.flush()
                except OSError:
                    pass
                if isinstance(exc, StoreIOError):
                    raise
                raise StoreIOError(
                    f"append to {path} failed: {exc}", path=path
                ) from exc
            self._segment_bytes = start + len(record)
            self._admit(stored)
            _EVENTS_TOTAL.inc(kind=event.kind)
            return seq, h, False

    # --------------------------------------------------------------- query
    @property
    def last_seq(self) -> int:
        """Sequence number of the newest event (0 when empty)."""
        with self._lock:
            return len(self._records)

    def events(self, start_seq: int = 0) -> list[StoredEvent]:
        """Stored events with ``seq > start_seq``, in sequence order."""
        with self._lock:
            return self._records[max(0, int(start_seq)):]

    def get(self, seq: int) -> StoredEvent:
        with self._lock:
            if not 1 <= seq <= len(self._records):
                raise KeyError(seq)
            return self._records[seq - 1]

    def seq_for_hash(self, h: str) -> int | None:
        with self._lock:
            return self._by_hash.get(h)

    def entity_events(self, entity_type: str, entity_id) -> list[StoredEvent]:
        """Events touching one entity (``"user"``/``"tweet"``/``"tag"``)."""
        with self._lock:
            seqs = self._entity_index.get((entity_type, entity_id), ())
            return [self._records[s - 1] for s in seqs]

    def stats(self) -> dict:
        """JSON-ready counters for ``/v1/metrics``."""
        with self._lock:
            kinds: dict[str, int] = {}
            for rec in self._records:
                kinds[rec.event.kind] = kinds.get(rec.event.kind, 0) + 1
            return {
                "events": len(self._records),
                "last_seq": len(self._records),
                "by_kind": kinds,
                "dedup_hits": self._dedup_hits,
                "segments": self._segment_index,
                "segment_bytes": self._segment_bytes,
                "truncated_tail_bytes": self._truncated_tail_bytes,
                "indexed_entities": len(self._entity_index),
            }

    # ----------------------------------------------------------- lifecycle
    def sync(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.flush()
                self._fsync(
                    self._fh,
                    os.path.join(self.root, _segment_name(self._segment_index)),
                )

    def close(self) -> None:
        with self._lock:
            if self._fh is not None:
                self._fh.close()
                self._fh = None

    def __enter__(self) -> "EventLog":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

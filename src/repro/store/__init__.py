"""``repro.store`` — durable append-only event log + online ingest.

The subsystem that turns the repo from "reproduce then serve a snapshot"
into a live system: events observed online (tweets, retweets, follows,
hashtag registrations) are appended to a crash-safe segment-file log
(:class:`EventLog`), surgically applied to the in-memory world and
feature caches (:func:`apply_events_to_world`,
``FeatureStore.apply_events``), and replayed past the bundle watermark
on engine restart so ingest survives crashes.

Guarantees:

- **Durability** — an acked append has been fsynced; a SIGKILL mid-append
  leaves at most a torn tail, which reopen truncates (acked events are
  never behind the torn region).
- **Dedup idempotency** — events are keyed by a canonical content hash;
  resubmitting an event returns the original sequence number and mutates
  nothing, which is what makes ``POST /v1/ingest`` safely retryable.
- **Replay parity** — replaying the log from empty produces features
  bit-identical to a cold rebuild of the equivalent world.
"""

from repro.store.events import (
    EVENT_KINDS,
    Event,
    FollowEvent,
    HashtagEvent,
    RetweetEvent,
    StoredEvent,
    TweetEvent,
    event_from_wire,
    event_hash,
)
from repro.store.log import EventLog, StoreIOError
from repro.store.apply import apply_events_to_world, validate_event_for_world

__all__ = [
    "EVENT_KINDS",
    "Event",
    "EventLog",
    "FollowEvent",
    "HashtagEvent",
    "RetweetEvent",
    "StoreIOError",
    "StoredEvent",
    "TweetEvent",
    "apply_events_to_world",
    "event_from_wire",
    "event_hash",
    "validate_event_for_world",
]

"""Typed events, their wire codec, and the canonical content hash.

Every event kind is a frozen dataclass with a ``kind`` tag.  The wire
form is a flat JSON dict carrying ``kind`` plus the payload fields; the
content hash is SHA-256 over the *canonical* wire encoding (sorted keys,
no whitespace), so two submissions of the same logical event always
collide in the dedup map regardless of field order or float formatting
at the JSON layer — payload floats are canonicalised with ``repr`` via
``json.dumps`` before hashing.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, fields

__all__ = [
    "EVENT_KINDS",
    "Event",
    "TweetEvent",
    "RetweetEvent",
    "FollowEvent",
    "HashtagEvent",
    "StoredEvent",
    "event_from_wire",
    "event_hash",
]


@dataclass(frozen=True)
class Event:
    """Base for all store events (never instantiated directly)."""

    kind = ""

    def to_wire(self) -> dict:
        d = {"kind": self.kind}
        for f in fields(self):
            val = getattr(self, f.name)
            if f.type == "float":
                # Canonicalise so a directly constructed event with an
                # int timestamp hashes like its wire round trip.
                val = float(val)
            d[f.name] = val
        return d


@dataclass(frozen=True)
class TweetEvent(Event):
    """A user posts a new (root) tweet, opening a cascade."""

    kind = "tweet"

    tweet_id: int
    user_id: int
    hashtag: str
    text: str
    timestamp: float
    is_hate: bool = False


@dataclass(frozen=True)
class RetweetEvent(Event):
    """A user retweets an existing root tweet (grows its cascade)."""

    kind = "retweet"

    tweet_id: int  #: root tweet of the cascade being retweeted
    user_id: int   #: the retweeter
    timestamp: float


@dataclass(frozen=True)
class FollowEvent(Event):
    """A new follow edge: information flows ``followee -> follower``."""

    kind = "follow"

    followee: int
    follower: int


@dataclass(frozen=True)
class HashtagEvent(Event):
    """Registers a hashtag so later tweets/queries may reference it.

    Registration does *not* grow the endogenous feature dimension of an
    already-fitted model — extractors pin their tag index at fit time —
    it only makes the tag a valid value for subsequent events and
    hategen queries.
    """

    kind = "hashtag"

    tag: str
    theme: str = "none"


#: kind -> event class, in wire order.
EVENT_KINDS: dict[str, type] = {
    cls.kind: cls for cls in (TweetEvent, RetweetEvent, FollowEvent, HashtagEvent)
}


@dataclass(frozen=True)
class StoredEvent:
    """An event as recorded in the log: payload + assigned identity."""

    seq: int
    hash: str
    event: Event

    def to_wire(self) -> dict:
        return {"seq": self.seq, "hash": self.hash, "event": self.event.to_wire()}


def event_from_wire(wire: dict) -> Event:
    """Decode one wire dict into its typed event (ValueError on bad)."""
    if not isinstance(wire, dict):
        raise ValueError("event must be an object")
    kind = wire.get("kind")
    cls = EVENT_KINDS.get(kind)
    if cls is None:
        raise ValueError(
            f"unknown event kind {kind!r} (expected one of "
            f"{sorted(EVENT_KINDS)})"
        )
    # Coerce/check field types up front so hashing is canonical across
    # callers (e.g. a JSON integer timestamp hashes like the float).
    kwargs = {}
    for f in fields(cls):
        if f.name not in wire:
            continue
        val = wire[f.name]
        if f.type == "int":
            if isinstance(val, bool) or not isinstance(val, int):
                raise ValueError(f"{kind}.{f.name} must be an integer")
        elif f.type == "float":
            if isinstance(val, bool) or not isinstance(val, (int, float)):
                raise ValueError(f"{kind}.{f.name} must be a number")
            val = float(val)
        elif f.type == "str":
            if not isinstance(val, str):
                raise ValueError(f"{kind}.{f.name} must be a string")
        elif f.type == "bool":
            if not isinstance(val, bool):
                raise ValueError(f"{kind}.{f.name} must be a boolean")
        kwargs[f.name] = val
    try:
        return cls(**kwargs)
    except TypeError as exc:
        raise ValueError(f"bad {kind} event: {exc}") from exc


def event_hash(event: Event) -> str:
    """Canonical SHA-256 content hash of one event (hex digest)."""
    blob = json.dumps(event.to_wire(), sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()

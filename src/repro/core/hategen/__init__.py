"""Hate-generation prediction (paper Sec. IV, Tables IV-V).

Given a user and a hashtag, predict whether the user will post a hateful
tweet — a binary classification over feature groups representing the
user's activity history H, topic relatedness T, non-peer endogenous
signals S_en (trending hashtags), and exogenous signals S_ex (news).
"""

from repro.core.hategen.features import FeatureGroups, HateGenFeatureExtractor
from repro.core.hategen.models import TABLE3_MODELS, build_model
from repro.core.hategen.pipeline import HateGenerationPipeline, ProcessingVariant
from repro.core.hategen.ablation import run_feature_ablation

__all__ = [
    "HateGenFeatureExtractor",
    "FeatureGroups",
    "build_model",
    "TABLE3_MODELS",
    "HateGenerationPipeline",
    "ProcessingVariant",
    "run_feature_ablation",
]

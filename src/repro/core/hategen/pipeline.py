"""End-to-end hate-generation experiment pipeline (Table IV).

Runs a classifier under one of the paper's processing variants:

- ``none`` — raw features;
- ``ds`` — downsample the dominant (non-hate) class;
- ``us+ds`` — upsample positives then downsample negatives;
- ``pca`` — PCA to 50 components;
- ``top-k`` — top-50 features by mutual information.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hategen.features import HateGenFeatureExtractor
from repro.core.hategen.models import build_model
from repro.data.schema import Tweet
from repro.ml import PCA, SelectKBest, StandardScaler, downsample_majority, upsample_minority
from repro.ml.metrics import accuracy_score, macro_f1, roc_auc_score

__all__ = ["ProcessingVariant", "HateGenerationPipeline"]

ProcessingVariant = ("none", "ds", "us+ds", "pca", "top-k")


def _scores(model, X: np.ndarray) -> np.ndarray:
    """Ranking scores for AUC regardless of the model's API surface."""
    if hasattr(model, "predict_proba"):
        return model.predict_proba(X)[:, 1]
    return model.decision_function(X)


@dataclass
class HateGenResult:
    """Metrics of one (model, variant) run — one Table IV cell triple."""

    model_key: str
    variant: str
    macro_f1: float
    accuracy: float
    auc: float


class HateGenerationPipeline:
    """Fits and evaluates hate-generation models on a synthetic world."""

    def __init__(
        self,
        extractor: HateGenFeatureExtractor,
        pca_components: int = 50,
        top_k: int = 50,
        random_state=0,
    ):
        self.extractor = extractor
        self.pca_components = pca_components
        self.top_k = top_k
        self.random_state = random_state
        #: Inference chain of the most recent :meth:`run` — the fitted
        #: transforms (scaler, plus PCA / top-k when the variant uses them)
        #: and classifier, in application order.  This is what the serving
        #: registry persists.
        self.fitted_transforms_: list | None = None
        self.fitted_model_ = None

    def prepare(
        self, train_tweets: list[Tweet], test_tweets: list[Tweet]
    ) -> tuple[np.ndarray, np.ndarray, np.ndarray, np.ndarray]:
        """Fit the extractor on train tweets; return matrices for both splits."""
        self.extractor.fit(train_tweets)
        X_tr, y_tr = self.extractor.matrix(train_tweets)
        X_te, y_te = self.extractor.matrix(test_tweets)
        return X_tr, y_tr, X_te, y_te

    def run(
        self,
        model_key: str,
        variant: str,
        X_tr: np.ndarray,
        y_tr: np.ndarray,
        X_te: np.ndarray,
        y_te: np.ndarray,
    ) -> HateGenResult:
        """Train one model under one processing variant and evaluate."""
        if variant not in ProcessingVariant:
            raise ValueError(
                f"unknown variant {variant!r}; choose from {ProcessingVariant}"
            )
        scaler = StandardScaler().fit(X_tr)
        X_tr_s, X_te_s = scaler.transform(X_tr), scaler.transform(X_te)
        transforms = [scaler]
        if variant == "ds":
            X_tr_s, y_tr = downsample_majority(
                X_tr_s, y_tr, random_state=self.random_state
            )
        elif variant == "us+ds":
            X_tr_s, y_tr = upsample_minority(
                X_tr_s, y_tr, ratio=0.5, random_state=self.random_state
            )
            X_tr_s, y_tr = downsample_majority(
                X_tr_s, y_tr, random_state=self.random_state
            )
        elif variant == "pca":
            pca = PCA(n_components=self.pca_components).fit(X_tr_s)
            X_tr_s, X_te_s = pca.transform(X_tr_s), pca.transform(X_te_s)
            transforms.append(pca)
        elif variant == "top-k":
            sel = SelectKBest(k=self.top_k).fit(X_tr_s, y_tr)
            X_tr_s, X_te_s = sel.transform(X_tr_s), sel.transform(X_te_s)
            transforms.append(sel)

        model = build_model(model_key, random_state=self.random_state)
        model.fit(X_tr_s, y_tr)
        self.fitted_transforms_ = transforms
        self.fitted_model_ = model
        pred = model.predict(X_te_s)
        try:
            auc = roc_auc_score(y_te, _scores(model, X_te_s))
        except ValueError:
            auc = float("nan")
        return HateGenResult(
            model_key=model_key,
            variant=variant,
            macro_f1=macro_f1(y_te, pred),
            accuracy=accuracy_score(y_te, pred),
            auc=auc,
        )

    def run_grid(
        self,
        model_keys,
        variants,
        X_tr: np.ndarray,
        y_tr: np.ndarray,
        X_te: np.ndarray,
        y_te: np.ndarray,
    ) -> list[HateGenResult]:
        """The full Table IV grid."""
        return [
            self.run(mk, v, X_tr, y_tr, X_te, y_te)
            for mk in model_keys
            for v in variants
        ]

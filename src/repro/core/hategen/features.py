"""Feature extraction for hate-generation prediction (paper Sec. IV).

Feature groups (named for the ablation of Table V):

- ``history`` — H_{i,t}: tf-idf of the user's 30 most recent tweets (top
  300 by idf), hate/non-hate ratio, hate-lexicon frequency vector,
  hateful-vs-non-hateful retweet-reception ratios, follower count, account
  age, number of distinct hashtags used.
- ``topic`` — Doc2Vec cosine relatedness between the user's recent tweets
  and the hashtag token.
- ``endogen`` — binary vector of trending hashtags on the tweet's day.
- ``exogen`` — mean tf-idf vector of the 60 most recent news headlines
  (top 300 features).

User-history blocks live in a columnar :class:`~repro.features.FeatureStore`
built at fit time: per-user blocks are dense matrix rows computed lazily in
batches (one tf-idf transform per batch), shared with the RETINA extractor
and the serving layer.  In-window drift within the observation window is
negligible for the synthetic corpus, so extraction is O(users), not
O(samples x history).
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Tweet
from repro.data.synthetic import SyntheticWorld
from repro.features import FeatureStore
from repro.text.doc2vec import Doc2Vec
from repro.text.lexicon import HateLexicon, default_hate_lexicon
from repro.text.similarity import cosine_similarity
from repro.text.tfidf import TfidfVectorizer
from repro.utils.validation import check_fitted

__all__ = ["FeatureGroups", "HateGenFeatureExtractor"]

FeatureGroups = ("history", "topic", "endogen", "exogen")

DAY_HOURS = 24.0


class HateGenFeatureExtractor:
    """Builds the Sec. IV feature matrix from a synthetic world.

    Parameters
    ----------
    history_size:
        Number of recent tweets forming H_{i,t} (paper: 30; Fig. 7 sweeps it).
    text_top_k / news_top_k:
        tf-idf vocabulary caps (paper: 300 each).
    news_window:
        Number of recent headlines in the exogenous block (paper: 60).
    trending_top_k:
        Daily trending list size (paper: 50; capped by catalog size here).
    """

    def __init__(
        self,
        world: SyntheticWorld,
        history_size: int = 30,
        text_top_k: int = 300,
        news_top_k: int = 300,
        news_window: int = 60,
        trending_top_k: int = 50,
        doc2vec_dim: int = 50,
        doc2vec_epochs: int = 10,
        lexicon: HateLexicon | None = None,
        random_state=0,
        workers: int | None = None,
    ):
        if history_size < 1:
            raise ValueError(f"history_size must be >= 1, got {history_size}")
        self.world = world
        self.history_size = history_size
        self.text_top_k = text_top_k
        self.news_top_k = news_top_k
        self.news_window = news_window
        self.trending_top_k = trending_top_k
        self.doc2vec_dim = doc2vec_dim
        self.doc2vec_epochs = doc2vec_epochs
        self.lexicon = lexicon or default_hate_lexicon()
        self.random_state = random_state
        #: Worker count for parallel store fills (runtime knob, not state;
        #: ``None`` resolves through ``REPRO_NUM_WORKERS``, then 1).
        self.workers = workers
        self.text_vectorizer_: TfidfVectorizer | None = None
        self.news_vectorizer_: TfidfVectorizer | None = None
        self.doc2vec_: Doc2Vec | None = None
        self.store_: FeatureStore | None = None
        self._group_slices: dict[str, slice] | None = None
        self._endogen_cache: dict[int, np.ndarray] = {}
        #: Catalog tags pinned at fit time.  Hashtag events ingested later
        #: grow ``world.catalog`` but must not grow the endogenous block of
        #: an already-fitted model, so the tag index is built from this
        #: snapshot (``None`` until fit/from_state).
        self._catalog_tags: list[str] | None = None

    # ------------------------------------------------------------------ fit
    def fit(self, train_tweets: list[Tweet]) -> "HateGenFeatureExtractor":
        """Fit vectorisers and Doc2Vec on training-side text."""
        world = self.world
        self._catalog_tags = [spec.tag for spec in world.catalog]
        history_docs = [
            " ".join(t.text for t in world.user_history_before(uid, 0.0, self.history_size))
            for uid in world.users
        ]
        history_docs = [d for d in history_docs if d]
        self.text_vectorizer_ = TfidfVectorizer(
            ngram_range=(1, 2), max_features=self.text_top_k, rank_by="idf"
        ).fit(history_docs)
        headlines = [a.headline for a in world.news.articles]
        self.news_vectorizer_ = TfidfVectorizer(
            ngram_range=(1, 1), max_features=self.news_top_k, rank_by="idf"
        ).fit(headlines)
        # Doc2Vec over user histories + train tweets (hashtag tokens kept).
        corpus = history_docs + [t.text for t in train_tweets]
        self.doc2vec_ = Doc2Vec(
            vector_size=self.doc2vec_dim,
            epochs=self.doc2vec_epochs,
            min_count=2,
            random_state=self.random_state,
        ).fit(corpus)
        self._precompute_news()
        self._precompute_trending()
        self._build_store()
        return self

    def _build_store(self) -> None:
        """(Re)build the columnar per-user store from the fitted text models."""
        self.store_ = FeatureStore(
            self.world,
            text_vectorizer=self.text_vectorizer_,
            lexicon=self.lexicon,
            doc2vec=self.doc2vec_,
            history_size=self.history_size,
            doc2vec_dim=self.doc2vec_dim,
            workers=self.workers,
        )
        self._endogen_cache.clear()

    def _precompute_news(self) -> None:
        """tf-idf matrix over headlines + prefix sums for window averages."""
        arts = self.world.news.articles
        X = self.news_vectorizer_.transform([a.headline for a in arts])
        self._news_times = np.array([a.timestamp for a in arts])
        self._news_prefix = np.vstack([np.zeros(X.shape[1]), np.cumsum(X, axis=0)])

    def _precompute_trending(self) -> None:
        """Daily trending lists: top hashtags by tweet volume per day."""
        counts: dict[tuple[int, str], int] = {}
        for t in self.world.tweets:
            day = int(t.timestamp // DAY_HOURS)
            counts[(day, t.hashtag)] = counts.get((day, t.hashtag), 0) + 1
        days: dict[int, list[tuple[str, int]]] = {}
        for (day, tag), c in counts.items():
            days.setdefault(day, []).append((tag, c))
        tags = (
            self._catalog_tags
            if self._catalog_tags is not None
            else [spec.tag for spec in self.world.catalog]
        )
        self._tag_index = {tag: i for i, tag in enumerate(tags)}
        # Retained for live ingest: a tweet event bumps its (day, tag)
        # count and re-derives that day's trending set from here.
        self._trend_counts = counts
        self._trend_seq = int(getattr(self.world, "_store_watermark", 0))
        self._trending: dict[int, set[str]] = {}
        for day, items in days.items():
            items.sort(key=lambda kv: -kv[1])
            self._trending[day] = {tag for tag, _ in items[: self.trending_top_k]}

    def _trending_for_day(self, day: int) -> set[str]:
        """Recompute one day's trending set from the live counts.

        New ``(day, tag)`` keys append at the end of the counts dict in
        event order — exactly where a cold walk over ``world.tweets``
        (base corpus first, then applied events in sequence order) would
        insert them — so the stable top-k sort ties break identically to
        a from-scratch :meth:`_precompute_trending`.
        """
        items = [
            (tag, c) for (d, tag), c in self._trend_counts.items() if d == day
        ]
        items.sort(key=lambda kv: -kv[1])
        return {tag for tag, _ in items[: self.trending_top_k]}

    # -------------------------------------------------------------- blocks
    def _user_block(self, user_id: int) -> dict:
        """Per-user history features and mean Doc2Vec vector (store-backed)."""
        return self.store_.user_block(user_id)

    def _topic_block(self, user_id: int, hashtag: str) -> np.ndarray:
        tag_vec = self.doc2vec_.word_vector(f"#{hashtag.lower()}")
        user_vec = self._user_block(user_id)["doc_vec"]
        return np.array([cosine_similarity(user_vec, tag_vec)])

    def _endogen_block(self, timestamp: float) -> np.ndarray:
        day = int(timestamp // DAY_HOURS)
        vec = self._endogen_cache.get(day)
        if vec is None:
            trending = self._trending.get(day, set())
            vec = np.zeros(len(self._tag_index))
            for tag in trending:
                idx = self._tag_index.get(tag)
                if idx is not None:
                    vec[idx] = 1.0
            self._endogen_cache[day] = vec
        return vec

    def _exogen_block(self, timestamp: float) -> np.ndarray:
        idx = int(np.searchsorted(self._news_times, timestamp, side="left"))
        lo = max(0, idx - self.news_window)
        if idx == lo:
            return np.zeros(self._news_prefix.shape[1])
        return (self._news_prefix[idx] - self._news_prefix[lo]) / (idx - lo)

    def _exogen_rows(self, timestamps: np.ndarray) -> np.ndarray:
        """Batched :meth:`_exogen_block`: one searchsorted over all samples."""
        idx = np.searchsorted(self._news_times, timestamps, side="left")
        lo = np.maximum(0, idx - self.news_window)
        span = idx - lo
        rows = (self._news_prefix[idx] - self._news_prefix[lo]) / np.maximum(
            span, 1
        )[:, None]
        rows[span == 0] = 0.0
        return rows

    # ------------------------------------------------------------ assembly
    def _ensure_group_slices(self, widths: dict[str, int]) -> None:
        """Record the Table V ablation column ranges once per fitted state."""
        if self._group_slices is None:
            slices, lo = {}, 0
            for g in FeatureGroups:
                hi = lo + widths[g]
                slices[g] = slice(lo, hi)
                lo = hi
            self._group_slices = slices

    def sample_vector(self, user_id: int, hashtag: str, timestamp: float) -> np.ndarray:
        """Full feature vector for one (user, hashtag, t0) sample."""
        check_fitted(self, "text_vectorizer_")
        blocks = {
            "history": self._user_block(user_id)["history"],
            "topic": self._topic_block(user_id, hashtag),
            "endogen": self._endogen_block(timestamp),
            "exogen": self._exogen_block(timestamp),
        }
        self._ensure_group_slices({g: len(b) for g, b in blocks.items()})
        return np.concatenate([blocks[g] for g in FeatureGroups])

    def matrix(
        self, tweets: list[Tweet], label_fn=None
    ) -> tuple[np.ndarray, np.ndarray]:
        """Feature matrix and labels for a list of tweets.

        Each tweet yields one sample: (author, hashtag, time just before
        posting) with the tweet's hatefulness as label.

        Parameters
        ----------
        label_fn:
            Optional ``Tweet -> {0, 1}`` override.  The paper's future-work
            section suggests replacing hate with "any other targeted
            phenomenon like fraudulent, abusive behavior"; supplying a
            custom labeller retargets the entire pipeline without touching
            the feature machinery.
        """
        check_fitted(self, "text_vectorizer_")
        if label_fn is None:
            label_fn = lambda t: int(t.is_hate)
        # Columnar assembly: every block for all samples at once, stitched
        # with one concatenate — each row is bit-identical to the
        # per-sample ``sample_vector`` concatenation.
        users = [t.user_id for t in tweets]
        hist = self.store_.history_rows(users)
        tag_vecs: dict[str, np.ndarray] = {}
        topic = np.empty((len(tweets), 1))
        for i, t in enumerate(tweets):
            tag_vec = tag_vecs.get(t.hashtag)
            if tag_vec is None:
                tag_vec = self.doc2vec_.word_vector(f"#{t.hashtag.lower()}")
                tag_vecs[t.hashtag] = tag_vec
            topic[i, 0] = cosine_similarity(self.store_.doc_vec(t.user_id), tag_vec)
        endo = np.stack([self._endogen_block(t.timestamp) for t in tweets])
        exo = self._exogen_rows(np.array([t.timestamp for t in tweets]))
        blocks = {"history": hist, "topic": topic, "endogen": endo, "exogen": exo}
        self._ensure_group_slices({g: b.shape[1] for g, b in blocks.items()})
        X = np.concatenate([blocks[g] for g in FeatureGroups], axis=1)
        y = np.array([int(label_fn(t)) for t in tweets], dtype=np.int64)
        return X, y

    @property
    def group_slices(self) -> dict[str, slice]:
        """Column ranges per feature group (for the Table V ablation)."""
        if self._group_slices is None:
            raise RuntimeError("call sample_vector/matrix at least once first")
        return dict(self._group_slices)

    def drop_group(self, X: np.ndarray, group: str) -> np.ndarray:
        """Copy of ``X`` with one feature group removed (All \\ group)."""
        if group not in FeatureGroups:
            raise ValueError(f"unknown group {group!r}; choose from {FeatureGroups}")
        sl = self.group_slices[group]
        return np.delete(X, np.r_[sl], axis=1)

    # ----------------------------------------------------------- live ingest
    def apply_events(self, stored_events) -> dict[str, int]:
        """Fold already-world-applied events into this extractor's caches.

        Delegates store-level invalidation to
        :meth:`FeatureStore.apply_events`, then updates the trending
        counts and drops the endogenous-vector cache for affected days.
        Watermark-guarded, so overlapping batches are no-ops.
        """
        check_fitted(self, "text_vectorizer_")
        counts = self.store_.apply_events(stored_events)
        events = [s for s in stored_events if s.seq > self._trend_seq]
        dirty_days: set[int] = set()
        for s in events:
            if s.event.kind == "tweet":
                day = int(s.event.timestamp // DAY_HOURS)
                key = (day, s.event.hashtag)
                self._trend_counts[key] = self._trend_counts.get(key, 0) + 1
                dirty_days.add(day)
        for day in dirty_days:
            self._trending[day] = self._trending_for_day(day)
            self._endogen_cache.pop(day, None)
        if events:
            self._trend_seq = events[-1].seq
        counts["endogen_day"] = len(dirty_days)
        if dirty_days:
            from repro.features.store import _INVALIDATIONS

            _INVALIDATIONS.inc(len(dirty_days), structure="endogen_day")
        return counts

    # -------------------------------------------------------- serialization
    def to_state(self) -> dict:
        """Fitted state as a plain dict, independent of the world object.

        World-derived caches (news prefix sums, trending lists, per-user
        blocks) are deliberately excluded — they are recomputed
        deterministically from the world handed to :meth:`from_state`.
        """
        check_fitted(self, "text_vectorizer_")
        return {
            "kind": "hategen_features",
            "params": {
                "history_size": self.history_size,
                "text_top_k": self.text_top_k,
                "news_top_k": self.news_top_k,
                "news_window": self.news_window,
                "trending_top_k": self.trending_top_k,
                "doc2vec_dim": self.doc2vec_dim,
                "doc2vec_epochs": self.doc2vec_epochs,
            },
            "lexicon_terms": list(self.lexicon.terms),
            "catalog_tags": list(
                self._catalog_tags
                if self._catalog_tags is not None
                else [spec.tag for spec in self.world.catalog]
            ),
            "text_vectorizer": self.text_vectorizer_.to_state(),
            "news_vectorizer": self.news_vectorizer_.to_state(),
            "doc2vec": self.doc2vec_.to_state(),
        }

    @classmethod
    def from_state(cls, world: SyntheticWorld, state: dict) -> "HateGenFeatureExtractor":
        """Rebuild a fitted extractor on ``world`` from :meth:`to_state` output."""
        if state.get("kind") != "hategen_features":
            raise ValueError(f"not a hategen_features state: kind={state.get('kind')!r}")
        extractor = cls(
            world,
            lexicon=HateLexicon(state["lexicon_terms"]),
            random_state=0,
            **state["params"],
        )
        tags = state.get("catalog_tags")
        if tags is not None:  # absent in pre-ingest bundles: use the world's
            extractor._catalog_tags = [str(t) for t in tags]
        extractor.text_vectorizer_ = TfidfVectorizer.from_state(state["text_vectorizer"])
        extractor.news_vectorizer_ = TfidfVectorizer.from_state(state["news_vectorizer"])
        extractor.doc2vec_ = Doc2Vec.from_state(state["doc2vec"])
        extractor._precompute_news()
        extractor._precompute_trending()
        extractor._build_store()
        return extractor

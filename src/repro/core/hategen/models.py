"""The six Table III/IV classifier configurations."""

from __future__ import annotations

from repro.ml import (
    AdaBoostClassifier,
    DecisionTreeClassifier,
    GradientBoostingClassifier,
    LinearSVC,
    LogisticRegression,
    SVC,
)

__all__ = ["TABLE3_MODELS", "build_model"]

#: model key -> human-readable Table IV row name
TABLE3_MODELS = {
    "svm-linear": "SVM linear",
    "svm-rbf": "SVM rbf",
    "logreg": "LogReg",
    "dectree": "Dec-Tree",
    "adaboost": "AdaBoost",
    "xgboost": "XGB",
}


def build_model(key: str, random_state=0):
    """Instantiate a classifier with the paper's Table III parameters."""
    if key == "svm-linear":
        # Penalty l2, class weight balanced.
        return LinearSVC(class_weight="balanced")
    if key == "svm-rbf":
        return SVC(kernel="rbf", class_weight="balanced", random_state=random_state)
    if key == "logreg":
        return LogisticRegression(random_state=0)
    if key == "dectree":
        # Class weight balanced, max depth 5.
        return DecisionTreeClassifier(
            class_weight="balanced", max_depth=5, random_state=random_state
        )
    if key == "adaboost":
        return AdaBoostClassifier(random_state=1)
    if key == "xgboost":
        # eta=0.4, logloss objective, reg_alpha=0.9 (learning_rate in the
        # paper's table is the tiny keras-style 1e-4; eta is what matters).
        return GradientBoostingClassifier(
            n_estimators=60, eta=0.4, reg_alpha=0.9, random_state=random_state
        )
    raise ValueError(f"unknown model key {key!r}; choose from {sorted(TABLE3_MODELS)}")

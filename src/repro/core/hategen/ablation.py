"""Feature-group ablation (paper Table V).

Removes one signal group at a time from the best model's feature set:
All, All \\ History, All \\ Endogen, All \\ Exogen, All \\ Topic.
"""

from __future__ import annotations

import numpy as np

from repro.core.hategen.features import FeatureGroups, HateGenFeatureExtractor
from repro.core.hategen.models import build_model
from repro.ml import StandardScaler, downsample_majority
from repro.ml.metrics import accuracy_score, macro_f1, roc_auc_score

__all__ = ["run_feature_ablation"]


def run_feature_ablation(
    extractor: HateGenFeatureExtractor,
    X_tr: np.ndarray,
    y_tr: np.ndarray,
    X_te: np.ndarray,
    y_te: np.ndarray,
    *,
    model_key: str = "dectree",
    downsample: bool = True,
    random_state=0,
) -> dict[str, dict[str, float]]:
    """Evaluate the model with each feature group removed in isolation.

    Returns ``{"all": {...}, "all\\history": {...}, ...}`` with macro-F1,
    accuracy, and AUC per trial, mirroring Table V's rows.
    """

    def evaluate(Xtr, ytr, Xte, yte) -> dict[str, float]:
        scaler = StandardScaler().fit(Xtr)
        Xtr_s, Xte_s = scaler.transform(Xtr), scaler.transform(Xte)
        if downsample:
            Xtr_s, ytr = downsample_majority(Xtr_s, ytr, random_state=random_state)
        model = build_model(model_key, random_state=random_state)
        model.fit(Xtr_s, ytr)
        pred = model.predict(Xte_s)
        if hasattr(model, "predict_proba"):
            scores = model.predict_proba(Xte_s)[:, 1]
        else:
            scores = model.decision_function(Xte_s)
        try:
            auc = roc_auc_score(yte, scores)
        except ValueError:
            auc = float("nan")
        return {
            "macro_f1": macro_f1(yte, pred),
            "accuracy": accuracy_score(yte, pred),
            "auc": auc,
        }

    results = {"all": evaluate(X_tr, y_tr, X_te, y_te)}
    for group in FeatureGroups:
        Xtr_d = extractor.drop_group(X_tr, group)
        Xte_d = extractor.drop_group(X_te, group)
        results[f"all\\{group}"] = evaluate(Xtr_d, y_tr, Xte_d, y_te)
    return results

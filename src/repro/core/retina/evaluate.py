"""Evaluation of retweeter prediction (Table VI, Figures 5-9).

All evaluators consume ``(labels, scores)`` per cascade so RETINA, the
feature baselines, and the neural cascade baselines are scored identically.
"""

from __future__ import annotations

import numpy as np

from repro.ml.metrics import (
    accuracy_score,
    average_precision_at_k,
    hits_at_k,
    macro_f1,
    roc_auc_score,
)

__all__ = [
    "evaluate_binary",
    "evaluate_ranking",
    "map_by_hate_label",
    "macro_f1_by_cascade_size",
    "predicted_to_actual_ratio",
]


def evaluate_binary(
    queries: list[tuple[np.ndarray, np.ndarray]], threshold: float = 0.5
) -> dict[str, float]:
    """Pooled macro-F1 / accuracy / AUC over per-cascade (labels, scores)."""
    if not queries:
        raise ValueError("need at least one query")
    y = np.concatenate([np.asarray(q[0]) for q in queries])
    s = np.concatenate([np.asarray(q[1]) for q in queries])
    pred = (s >= threshold).astype(np.int64)
    out = {
        "macro_f1": macro_f1(y, pred),
        "accuracy": accuracy_score(y, pred),
    }
    try:
        out["auc"] = roc_auc_score(y, s)
    except ValueError:
        out["auc"] = float("nan")
    return out


def evaluate_ranking(
    queries: list[tuple[np.ndarray, np.ndarray]], ks: tuple[int, ...] = (20,)
) -> dict[str, float]:
    """MAP@k and HITS@k averaged over cascades (the paper's Fig. 5 metrics)."""
    if not queries:
        raise ValueError("need at least one query")
    out: dict[str, float] = {}
    for k in ks:
        aps, hits = [], []
        for y, s in queries:
            aps.append(average_precision_at_k(y, s, k))
            hits.append(hits_at_k(y, s, k))
        out[f"map@{k}"] = float(np.mean(aps))
        out[f"hits@{k}"] = float(np.mean(hits))
    return out


def map_by_hate_label(
    queries: list[tuple[np.ndarray, np.ndarray]],
    is_hate: list[bool],
    k: int = 20,
) -> dict[str, float]:
    """MAP@k split by root-tweet hatefulness (Fig. 6)."""
    if len(queries) != len(is_hate):
        raise ValueError("queries and is_hate must align")
    hate_q = [q for q, h in zip(queries, is_hate) if h]
    non_q = [q for q, h in zip(queries, is_hate) if not h]
    out = {}
    if hate_q:
        out["hate"] = float(np.mean([average_precision_at_k(y, s, k) for y, s in hate_q]))
    if non_q:
        out["non_hate"] = float(
            np.mean([average_precision_at_k(y, s, k) for y, s in non_q])
        )
    return out


def macro_f1_by_cascade_size(
    queries: list[tuple[np.ndarray, np.ndarray]],
    sizes: list[int],
    bins: tuple = (1, 2, 3, 4, 5, (6, 8), (9, 15), (16, 30), (31, 64), (65, 194)),
    threshold: float = 0.5,
) -> dict[str, float]:
    """Macro-F1 grouped by actual cascade size (Fig. 9's buckets)."""
    if len(queries) != len(sizes):
        raise ValueError("queries and sizes must align")
    out: dict[str, float] = {}
    for b in bins:
        lo, hi = (b, b) if isinstance(b, int) else b
        idx = [i for i, s in enumerate(sizes) if lo <= s <= hi]
        if not idx:
            continue
        y = np.concatenate([np.asarray(queries[i][0]) for i in idx])
        s = np.concatenate([np.asarray(queries[i][1]) for i in idx])
        label = str(lo) if lo == hi else f"{lo}-{hi}"
        out[label] = macro_f1(y, (s >= threshold).astype(np.int64))
    return out


def predicted_to_actual_ratio(
    interval_probas: list[np.ndarray],
    interval_labels: list[np.ndarray],
    mode: str = "expected",
    threshold: float = 0.5,
) -> np.ndarray:
    """Per-interval ratio of predicted to actual retweet counts (Fig. 8).

    Parameters
    ----------
    interval_probas / interval_labels:
        Per cascade, ``(n_candidates, n_intervals)`` arrays.
    mode:
        ``'expected'`` counts predicted retweets as the sum of per-user
        probabilities (the statistically calibrated count); ``'threshold'``
        counts users with probability >= ``threshold``.
    """
    if mode not in ("expected", "threshold"):
        raise ValueError(f"mode must be 'expected' or 'threshold', got {mode!r}")
    if len(interval_probas) != len(interval_labels):
        raise ValueError("probas and labels must align")
    if not interval_probas:
        raise ValueError("need at least one cascade")
    n_int = interval_probas[0].shape[1]
    predicted = np.zeros(n_int)
    actual = np.zeros(n_int)
    for p, l in zip(interval_probas, interval_labels):
        if mode == "expected":
            predicted += p.sum(axis=0)
        else:
            predicted += (p >= threshold).sum(axis=0)
        actual += l.sum(axis=0)
    with np.errstate(divide="ignore", invalid="ignore"):
        ratio = np.where(actual > 0, predicted / np.maximum(actual, 1e-12), np.nan)
    return ratio

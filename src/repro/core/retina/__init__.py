"""RETINA: Retweeter Identifier Network with Exogenous Attention (Sec. V).

Predicts the potential retweeters of a root tweet in two modes: *static*
(will the user ever retweet) and *dynamic* (per successive time interval),
with a scaled dot-product attention over contemporary news embeddings as
the exogenous signal.
"""

from repro.core.retina.features import RetinaFeatureExtractor, RetinaSample
from repro.core.retina.model import RETINA, DYNAMIC_INTERVAL_EDGES_MIN
from repro.core.retina.trainer import RetinaTrainer
from repro.core.retina.evaluate import (
    evaluate_binary,
    evaluate_ranking,
    macro_f1_by_cascade_size,
    map_by_hate_label,
    predicted_to_actual_ratio,
)

__all__ = [
    "RetinaFeatureExtractor",
    "RetinaSample",
    "RETINA",
    "DYNAMIC_INTERVAL_EDGES_MIN",
    "RetinaTrainer",
    "evaluate_binary",
    "evaluate_ranking",
    "map_by_hate_label",
    "macro_f1_by_cascade_size",
    "predicted_to_actual_ratio",
]

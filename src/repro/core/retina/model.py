"""The RETINA architecture (paper Fig. 4).

Static mode (Fig. 4b): per-candidate features are layer-normalised, passed
through a feed-forward layer, concatenated with the exogenous attention
output X_TN, and a final feed-forward layer with sigmoid produces the
retweet probability P_{u_i}.

Dynamic mode (Fig. 4c): the last feed-forward layer is replaced by a GRU
unrolled over successive time intervals, producing P^j_{u_i} per interval.

The dagger variants (RETINA-S† / RETINA-D†, Table VI) disable the
exogenous attention component.
"""

from __future__ import annotations

import numpy as np

from repro.features import assemble_rows
from repro.nn import fused
from repro.nn.fused import exp_data, sigmoid_data
from repro.nn import (
    Dense,
    GRUCell,
    LayerNorm,
    LSTMCell,
    Module,
    RNNCell,
    ScaledDotProductAttention,
    Tensor,
)
from repro.utils.rng import ensure_rng

__all__ = ["RETINA", "DYNAMIC_INTERVAL_EDGES_MIN", "interval_edges_hours"]

#: Fig. 8's time-window boundaries, in minutes after the root tweet.
DYNAMIC_INTERVAL_EDGES_MIN = (0.0, 5.0, 15.0, 45.0, 105.0, 225.0, 1665.0, 11745.0)


def interval_edges_hours() -> np.ndarray:
    """The dynamic-mode interval edges converted to hours."""
    return np.asarray(DYNAMIC_INTERVAL_EDGES_MIN) / 60.0


class RETINA(Module):
    """Retweeter Identifier Network with Exogenous Attention.

    Parameters
    ----------
    user_dim / tweet_dim / news_dim:
        Input feature dimensionalities.
    hdim:
        Width of all hidden layers and the attention projections (paper: 64).
    mode:
        ``'static'`` or ``'dynamic'``.
    use_exogenous:
        ``False`` builds the dagger ablation without news attention.
    n_intervals:
        Number of prediction intervals in dynamic mode (paper Fig. 8: 7).
    recurrent_cell:
        ``'gru'`` (paper's choice), ``'rnn'`` or ``'lstm'`` (its ablation:
        RNN degrades, LSTM no gain).
    """

    def __init__(
        self,
        user_dim: int,
        tweet_dim: int,
        news_dim: int,
        hdim: int = 64,
        mode: str = "static",
        use_exogenous: bool = True,
        n_intervals: int = 7,
        recurrent_cell: str = "gru",
        random_state=None,
    ):
        if mode not in ("static", "dynamic"):
            raise ValueError(f"mode must be 'static' or 'dynamic', got {mode!r}")
        if recurrent_cell not in ("gru", "rnn", "lstm"):
            raise ValueError(f"unknown recurrent_cell {recurrent_cell!r}")
        if n_intervals < 1:
            raise ValueError(f"n_intervals must be >= 1, got {n_intervals}")
        rng = ensure_rng(random_state)
        self.mode = mode
        self.use_exogenous = use_exogenous
        self.n_intervals = n_intervals
        self.hdim = hdim
        self.recurrent_cell = recurrent_cell

        self.norm = LayerNorm(user_dim)
        self.user_ff = Dense(user_dim, hdim, activation="relu", random_state=rng)
        if use_exogenous:
            self.attention = ScaledDotProductAttention(
                tweet_dim, news_dim, hdim=hdim, random_state=rng
            )
            joint_dim = 2 * hdim
        else:
            self.attention = None
            joint_dim = hdim

        if mode == "static":
            self.hidden_ff = Dense(joint_dim, hdim, activation="relu", random_state=rng)
            self.out = Dense(hdim, 1, random_state=rng)
        else:
            if recurrent_cell == "gru":
                self.cell = GRUCell(joint_dim, hdim, random_state=rng)
            elif recurrent_cell == "rnn":
                self.cell = RNNCell(joint_dim, hdim, random_state=rng)
            else:
                self.cell = LSTMCell(joint_dim, hdim, random_state=rng)
            self.out = Dense(hdim, 1, random_state=rng)

    # -------------------------------------------------------------- forward
    def _joint(self, user_features: Tensor, tweet_vec: Tensor, news_vecs: Tensor) -> Tensor:
        """Normalise + project user features; concat attended exogenous X_TN."""
        h_user = self.user_ff(self.norm(user_features))  # (B, hdim)
        if not self.use_exogenous:
            return h_user
        B = user_features.shape[0]
        # One tweet and one news sequence shared by the whole candidate batch.
        attended = self.attention(tweet_vec.reshape(1, -1), news_vecs.reshape(1, *news_vecs.shape))
        ones = Tensor(np.ones((B, 1)))
        x_tn = ones @ attended  # broadcast (1, hdim) -> (B, hdim)
        return Tensor.concat([h_user, x_tn], axis=1)

    def forward(
        self, user_features: Tensor, tweet_vec: Tensor, news_vecs: Tensor
    ) -> Tensor:
        """Logits: (B,) in static mode, (B, n_intervals) in dynamic mode."""
        joint = self._joint(user_features, tweet_vec, news_vecs)
        if self.mode == "static":
            return self.out(self.hidden_ff(joint)).reshape(joint.shape[0])
        B = joint.shape[0]
        # The same joint input feeds every interval: project it through the
        # cell's input weights once and unroll fused steps on the projection.
        proj = self.cell.project_input(joint)
        if self.recurrent_cell == "gru":
            # The paper's cell gets the fully fused unroll: steps, interval
            # heads, and stacking collapse into a single tape node.
            return fused.gru_unroll(self.cell, proj, self.out.W, self.out.b, self.n_intervals)
        h = Tensor(np.zeros((B, self.hdim)))
        state = (h, Tensor(np.zeros((B, self.hdim)))) if self.recurrent_cell == "lstm" else h
        logits = []
        for _ in range(self.n_intervals):
            if self.recurrent_cell == "lstm":
                h, c = self.cell.step(proj, state)
                state = (h, c)
            else:
                h = self.cell.step(proj, state)
                state = h
            logits.append(self.out(h).reshape(B))
        return Tensor.stack(logits, axis=1)  # (B, n_intervals)

    def predict_proba(self, user_features, tweet_vec, news_vecs) -> np.ndarray:
        """Sigmoid probabilities; dynamic mode returns (B, n_intervals)."""
        logits = self.forward(
            Tensor(np.asarray(user_features, dtype=np.float64)),
            Tensor(np.asarray(tweet_vec, dtype=np.float64)),
            Tensor(np.asarray(news_vecs, dtype=np.float64)),
        )
        return logits.sigmoid().numpy()

    def predict_proba_blocks(
        self, cand_features, shared_features, tweet_vec, news_vecs
    ) -> np.ndarray:
        """:meth:`predict_proba` on a block-structured candidate batch.

        Full rows — the (B, d_cand) per-candidate block with the (d_shared,)
        per-cascade block appended — exist only transiently for this forward
        pass; callers keep the blocks, not the tiled matrix.
        """
        X = assemble_rows(
            np.asarray(cand_features, dtype=np.float64),
            np.asarray(shared_features, dtype=np.float64),
        )
        return self.predict_proba(X, tweet_vec, news_vecs)

    def predict_proba_packed(self, packs: list[tuple]) -> list[np.ndarray]:
        """One packed forward over several cascades' candidate batches.

        ``packs`` is a list of ``(cand_features, shared_features, tweet_vec,
        news_vecs)`` tuples, one per cascade.  All candidate rows are stacked
        into a single matrix and pushed through a pure-numpy inference path
        (no tape); the exogenous attention runs mask-aware over the padded
        per-cascade news sequences.

        Every expression mirrors the tape forward, so a *single-cascade*
        pack is bit-identical to :meth:`predict_proba_blocks` (identical
        BLAS call shapes; the serving parity tests rely on this).  Packing
        several cascades changes the gemm row counts, whose internal
        blocking can flip the last bit — multi-cascade packs agree with the
        per-cascade forward to float precision (~1 ulp), the same
        batch-composition sensitivity the tape forward itself has when a
        request's candidate set changes.
        """
        if not packs:
            return []
        sizes = [np.asarray(p[0]).shape[0] for p in packs]
        X = np.concatenate(
            [
                assemble_rows(
                    np.asarray(cand, dtype=np.float64),
                    np.asarray(shared, dtype=np.float64),
                )
                for cand, shared, _, _ in packs
            ]
        )
        # LayerNorm + user feed-forward, row-wise (rows are independent).
        d = X.shape[-1]
        inv_d = 1.0 / d
        mu = X.sum(axis=-1, keepdims=True) * inv_d
        centered = X - mu
        var = (centered * centered).sum(axis=-1, keepdims=True) * inv_d
        normed = centered * (var + self.norm.eps) ** -0.5
        xn = normed * self.norm.gamma.data + self.norm.beta.data
        pre = xn @ self.user_ff.W.data + self.user_ff.b.data
        h_user = pre * (pre > 0)

        if self.use_exogenous:
            att = self._attend_packed(packs)
            x_tn = np.repeat(att, sizes, axis=0)
            joint = np.concatenate([h_user, x_tn], axis=1)
        else:
            joint = h_user

        if self.mode == "static":
            pre = joint @ self.hidden_ff.W.data + self.hidden_ff.b.data
            hidden = pre * (pre > 0)
            logits = (hidden @ self.out.W.data + self.out.b.data).reshape(len(joint))
        else:
            logits = self._unroll_packed(joint)
        proba = sigmoid_data(logits)
        return np.split(proba, np.cumsum(sizes)[:-1])

    def _attend_packed(self, packs: list[tuple]) -> np.ndarray:
        """Mask-aware exogenous attention over padded news sequences.

        Padding rows are zero vectors appended after each cascade's real
        news; their scores are forced to ``-inf`` before the softmax, so
        padding contributes exact zeros to the trailing end of every
        (sequential, numpy-side) reduction.  Any residual difference vs the
        per-cascade computation comes from the stacked gemms' row counts,
        not from the masking — see :meth:`predict_proba_packed`.
        """
        attn = self.attention
        C = len(packs)
        tweets = np.stack([np.asarray(p[2], dtype=np.float64) for p in packs])
        news_list = [np.asarray(p[3], dtype=np.float64) for p in packs]
        K = max(n.shape[0] for n in news_list)
        nd = news_list[0].shape[1]
        news = np.zeros((C, K, nd))
        kmask = np.zeros((C, K), dtype=bool)
        for c, n in enumerate(news_list):
            news[c, : n.shape[0]] = n
            kmask[c, : n.shape[0]] = True
        q = tweets @ attn.WQ.data
        k = news @ attn.WK.data
        v = news @ attn.WV.data
        scores = (q[:, None, :] * k).sum(axis=-1) * (attn.hdim**-0.5)
        m = np.where(kmask, scores, -np.inf).max(axis=-1, keepdims=True)
        e = exp_data(scores - m)
        e[~kmask] = 0.0
        w = e * e.sum(axis=-1, keepdims=True) ** -1.0
        return (w[:, :, None] * v).sum(axis=1)

    def _unroll_packed(self, joint: np.ndarray) -> np.ndarray:
        """Numpy unroll of the recurrent head on a packed candidate batch."""
        cell = self.cell
        B = joint.shape[0]
        h = np.zeros((B, self.hdim))
        if self.recurrent_cell == "lstm":
            c = np.zeros((B, self.hdim))
            xi = joint @ cell.Wi.data
            hs = cell.hidden_size
        elif self.recurrent_cell == "rnn":
            xw = joint @ cell.W.data
        else:
            xz = joint @ cell.Wz.data
            xr = joint @ cell.Wr.data
            xn = joint @ cell.Wn.data
        logits = []
        for _ in range(self.n_intervals):
            if self.recurrent_cell == "lstm":
                gates = xi + h @ cell.Ui.data + cell.bi.data
                i_g = sigmoid_data(gates[:, :hs])
                f_g = sigmoid_data(gates[:, hs : 2 * hs])
                g_g = np.tanh(gates[:, 2 * hs : 3 * hs])
                o_g = sigmoid_data(gates[:, 3 * hs :])
                c = f_g * c + i_g * g_g
                h = o_g * np.tanh(c)
            elif self.recurrent_cell == "rnn":
                h = np.tanh(xw + h @ cell.U.data + cell.b.data)
            else:
                z = sigmoid_data(xz + h @ cell.Uz.data + cell.bz.data)
                r = sigmoid_data(xr + h @ cell.Ur.data + cell.br.data)
                n = np.tanh(xn + (r * h) @ cell.Un.data + cell.bn.data)
                h = (1.0 - z) * n + z * h
            logits.append((h @ self.out.W.data + self.out.b.data).reshape(B))
        return np.stack(logits, axis=1)

    @staticmethod
    def static_score_from_dynamic(interval_proba: np.ndarray) -> np.ndarray:
        """P(ever retweets) = 1 - prod_j (1 - P^j) over intervals."""
        return 1.0 - np.prod(1.0 - np.clip(interval_proba, 0.0, 1.0), axis=1)

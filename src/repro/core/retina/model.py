"""The RETINA architecture (paper Fig. 4).

Static mode (Fig. 4b): per-candidate features are layer-normalised, passed
through a feed-forward layer, concatenated with the exogenous attention
output X_TN, and a final feed-forward layer with sigmoid produces the
retweet probability P_{u_i}.

Dynamic mode (Fig. 4c): the last feed-forward layer is replaced by a GRU
unrolled over successive time intervals, producing P^j_{u_i} per interval.

The dagger variants (RETINA-S† / RETINA-D†, Table VI) disable the
exogenous attention component.
"""

from __future__ import annotations

import numpy as np

from repro.features import assemble_rows
from repro.nn import (
    Dense,
    GRUCell,
    LayerNorm,
    LSTMCell,
    Module,
    RNNCell,
    ScaledDotProductAttention,
    Tensor,
)
from repro.utils.rng import ensure_rng

__all__ = ["RETINA", "DYNAMIC_INTERVAL_EDGES_MIN", "interval_edges_hours"]

#: Fig. 8's time-window boundaries, in minutes after the root tweet.
DYNAMIC_INTERVAL_EDGES_MIN = (0.0, 5.0, 15.0, 45.0, 105.0, 225.0, 1665.0, 11745.0)


def interval_edges_hours() -> np.ndarray:
    """The dynamic-mode interval edges converted to hours."""
    return np.asarray(DYNAMIC_INTERVAL_EDGES_MIN) / 60.0


class RETINA(Module):
    """Retweeter Identifier Network with Exogenous Attention.

    Parameters
    ----------
    user_dim / tweet_dim / news_dim:
        Input feature dimensionalities.
    hdim:
        Width of all hidden layers and the attention projections (paper: 64).
    mode:
        ``'static'`` or ``'dynamic'``.
    use_exogenous:
        ``False`` builds the dagger ablation without news attention.
    n_intervals:
        Number of prediction intervals in dynamic mode (paper Fig. 8: 7).
    recurrent_cell:
        ``'gru'`` (paper's choice), ``'rnn'`` or ``'lstm'`` (its ablation:
        RNN degrades, LSTM no gain).
    """

    def __init__(
        self,
        user_dim: int,
        tweet_dim: int,
        news_dim: int,
        hdim: int = 64,
        mode: str = "static",
        use_exogenous: bool = True,
        n_intervals: int = 7,
        recurrent_cell: str = "gru",
        random_state=None,
    ):
        if mode not in ("static", "dynamic"):
            raise ValueError(f"mode must be 'static' or 'dynamic', got {mode!r}")
        if recurrent_cell not in ("gru", "rnn", "lstm"):
            raise ValueError(f"unknown recurrent_cell {recurrent_cell!r}")
        if n_intervals < 1:
            raise ValueError(f"n_intervals must be >= 1, got {n_intervals}")
        rng = ensure_rng(random_state)
        self.mode = mode
        self.use_exogenous = use_exogenous
        self.n_intervals = n_intervals
        self.hdim = hdim
        self.recurrent_cell = recurrent_cell

        self.norm = LayerNorm(user_dim)
        self.user_ff = Dense(user_dim, hdim, activation="relu", random_state=rng)
        if use_exogenous:
            self.attention = ScaledDotProductAttention(
                tweet_dim, news_dim, hdim=hdim, random_state=rng
            )
            joint_dim = 2 * hdim
        else:
            self.attention = None
            joint_dim = hdim

        if mode == "static":
            self.hidden_ff = Dense(joint_dim, hdim, activation="relu", random_state=rng)
            self.out = Dense(hdim, 1, random_state=rng)
        else:
            if recurrent_cell == "gru":
                self.cell = GRUCell(joint_dim, hdim, random_state=rng)
            elif recurrent_cell == "rnn":
                self.cell = RNNCell(joint_dim, hdim, random_state=rng)
            else:
                self.cell = LSTMCell(joint_dim, hdim, random_state=rng)
            self.out = Dense(hdim, 1, random_state=rng)

    # -------------------------------------------------------------- forward
    def _joint(self, user_features: Tensor, tweet_vec: Tensor, news_vecs: Tensor) -> Tensor:
        """Normalise + project user features; concat attended exogenous X_TN."""
        h_user = self.user_ff(self.norm(user_features))  # (B, hdim)
        if not self.use_exogenous:
            return h_user
        B = user_features.shape[0]
        # One tweet and one news sequence shared by the whole candidate batch.
        attended = self.attention(tweet_vec.reshape(1, -1), news_vecs.reshape(1, *news_vecs.shape))
        ones = Tensor(np.ones((B, 1)))
        x_tn = ones @ attended  # broadcast (1, hdim) -> (B, hdim)
        return Tensor.concat([h_user, x_tn], axis=1)

    def forward(
        self, user_features: Tensor, tweet_vec: Tensor, news_vecs: Tensor
    ) -> Tensor:
        """Logits: (B,) in static mode, (B, n_intervals) in dynamic mode."""
        joint = self._joint(user_features, tweet_vec, news_vecs)
        if self.mode == "static":
            return self.out(self.hidden_ff(joint)).reshape(joint.shape[0])
        B = joint.shape[0]
        h = Tensor(np.zeros((B, self.hdim)))
        state = (h, Tensor(np.zeros((B, self.hdim)))) if self.recurrent_cell == "lstm" else h
        logits = []
        for _ in range(self.n_intervals):
            if self.recurrent_cell == "lstm":
                h, c = self.cell(joint, state)
                state = (h, c)
            else:
                h = self.cell(joint, state)
                state = h
            logits.append(self.out(h).reshape(B))
        return Tensor.stack(logits, axis=1)  # (B, n_intervals)

    def predict_proba(self, user_features, tweet_vec, news_vecs) -> np.ndarray:
        """Sigmoid probabilities; dynamic mode returns (B, n_intervals)."""
        logits = self.forward(
            Tensor(np.asarray(user_features, dtype=np.float64)),
            Tensor(np.asarray(tweet_vec, dtype=np.float64)),
            Tensor(np.asarray(news_vecs, dtype=np.float64)),
        )
        return logits.sigmoid().numpy()

    def predict_proba_blocks(
        self, cand_features, shared_features, tweet_vec, news_vecs
    ) -> np.ndarray:
        """:meth:`predict_proba` on a block-structured candidate batch.

        Full rows — the (B, d_cand) per-candidate block with the (d_shared,)
        per-cascade block appended — exist only transiently for this forward
        pass; callers keep the blocks, not the tiled matrix.
        """
        X = assemble_rows(
            np.asarray(cand_features, dtype=np.float64),
            np.asarray(shared_features, dtype=np.float64),
        )
        return self.predict_proba(X, tweet_vec, news_vecs)

    @staticmethod
    def static_score_from_dynamic(interval_proba: np.ndarray) -> np.ndarray:
        """P(ever retweets) = 1 - prod_j (1 - P^j) over intervals."""
        return 1.0 - np.prod(1.0 - np.clip(interval_proba, 0.0, 1.0), axis=1)

"""Feature extraction for retweeter prediction (paper Sec. V-A).

Per candidate user u_j of a root tweet tau by root user u_0:

- peer signal S_P: shortest path length u_0 -> u_j in G, and how often u_j
  retweeted u_0 before;
- history H_{j,t} and endogenous S_en: same blocks as hate generation;
- root tweet: hate-lexicon vector + top-300 tf-idf of the tweet text;
- exogenous S_ex: Doc2Vec embeddings of the k most recent news headlines
  (attention input) and of the root tweet (attention query); the feature
  baselines use the averaged news tf-idf instead.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.core.hategen.features import HateGenFeatureExtractor
from repro.data.schema import Cascade
from repro.data.synthetic import SyntheticWorld
from repro.diffusion.cascade import CandidateSet, build_candidate_set
from repro.features import FeatureStore, assemble_rows
from repro.text.tfidf import TfidfVectorizer
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted

__all__ = ["RetinaSample", "RetinaFeatureExtractor"]


@dataclass
class RetinaSample:
    """Everything RETINA consumes for one cascade, stored block-structured.

    ``cand_features`` is (n_candidates, d_cand): the peer + history blocks
    that actually vary per candidate.  ``shared_features`` is (d_shared,):
    the endogenous + root-tweet blocks every candidate of the cascade
    shares, stored once instead of tiled into each row.  Full rows are
    assembled lazily via :meth:`rows` (or the ``user_features`` property,
    which materialises all of them); ``tweet_vec`` is the Doc2Vec query
    (d_tweet,); ``news_vecs`` is (k, d_news); ``news_tfidf`` is the
    engineered exogenous alternative for non-attention baselines.
    ``interval_labels`` is (n_candidates, n_intervals) for dynamic mode.
    """

    candidate_set: CandidateSet
    cand_features: np.ndarray
    shared_features: np.ndarray
    tweet_vec: np.ndarray
    news_vecs: np.ndarray
    news_tfidf: np.ndarray
    labels: np.ndarray
    interval_labels: np.ndarray | None = None

    def rows(self, idx=None) -> np.ndarray:
        """Assemble full feature rows, optionally only the selected ones."""
        return assemble_rows(self.cand_features, self.shared_features, idx)

    @property
    def user_features(self) -> np.ndarray:
        """The dense (n_candidates, d_user) matrix (materialised on demand)."""
        return self.rows()

    @property
    def is_hate(self) -> bool:
        return self.candidate_set.cascade.root.is_hate


class RetinaFeatureExtractor:
    """Builds :class:`RetinaSample` objects from a synthetic world."""

    def __init__(
        self,
        world: SyntheticWorld,
        history_size: int = 30,
        tweet_top_k: int = 300,
        news_window: int = 60,
        news_doc2vec_dim: int = 50,
        n_negatives: int = 30,
        random_state=0,
        workers: int | None = None,
    ):
        if news_window < 1:
            raise ValueError(f"news_window must be >= 1, got {news_window}")
        self.world = world
        #: Worker count for parallel feature/corpus builds (runtime knob,
        #: excluded from ``to_state``; ``None`` resolves through
        #: ``REPRO_NUM_WORKERS``, then 1).  Every parallel path is
        #: bit-identical to serial.
        self.workers = workers
        self.history_size = history_size
        self.tweet_top_k = tweet_top_k
        self.news_window = news_window
        self.news_doc2vec_dim = news_doc2vec_dim
        self.n_negatives = n_negatives
        self.random_state = random_state
        self.base_: HateGenFeatureExtractor | None = None
        self.tweet_vectorizer_: TfidfVectorizer | None = None
        self._news_vec_cache: np.ndarray | None = None
        self._retweeted_before: dict[tuple[int, int], int] | None = None
        self._prior_seq = 0

    def fit(self, train_cascades: list[Cascade]) -> "RetinaFeatureExtractor":
        """Fit text models on the training side of the corpus."""
        train_tweets = [c.root for c in train_cascades]
        self.base_ = HateGenFeatureExtractor(
            self.world,
            history_size=self.history_size,
            doc2vec_dim=self.news_doc2vec_dim,
            doc2vec_epochs=8,
            random_state=self.random_state,
            workers=self.workers,
        ).fit(train_tweets)
        self.tweet_vectorizer_ = TfidfVectorizer(
            ngram_range=(1, 2), max_features=self.tweet_top_k, rank_by="idf",
            n_workers=self.workers,
        ).fit([t.text for t in train_tweets])
        # Doc2Vec embedding per news article, inferred once through the
        # batched (optionally multi-process) kernel — bit-identical to the
        # seed per-article ``infer_vector`` loop at the same fixed seed.
        d2v = self.base_.doc2vec_
        self._news_vec_cache = d2v.transform(
            [a.headline for a in self.world.news.articles],
            random_state=0,
            workers=self.workers,
        )
        # (root_user, candidate) -> count of prior retweets, from training
        # cascades only (no test leakage).
        counts: dict[tuple[int, int], int] = {}
        for c in train_cascades:
            for r in c.retweets:
                key = (c.root.user_id, r.user_id)
                counts[key] = counts.get(key, 0) + 1
        self._retweeted_before = counts
        self.base_.store_.set_prior_retweets(counts)
        self._prior_seq = int(getattr(self.world, "_store_watermark", 0))
        return self

    # -------------------------------------------------------------- pieces
    @property
    def store_(self) -> FeatureStore:
        """The columnar per-user store (shared with the base extractor).

        Re-seeds the prior-retweet CSR if the base extractor was refit (a
        fresh store starts without it, while the counts live here).
        """
        check_fitted(self, "base_")
        store = self.base_.store_
        if self._retweeted_before is not None and store._prior_indptr is None:
            store.set_prior_retweets(self._retweeted_before)
        return store

    def _peer_block(self, root_user: int, candidate: int) -> np.ndarray:
        """One (root, candidate) peer pair; batch queries use the store."""
        spl = self.world.network.shortest_path_length(root_user, candidate, cutoff=4)
        prior = self._retweeted_before.get((root_user, candidate), 0)
        return np.array([float(spl), float(prior)])

    def candidate_block(self, cascade: Cascade, user_ids) -> np.ndarray:
        """(n, d_cand) per-candidate rows [peer | history] for a user list.

        One single-source BFS from the root covers every candidate's
        shortest-path feature; prior-retweet counts come from the store's
        CSR index and history blocks from its dense matrix.
        """
        check_fitted(self, "base_")
        peer = self.store_.peer_block(cascade.root.user_id, user_ids, cutoff=4)
        hist = self.store_.history_rows(user_ids)
        return np.concatenate([peer, hist], axis=1)

    def _root_tweet_block(self, cascade: Cascade) -> np.ndarray:
        text = cascade.root.text
        tfidf = self.tweet_vectorizer_.transform([text])[0]
        lex = self.base_.lexicon.vector(text)
        return np.concatenate([tfidf, lex])

    def _root_tweet_blocks(self, cascades: list[Cascade]) -> np.ndarray:
        """Batched :meth:`_root_tweet_block`: one tf-idf transform for all roots."""
        tfidf = self.tweet_vectorizer_.transform([c.root.text for c in cascades])
        lex = np.stack([self.base_.lexicon.vector(c.root.text) for c in cascades])
        return np.concatenate([tfidf, lex], axis=1)

    def _news_vectors(self, timestamp: float) -> np.ndarray:
        """Doc2Vec matrix of the k most recent headlines before t."""
        times = self.base_._news_times
        idx = int(np.searchsorted(times, timestamp, side="left"))
        lo = max(0, idx - self.news_window)
        if idx == lo:
            return np.zeros((1, self.news_doc2vec_dim))
        return self._news_vec_cache[lo:idx]

    @staticmethod
    def _interval_labels(
        cascade: Cascade, users: list[int], edges: np.ndarray
    ) -> np.ndarray:
        """One-hot (n_candidates, n_intervals) labels, all candidates at once.

        ``searchsorted(..., side="right")`` over the full delta vector
        replaces the seed's per-candidate loop; a retweet landing exactly on
        an interval edge belongs to the interval *starting* there (and the
        final interval is closed on both sides), matching the seed rule.
        """
        n_int = len(edges) - 1
        labels = np.zeros((len(users), n_int))
        rt_time = {
            r.user_id: r.timestamp - cascade.root.timestamp for r in cascade.retweets
        }
        rows = np.fromiter(
            (i for i, uid in enumerate(users) if uid in rt_time), dtype=np.int64
        )
        if len(rows):
            dts = np.array([rt_time[users[i]] for i in rows])
            cols = np.searchsorted(edges, dts, side="right") - 1
            labels[rows, np.clip(cols, 0, n_int - 1)] = 1.0
        return labels

    # -------------------------------------------------------------- sample
    def build_sample(
        self,
        cascade: Cascade,
        *,
        interval_edges_hours: np.ndarray | None = None,
        candidate_set: CandidateSet | None = None,
        random_state=None,
        _tweet_block: np.ndarray | None = None,
    ) -> RetinaSample:
        """Assemble one cascade's features (and interval labels if edges given).

        The per-candidate block comes from :meth:`candidate_block` (one BFS,
        columnar history gather); the endogenous + tweet blocks are stored
        once per sample, never tiled.  ``_tweet_block`` lets
        :meth:`build_samples` pass a row of its batched tf-idf transform.
        """
        check_fitted(self, "base_")
        rng = ensure_rng(
            random_state if random_state is not None else self.random_state
        )
        cs = candidate_set or build_candidate_set(
            cascade, self.world.network, n_negatives=self.n_negatives, random_state=rng
        )
        root = cascade.root
        tweet_block = (
            _tweet_block if _tweet_block is not None else self._root_tweet_block(cascade)
        )
        endo = self.base_._endogen_block(root.timestamp)
        shared = np.concatenate([endo, tweet_block])
        cand = self.candidate_block(cascade, cs.users)
        tweet_vec = self.store_.tweet_vec(root)
        news_vecs = self._news_vectors(root.timestamp)
        news_tfidf = self.base_._exogen_block(root.timestamp)

        interval_labels = None
        if interval_edges_hours is not None:
            edges = np.asarray(interval_edges_hours, dtype=np.float64)
            interval_labels = self._interval_labels(cascade, cs.users, edges)
        return RetinaSample(
            candidate_set=cs,
            cand_features=cand,
            shared_features=shared,
            tweet_vec=tweet_vec,
            news_vecs=news_vecs,
            news_tfidf=news_tfidf,
            labels=cs.labels.astype(np.float64),
            interval_labels=interval_labels,
        )

    def build_samples(
        self,
        cascades: list[Cascade],
        *,
        interval_edges_hours: np.ndarray | None = None,
        random_state=None,
    ) -> list[RetinaSample]:
        """Batch :meth:`build_sample` with one RNG stream.

        Columnar batching across the whole cascade list: candidate sets are
        drawn first (same RNG sequence as the seed per-cascade loop), every
        touched user's history block is built in one store batch, and the
        root-tweet tf-idf block is one batched transform over all roots.
        """
        check_fitted(self, "base_")
        rng = ensure_rng(
            random_state if random_state is not None else self.random_state
        )
        cascades = list(cascades)
        sets = [
            build_candidate_set(
                c, self.world.network, n_negatives=self.n_negatives, random_state=rng
            )
            for c in cascades
        ]
        self.store_.ensure([uid for cs in sets for uid in cs.users])
        tweet_blocks = self._root_tweet_blocks(cascades) if cascades else []
        return [
            self.build_sample(
                c,
                interval_edges_hours=interval_edges_hours,
                candidate_set=cs,
                random_state=rng,
                _tweet_block=tweet_blocks[i],
            )
            for i, (c, cs) in enumerate(zip(cascades, sets))
        ]

    @property
    def user_feature_dim(self) -> int:
        """Dimensionality of the per-candidate feature vector."""
        check_fitted(self, "base_")
        hist = self.store_.history_dim
        # The endogenous width is the *pinned* tag index, not the live
        # catalog — hashtag events ingested after fit must not change the
        # dimensionality an already-trained model expects.
        endo = len(self.base_._tag_index)
        tweet = len(self.tweet_vectorizer_.vocabulary_) + len(self.base_.lexicon)
        return 2 + hist + endo + tweet

    # ----------------------------------------------------------- live ingest
    def apply_events(self, stored_events) -> dict[str, int]:
        """Fold already-world-applied events into this extractor's caches.

        Beyond the base extractor's store/trending invalidation, a live
        retweet increments the (root user, retweeter) prior-retweet count
        — the peer feature the paper derives from past interactions — and
        re-seeds the store's CSR view of it.  Watermark-guarded.
        """
        check_fitted(self, "base_")
        counts = self.base_.apply_events(stored_events)
        events = [s for s in stored_events if s.seq > self._prior_seq]
        cascade_index = getattr(self.world, "_store_cascade_index", None) or {}
        changed = 0
        for s in events:
            if s.event.kind != "retweet":
                continue
            cascade = cascade_index.get(s.event.tweet_id)
            if cascade is None:
                continue
            key = (cascade.root.user_id, s.event.user_id)
            self._retweeted_before[key] = self._retweeted_before.get(key, 0) + 1
            changed += 1
        if changed:
            self.base_.store_.set_prior_retweets(self._retweeted_before)
        if events:
            self._prior_seq = events[-1].seq
        counts["prior_csr"] = changed
        if changed:
            from repro.features.store import _INVALIDATIONS

            _INVALIDATIONS.inc(changed, structure="prior_csr")
        return counts

    # -------------------------------------------------------- serialization
    def to_state(self) -> dict:
        """Fitted state as a plain dict, independent of the world object.

        Includes the training-derived prior-retweet counts and the inferred
        news Doc2Vec cache, neither of which is recoverable from the world
        alone (the first needs the train split, the second is expensive).
        """
        check_fitted(self, "base_")
        pairs = sorted(self._retweeted_before.items())
        retweeted = np.array(
            [[ru, cu, n] for (ru, cu), n in pairs], dtype=np.int64
        ).reshape(len(pairs), 3)
        return {
            "kind": "retina_features",
            "params": {
                "history_size": self.history_size,
                "tweet_top_k": self.tweet_top_k,
                "news_window": self.news_window,
                "news_doc2vec_dim": self.news_doc2vec_dim,
                "n_negatives": self.n_negatives,
            },
            "base": self.base_.to_state(),
            "tweet_vectorizer": self.tweet_vectorizer_.to_state(),
            "news_vec_cache": self._news_vec_cache.copy(),
            "retweeted_before": retweeted,
            "prior_seq": int(self._prior_seq),
        }

    @classmethod
    def from_state(cls, world: SyntheticWorld, state: dict) -> "RetinaFeatureExtractor":
        """Rebuild a fitted extractor on ``world`` from :meth:`to_state` output."""
        if state.get("kind") != "retina_features":
            raise ValueError(f"not a retina_features state: kind={state.get('kind')!r}")
        extractor = cls(world, random_state=0, **state["params"])
        extractor.base_ = HateGenFeatureExtractor.from_state(world, state["base"])
        extractor.tweet_vectorizer_ = TfidfVectorizer.from_state(state["tweet_vectorizer"])
        extractor._news_vec_cache = np.asarray(state["news_vec_cache"], dtype=np.float64)
        retweeted = np.asarray(state["retweeted_before"], dtype=np.int64).reshape(-1, 3)
        extractor._retweeted_before = {
            (int(ru), int(cu)): int(n) for ru, cu, n in retweeted
        }
        extractor.base_.store_.set_prior_retweets(extractor._retweeted_before)
        # The restored counts reflect every logged retweet up to the seq
        # recorded at fit time ("prior_seq"); replay resumes past it so a
        # bundle fitted after ingest never double-counts.  Pre-ingest
        # bundles lack the key and replay from the beginning.
        extractor._prior_seq = int(state.get("prior_seq", 0))
        return extractor

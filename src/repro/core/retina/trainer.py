"""RETINA training loop (paper Sec. VI-D).

Mini-batch training with the Eq. 6 weighted BCE.  Defaults follow the
paper's tuning: Adam for static mode (batch 16, lambda 2.0), SGD lr 1e-2
for dynamic mode (batch 32, lambda 2.5).
"""

from __future__ import annotations

import json
import os
import time

import numpy as np

from repro.core.retina.features import RetinaSample
from repro.core.retina.model import RETINA, interval_edges_hours
from repro.nn import Adam, SGD, Tensor
from repro.nn.losses import positive_class_weight, weighted_bce_with_logits
from repro.obs import log as obs_log
from repro.parallel import ShmArena, WorkerPool, fork_available
from repro.utils.rng import ensure_rng

__all__ = ["RetinaTrainer"]

_log = obs_log.get_logger("repro.train")


def _grad_norm(params) -> float:
    """Global L2 norm of the current parameter gradients (read-only)."""
    acc = 0.0
    for p in params:
        if p.grad is not None:
            acc += float(np.dot(p.grad.ravel(), p.grad.ravel()))
    return float(np.sqrt(acc))


class RetinaTrainer:
    """Trains a RETINA model on per-cascade samples.

    Each optimisation step consumes one cascade's candidate batch (the
    candidates of one tweet share the tweet/news context, so the cascade is
    the natural mini-batch; ``batch_size`` caps the candidates per step).
    """

    def __init__(
        self,
        model: RETINA,
        *,
        lam: float | None = None,
        lr: float | None = None,
        optimizer: str | None = None,
        batch_size: int | None = None,
        epochs: int = 3,
        random_state=None,
        workers: int | None = None,
        shard_size: int = 8,
        checkpoint_dir: str | None = None,
    ):
        self.model = model
        dynamic = model.mode == "dynamic"
        # Paper defaults per mode.
        self.lam = lam if lam is not None else (2.5 if dynamic else 2.0)
        self.lr = lr if lr is not None else (1e-2 if dynamic else 1e-3)
        self.optimizer_name = optimizer or ("sgd" if dynamic else "adam")
        self.batch_size = batch_size if batch_size is not None else (32 if dynamic else 16)
        self.epochs = epochs
        self.random_state = random_state
        #: Budget (in float64 elements, ~64 MB default) for pre-assembled
        #: mini-batch rows pinned across epochs; beyond it samples fall
        #: back to per-step lazy assembly.  Purely a speed/memory knob —
        #: assembled values are identical either way.
        self.row_cache_elems = 8_000_000
        #: ``workers=None`` (default) keeps the seed schedule: one optimiser
        #: step per cascade, bit-identical to ``repro.nn.reference``.  Any
        #: int selects the *sharded* schedule: per-cascade gradients of one
        #: shard are computed against the same weight snapshot (across
        #: ``workers`` processes when > 1), reduced in canonical cascade
        #: order, and applied as one mean-gradient step.  The sharded
        #: schedule is a different training schedule, but its weights are
        #: bit-identical for every worker count (and ``shard_size=1``
        #: reproduces the seed schedule exactly).
        self.workers = workers
        self.shard_size = shard_size
        #: When set, an atomic ``checkpoint.npz`` (weights + optimiser state
        #: + RNG state + completed epoch) is written after every epoch and
        #: auto-resumed by the next :meth:`fit` with the same configuration
        #: — resumed weights are bit-identical to an uninterrupted run, so a
        #: SIGKILL mid-fit loses at most one epoch.
        self.checkpoint_dir = checkpoint_dir
        if shard_size < 1:
            raise ValueError(f"shard_size must be >= 1, got {shard_size}")
        if self.optimizer_name not in ("adam", "sgd"):
            raise ValueError(f"optimizer must be 'adam' or 'sgd', got {optimizer!r}")

    # ---------------------------------------------------------- checkpoints
    def _fingerprint(self, n_samples: int) -> str:
        """The training configuration a checkpoint is only valid for.

        Worker *count* is deliberately absent: the sharded schedule is
        bit-identical across worker counts, so a run checkpointed at
        ``workers=1`` may resume at ``workers=2`` (and vice versa).
        """
        schedule = "serial" if self.workers is None else "sharded"
        return json.dumps(
            {
                "mode": self.model.mode,
                "optimizer": self.optimizer_name,
                "lam": self.lam,
                "lr": self.lr,
                "batch_size": self.batch_size,
                "epochs": self.epochs,
                "n_samples": n_samples,
                "schedule": schedule,
                "shard_size": self.shard_size if schedule == "sharded" else 1,
            },
            sort_keys=True,
        )

    def _checkpoint_path(self) -> str:
        return os.path.join(self.checkpoint_dir, "checkpoint.npz")

    def _save_checkpoint(self, opt, rng, order, epoch: int, fingerprint: str) -> None:
        """Atomically persist everything needed to continue after ``epoch``.

        Temp file + fsync + ``os.replace`` + directory fsync: a SIGKILL at
        any instant leaves either the previous checkpoint or the new one,
        never a torn file.  RNG state rides along as JSON so the resumed
        epoch draws the exact shuffles/subsamples the uninterrupted run
        would have drawn.
        """
        os.makedirs(self.checkpoint_dir, exist_ok=True)
        payload = {f"model/{k}": v for k, v in self.model.state_dict().items()}
        for k, v in opt.state_dict().items():
            payload[f"opt/{k}"] = np.asarray(v)
        payload["rng_state"] = np.array(json.dumps(rng.bit_generator.state))
        # The epoch shuffle is cumulative (each epoch permutes the previous
        # order), so the current permutation is training state too.
        payload["order"] = np.asarray(order, dtype=np.int64)
        payload["epoch"] = np.array(epoch, dtype=np.int64)
        payload["fingerprint"] = np.array(fingerprint)
        path = self._checkpoint_path()
        tmp = f"{path}.tmp-{os.getpid()}"
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        os.replace(tmp, path)
        dfd = os.open(self.checkpoint_dir, os.O_RDONLY)
        try:
            os.fsync(dfd)
        finally:
            os.close(dfd)
        _log.info("train.checkpoint", epoch=epoch, path=path)

    def _resume(self, opt, rng, order, fingerprint: str) -> int:
        """Restore a checkpoint when present; returns the epoch to start at."""
        path = self._checkpoint_path()
        if not os.path.exists(path):
            return 0
        with np.load(path) as data:
            saved_fp = str(data["fingerprint"])
            if saved_fp != fingerprint:
                raise ValueError(
                    f"checkpoint at {path!r} was written by a different "
                    f"training configuration ({saved_fp}) than the one "
                    f"resuming ({fingerprint})"
                )
            model_state = {
                k[len("model/"):]: data[k]
                for k in data.files
                if k.startswith("model/")
            }
            opt_state = {
                k[len("opt/"):]: data[k] for k in data.files if k.startswith("opt/")
            }
            rng_json = str(data["rng_state"])
            order[...] = data["order"]
            epoch = int(data["epoch"])
        self.model.load_state_dict(model_state)
        opt.load_state_dict(opt_state)
        rng.bit_generator.state = json.loads(rng_json)
        _log.info("train.resume", completed_epoch=epoch, path=path)
        return epoch + 1

    def _pos_weight(self, samples: list[RetinaSample]) -> float:
        n_total = sum(len(s.labels) for s in samples)
        n_pos = int(sum(s.labels.sum() for s in samples))
        return positive_class_weight(max(n_total, 2), max(n_pos, 1), self.lam)

    def fit(self, samples: list[RetinaSample]) -> "RetinaTrainer":
        """Train on a list of cascade samples.

        Per-sample state that the seed loop rebuilt on every epoch — the
        index range, the positive/negative split, the tweet/news tensor
        wraps, and (for samples that fit in one mini-batch) the assembled
        feature rows — is hoisted out of the epoch loop.  The RNG stream is
        untouched: only the shuffle and the negative subsampling draw from
        it, exactly as before, so trained weights stay bit-identical to the
        seed schedule (``repro.nn.reference.fit_reference``).
        """
        if not samples:
            raise ValueError("fit requires at least one sample")
        rng = ensure_rng(self.random_state)
        params = self.model.parameters()
        opt = (
            Adam(params, lr=self.lr)
            if self.optimizer_name == "adam"
            else SGD(params, lr=self.lr, momentum=0.9)
        )
        w = self._pos_weight(samples)
        dynamic = self.model.mode == "dynamic"
        batch_size = self.batch_size
        model = self.model
        # ----- hoisted per-sample state (constant across epochs) ---------
        # Samples that fit in one mini-batch may also pre-assemble their
        # rows, but only up to a fixed budget: pinning every tiled matrix
        # would undo the block-structured samples' memory design on large
        # corpora (row assembly itself is cheap; the caching is a bonus).
        row_budget = self.row_cache_elems
        prepared = []
        for sample in samples:
            n = len(sample.labels)
            tweet = Tensor(sample.tweet_vec)
            news = Tensor(sample.news_vecs)
            targets_all = sample.interval_labels if dynamic else sample.labels
            if n > batch_size:
                # Subsampled every step: keep the index split, not the rows.
                pos = np.flatnonzero(sample.labels == 1)
                neg = np.flatnonzero(sample.labels == 0)
                prepared.append((sample, tweet, news, targets_all, pos, neg, None, None))
                continue
            idx = np.arange(n)
            X = targets = None
            rows_elems = n * (
                sample.cand_features.shape[1] + sample.shared_features.shape[0]
            )
            if rows_elems <= row_budget:
                # Whole cascade is one mini-batch: assemble rows and targets
                # once for all epochs (bit-identical to re-assembly).
                row_budget -= rows_elems
                X = Tensor(sample.rows(idx))
                targets = targets_all[idx]
            prepared.append((sample, tweet, news, targets_all, idx, None, X, targets))
        order = np.arange(len(samples))
        fingerprint = ""
        start_epoch = 0
        if self.checkpoint_dir is not None:
            fingerprint = self._fingerprint(len(samples))
            start_epoch = self._resume(opt, rng, order, fingerprint)
        if self.workers is not None:
            return self._fit_sharded(
                prepared, order, rng, opt, w,
                start_epoch=start_epoch, fingerprint=fingerprint,
            )
        # Telemetry only *reads* training state (loss scalars, gradient
        # norms): no RNG draw, no weight write — trained weights stay
        # bit-identical with logging on or off.
        track = _log.enabled_for("info")
        if track:
            _log.info(
                "fit.start",
                n_samples=len(samples),
                epochs=self.epochs,
                mode=self.model.mode,
                optimizer=self.optimizer_name,
                layout={"workers": 1, "shard_size": 1},
            )
        fit_t0 = time.perf_counter()
        for epoch in range(start_epoch, self.epochs):
            epoch_t0 = time.perf_counter()
            loss_sum, steps = 0.0, 0
            rng.shuffle(order)
            for si in order:
                sample, tweet, news, targets_all, pos, neg, X, targets = prepared[si]
                if X is None:
                    if neg is None:
                        idx = pos  # precomputed arange(n): no subsampling
                    else:
                        # Keep all positives, subsample negatives.
                        keep_neg = rng.choice(
                            neg, size=max(1, batch_size - len(pos)), replace=False
                        ) if len(neg) else np.array([], dtype=int)
                        idx = np.concatenate([pos, keep_neg])
                    # Lazy assembly: only the mini-batch rows materialise;
                    # the sample never stores the tiled shared block.
                    X = Tensor(sample.rows(idx))
                    targets = targets_all[idx]
                logits = model(X, tweet, news)
                loss = weighted_bce_with_logits(logits, targets, pos_weight=w)
                opt.zero_grad()
                loss.backward()
                opt.step()
                if track:
                    loss_sum += float(loss.data)
                    steps += 1
            if track:
                epoch_s = time.perf_counter() - epoch_t0
                _log.info(
                    "train.epoch",
                    epoch=epoch,
                    mean_loss=round(loss_sum / max(steps, 1), 6),
                    grad_norm=round(_grad_norm(params), 6),
                    steps=steps,
                    step_ms=round(epoch_s / max(steps, 1) * 1e3, 3),
                    epoch_s=round(epoch_s, 3),
                )
            if self.checkpoint_dir is not None:
                self._save_checkpoint(opt, rng, order, epoch, fingerprint)
        if track:
            _log.info(
                "fit.end",
                epochs=self.epochs,
                duration_s=round(time.perf_counter() - fit_t0, 3),
            )
        return self

    # ------------------------------------------------------ sharded training
    def _fit_sharded(self, prepared, order, rng, opt, w, *,
                     start_epoch: int = 0,
                     fingerprint: str = "") -> "RetinaTrainer":
        """Data-parallel fit: shards of cascades per optimiser step.

        Each step takes the next ``shard_size`` cascades of the shuffled
        epoch order, computes every cascade's gradient against the *same*
        weight snapshot (in parallel across forked workers writing into
        shared-memory gradient rows), reduces the rows sequentially in
        canonical cascade order, and applies one mean-gradient optimiser
        step.  All RNG draws (epoch shuffle, negative subsampling) happen on
        the parent in cascade order, and the reduction order never depends
        on which worker produced a row, so the trained weights are
        bit-identical for every worker count; ``workers=1`` runs the same
        algorithm in-process with no pool.  ``shard_size=1`` makes the
        aggregation trivial and reproduces the seed per-cascade schedule.
        """
        model = self.model
        params = self.model.parameters()
        sizes = [p.data.size for p in params]
        offsets = np.concatenate([[0], np.cumsum(sizes)]).astype(np.int64)
        total_p = int(offsets[-1])
        shard = min(self.shard_size, max(1, len(prepared)))
        n_workers = max(1, int(self.workers))
        if n_workers > 1 and not fork_available():  # pragma: no cover
            n_workers = 1
        batch_size = self.batch_size

        arena = pool = None
        originals: list[np.ndarray] = []
        if n_workers > 1:
            arena = ShmArena(
                ShmArena.nbytes_for(
                    *((p.data.shape, np.float64) for p in params),
                    ((shard, total_p), np.float64),
                )
            )
            # Rebase parameters onto the shared segment: the parent's
            # optimiser steps write in place, so workers always read the
            # current weights through the same physical pages.
            for p in params:
                originals.append(p.data)
                p.data = arena.place(p.data)
            grad_rows = arena.alloc((shard, total_p))
        else:
            grad_rows = np.empty((shard, total_p))

        def _cascade_grad(task):
            """Forward/backward one cascade; write its flat gradient row.

            Returns the per-parameter grad mask plus the loss scalar — the
            loss ride-along feeds epoch telemetry and is a pure read.
            """
            slot, si, idx = task
            sample, tweet, news, targets_all, _pos, _neg, X, targets = prepared[si]
            if X is None:
                X = Tensor(sample.rows(idx))
                targets = targets_all[idx]
            logits = model(X, tweet, news)
            loss = weighted_bce_with_logits(logits, targets, pos_weight=w)
            for p in params:
                p.zero_grad()
            loss.backward()
            row = grad_rows[slot]
            mask = []
            for p, off, size in zip(params, offsets, sizes):
                if p.grad is None:
                    row[off : off + size] = 0.0
                    mask.append(False)
                else:
                    row[off : off + size] = p.grad.ravel()
                    mask.append(True)
            return tuple(mask), float(loss.data)

        track = _log.enabled_for("info")
        if track:
            _log.info(
                "fit.start",
                n_samples=len(prepared),
                epochs=self.epochs,
                mode=self.model.mode,
                optimizer=self.optimizer_name,
                layout={"workers": n_workers, "shard_size": shard},
            )
        fit_t0 = time.perf_counter()
        try:
            if n_workers > 1:
                pool = WorkerPool(n_workers, {"grad": _cascade_grad},
                                  name="repro-train")
            for epoch in range(start_epoch, self.epochs):
                epoch_t0 = time.perf_counter()
                loss_sum, n_cascades, steps, last_norm = 0.0, 0, 0, 0.0
                rng.shuffle(order)
                for start in range(0, len(order), shard):
                    group = order[start : start + shard]
                    tasks = []
                    for slot, si in enumerate(group):
                        sample, _t, _n, _ta, pos, neg, X, _tg = prepared[si]
                        idx = None
                        if X is None:
                            if neg is None:
                                idx = pos  # precomputed arange(n)
                            else:
                                # Same draw, in the same (shuffled cascade)
                                # order, as the serial loop makes.
                                keep_neg = rng.choice(
                                    neg,
                                    size=max(1, batch_size - len(pos)),
                                    replace=False,
                                ) if len(neg) else np.array([], dtype=int)
                                idx = np.concatenate([pos, keep_neg])
                        tasks.append((slot, int(si), idx))
                    if pool is None:
                        results = [_cascade_grad(t) for t in tasks]
                    else:
                        results = pool.map("grad", tasks)
                    masks = [m for m, _ in results]
                    if track:
                        loss_sum += sum(l for _, l in results)
                        n_cascades += len(results)
                        steps += 1
                    # Canonical reduction: rows in shuffled-cascade order,
                    # summed sequentially, then scaled to the mean — the
                    # same float sequence whichever worker filled a row.
                    g = len(group)
                    total = np.array(grad_rows[0], copy=True)
                    for k in range(1, g):
                        total += grad_rows[k]
                    if g > 1:
                        total *= 1.0 / g
                    for j, (p, off, size) in enumerate(zip(params, offsets, sizes)):
                        if any(m[j] for m in masks):
                            p.grad = total[off : off + size].reshape(p.data.shape).copy()
                        else:
                            p.grad = None
                    opt.step()
                    if track:
                        last_norm = _grad_norm(params)
                if track:
                    epoch_s = time.perf_counter() - epoch_t0
                    _log.info(
                        "train.epoch",
                        epoch=epoch,
                        mean_loss=round(loss_sum / max(n_cascades, 1), 6),
                        grad_norm=round(last_norm, 6),
                        steps=steps,
                        step_ms=round(epoch_s / max(steps, 1) * 1e3, 3),
                        epoch_s=round(epoch_s, 3),
                        layout={"workers": n_workers, "shard_size": shard},
                    )
                if self.checkpoint_dir is not None:
                    self._save_checkpoint(opt, rng, order, epoch, fingerprint)
            if track:
                _log.info(
                    "fit.end",
                    epochs=self.epochs,
                    duration_s=round(time.perf_counter() - fit_t0, 3),
                )
        finally:
            if pool is not None:
                pool.close()
            if arena is not None:
                for p, orig in zip(params, originals):
                    orig[...] = p.data  # final weights back into private memory
                    p.data = orig
                arena.release()
        return self

    # ------------------------------------------------------------ inference
    def predict_sample(self, sample: RetinaSample) -> np.ndarray:
        """Per-candidate probabilities for one cascade.

        Static mode: (n,) P(retweet).  Dynamic mode: (n, n_intervals)
        per-interval probabilities.
        """
        return self.model.predict_proba_blocks(
            sample.cand_features,
            sample.shared_features,
            sample.tweet_vec,
            sample.news_vecs,
        )

    def predict_static_scores(self, sample: RetinaSample) -> np.ndarray:
        """(n,) ever-retweets score, collapsing intervals in dynamic mode."""
        proba = self.predict_sample(sample)
        if self.model.mode == "dynamic":
            return RETINA.static_score_from_dynamic(proba)
        return proba

    @staticmethod
    def default_interval_edges() -> np.ndarray:
        """Fig. 8 interval edges in hours (for building dynamic labels)."""
        return interval_edges_hours()

"""RETINA training loop (paper Sec. VI-D).

Mini-batch training with the Eq. 6 weighted BCE.  Defaults follow the
paper's tuning: Adam for static mode (batch 16, lambda 2.0), SGD lr 1e-2
for dynamic mode (batch 32, lambda 2.5).
"""

from __future__ import annotations

import numpy as np

from repro.core.retina.features import RetinaSample
from repro.core.retina.model import RETINA, interval_edges_hours
from repro.nn import Adam, SGD, Tensor
from repro.nn.losses import positive_class_weight, weighted_bce_with_logits
from repro.utils.rng import ensure_rng

__all__ = ["RetinaTrainer"]


class RetinaTrainer:
    """Trains a RETINA model on per-cascade samples.

    Each optimisation step consumes one cascade's candidate batch (the
    candidates of one tweet share the tweet/news context, so the cascade is
    the natural mini-batch; ``batch_size`` caps the candidates per step).
    """

    def __init__(
        self,
        model: RETINA,
        *,
        lam: float | None = None,
        lr: float | None = None,
        optimizer: str | None = None,
        batch_size: int | None = None,
        epochs: int = 3,
        random_state=None,
    ):
        self.model = model
        dynamic = model.mode == "dynamic"
        # Paper defaults per mode.
        self.lam = lam if lam is not None else (2.5 if dynamic else 2.0)
        self.lr = lr if lr is not None else (1e-2 if dynamic else 1e-3)
        self.optimizer_name = optimizer or ("sgd" if dynamic else "adam")
        self.batch_size = batch_size if batch_size is not None else (32 if dynamic else 16)
        self.epochs = epochs
        self.random_state = random_state
        #: Budget (in float64 elements, ~64 MB default) for pre-assembled
        #: mini-batch rows pinned across epochs; beyond it samples fall
        #: back to per-step lazy assembly.  Purely a speed/memory knob —
        #: assembled values are identical either way.
        self.row_cache_elems = 8_000_000
        if self.optimizer_name not in ("adam", "sgd"):
            raise ValueError(f"optimizer must be 'adam' or 'sgd', got {optimizer!r}")

    def _pos_weight(self, samples: list[RetinaSample]) -> float:
        n_total = sum(len(s.labels) for s in samples)
        n_pos = int(sum(s.labels.sum() for s in samples))
        return positive_class_weight(max(n_total, 2), max(n_pos, 1), self.lam)

    def fit(self, samples: list[RetinaSample]) -> "RetinaTrainer":
        """Train on a list of cascade samples.

        Per-sample state that the seed loop rebuilt on every epoch — the
        index range, the positive/negative split, the tweet/news tensor
        wraps, and (for samples that fit in one mini-batch) the assembled
        feature rows — is hoisted out of the epoch loop.  The RNG stream is
        untouched: only the shuffle and the negative subsampling draw from
        it, exactly as before, so trained weights stay bit-identical to the
        seed schedule (``repro.nn.reference.fit_reference``).
        """
        if not samples:
            raise ValueError("fit requires at least one sample")
        rng = ensure_rng(self.random_state)
        params = self.model.parameters()
        opt = (
            Adam(params, lr=self.lr)
            if self.optimizer_name == "adam"
            else SGD(params, lr=self.lr, momentum=0.9)
        )
        w = self._pos_weight(samples)
        dynamic = self.model.mode == "dynamic"
        batch_size = self.batch_size
        model = self.model
        # ----- hoisted per-sample state (constant across epochs) ---------
        # Samples that fit in one mini-batch may also pre-assemble their
        # rows, but only up to a fixed budget: pinning every tiled matrix
        # would undo the block-structured samples' memory design on large
        # corpora (row assembly itself is cheap; the caching is a bonus).
        row_budget = self.row_cache_elems
        prepared = []
        for sample in samples:
            n = len(sample.labels)
            tweet = Tensor(sample.tweet_vec)
            news = Tensor(sample.news_vecs)
            targets_all = sample.interval_labels if dynamic else sample.labels
            if n > batch_size:
                # Subsampled every step: keep the index split, not the rows.
                pos = np.flatnonzero(sample.labels == 1)
                neg = np.flatnonzero(sample.labels == 0)
                prepared.append((sample, tweet, news, targets_all, pos, neg, None, None))
                continue
            idx = np.arange(n)
            X = targets = None
            rows_elems = n * (
                sample.cand_features.shape[1] + sample.shared_features.shape[0]
            )
            if rows_elems <= row_budget:
                # Whole cascade is one mini-batch: assemble rows and targets
                # once for all epochs (bit-identical to re-assembly).
                row_budget -= rows_elems
                X = Tensor(sample.rows(idx))
                targets = targets_all[idx]
            prepared.append((sample, tweet, news, targets_all, idx, None, X, targets))
        order = np.arange(len(samples))
        for _ in range(self.epochs):
            rng.shuffle(order)
            for si in order:
                sample, tweet, news, targets_all, pos, neg, X, targets = prepared[si]
                if X is None:
                    if neg is None:
                        idx = pos  # precomputed arange(n): no subsampling
                    else:
                        # Keep all positives, subsample negatives.
                        keep_neg = rng.choice(
                            neg, size=max(1, batch_size - len(pos)), replace=False
                        ) if len(neg) else np.array([], dtype=int)
                        idx = np.concatenate([pos, keep_neg])
                    # Lazy assembly: only the mini-batch rows materialise;
                    # the sample never stores the tiled shared block.
                    X = Tensor(sample.rows(idx))
                    targets = targets_all[idx]
                logits = model(X, tweet, news)
                loss = weighted_bce_with_logits(logits, targets, pos_weight=w)
                opt.zero_grad()
                loss.backward()
                opt.step()
        return self

    # ------------------------------------------------------------ inference
    def predict_sample(self, sample: RetinaSample) -> np.ndarray:
        """Per-candidate probabilities for one cascade.

        Static mode: (n,) P(retweet).  Dynamic mode: (n, n_intervals)
        per-interval probabilities.
        """
        return self.model.predict_proba_blocks(
            sample.cand_features,
            sample.shared_features,
            sample.tweet_vec,
            sample.news_vecs,
        )

    def predict_static_scores(self, sample: RetinaSample) -> np.ndarray:
        """(n,) ever-retweets score, collapsing intervals in dynamic mode."""
        proba = self.predict_sample(sample)
        if self.model.mode == "dynamic":
            return RETINA.static_score_from_dynamic(proba)
        return proba

    @staticmethod
    def default_interval_edges() -> np.ndarray:
        """Fig. 8 interval edges in hours (for building dynamic labels)."""
        return interval_edges_hours()

"""The paper's primary contribution: hate generation + RETINA."""

from repro.core import hategen, retina

__all__ = ["hategen", "retina"]

"""Feature selection (the paper's top-K rows of Table IV, K=50).

``mutual_info_classif`` estimates MI between each feature and the class
label by discretising continuous features into quantile bins, which is
adequate for ranking features (the only use the paper makes of it).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, TransformerMixin
from repro.utils.validation import check_array, check_consistent_length, check_fitted


def _discretize(col: np.ndarray, n_bins: int) -> np.ndarray:
    uniq = np.unique(col)
    if len(uniq) <= n_bins:
        # Already (near-)categorical: use the raw values.
        return np.searchsorted(uniq, col)
    qs = np.quantile(col, np.linspace(0, 1, n_bins + 1)[1:-1])
    return np.searchsorted(qs, col)


def mutual_info_classif(X, y, *, n_bins: int = 8) -> np.ndarray:
    """Mutual information (nats) between each column of ``X`` and ``y``."""
    X = check_array(X)
    y = np.asarray(y)
    check_consistent_length(X, y)
    n = len(y)
    classes, y_idx = np.unique(y, return_inverse=True)
    py = np.bincount(y_idx) / n
    mi = np.zeros(X.shape[1])
    for j in range(X.shape[1]):
        bins = _discretize(X[:, j], n_bins)
        n_b = int(bins.max()) + 1
        joint = np.zeros((n_b, len(classes)))
        np.add.at(joint, (bins, y_idx), 1.0)
        joint /= n
        px = joint.sum(axis=1)
        with np.errstate(divide="ignore", invalid="ignore"):
            ratio = joint / (px[:, None] * py[None, :])
            term = joint * np.log(ratio)
        mi[j] = float(np.nansum(term))
    return np.maximum(mi, 0.0)


class SelectKBest(BaseEstimator, TransformerMixin):
    """Keep the ``k`` features with the highest score.

    Parameters
    ----------
    score_func:
        Callable ``(X, y) -> scores``; defaults to mutual information as in
        the paper.
    """

    def __init__(self, score_func=mutual_info_classif, k: int = 50):
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.score_func = score_func
        self.k = k
        self.scores_: np.ndarray | None = None
        self.support_: np.ndarray | None = None

    def fit(self, X, y) -> "SelectKBest":
        X = check_array(X)
        self.scores_ = np.asarray(self.score_func(X, y), dtype=np.float64)
        k = min(self.k, X.shape[1])
        top = np.argsort(-self.scores_, kind="stable")[:k]
        support = np.zeros(X.shape[1], dtype=bool)
        support[top] = True
        self.support_ = support
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self, "support_")
        X = check_array(X)
        if X.shape[1] != len(self.support_):
            raise ValueError(
                f"X has {X.shape[1]} features, expected {len(self.support_)}"
            )
        return X[:, self.support_]

    def get_support(self) -> np.ndarray:
        """Boolean mask of selected features."""
        check_fitted(self, "support_")
        return self.support_.copy()

"""Train/test splitting utilities."""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_consistent_length


def train_test_split(
    *arrays,
    test_size: float = 0.2,
    stratify=None,
    shuffle: bool = True,
    random_state=None,
):
    """Split arrays into train/test partitions (80:20 in the paper).

    Returns ``train_a1, test_a1, train_a2, test_a2, ...`` in scikit-learn
    order.  With ``stratify`` given, the class proportions of the stratify
    vector are preserved in both partitions.
    """
    if not arrays:
        raise ValueError("at least one array is required")
    if not 0.0 < test_size < 1.0:
        raise ValueError(f"test_size must be in (0, 1), got {test_size}")
    arrays = [np.asarray(a) for a in arrays]
    check_consistent_length(*arrays)
    n = len(arrays[0])
    rng = ensure_rng(random_state)

    if stratify is not None:
        strat = np.asarray(stratify)
        check_consistent_length(arrays[0], strat)
        test_mask = np.zeros(n, dtype=bool)
        for cls in np.unique(strat):
            idx = np.flatnonzero(strat == cls)
            if shuffle:
                rng.shuffle(idx)
            n_test = max(1, int(round(test_size * len(idx)))) if len(idx) > 1 else 0
            test_mask[idx[:n_test]] = True
        train_idx = np.flatnonzero(~test_mask)
        test_idx = np.flatnonzero(test_mask)
        if shuffle:
            rng.shuffle(train_idx)
            rng.shuffle(test_idx)
    else:
        idx = np.arange(n)
        if shuffle:
            rng.shuffle(idx)
        n_test = int(round(test_size * n))
        test_idx = idx[:n_test]
        train_idx = idx[n_test:]

    out = []
    for a in arrays:
        out.append(a[train_idx])
        out.append(a[test_idx])
    return tuple(out)


class StratifiedKFold:
    """K-fold cross-validation preserving class proportions per fold."""

    def __init__(self, n_splits: int = 5, shuffle: bool = True, random_state=None):
        if n_splits < 2:
            raise ValueError(f"n_splits must be >= 2, got {n_splits}")
        self.n_splits = n_splits
        self.shuffle = shuffle
        self.random_state = random_state

    def split(self, X, y):
        """Yield ``(train_idx, test_idx)`` pairs."""
        y = np.asarray(y)
        rng = ensure_rng(self.random_state)
        folds: list[list[int]] = [[] for _ in range(self.n_splits)]
        for cls in np.unique(y):
            idx = np.flatnonzero(y == cls)
            if self.shuffle:
                rng.shuffle(idx)
            for i, j in enumerate(idx):
                folds[i % self.n_splits].append(int(j))
        all_idx = np.arange(len(y))
        for fold in folds:
            test_idx = np.asarray(sorted(fold))
            train_idx = np.setdiff1d(all_idx, test_idx)
            yield train_idx, test_idx

"""Class-imbalance resampling (paper Sec. VI-C, Table IV rows DS / US+DS).

Both hate generation (~4% positives) and retweeter prediction are sharply
imbalanced; the paper evaluates downsampling the dominant class and
upsampling the dominated class as pre-processing steps.
"""

from __future__ import annotations

import numpy as np

from repro.utils.rng import ensure_rng
from repro.utils.validation import check_consistent_length


def downsample_majority(
    X, y, *, ratio: float = 1.0, random_state=None
) -> tuple[np.ndarray, np.ndarray]:
    """Drop majority-class samples until ``n_major <= ratio * n_minor``.

    Parameters
    ----------
    ratio:
        Target majority:minority ratio after sampling.  ``1.0`` balances the
        classes exactly (up to rounding).
    """
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    X = np.asarray(X)
    y = np.asarray(y)
    check_consistent_length(X, y)
    rng = ensure_rng(random_state)
    classes, counts = np.unique(y, return_counts=True)
    if len(classes) < 2:
        return X.copy(), y.copy()
    major = classes[np.argmax(counts)]
    minor_count = int(counts.min())
    target = max(1, int(round(ratio * minor_count)))
    keep = np.ones(len(y), dtype=bool)
    major_idx = np.flatnonzero(y == major)
    if len(major_idx) > target:
        drop = rng.choice(major_idx, size=len(major_idx) - target, replace=False)
        keep[drop] = False
    return X[keep], y[keep]


def upsample_minority(
    X, y, *, ratio: float = 1.0, random_state=None
) -> tuple[np.ndarray, np.ndarray]:
    """Replicate minority-class samples until ``n_minor >= ratio * n_major``.

    Sampling is with replacement; the original samples are always retained.
    """
    if ratio <= 0:
        raise ValueError(f"ratio must be positive, got {ratio}")
    X = np.asarray(X)
    y = np.asarray(y)
    check_consistent_length(X, y)
    rng = ensure_rng(random_state)
    classes, counts = np.unique(y, return_counts=True)
    if len(classes) < 2:
        return X.copy(), y.copy()
    minor = classes[np.argmin(counts)]
    major_count = int(counts.max())
    target = max(1, int(round(ratio * major_count)))
    minor_idx = np.flatnonzero(y == minor)
    extra_needed = target - len(minor_idx)
    if extra_needed <= 0:
        return X.copy(), y.copy()
    extra = rng.choice(minor_idx, size=extra_needed, replace=True)
    idx = np.concatenate([np.arange(len(y)), extra])
    rng.shuffle(idx)
    return X[idx], y[idx]

"""Kernel support vector classification via simplified SMO.

Implements the ``SVM rbf`` row of Table IV.  Uses Platt's simplified
sequential-minimal-optimisation with per-sample box constraints so that
``class_weight='balanced'`` scales each sample's ``C`` (the libsvm
convention).
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, resolve_class_weight
from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    check_array,
    check_binary_labels,
    check_consistent_length,
    check_fitted,
)


def rbf_kernel(X: np.ndarray, Y: np.ndarray, gamma: float) -> np.ndarray:
    """``K[i, j] = exp(-gamma * ||x_i - y_j||^2)`` computed without loops."""
    x2 = np.sum(X * X, axis=1)[:, None]
    y2 = np.sum(Y * Y, axis=1)[None, :]
    d2 = np.maximum(x2 + y2 - 2.0 * (X @ Y.T), 0.0)
    return np.exp(-gamma * d2)


def linear_kernel(X: np.ndarray, Y: np.ndarray) -> np.ndarray:
    """Plain inner-product kernel."""
    return X @ Y.T


class SVC(BaseEstimator, ClassifierMixin):
    """Binary kernel SVM trained with simplified SMO.

    Parameters
    ----------
    kernel:
        ``'rbf'`` or ``'linear'``.
    gamma:
        RBF width; ``'scale'`` reproduces ``1 / (n_features * X.var())``.
    C:
        Box constraint; multiplied by per-class weights when
        ``class_weight='balanced'``.
    max_passes:
        SMO terminates after this many consecutive passes without an update.
    """

    def __init__(
        self,
        kernel: str = "rbf",
        C: float = 1.0,
        gamma="scale",
        class_weight=None,
        tol: float = 1e-3,
        max_passes: int = 3,
        max_iter: int = 2000,
        random_state=None,
    ):
        if kernel not in ("rbf", "linear"):
            raise ValueError(f"kernel must be 'rbf' or 'linear', got {kernel!r}")
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        self.kernel = kernel
        self.C = C
        self.gamma = gamma
        self.class_weight = class_weight
        self.tol = tol
        self.max_passes = max_passes
        self.max_iter = max_iter
        self.random_state = random_state
        self.support_vectors_: np.ndarray | None = None
        self.dual_coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def _resolve_gamma(self, X: np.ndarray) -> float:
        if self.gamma == "scale":
            var = X.var()
            return 1.0 / (X.shape[1] * var) if var > 0 else 1.0 / X.shape[1]
        if isinstance(self.gamma, (int, float)) and self.gamma > 0:
            return float(self.gamma)
        raise ValueError(f"gamma must be 'scale' or a positive number, got {self.gamma!r}")

    def _kernel_matrix(self, X: np.ndarray, Y: np.ndarray) -> np.ndarray:
        if self.kernel == "rbf":
            return rbf_kernel(X, Y, self._gamma_)
        return linear_kernel(X, Y)

    def fit(self, X, y) -> "SVC":
        X = check_array(X)
        y01 = check_binary_labels(y)
        check_consistent_length(X, y01)
        rng = ensure_rng(self.random_state)
        s = np.where(y01 == 1, 1.0, -1.0)
        n = len(s)
        self._gamma_ = self._resolve_gamma(X)
        K = self._kernel_matrix(X, X)
        per_sample_C = self.C * resolve_class_weight(self.class_weight, y01)

        alpha = np.zeros(n)
        b = 0.0

        def f(i: int) -> float:
            return float((alpha * s) @ K[:, i] + b)

        passes = 0
        it = 0
        while passes < self.max_passes and it < self.max_iter:
            it += 1
            changed = 0
            for i in range(n):
                Ei = f(i) - s[i]
                Ci = per_sample_C[i]
                if (s[i] * Ei < -self.tol and alpha[i] < Ci) or (
                    s[i] * Ei > self.tol and alpha[i] > 0
                ):
                    j = int(rng.integers(0, n - 1))
                    if j >= i:
                        j += 1
                    Ej = f(j) - s[j]
                    Cj = per_sample_C[j]
                    ai_old, aj_old = alpha[i], alpha[j]
                    if s[i] != s[j]:
                        L = max(0.0, aj_old - ai_old)
                        H = min(Cj, Ci + aj_old - ai_old)
                    else:
                        L = max(0.0, ai_old + aj_old - Ci)
                        H = min(Cj, ai_old + aj_old)
                    if L >= H:
                        continue
                    eta = 2.0 * K[i, j] - K[i, i] - K[j, j]
                    if eta >= 0:
                        continue
                    aj = aj_old - s[j] * (Ei - Ej) / eta
                    aj = min(H, max(L, aj))
                    if abs(aj - aj_old) < 1e-6:
                        continue
                    ai = ai_old + s[i] * s[j] * (aj_old - aj)
                    alpha[i], alpha[j] = ai, aj
                    b1 = b - Ei - s[i] * (ai - ai_old) * K[i, i] - s[j] * (aj - aj_old) * K[i, j]
                    b2 = b - Ej - s[i] * (ai - ai_old) * K[i, j] - s[j] * (aj - aj_old) * K[j, j]
                    if 0 < ai < Ci:
                        b = b1
                    elif 0 < aj < Cj:
                        b = b2
                    else:
                        b = (b1 + b2) / 2.0
                    changed += 1
            passes = passes + 1 if changed == 0 else 0

        sv = alpha > 1e-8
        self.support_vectors_ = X[sv]
        self.dual_coef_ = (alpha * s)[sv]
        self.intercept_ = float(b)
        return self

    def decision_function(self, X) -> np.ndarray:
        check_fitted(self, "support_vectors_")
        X = check_array(X)
        if len(self.support_vectors_) == 0:
            return np.full(len(X), self.intercept_)
        K = self._kernel_matrix(X, self.support_vectors_)
        return K @ self.dual_coef_ + self.intercept_

    def predict(self, X) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(np.int64)

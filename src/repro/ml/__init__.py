"""Classical machine-learning substrate (scikit-learn stand-in).

The paper's hate-generation experiments (Sec. IV, Table IV) use scikit-learn
classifiers; that dependency is unavailable offline, so this package
implements the required estimators, transforms, and metrics from scratch on
numpy/scipy.  The estimator API mirrors scikit-learn conventions
(``fit``/``predict``/``predict_proba``/``transform``) so the modelling code
reads the same as the paper's.
"""

from repro.ml.base import BaseEstimator, ClassifierMixin, TransformerMixin, clone
from repro.ml.linear import LogisticRegression, LinearSVC
from repro.ml.svm import SVC
from repro.ml.tree import DecisionTreeClassifier
from repro.ml.ensemble import (
    AdaBoostClassifier,
    GradientBoostingClassifier,
    RandomForestClassifier,
)
from repro.ml.decomposition import PCA
from repro.ml.feature_selection import SelectKBest, mutual_info_classif
from repro.ml.preprocessing import MinMaxScaler, StandardScaler, normalize
from repro.ml.sampling import downsample_majority, upsample_minority
from repro.ml.model_selection import StratifiedKFold, train_test_split

__all__ = [
    "BaseEstimator",
    "ClassifierMixin",
    "TransformerMixin",
    "clone",
    "LogisticRegression",
    "LinearSVC",
    "SVC",
    "DecisionTreeClassifier",
    "RandomForestClassifier",
    "AdaBoostClassifier",
    "GradientBoostingClassifier",
    "PCA",
    "SelectKBest",
    "mutual_info_classif",
    "StandardScaler",
    "MinMaxScaler",
    "normalize",
    "downsample_majority",
    "upsample_minority",
    "train_test_split",
    "StratifiedKFold",
]

"""Feature scaling and normalisation transforms."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, TransformerMixin
from repro.utils.validation import check_array, check_fitted


class StandardScaler(BaseEstimator, TransformerMixin):
    """Standardise features to zero mean and unit variance.

    Constant features (zero variance) are left centred but unscaled, which
    avoids division blow-ups on sparse binary indicator columns.
    """

    def __init__(self, with_mean: bool = True, with_std: bool = True):
        self.with_mean = with_mean
        self.with_std = with_std
        self.mean_: np.ndarray | None = None
        self.scale_: np.ndarray | None = None

    def fit(self, X, y=None) -> "StandardScaler":
        X = check_array(X)
        self.mean_ = X.mean(axis=0) if self.with_mean else np.zeros(X.shape[1])
        if self.with_std:
            std = X.std(axis=0)
            std[std == 0.0] = 1.0
            self.scale_ = std
        else:
            self.scale_ = np.ones(X.shape[1])
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self, "mean_")
        X = check_array(X)
        return (X - self.mean_) / self.scale_

    def inverse_transform(self, X) -> np.ndarray:
        check_fitted(self, "mean_")
        X = check_array(X)
        return X * self.scale_ + self.mean_


class MinMaxScaler(BaseEstimator, TransformerMixin):
    """Rescale features to the ``[0, 1]`` range seen at fit time."""

    def __init__(self):
        self.min_: np.ndarray | None = None
        self.range_: np.ndarray | None = None

    def fit(self, X, y=None) -> "MinMaxScaler":
        X = check_array(X)
        self.min_ = X.min(axis=0)
        rng = X.max(axis=0) - self.min_
        rng[rng == 0.0] = 1.0
        self.range_ = rng
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self, "min_")
        X = check_array(X)
        return (X - self.min_) / self.range_


def normalize(X, norm: str = "l2") -> np.ndarray:
    """Scale each row to unit norm (``l1`` or ``l2``); zero rows pass through."""
    X = check_array(X)
    if norm == "l2":
        norms = np.linalg.norm(X, axis=1)
    elif norm == "l1":
        norms = np.abs(X).sum(axis=1)
    else:
        raise ValueError(f"norm must be 'l1' or 'l2', got {norm!r}")
    norms = np.where(norms == 0.0, 1.0, norms)
    return X / norms[:, None]

"""Linear classifiers: logistic regression and linear SVM.

Both optimise smooth convex objectives with L-BFGS (scipy) and analytic
gradients, supporting per-class weights ('balanced') as used in the paper's
Table III parameter settings.
"""

from __future__ import annotations

import numpy as np
from scipy.optimize import minimize

from repro.ml.base import BaseEstimator, ClassifierMixin, resolve_class_weight
from repro.utils.validation import (
    check_array,
    check_binary_labels,
    check_consistent_length,
    check_fitted,
)


def _sigmoid(z: np.ndarray) -> np.ndarray:
    # Piecewise-stable logistic: avoids overflow in exp for large |z|.
    out = np.empty_like(z)
    pos = z >= 0
    out[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
    ez = np.exp(z[~pos])
    out[~pos] = ez / (1.0 + ez)
    return out


class LogisticRegression(BaseEstimator, ClassifierMixin):
    """Binary logistic regression with L2 regularisation.

    Parameters
    ----------
    C:
        Inverse regularisation strength (scikit-learn convention).
    class_weight:
        ``None``, ``'balanced'``, or a ``{label: weight}`` dict.
    max_iter:
        L-BFGS iteration budget.
    random_state:
        Unused (deterministic solver); accepted for API uniformity with the
        paper's ``Random state=0`` setting.
    """

    def __init__(
        self,
        C: float = 1.0,
        class_weight=None,
        max_iter: int = 200,
        tol: float = 1e-6,
        fit_intercept: bool = True,
        random_state=None,
    ):
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        self.C = C
        self.class_weight = class_weight
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept
        self.random_state = random_state
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y, sample_weight=None) -> "LogisticRegression":
        X = check_array(X)
        y = check_binary_labels(y)
        check_consistent_length(X, y)
        w = resolve_class_weight(self.class_weight, y)
        if sample_weight is not None:
            w = w * np.asarray(sample_weight, dtype=np.float64)
        n, d = X.shape
        t = y.astype(np.float64)
        lam = 1.0 / (self.C * n)

        def objective(theta):
            coef = theta[:d]
            b = theta[d] if self.fit_intercept else 0.0
            z = X @ coef + b
            p = _sigmoid(z)
            eps = 1e-12
            nll = -np.sum(w * (t * np.log(p + eps) + (1 - t) * np.log(1 - p + eps))) / n
            loss = nll + 0.5 * lam * np.dot(coef, coef)
            grad_z = w * (p - t) / n
            grad_coef = X.T @ grad_z + lam * coef
            if self.fit_intercept:
                grad = np.concatenate([grad_coef, [grad_z.sum()]])
            else:
                grad = grad_coef
            return loss, grad

        size = d + 1 if self.fit_intercept else d
        result = minimize(
            objective,
            np.zeros(size),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        self.coef_ = result.x[:d]
        self.intercept_ = float(result.x[d]) if self.fit_intercept else 0.0
        return self

    def decision_function(self, X) -> np.ndarray:
        check_fitted(self, "coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_

    def predict_proba(self, X) -> np.ndarray:
        """``(n, 2)`` array of class probabilities ``[P(y=0), P(y=1)]``."""
        p1 = _sigmoid(self.decision_function(X))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(np.int64)


class LinearSVC(BaseEstimator, ClassifierMixin):
    """Linear SVM with squared-hinge loss and L2 penalty.

    The squared hinge is differentiable, so the same L-BFGS machinery as
    :class:`LogisticRegression` applies.  ``decision_function`` margins are
    used directly as ranking scores where probabilities are not needed.
    """

    def __init__(
        self,
        C: float = 1.0,
        class_weight=None,
        max_iter: int = 200,
        tol: float = 1e-6,
        fit_intercept: bool = True,
    ):
        if C <= 0:
            raise ValueError(f"C must be positive, got {C}")
        self.C = C
        self.class_weight = class_weight
        self.max_iter = max_iter
        self.tol = tol
        self.fit_intercept = fit_intercept
        self.coef_: np.ndarray | None = None
        self.intercept_: float = 0.0

    def fit(self, X, y, sample_weight=None) -> "LinearSVC":
        X = check_array(X)
        y01 = check_binary_labels(y)
        check_consistent_length(X, y01)
        w = resolve_class_weight(self.class_weight, y01)
        if sample_weight is not None:
            w = w * np.asarray(sample_weight, dtype=np.float64)
        s = np.where(y01 == 1, 1.0, -1.0)  # signed labels
        n, d = X.shape

        def objective(theta):
            coef = theta[:d]
            b = theta[d] if self.fit_intercept else 0.0
            margins = s * (X @ coef + b)
            slack = np.maximum(0.0, 1.0 - margins)
            loss = 0.5 * np.dot(coef, coef) + self.C * np.sum(w * slack**2)
            grad_m = -2.0 * self.C * w * slack * s
            grad_coef = coef + X.T @ grad_m
            if self.fit_intercept:
                grad = np.concatenate([grad_coef, [grad_m.sum()]])
            else:
                grad = grad_coef
            return loss, grad

        size = d + 1 if self.fit_intercept else d
        result = minimize(
            objective,
            np.zeros(size),
            jac=True,
            method="L-BFGS-B",
            options={"maxiter": self.max_iter, "gtol": self.tol},
        )
        self.coef_ = result.x[:d]
        self.intercept_ = float(result.x[d]) if self.fit_intercept else 0.0
        return self

    def decision_function(self, X) -> np.ndarray:
        check_fitted(self, "coef_")
        X = check_array(X)
        return X @ self.coef_ + self.intercept_

    def predict(self, X) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(np.int64)

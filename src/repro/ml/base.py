"""Estimator base classes mirroring the scikit-learn parameter protocol."""

from __future__ import annotations

import copy
import inspect

import numpy as np


class BaseEstimator:
    """Base class giving estimators ``get_params``/``set_params``/``repr``.

    Subclasses must accept all hyperparameters as keyword arguments in
    ``__init__`` and store them under the same attribute names, which is what
    makes :func:`clone` possible.
    """

    @classmethod
    def _param_names(cls) -> list[str]:
        sig = inspect.signature(cls.__init__)
        return [
            name
            for name, p in sig.parameters.items()
            if name != "self" and p.kind not in (p.VAR_POSITIONAL, p.VAR_KEYWORD)
        ]

    def get_params(self) -> dict:
        """Return the constructor hyperparameters as a dict."""
        return {name: getattr(self, name) for name in self._param_names()}

    def set_params(self, **params) -> "BaseEstimator":
        """Set hyperparameters by name; unknown names raise ``ValueError``."""
        valid = set(self._param_names())
        for name, value in params.items():
            if name not in valid:
                raise ValueError(
                    f"Invalid parameter {name!r} for {type(self).__name__}; "
                    f"valid parameters are {sorted(valid)}"
                )
            setattr(self, name, value)
        return self

    def __repr__(self) -> str:
        params = ", ".join(f"{k}={v!r}" for k, v in self.get_params().items())
        return f"{type(self).__name__}({params})"


def clone(estimator: BaseEstimator) -> BaseEstimator:
    """Return an unfitted copy of ``estimator`` with the same hyperparameters."""
    return type(estimator)(**copy.deepcopy(estimator.get_params()))


class ClassifierMixin:
    """Adds ``score`` (accuracy) to classifiers."""

    def score(self, X, y) -> float:
        """Mean accuracy of ``predict(X)`` against ``y``."""
        y = np.asarray(y)
        return float(np.mean(self.predict(X) == y))


class TransformerMixin:
    """Adds ``fit_transform`` to transformers."""

    def fit_transform(self, X, y=None):
        """Equivalent to ``fit(X, y).transform(X)``."""
        return self.fit(X, y).transform(X)


def resolve_class_weight(
    class_weight: str | dict | None, y: np.ndarray
) -> np.ndarray:
    """Per-sample weights for a 0/1 label vector.

    ``"balanced"`` reproduces the scikit-learn heuristic
    ``n_samples / (n_classes * count(class))``; a dict maps label -> weight;
    ``None`` gives unit weights.
    """
    y = np.asarray(y)
    weights = np.ones(len(y), dtype=np.float64)
    if class_weight is None:
        return weights
    classes, counts = np.unique(y, return_counts=True)
    if class_weight == "balanced":
        per_class = {
            c: len(y) / (len(classes) * n) for c, n in zip(classes, counts)
        }
    elif isinstance(class_weight, dict):
        per_class = {c: class_weight.get(c, 1.0) for c in classes}
    else:
        raise ValueError(
            f"class_weight must be None, 'balanced', or a dict, got {class_weight!r}"
        )
    for c, w in per_class.items():
        weights[y == c] = w
    return weights

"""Ensemble classifiers: random forest, AdaBoost, gradient boosting.

``AdaBoostClassifier`` (SAMME on stumps) and ``GradientBoostingClassifier``
(the XGBoost stand-in with ``eta``/``reg_alpha`` knobs from Table III) cover
the remaining Table IV rows; ``RandomForestClassifier`` with 50 estimators is
the Table VI feature-engineering baseline.
"""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, resolve_class_weight
from repro.ml.tree import DecisionTreeClassifier, RegressionTree
from repro.utils.rng import ensure_rng, spawn_rngs
from repro.utils.validation import (
    check_array,
    check_binary_labels,
    check_consistent_length,
    check_fitted,
)


class RandomForestClassifier(BaseEstimator, ClassifierMixin):
    """Bagged CART trees over bootstrap samples and random feature subsets."""

    def __init__(
        self,
        n_estimators: int = 50,
        max_depth: int | None = None,
        min_samples_leaf: int = 1,
        max_features="sqrt",
        class_weight=None,
        random_state=None,
    ):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.max_depth = max_depth
        self.min_samples_leaf = min_samples_leaf
        self.max_features = max_features
        self.class_weight = class_weight
        self.random_state = random_state
        self.estimators_: list[DecisionTreeClassifier] | None = None

    def fit(self, X, y) -> "RandomForestClassifier":
        X = check_array(X)
        y = check_binary_labels(y)
        check_consistent_length(X, y)
        rng = ensure_rng(self.random_state)
        child_rngs = spawn_rngs(rng, self.n_estimators)
        n = len(y)
        self.estimators_ = []
        for child in child_rngs:
            idx = child.integers(0, n, size=n)
            tree = DecisionTreeClassifier(
                max_depth=self.max_depth,
                min_samples_leaf=self.min_samples_leaf,
                max_features=self.max_features,
                class_weight=self.class_weight,
                random_state=child,
            )
            tree.fit(X[idx], y[idx])
            self.estimators_.append(tree)
        return self

    def predict_proba(self, X) -> np.ndarray:
        check_fitted(self, "estimators_")
        X = check_array(X)
        probas = np.mean([t.predict_proba(X) for t in self.estimators_], axis=0)
        return probas

    def predict(self, X) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)


class AdaBoostClassifier(BaseEstimator, ClassifierMixin):
    """SAMME AdaBoost over depth-1 decision stumps."""

    def __init__(
        self,
        n_estimators: int = 50,
        learning_rate: float = 1.0,
        base_max_depth: int = 1,
        random_state=None,
    ):
        if n_estimators < 1:
            raise ValueError(f"n_estimators must be >= 1, got {n_estimators}")
        self.n_estimators = n_estimators
        self.learning_rate = learning_rate
        self.base_max_depth = base_max_depth
        self.random_state = random_state
        self.estimators_: list[DecisionTreeClassifier] | None = None
        self.estimator_weights_: list[float] | None = None

    def fit(self, X, y) -> "AdaBoostClassifier":
        X = check_array(X)
        y = check_binary_labels(y)
        check_consistent_length(X, y)
        rng = ensure_rng(self.random_state)
        n = len(y)
        w = np.full(n, 1.0 / n)
        self.estimators_ = []
        self.estimator_weights_ = []
        for _ in range(self.n_estimators):
            stump = DecisionTreeClassifier(
                max_depth=self.base_max_depth, random_state=rng
            )
            stump.fit(X, y, sample_weight=w)
            pred = stump.predict(X)
            miss = pred != y
            err = float(np.sum(w * miss) / np.sum(w))
            if err >= 0.5:
                # Weak learner no better than chance: stop boosting.
                if not self.estimators_:
                    self.estimators_.append(stump)
                    self.estimator_weights_.append(1.0)
                break
            err = max(err, 1e-10)
            alpha = self.learning_rate * 0.5 * np.log((1.0 - err) / err)
            self.estimators_.append(stump)
            self.estimator_weights_.append(float(alpha))
            signed = np.where(miss, 1.0, -1.0)
            w = w * np.exp(alpha * signed)
            w /= w.sum()
            if err < 1e-9:
                break
        return self

    def decision_function(self, X) -> np.ndarray:
        check_fitted(self, "estimators_")
        X = check_array(X)
        agg = np.zeros(len(X))
        for stump, alpha in zip(self.estimators_, self.estimator_weights_):
            agg += alpha * np.where(stump.predict(X) == 1, 1.0, -1.0)
        return agg

    def predict_proba(self, X) -> np.ndarray:
        # Logistic link over the boosted margin, a standard calibration.
        score = self.decision_function(X)
        p1 = 1.0 / (1.0 + np.exp(-2.0 * np.clip(score, -30, 30)))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(np.int64)


class GradientBoostingClassifier(BaseEstimator, ClassifierMixin):
    """XGBoost-style gradient boosting for binary logistic loss.

    Second-order (gradient + hessian) tree boosting with shrinkage ``eta``,
    L1 ``reg_alpha`` and L2 ``reg_lambda`` on leaf weights — the parameter
    surface of the paper's XGBoost rows (Table III: eta=0.4,
    objective=binary:logistic, reg_alpha=0.9).
    """

    def __init__(
        self,
        n_estimators: int = 100,
        eta: float = 0.3,
        max_depth: int = 3,
        reg_lambda: float = 1.0,
        reg_alpha: float = 0.0,
        gamma: float = 0.0,
        min_child_weight: float = 1.0,
        subsample: float = 1.0,
        base_score: float = 0.5,
        random_state=None,
    ):
        if not 0.0 < subsample <= 1.0:
            raise ValueError(f"subsample must be in (0, 1], got {subsample}")
        self.n_estimators = n_estimators
        self.eta = eta
        self.max_depth = max_depth
        self.reg_lambda = reg_lambda
        self.reg_alpha = reg_alpha
        self.gamma = gamma
        self.min_child_weight = min_child_weight
        self.subsample = subsample
        self.base_score = base_score
        self.random_state = random_state
        self.trees_: list[RegressionTree] | None = None
        self.base_margin_: float = 0.0

    def fit(self, X, y, sample_weight=None) -> "GradientBoostingClassifier":
        X = check_array(X)
        y = check_binary_labels(y).astype(np.float64)
        check_consistent_length(X, y)
        rng = ensure_rng(self.random_state)
        sw = (
            np.ones(len(y))
            if sample_weight is None
            else np.asarray(sample_weight, dtype=np.float64)
        )
        p0 = np.clip(self.base_score, 1e-6, 1 - 1e-6)
        self.base_margin_ = float(np.log(p0 / (1.0 - p0)))
        margin = np.full(len(y), self.base_margin_)
        self.trees_ = []
        n = len(y)
        for _ in range(self.n_estimators):
            p = 1.0 / (1.0 + np.exp(-margin))
            g = sw * (p - y)
            h = sw * p * (1.0 - p)
            if self.subsample < 1.0:
                idx = rng.choice(n, size=max(1, int(self.subsample * n)), replace=False)
            else:
                idx = np.arange(n)
            tree = RegressionTree(
                max_depth=self.max_depth,
                min_child_weight=self.min_child_weight,
                reg_lambda=self.reg_lambda,
                reg_alpha=self.reg_alpha,
                gamma=self.gamma,
            )
            tree.fit(X[idx], g[idx], h[idx])
            update = tree.predict(X)
            margin = margin + self.eta * update
            self.trees_.append(tree)
        return self

    def decision_function(self, X) -> np.ndarray:
        check_fitted(self, "trees_")
        X = check_array(X)
        margin = np.full(len(X), self.base_margin_)
        for tree in self.trees_:
            margin += self.eta * tree.predict(X)
        return margin

    def predict_proba(self, X) -> np.ndarray:
        margin = np.clip(self.decision_function(X), -30, 30)
        p1 = 1.0 / (1.0 + np.exp(-margin))
        return np.column_stack([1.0 - p1, p1])

    def predict(self, X) -> np.ndarray:
        return (self.decision_function(X) >= 0.0).astype(np.int64)

"""Dimensionality reduction (the paper's PCA rows of Table IV)."""

from __future__ import annotations

import numpy as np

from repro.ml.base import BaseEstimator, TransformerMixin
from repro.utils.validation import check_array, check_fitted


class PCA(BaseEstimator, TransformerMixin):
    """Principal component analysis via singular value decomposition.

    Paper setting: ``n_components=50`` on the 3,645-dimensional hate-
    generation feature vector (Sec. VI-C).
    """

    def __init__(self, n_components: int = 50):
        if n_components < 1:
            raise ValueError(f"n_components must be >= 1, got {n_components}")
        self.n_components = n_components
        self.mean_: np.ndarray | None = None
        self.components_: np.ndarray | None = None
        self.explained_variance_: np.ndarray | None = None
        self.explained_variance_ratio_: np.ndarray | None = None

    def fit(self, X, y=None) -> "PCA":
        X = check_array(X)
        n, d = X.shape
        k = min(self.n_components, n, d)
        self.mean_ = X.mean(axis=0)
        Xc = X - self.mean_
        # full_matrices=False keeps the SVD at O(n*d*min(n,d)).
        _, s, Vt = np.linalg.svd(Xc, full_matrices=False)
        var = (s**2) / max(n - 1, 1)
        total_var = var.sum()
        self.components_ = Vt[:k]
        self.explained_variance_ = var[:k]
        self.explained_variance_ratio_ = (
            var[:k] / total_var if total_var > 0 else np.zeros(k)
        )
        return self

    def transform(self, X) -> np.ndarray:
        check_fitted(self, "components_")
        X = check_array(X)
        return (X - self.mean_) @ self.components_.T

    def inverse_transform(self, Z) -> np.ndarray:
        check_fitted(self, "components_")
        Z = check_array(Z)
        return Z @ self.components_ + self.mean_

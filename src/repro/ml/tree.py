"""CART decision trees.

``DecisionTreeClassifier`` is the paper's best hate-generation model
(Table IV: macro-F1 0.65 with downsampling, max depth 5).  The module also
provides the second-order regression tree used by the XGBoost-style
gradient-boosting ensemble.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.ml.base import BaseEstimator, ClassifierMixin, resolve_class_weight
from repro.utils.rng import ensure_rng
from repro.utils.validation import (
    check_array,
    check_binary_labels,
    check_consistent_length,
    check_fitted,
)


@dataclass
class _Node:
    """A tree node; leaves have ``feature == -1`` and carry ``value``."""

    feature: int = -1
    threshold: float = 0.0
    left: "_Node | None" = None
    right: "_Node | None" = None
    value: np.ndarray | float | None = None

    @property
    def is_leaf(self) -> bool:
        return self.feature < 0


def _best_gini_split(
    X: np.ndarray,
    w1: np.ndarray,
    w: np.ndarray,
    feature_indices: np.ndarray,
    min_samples_leaf: int,
):
    """Best weighted-gini split over the given features.

    Parameters
    ----------
    w1:
        Per-sample weight for class-1 membership (0 for class-0 samples).
    w:
        Per-sample total weight.

    Returns ``(feature, threshold, gain)`` or ``None`` when no valid split
    exists.  Vectorised per feature: sorts once, then evaluates every
    boundary between distinct values with prefix sums.
    """
    total_w = w.sum()
    total_w1 = w1.sum()
    p = total_w1 / total_w
    parent_impurity = 2.0 * p * (1.0 - p)
    best = None
    best_gain = 1e-12
    n = len(w)
    for j in feature_indices:
        col = X[:, j]
        order = np.argsort(col, kind="stable")
        cs = col[order]
        # Candidate boundaries: positions where the sorted value changes.
        diff = np.diff(cs)
        cand = np.flatnonzero(diff > 0)
        if len(cand) == 0:
            continue
        cw = np.cumsum(w[order])
        cw1 = np.cumsum(w1[order])
        counts_left = cand + 1
        valid = (counts_left >= min_samples_leaf) & (n - counts_left >= min_samples_leaf)
        cand = cand[valid]
        if len(cand) == 0:
            continue
        wl = cw[cand]
        wl1 = cw1[cand]
        wr = total_w - wl
        wr1 = total_w1 - wl1
        pl = wl1 / wl
        pr = wr1 / wr
        gini_l = 2.0 * pl * (1.0 - pl)
        gini_r = 2.0 * pr * (1.0 - pr)
        child = (wl * gini_l + wr * gini_r) / total_w
        gains = parent_impurity - child
        k = int(np.argmax(gains))
        if gains[k] > best_gain:
            best_gain = float(gains[k])
            thr = 0.5 * (cs[cand[k]] + cs[cand[k] + 1])
            best = (int(j), float(thr), best_gain)
    return best


class DecisionTreeClassifier(BaseEstimator, ClassifierMixin):
    """Binary CART with gini impurity and class weighting.

    Matches the paper's configuration surface: ``class_weight='balanced'``,
    ``max_depth=5`` (Table III).  ``max_features`` enables the random-subspace
    behaviour needed by :class:`~repro.ml.ensemble.RandomForestClassifier`.
    """

    def __init__(
        self,
        max_depth: int | None = None,
        min_samples_split: int = 2,
        min_samples_leaf: int = 1,
        class_weight=None,
        max_features: int | float | str | None = None,
        random_state=None,
    ):
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_samples_leaf = min_samples_leaf
        self.class_weight = class_weight
        self.max_features = max_features
        self.random_state = random_state
        self.root_: _Node | None = None
        self.n_features_: int | None = None
        self.feature_importances_: np.ndarray | None = None

    def _n_candidate_features(self, d: int) -> int:
        mf = self.max_features
        if mf is None:
            return d
        if mf == "sqrt":
            return max(1, int(np.sqrt(d)))
        if mf == "log2":
            return max(1, int(np.log2(d)))
        if isinstance(mf, float):
            return max(1, int(mf * d))
        if isinstance(mf, int):
            return max(1, min(mf, d))
        raise ValueError(f"invalid max_features: {mf!r}")

    def fit(self, X, y, sample_weight=None) -> "DecisionTreeClassifier":
        X = check_array(X)
        y = check_binary_labels(y)
        check_consistent_length(X, y)
        w = resolve_class_weight(self.class_weight, y)
        if sample_weight is not None:
            w = w * np.asarray(sample_weight, dtype=np.float64)
        rng = ensure_rng(self.random_state)
        self.n_features_ = X.shape[1]
        self.feature_importances_ = np.zeros(self.n_features_)
        k_feat = self._n_candidate_features(self.n_features_)
        w1 = w * (y == 1)
        self.root_ = self._grow(X, y, w, w1, depth=0, rng=rng, k_feat=k_feat)
        total = self.feature_importances_.sum()
        if total > 0:
            self.feature_importances_ /= total
        return self

    def _leaf(self, w: np.ndarray, w1: np.ndarray) -> _Node:
        total = w.sum()
        p1 = w1.sum() / total if total > 0 else 0.5
        return _Node(value=np.array([1.0 - p1, p1]))

    def _grow(self, X, y, w, w1, depth, rng, k_feat) -> _Node:
        n = len(y)
        if (
            n < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or len(np.unique(y)) < 2
        ):
            return self._leaf(w, w1)
        if k_feat >= self.n_features_:
            feats = np.arange(self.n_features_)
        else:
            feats = rng.choice(self.n_features_, size=k_feat, replace=False)
        split = _best_gini_split(X, w1, w, feats, self.min_samples_leaf)
        if split is None:
            return self._leaf(w, w1)
        j, thr, gain = split
        self.feature_importances_[j] += gain * w.sum()
        mask = X[:, j] <= thr
        left = self._grow(X[mask], y[mask], w[mask], w1[mask], depth + 1, rng, k_feat)
        right = self._grow(X[~mask], y[~mask], w[~mask], w1[~mask], depth + 1, rng, k_feat)
        return _Node(feature=j, threshold=thr, left=left, right=right)

    def _leaf_values(self, X: np.ndarray) -> np.ndarray:
        out = np.empty((len(X), 2))
        for i, x in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if x[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

    def predict_proba(self, X) -> np.ndarray:
        check_fitted(self, "root_")
        X = check_array(X)
        if X.shape[1] != self.n_features_:
            raise ValueError(
                f"X has {X.shape[1]} features, expected {self.n_features_}"
            )
        return self._leaf_values(X)

    def predict(self, X) -> np.ndarray:
        return (self.predict_proba(X)[:, 1] >= 0.5).astype(np.int64)


class RegressionTree:
    """Second-order regression tree for gradient boosting.

    Fits leaf values ``-G / (H + reg_lambda)`` on gradient/hessian statistics
    with XGBoost's gain formula and L1 shrinkage ``reg_alpha`` applied to
    ``G`` (soft thresholding).
    """

    def __init__(
        self,
        max_depth: int = 3,
        min_child_weight: float = 1.0,
        reg_lambda: float = 1.0,
        reg_alpha: float = 0.0,
        gamma: float = 0.0,
    ):
        self.max_depth = max_depth
        self.min_child_weight = min_child_weight
        self.reg_lambda = reg_lambda
        self.reg_alpha = reg_alpha
        self.gamma = gamma
        self.root_: _Node | None = None

    def _shrink(self, G: float) -> float:
        a = self.reg_alpha
        if G > a:
            return G - a
        if G < -a:
            return G + a
        return 0.0

    def _leaf_weight(self, G: float, H: float) -> float:
        return -self._shrink(G) / (H + self.reg_lambda)

    def _score(self, G: float, H: float) -> float:
        g = self._shrink(G)
        return g * g / (H + self.reg_lambda)

    def fit(self, X: np.ndarray, g: np.ndarray, h: np.ndarray) -> "RegressionTree":
        X = np.asarray(X, dtype=np.float64)
        self.root_ = self._grow(X, g, h, depth=0)
        return self

    def _grow(self, X, g, h, depth) -> _Node:
        G, H = float(g.sum()), float(h.sum())
        if depth >= self.max_depth or len(g) < 2:
            return _Node(value=self._leaf_weight(G, H))
        parent_score = self._score(G, H)
        best = None
        best_gain = self.gamma + 1e-12
        for j in range(X.shape[1]):
            col = X[:, j]
            order = np.argsort(col, kind="stable")
            cs = col[order]
            cand = np.flatnonzero(np.diff(cs) > 0)
            if len(cand) == 0:
                continue
            cg = np.cumsum(g[order])
            ch = np.cumsum(h[order])
            GL, HL = cg[cand], ch[cand]
            GR, HR = G - GL, H - HL
            valid = (HL >= self.min_child_weight) & (HR >= self.min_child_weight)
            if not valid.any():
                continue
            shrink = lambda v: np.sign(v) * np.maximum(np.abs(v) - self.reg_alpha, 0.0)
            gains = (
                shrink(GL) ** 2 / (HL + self.reg_lambda)
                + shrink(GR) ** 2 / (HR + self.reg_lambda)
                - parent_score
            ) * 0.5
            gains = np.where(valid, gains, -np.inf)
            k = int(np.argmax(gains))
            if gains[k] > best_gain:
                best_gain = float(gains[k])
                best = (j, 0.5 * (cs[cand[k]] + cs[cand[k] + 1]))
        if best is None:
            return _Node(value=self._leaf_weight(G, H))
        j, thr = best
        mask = X[:, j] <= thr
        return _Node(
            feature=j,
            threshold=thr,
            left=self._grow(X[mask], g[mask], h[mask], depth + 1),
            right=self._grow(X[~mask], g[~mask], h[~mask], depth + 1),
        )

    def predict(self, X: np.ndarray) -> np.ndarray:
        X = np.asarray(X, dtype=np.float64)
        out = np.empty(len(X))
        for i, x in enumerate(X):
            node = self.root_
            while not node.is_leaf:
                node = node.left if x[node.feature] <= node.threshold else node.right
            out[i] = node.value
        return out

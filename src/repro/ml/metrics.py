"""Evaluation metrics used throughout the paper's experiments.

Covers the classification metrics of Tables IV-VI (macro-F1, binary accuracy,
ROC-AUC), the ranking metrics of Figures 5-6 (MAP@k, HITS@k), and
Krippendorff's alpha used to report inter-annotator agreement (Sec. VI-B).
"""

from __future__ import annotations

import numpy as np

from repro.utils.validation import check_consistent_length

__all__ = [
    "accuracy_score",
    "precision_recall_f1",
    "f1_score",
    "macro_f1",
    "confusion_matrix",
    "roc_auc_score",
    "roc_curve",
    "average_precision_at_k",
    "hits_at_k",
    "mean_average_precision_at_k",
    "mean_hits_at_k",
    "krippendorff_alpha",
]


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    check_consistent_length(y_true, y_pred)
    if len(y_true) == 0:
        raise ValueError("accuracy_score requires at least one sample")
    return float(np.mean(y_true == y_pred))


def confusion_matrix(y_true, y_pred, labels=None) -> np.ndarray:
    """Confusion matrix ``C[i, j]`` = count of true label i predicted as j."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    check_consistent_length(y_true, y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    labels = np.asarray(labels)
    index = {label: i for i, label in enumerate(labels.tolist())}
    C = np.zeros((len(labels), len(labels)), dtype=np.int64)
    for t, p in zip(y_true, y_pred):
        C[index[t], index[p]] += 1
    return C


def precision_recall_f1(y_true, y_pred, positive=1) -> tuple[float, float, float]:
    """Precision, recall, and F1 for one class treated as positive.

    Empty denominators yield 0.0 (the usual zero-division convention).
    """
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    check_consistent_length(y_true, y_pred)
    tp = float(np.sum((y_pred == positive) & (y_true == positive)))
    fp = float(np.sum((y_pred == positive) & (y_true != positive)))
    fn = float(np.sum((y_pred != positive) & (y_true == positive)))
    precision = tp / (tp + fp) if tp + fp else 0.0
    recall = tp / (tp + fn) if tp + fn else 0.0
    f1 = 2 * precision * recall / (precision + recall) if precision + recall else 0.0
    return precision, recall, f1


def f1_score(y_true, y_pred, positive=1) -> float:
    """F1 of the positive class."""
    return precision_recall_f1(y_true, y_pred, positive)[2]


def macro_f1(y_true, y_pred, labels=None) -> float:
    """Unweighted mean of per-class F1 scores (the paper's headline metric)."""
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if labels is None:
        labels = np.unique(np.concatenate([y_true, y_pred]))
    scores = [precision_recall_f1(y_true, y_pred, positive=c)[2] for c in labels]
    return float(np.mean(scores))


def roc_curve(y_true, y_score) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
    """False-positive rate, true-positive rate, and thresholds.

    Thresholds are the distinct scores in decreasing order; the curve starts
    at (0, 0) with an implicit +inf threshold.
    """
    y_true = np.asarray(y_true).astype(bool)
    y_score = np.asarray(y_score, dtype=np.float64)
    check_consistent_length(y_true, y_score)
    order = np.argsort(-y_score, kind="stable")
    y_true = y_true[order]
    y_score = y_score[order]
    # Indices where the score value changes mark usable thresholds.
    distinct = np.where(np.diff(y_score))[0]
    idx = np.concatenate([distinct, [len(y_true) - 1]])
    tps = np.cumsum(y_true)[idx].astype(np.float64)
    fps = (idx + 1) - tps
    n_pos = float(y_true.sum())
    n_neg = float(len(y_true) - n_pos)
    tpr = np.concatenate([[0.0], tps / n_pos]) if n_pos else np.zeros(len(idx) + 1)
    fpr = np.concatenate([[0.0], fps / n_neg]) if n_neg else np.zeros(len(idx) + 1)
    thresholds = np.concatenate([[np.inf], y_score[idx]])
    return fpr, tpr, thresholds


def roc_auc_score(y_true, y_score) -> float:
    """Area under the ROC curve (probability a positive outranks a negative).

    Computed with the Mann-Whitney U statistic, which handles ties exactly.
    """
    y_true = np.asarray(y_true).astype(bool)
    y_score = np.asarray(y_score, dtype=np.float64)
    check_consistent_length(y_true, y_score)
    n_pos = int(y_true.sum())
    n_neg = int(len(y_true) - n_pos)
    if n_pos == 0 or n_neg == 0:
        raise ValueError("roc_auc_score requires both classes present")
    from scipy.stats import rankdata

    ranks = rankdata(y_score)
    rank_sum = float(ranks[y_true].sum())
    u = rank_sum - n_pos * (n_pos + 1) / 2.0
    return u / (n_pos * n_neg)


def average_precision_at_k(y_true, y_score, k: int) -> float:
    """Average precision over the top-``k`` ranked items for one query.

    ``AP@k = (1/min(k, P)) * sum_{i<=k, rel_i} precision@i`` where ``P`` is
    the number of relevant items; returns 0 when there are none.
    """
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    y_true = np.asarray(y_true).astype(bool)
    y_score = np.asarray(y_score, dtype=np.float64)
    check_consistent_length(y_true, y_score)
    order = np.argsort(-y_score, kind="stable")[:k]
    rel = y_true[order]
    n_rel_total = int(y_true.sum())
    if n_rel_total == 0:
        return 0.0
    hits = np.cumsum(rel)
    positions = np.arange(1, len(rel) + 1)
    precisions = hits / positions
    ap = float((precisions * rel).sum()) / min(k, n_rel_total)
    return ap


def hits_at_k(y_true, y_score, k: int) -> float:
    """1.0 if any relevant item appears in the top ``k``, else 0.0."""
    if k <= 0:
        raise ValueError(f"k must be positive, got {k}")
    y_true = np.asarray(y_true).astype(bool)
    y_score = np.asarray(y_score, dtype=np.float64)
    check_consistent_length(y_true, y_score)
    order = np.argsort(-y_score, kind="stable")[:k]
    return float(y_true[order].any())


def mean_average_precision_at_k(queries, k: int) -> float:
    """MAP@k over an iterable of ``(y_true, y_score)`` queries."""
    scores = [average_precision_at_k(t, s, k) for t, s in queries]
    if not scores:
        raise ValueError("MAP@k requires at least one query")
    return float(np.mean(scores))


def mean_hits_at_k(queries, k: int) -> float:
    """Mean HITS@k over an iterable of ``(y_true, y_score)`` queries."""
    scores = [hits_at_k(t, s, k) for t, s in queries]
    if not scores:
        raise ValueError("HITS@k requires at least one query")
    return float(np.mean(scores))


def krippendorff_alpha(ratings: np.ndarray) -> float:
    """Krippendorff's alpha for nominal data.

    Parameters
    ----------
    ratings:
        ``(n_annotators, n_items)`` array; ``-1`` marks a missing rating.

    Notes
    -----
    Uses the coincidence-matrix formulation for nominal-level data.  The
    paper reports alpha = 0.58 over three annotators (Sec. VI-B).
    """
    ratings = np.asarray(ratings)
    if ratings.ndim != 2:
        raise ValueError(f"ratings must be 2-d (annotators x items), got {ratings.shape}")
    values = np.unique(ratings[ratings >= 0])
    if len(values) < 2:
        return 1.0
    vindex = {v: i for i, v in enumerate(values.tolist())}
    V = len(values)
    coincidence = np.zeros((V, V), dtype=np.float64)
    for item in ratings.T:
        present = item[item >= 0]
        m = len(present)
        if m < 2:
            continue
        for i in range(m):
            for j in range(m):
                if i == j:
                    continue
                coincidence[vindex[present[i]], vindex[present[j]]] += 1.0 / (m - 1)
    n_total = coincidence.sum()
    if n_total <= 1:
        return 1.0
    n_c = coincidence.sum(axis=1)
    # D_o/D_e for nominal data reduces to this closed form.
    numerator = (n_total - 1.0) * (n_total - np.trace(coincidence))
    denominator = n_total * n_total - np.sum(n_c * n_c)
    if denominator == 0:
        return 1.0
    return float(1.0 - numerator / denominator)

"""Deterministic, seed-driven fault injection (stdlib only).

The serving/training stack threads *named injection points* through its
process/disk/network seams::

    pool.worker_crash   worker process exits mid-task (os._exit)
    pool.worker_hang    worker sleeps far past the request timeout
    pool.worker_slow    worker adds a bounded delay before replying
    paged.read          PagedMatrix block read raises EIO
    paged.write         PagedMatrix block writeback raises EIO
    registry.save       a bundle artifact is truncated after checksumming
    store.append        EventLog append fails before any bytes are written
    store.fsync         EventLog fsync raises EIO (the partial write is rolled back)
    client.reset        a pooled keep-alive socket raises ConnectionResetError
    aio.disconnect      (soak harness) client drops mid-body
    aio.slowloris       (soak harness) client trickles the request head

Each point draws from its own ``random.Random`` stream seeded with
``f"{seed}:{point}"`` and keeps a call counter, so a given
``(seed, point, call index)`` always fires the same way regardless of what
other points do — deterministic schedules without global coordination.

Activation is explicit: either programmatically via :func:`enable` with a
:class:`ChaosPlan`, or through environment knobs parsed on first use::

    REPRO_CHAOS=1                          master switch
    REPRO_CHAOS_SEED=42                    schedule seed (default 0)
    REPRO_CHAOS_POINTS=pool.worker_crash=0.02,paged.read=0.1

``REPRO_CHAOS_POINTS`` is a comma-separated list of ``point=spec`` entries
where ``spec`` is a firing rate in [0, 1], optionally suffixed with ``*N``
to cap total fires (``paged.read=0.5*3``), or an explicit call-index list
``at:3;7`` that fires on exactly those (0-based) calls.

When chaos is disabled (the default) every hook is a no-op guarded by a
single ``is None`` check — no RNG draws, no locks, no counters.
"""

from __future__ import annotations

import errno
import os
import random
import threading
from dataclasses import dataclass, field

__all__ = [
    "ChaosError",
    "ChaosPlan",
    "ChaosRule",
    "active_plan",
    "disable",
    "enable",
    "enabled",
    "io_error",
    "maybe_sleep",
    "should_fire",
    "stats",
]


class ChaosError(Exception):
    """Raised for malformed chaos specs (bad env knobs, bad rules)."""


@dataclass(frozen=True)
class ChaosRule:
    """When a single injection point fires.

    rate     probability per call in [0, 1] (ignored when ``at`` is set)
    at       explicit 0-based call indices that fire (deterministic schedule)
    limit    cap on total fires (None = unlimited)
    delay_s  sleep duration used by :func:`maybe_sleep` points
    """

    rate: float = 0.0
    at: tuple[int, ...] = ()
    limit: int | None = None
    delay_s: float = 0.05

    def __post_init__(self) -> None:
        if not 0.0 <= self.rate <= 1.0:
            raise ChaosError(f"chaos rate must be in [0, 1], got {self.rate}")
        if self.limit is not None and self.limit < 0:
            raise ChaosError(f"chaos limit must be >= 0, got {self.limit}")


@dataclass
class ChaosPlan:
    """A seeded schedule over named injection points."""

    seed: int = 0
    rules: dict[str, ChaosRule] = field(default_factory=dict)

    def __post_init__(self) -> None:
        self._lock = threading.Lock()
        self._streams: dict[str, random.Random] = {}
        self._calls: dict[str, int] = {}
        self._fires: dict[str, int] = {}

    def rule(self, point: str) -> ChaosRule | None:
        return self.rules.get(point)

    def should_fire(self, point: str) -> bool:
        rule = self.rules.get(point)
        if rule is None:
            return False
        with self._lock:
            idx = self._calls.get(point, 0)
            self._calls[point] = idx + 1
            fired = self._fires.get(point, 0)
            if rule.limit is not None and fired >= rule.limit:
                return False
            if rule.at:
                hit = idx in rule.at
            else:
                stream = self._streams.get(point)
                if stream is None:
                    stream = random.Random(f"{self.seed}:{point}")
                    self._streams[point] = stream
                hit = stream.random() < rule.rate
            if hit:
                self._fires[point] = fired + 1
            return hit

    def stats(self) -> dict[str, dict[str, int]]:
        with self._lock:
            return {
                point: {
                    "calls": self._calls.get(point, 0),
                    "fires": self._fires.get(point, 0),
                }
                for point in sorted(set(self._calls) | set(self.rules))
            }


_PLAN: ChaosPlan | None = None
_ENV_CHECKED = False
_ENV_LOCK = threading.Lock()


def _parse_spec(point: str, spec: str) -> ChaosRule:
    spec = spec.strip()
    if spec.startswith("at:"):
        try:
            at = tuple(int(tok) for tok in spec[3:].split(";") if tok)
        except ValueError as exc:
            raise ChaosError(f"bad chaos call-index spec for {point!r}: {spec!r}") from exc
        return ChaosRule(at=at)
    limit: int | None = None
    if "*" in spec:
        spec, _, cap = spec.partition("*")
        try:
            limit = int(cap)
        except ValueError as exc:
            raise ChaosError(f"bad chaos limit for {point!r}: {cap!r}") from exc
    try:
        rate = float(spec)
    except ValueError as exc:
        raise ChaosError(f"bad chaos rate for {point!r}: {spec!r}") from exc
    return ChaosRule(rate=rate, limit=limit)


def plan_from_env(environ: dict[str, str] | None = None) -> ChaosPlan | None:
    """Build a plan from ``REPRO_CHAOS*`` knobs; None when the switch is off."""
    env = os.environ if environ is None else environ
    if env.get("REPRO_CHAOS", "").strip().lower() not in {"1", "true", "yes", "on"}:
        return None
    seed = int(env.get("REPRO_CHAOS_SEED", "0"))
    rules: dict[str, ChaosRule] = {}
    points = env.get("REPRO_CHAOS_POINTS", "")
    for entry in points.split(","):
        entry = entry.strip()
        if not entry:
            continue
        point, sep, spec = entry.partition("=")
        if not sep:
            raise ChaosError(f"bad REPRO_CHAOS_POINTS entry (want point=spec): {entry!r}")
        rules[point.strip()] = _parse_spec(point.strip(), spec)
    return ChaosPlan(seed=seed, rules=rules)


def active_plan() -> ChaosPlan | None:
    """The current plan, resolving env knobs once on first call."""
    global _PLAN, _ENV_CHECKED
    if _PLAN is not None:
        return _PLAN
    if _ENV_CHECKED:
        return None
    with _ENV_LOCK:
        if not _ENV_CHECKED:
            _PLAN = plan_from_env()
            _ENV_CHECKED = True
    return _PLAN


def enable(plan: ChaosPlan) -> None:
    """Install *plan* as the process-wide chaos schedule."""
    global _PLAN, _ENV_CHECKED
    _PLAN = plan
    _ENV_CHECKED = True


def disable() -> None:
    """Turn chaos off (and stop re-reading the env)."""
    global _PLAN, _ENV_CHECKED
    _PLAN = None
    _ENV_CHECKED = True


def reset() -> None:
    """Forget any plan AND re-arm env parsing (test helper)."""
    global _PLAN, _ENV_CHECKED
    _PLAN = None
    _ENV_CHECKED = False


def enabled() -> bool:
    return active_plan() is not None


def should_fire(point: str) -> bool:
    """True when *point* should inject a fault on this call."""
    plan = active_plan()
    if plan is None:
        return False
    return plan.should_fire(point)


def maybe_sleep(point: str, sleep=None) -> bool:
    """Sleep the rule's ``delay_s`` when *point* fires; returns whether it did."""
    plan = active_plan()
    if plan is None:
        return False
    if not plan.should_fire(point):
        return False
    rule = plan.rule(point)
    delay = rule.delay_s if rule is not None else 0.05
    (sleep or _default_sleep)(delay)
    return True


def _default_sleep(seconds: float) -> None:
    import time

    time.sleep(seconds)


def io_error(point: str, path: str | os.PathLike | None = None) -> OSError:
    """A synthetic EIO for *point*, tagged so logs show it was injected."""
    err = OSError(errno.EIO, f"chaos: injected I/O error at {point}")
    if path is not None:
        err.filename = os.fspath(path)
    return err


def stats() -> dict[str, dict[str, int]]:
    """Per-point call/fire counts for the active plan ({} when disabled)."""
    plan = active_plan()
    return plan.stats() if plan is not None else {}

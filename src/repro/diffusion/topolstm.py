"""TopoLSTM baseline (Wang, Zheng, Liu & Chang, ICDM 2017).

Topological recurrent model: the cascade is consumed as a dynamic DAG in
node order (temporal signal via ordering, no timestamps), an LSTM produces
a sender state, and next-user scores combine a *static* score from cascade
history with the recurrent state.  Its defining restriction — kept here —
is that only users seen in training cascades are candidates.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion._neural_base import NeuralDiffusionModel
from repro.nn import LSTMCell, Tensor

__all__ = ["TopoLSTM"]


class TopoLSTM(NeuralDiffusionModel):
    """Sender-receiver LSTM over the cascade prefix."""

    restrict_to_seen = True
    uses_time = False

    def _build(self, rng) -> None:
        self.cell_ = LSTMCell(self.embed_dim, self.hidden_dim, random_state=rng)

    def _modules(self) -> list:
        return [self.cell_]

    def _encode(self, emb: Tensor, deltas: np.ndarray) -> Tensor:
        B, T = emb.shape[0], emb.shape[1]
        h = Tensor(np.zeros((B, self.hidden_dim)))
        c = Tensor(np.zeros((B, self.hidden_dim)))
        for t in range(T):
            h, c = self.cell_(emb[:, t, :], (h, c))
        return h

"""Cascade-level prediction scaffolding.

The paper frames retweeter prediction as binary classification over a
candidate audience: actual retweeters are positives, and negative samples
are inactive users — followers of participants who saw the tweet but did
not engage (Sec. II: "adds negative sampling (in the form on inactive
nodes)").  Every model in Table VI is evaluated on the same candidate sets.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import Cascade
from repro.graph.network import InformationNetwork
from repro.utils.rng import ensure_rng

__all__ = ["CandidateSet", "build_candidate_set", "next_user_samples"]


@dataclass
class CandidateSet:
    """Candidate users for one cascade with ground-truth labels."""

    cascade: Cascade
    users: list[int]
    labels: np.ndarray  # 1 = retweeted

    def __len__(self) -> int:
        return len(self.users)

    @property
    def positives(self) -> list[int]:
        return [u for u, l in zip(self.users, self.labels) if l == 1]


def build_candidate_set(
    cascade: Cascade,
    network: InformationNetwork,
    *,
    n_negatives: int = 30,
    include_nonorganic: bool = True,
    random_state=None,
) -> CandidateSet:
    """Assemble the candidate audience of one cascade.

    Positives: every actual retweeter (optionally excluding those outside
    the visibly organic follower frontier, cf. the paper's "beyond organic
    diffusion" discussion).  Negatives: susceptible users — followers of
    participants who did not retweet — topped up with random inactive users
    when the susceptible pool is small.
    """
    if n_negatives < 1:
        raise ValueError(f"n_negatives must be >= 1, got {n_negatives}")
    rng = ensure_rng(random_state)
    retweeters = [r.user_id for r in cascade.retweets]
    retweeter_set = set(retweeters)
    positives = list(retweeters)
    if not include_nonorganic:
        organic = set(network.followers(cascade.root.user_id))
        frontier = set(organic)
        kept = []
        for uid in retweeters:
            if uid in frontier:
                kept.append(uid)
                frontier.update(network.followers(uid))
        positives = kept
        retweeter_set = set(kept)

    susceptible = network.susceptible_set(cascade.participants)
    pool = sorted(susceptible - retweeter_set - {cascade.root.user_id})
    if len(pool) >= n_negatives:
        negatives = [int(u) for u in rng.choice(pool, size=n_negatives, replace=False)]
    else:
        negatives = list(pool)
        everyone = [
            u
            for u in network.users()
            if u not in retweeter_set
            and u != cascade.root.user_id
            and u not in susceptible
        ]
        extra = n_negatives - len(negatives)
        if everyone and extra > 0:
            take = min(extra, len(everyone))
            negatives.extend(
                int(u) for u in rng.choice(everyone, size=take, replace=False)
            )
    users = positives + negatives
    labels = np.array([1] * len(positives) + [0] * len(negatives), dtype=np.int64)
    return CandidateSet(cascade=cascade, users=users, labels=labels)


def next_user_samples(
    cascades: list[Cascade], max_prefix: int = 10
) -> list[tuple[list[int], int]]:
    """(prefix -> next user) training pairs for the neural baselines.

    Each retweet event yields one sample whose input is the time-ordered
    participant prefix (truncated to the last ``max_prefix`` users).
    """
    if max_prefix < 1:
        raise ValueError(f"max_prefix must be >= 1, got {max_prefix}")
    samples: list[tuple[list[int], int]] = []
    for cascade in cascades:
        participants = cascade.participants
        for i in range(1, len(participants)):
            prefix = participants[max(0, i - max_prefix) : i]
            samples.append((prefix, participants[i]))
    return samples

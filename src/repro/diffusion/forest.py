"""FOREST baseline (Yang, Tang, Sun, Cui & Liu, IJCAI 2019).

Unified micro/macroscopic cascade model.  We implement its microscopic
component: a GRU over the cascade prefix whose per-user inputs are the user
embedding *fused with structural context* — the aggregate embedding of the
user's one-hop neighbourhood sampled from the global follower graph.
Unlike TopoLSTM, every user in the graph is a candidate.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion._neural_base import NeuralDiffusionModel
from repro.nn import Dense, GRUCell, Tensor

__all__ = ["FOREST"]


class FOREST(NeuralDiffusionModel):
    """GRU next-user model with one-hop structural context."""

    restrict_to_seen = False
    uses_time = False

    def __init__(self, *args, n_neighbor_samples: int = 10, **kwargs):
        super().__init__(*args, **kwargs)
        self.n_neighbor_samples = n_neighbor_samples

    def _build(self, rng) -> None:
        self.fuse_ = Dense(2 * self.embed_dim, self.embed_dim, activation="tanh", random_state=rng)
        self.cell_ = GRUCell(self.embed_dim, self.hidden_dim, random_state=rng)
        self._neighbor_cache: dict[int, np.ndarray] = {}
        self._rng = rng

    def _modules(self) -> list:
        return [self.fuse_, self.cell_]

    def _neighbors(self, uid: int) -> np.ndarray:
        """Sampled one/two-hop neighbourhood ids (cached per user)."""
        cached = self._neighbor_cache.get(uid)
        if cached is not None:
            return cached
        if self.network_ is None:
            ids = np.array([uid])
        else:
            hop1 = self.network_.followers(uid) + self.network_.followees(uid)
            if len(hop1) > self.n_neighbor_samples:
                hop1 = list(
                    self._rng.choice(hop1, size=self.n_neighbor_samples, replace=False)
                )
            ids = np.array([uid] + [int(h) for h in hop1])
        self._neighbor_cache[uid] = ids
        return ids

    def _lookup(self, ids: np.ndarray) -> Tensor:
        """User embedding concatenated with mean neighbourhood embedding."""
        own = self.embedding_(ids)  # (B, T, D)
        B, T = ids.shape
        # Build neighbour-context ids as a ragged structure, then average
        # embeddings via a flat lookup to keep everything differentiable.
        flat_ids = []
        spans = []
        for b in range(B):
            for t in range(T):
                uid = int(ids[b, t])
                if uid >= self.n_users_:  # PAD
                    neigh = np.array([self.n_users_])
                else:
                    neigh = self._neighbors(uid)
                spans.append((len(flat_ids), len(neigh)))
                flat_ids.extend(neigh.tolist())
        flat_emb = self.embedding_(np.array(flat_ids))  # (sum, D)
        # Averaging matrix (constant): (B*T, sum)
        M = np.zeros((B * T, len(flat_ids)))
        for k, (lo, n) in enumerate(spans):
            M[k, lo : lo + n] = 1.0 / n
        ctx_emb = (Tensor(M) @ flat_emb).reshape(B, T, self.embed_dim)
        fused = self.fuse_(Tensor.concat([own, ctx_emb], axis=2))
        return fused

    def _encode(self, emb: Tensor, deltas: np.ndarray) -> Tensor:
        B, T = emb.shape[0], emb.shape[1]
        h = Tensor(np.zeros((B, self.hidden_dim)))
        for t in range(T):
            h = self.cell_(emb[:, t, :], h)
        return h

"""Shared machinery for the neural cascade baselines.

TopoLSTM, FOREST, and HIDAN all follow the microscopic-cascade-prediction
recipe: embed users, encode the time-ordered participant prefix, score the
next participant with a softmax over users.  They differ in the encoder and
candidate policy, which subclasses provide.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Cascade
from repro.diffusion.cascade import CandidateSet
from repro.nn import Adam, Embedding, Tensor
from repro.nn.losses import cross_entropy
from repro.utils.rng import ensure_rng
from repro.utils.validation import check_fitted

__all__ = ["NeuralDiffusionModel"]


class NeuralDiffusionModel:
    """Base next-user cascade model.

    Subclasses implement :meth:`_build` (create encoder layers) and
    :meth:`_encode` (map a padded prefix batch to a hidden state).
    """

    #: whether inference restricts candidates to users seen during training
    restrict_to_seen: bool = False
    #: whether the encoder consumes retweet time deltas
    uses_time: bool = False

    def __init__(
        self,
        embed_dim: int = 32,
        hidden_dim: int = 32,
        epochs: int = 4,
        lr: float = 5e-3,
        batch_size: int = 64,
        max_prefix: int = 8,
        random_state=None,
    ):
        if embed_dim < 1 or hidden_dim < 1:
            raise ValueError("embed_dim and hidden_dim must be >= 1")
        self.embed_dim = embed_dim
        self.hidden_dim = hidden_dim
        self.epochs = epochs
        self.lr = lr
        self.batch_size = batch_size
        self.max_prefix = max_prefix
        self.random_state = random_state
        self.n_users_: int | None = None
        self.seen_users_: set[int] | None = None
        self.embedding_: Embedding | None = None
        self.out_proj_: Tensor | None = None

    # ------------------------------------------------------------ subclass
    def _build(self, rng: np.random.Generator) -> None:
        raise NotImplementedError

    def _encode(self, emb: Tensor, deltas: np.ndarray) -> Tensor:
        """Map ``(B, T, D)`` prefix embeddings to ``(B, H)`` states."""
        raise NotImplementedError

    def _modules(self) -> list:
        """Modules holding trainable parameters besides the embedding."""
        raise NotImplementedError

    # ----------------------------------------------------------- training
    def _samples(self, cascades: list[Cascade]):
        """(prefix_ids, prefix_times, next_id) triples."""
        out = []
        for c in cascades:
            ids = c.participants
            times = [c.root.timestamp] + [r.timestamp for r in c.retweets]
            for i in range(1, len(ids)):
                lo = max(0, i - self.max_prefix)
                out.append((ids[lo:i], times[lo:i], ids[i], times[i]))
        return out

    def _pad_batch(self, batch):
        """Left-pad prefixes; returns (ids [B,T], deltas [B,T])."""
        T = self.max_prefix
        B = len(batch)
        ids = np.full((B, T), self.n_users_, dtype=np.int64)  # PAD id
        deltas = np.zeros((B, T))
        for b, (prefix, times, _nxt, nxt_time) in enumerate(batch):
            L = len(prefix)
            ids[b, T - L :] = prefix
            # Time difference from each prefix event to the prediction time.
            deltas[b, T - L :] = np.maximum(nxt_time - np.asarray(times), 0.0)
        return ids, deltas

    def fit(self, cascades: list[Cascade], network=None) -> "NeuralDiffusionModel":
        """Train on next-user transitions from the given cascades."""
        if not cascades:
            raise ValueError("fit requires at least one cascade")
        rng = ensure_rng(self.random_state)
        all_users: set[int] = set()
        for c in cascades:
            all_users.update(c.participants)
        if network is not None:
            all_users.update(network.users())
        self.n_users_ = max(all_users) + 1
        self.seen_users_ = {u for c in cascades for u in c.participants}
        self.network_ = network
        # +1 slot for PAD.
        self.embedding_ = Embedding(self.n_users_ + 1, self.embed_dim, random_state=rng)
        self._build(rng)
        from repro.nn import init

        self.out_proj_ = Tensor(
            init.glorot_uniform(self.hidden_dim, self.n_users_, rng), requires_grad=True
        )
        params = self.embedding_.parameters() + [self.out_proj_]
        for m in self._modules():
            params.extend(m.parameters())
        opt = Adam(params, lr=self.lr)
        samples = self._samples(cascades)
        order = np.arange(len(samples))
        for _ in range(self.epochs):
            rng.shuffle(order)
            for start in range(0, len(order), self.batch_size):
                batch = [samples[i] for i in order[start : start + self.batch_size]]
                ids, deltas = self._pad_batch(batch)
                targets = np.array([b[2] for b in batch])
                emb = self._lookup(ids)
                h = self._encode(emb, deltas)
                logits = h @ self.out_proj_
                loss = cross_entropy(logits, targets)
                opt.zero_grad()
                loss.backward()
                opt.step()
        return self

    def _lookup(self, ids: np.ndarray) -> Tensor:
        return self.embedding_(ids)

    # ---------------------------------------------------------- inference
    def score_users(self, prefix: list[int], prefix_times: list[float], at_time: float) -> np.ndarray:
        """Softmax scores over all users given a cascade prefix."""
        check_fitted(self, "out_proj_")
        prefix = prefix[-self.max_prefix :]
        prefix_times = prefix_times[-self.max_prefix :]
        ids, deltas = self._pad_batch([(prefix, prefix_times, 0, at_time)])
        emb = self._lookup(ids)
        h = self._encode(emb, deltas)
        logits = (h @ self.out_proj_).numpy()[0]
        logits -= logits.max()
        p = np.exp(logits)
        p /= p.sum()
        if self.restrict_to_seen:
            mask = np.zeros(self.n_users_)
            for u in self.seen_users_:
                mask[u] = 1.0
            p = p * mask
        return p

    def predict_proba(self, candidate_set: CandidateSet, network=None) -> np.ndarray:
        """Score each candidate given only the root user (static setting)."""
        root = candidate_set.cascade.root
        scores = self.score_users([root.user_id], [root.timestamp], root.timestamp)
        out = np.zeros(len(candidate_set.users))
        for i, uid in enumerate(candidate_set.users):
            if uid < self.n_users_:
                out[i] = scores[uid]
        return out

"""SIR contagion baseline (Kermack & McKendrick, 1927).

Discrete-time SIR on the follower network: an infectious user transmits to
each susceptible follower with probability ``beta`` per step and recovers
with probability ``gamma``.  Retweet probability of a candidate is the
Monte-Carlo frequency of infection.  ``fit`` grid-searches ``beta`` to match
the mean training-cascade size — the model has no access to content or user
features, which is why Table VI reports macro-F1 0.04.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Cascade
from repro.diffusion.cascade import CandidateSet
from repro.graph.network import InformationNetwork
from repro.utils.rng import ensure_rng

__all__ = ["SIRModel"]


class SIRModel:
    """SIR simulation scorer for retweeter prediction."""

    def __init__(
        self,
        beta: float = 0.05,
        gamma: float = 0.3,
        n_simulations: int = 30,
        max_steps: int = 25,
        random_state=None,
    ):
        if not 0.0 < gamma <= 1.0:
            raise ValueError(f"gamma must be in (0, 1], got {gamma}")
        self.beta = beta
        self.gamma = gamma
        self.n_simulations = n_simulations
        self.max_steps = max_steps
        self.random_state = random_state

    def fit(
        self, cascades: list[Cascade], network: InformationNetwork
    ) -> "SIRModel":
        """Grid-search ``beta`` so simulated sizes match the training mean."""
        if not cascades:
            raise ValueError("fit requires at least one cascade")
        rng = ensure_rng(self.random_state)
        target = float(np.mean([c.size for c in cascades]))
        roots = [c.root.user_id for c in cascades[: min(len(cascades), 20)]]
        best_beta, best_err = self.beta, np.inf
        for beta in (0.005, 0.01, 0.02, 0.05, 0.1, 0.2, 0.4):
            sizes = [
                len(self._simulate(root, network, beta, rng)) for root in roots
            ]
            err = abs(np.mean(sizes) - target)
            if err < best_err:
                best_err, best_beta = err, beta
        self.beta = best_beta
        return self

    def _simulate(
        self, root: int, network: InformationNetwork, beta: float, rng
    ) -> set[int]:
        infected = {root}
        recovered: set[int] = set()
        frontier = {root}
        for _ in range(self.max_steps):
            if not frontier:
                break
            new_infections: set[int] = set()
            still_infectious: set[int] = set()
            for uid in frontier:
                for follower in network.followers(uid):
                    if follower not in infected and follower not in recovered:
                        if rng.random() < beta:
                            new_infections.add(follower)
                if rng.random() < self.gamma:
                    recovered.add(uid)
                else:
                    still_infectious.add(uid)
            infected |= new_infections
            frontier = still_infectious | new_infections
        return infected - {root}

    def predict_proba(
        self, candidate_set: CandidateSet, network: InformationNetwork
    ) -> np.ndarray:
        """Infection frequency per candidate across simulations."""
        rng = ensure_rng(self.random_state)
        root = candidate_set.cascade.root.user_id
        counts = np.zeros(len(candidate_set.users))
        index = {u: i for i, u in enumerate(candidate_set.users)}
        for _ in range(self.n_simulations):
            infected = self._simulate(root, network, self.beta, rng)
            for uid in infected:
                i = index.get(uid)
                if i is not None:
                    counts[i] += 1.0
        return counts / self.n_simulations

    def predict(
        self, candidate_set: CandidateSet, network: InformationNetwork
    ) -> np.ndarray:
        """Binary retweet prediction at the 0.5 infection-frequency mark."""
        return (self.predict_proba(candidate_set, network) >= 0.5).astype(np.int64)

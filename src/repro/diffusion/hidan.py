"""HIDAN baseline (Wang & Li, IJCAI 2019).

Hierarchical diffusion attention: no global graph input; the information a
graph would carry is substituted by *temporal* signals — the time
differences between cascade events.  The encoder attends over the prefix
with weights computed from user embeddings and a time-decay feature, then
pools the attended context.
"""

from __future__ import annotations

import numpy as np

from repro.diffusion._neural_base import NeuralDiffusionModel
from repro.nn import Dense, Tensor
from repro.nn.functional import softmax

__all__ = ["HIDAN"]


class HIDAN(NeuralDiffusionModel):
    """Time-aware attention over the cascade prefix."""

    restrict_to_seen = True  # like TopoLSTM, no global graph
    uses_time = True

    def _build(self, rng) -> None:
        # Attention energy from (embedding, log time delta).
        self.energy_ = Dense(self.embed_dim + 1, 1, random_state=rng)
        self.proj_ = Dense(self.embed_dim, self.hidden_dim, activation="tanh", random_state=rng)

    def _modules(self) -> list:
        return [self.energy_, self.proj_]

    def _encode(self, emb: Tensor, deltas: np.ndarray) -> Tensor:
        B, T = emb.shape[0], emb.shape[1]
        logdt = np.log1p(deltas).reshape(B, T, 1)
        feats = Tensor.concat([emb, Tensor(logdt)], axis=2)  # (B, T, D+1)
        energy = self.energy_(feats).reshape(B, T)  # (B, T)
        weights = softmax(energy, axis=-1)
        context = (weights.reshape(B, T, 1) * emb).sum(axis=1)  # (B, D)
        return self.proj_(context)

"""General Threshold diffusion baseline (Kempe, Kleinberg & Tardos, 2003).

Each user draws a threshold uniformly from [0, 1] and activates once the
weighted fraction of their *followees* that are active exceeds it.
Activation probability per candidate is estimated by Monte Carlo over
threshold draws.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Cascade
from repro.diffusion.cascade import CandidateSet
from repro.graph.network import InformationNetwork
from repro.utils.rng import ensure_rng

__all__ = ["GeneralThresholdModel"]


class GeneralThresholdModel:
    """Threshold-activation scorer for retweeter prediction."""

    def __init__(
        self,
        n_simulations: int = 30,
        max_steps: int = 25,
        influence_scale: float = 1.0,
        random_state=None,
    ):
        if n_simulations < 1:
            raise ValueError(f"n_simulations must be >= 1, got {n_simulations}")
        self.n_simulations = n_simulations
        self.max_steps = max_steps
        self.influence_scale = influence_scale
        self.random_state = random_state

    def fit(self, cascades: list[Cascade], network: InformationNetwork) -> "GeneralThresholdModel":
        """Calibrate the influence scale to match mean training-cascade size."""
        if not cascades:
            raise ValueError("fit requires at least one cascade")
        rng = ensure_rng(self.random_state)
        target = float(np.mean([c.size for c in cascades]))
        roots = [c.root.user_id for c in cascades[: min(len(cascades), 20)]]
        best, best_err = self.influence_scale, np.inf
        for scale in (0.5, 1.0, 2.0, 4.0, 8.0):
            sizes = [len(self._simulate(r, network, scale, rng)) for r in roots]
            err = abs(np.mean(sizes) - target)
            if err < best_err:
                best_err, best = err, scale
        self.influence_scale = best
        return self

    def _simulate(
        self, root: int, network: InformationNetwork, scale: float, rng
    ) -> set[int]:
        active = {root}
        # Lazily drawn thresholds, one per user per simulation.
        thresholds: dict[int, float] = {}
        frontier = set(network.followers(root))
        for _ in range(self.max_steps):
            newly_active: set[int] = set()
            for uid in frontier:
                if uid in active:
                    continue
                followees = network.followees(uid)
                if not followees:
                    continue
                influence = scale * sum(1 for f in followees if f in active) / len(followees)
                thr = thresholds.setdefault(uid, float(rng.random()))
                if influence >= thr:
                    newly_active.add(uid)
            if not newly_active:
                break
            active |= newly_active
            for uid in newly_active:
                frontier.update(network.followers(uid))
            frontier -= active
        return active - {root}

    def predict_proba(
        self, candidate_set: CandidateSet, network: InformationNetwork
    ) -> np.ndarray:
        rng = ensure_rng(self.random_state)
        root = candidate_set.cascade.root.user_id
        counts = np.zeros(len(candidate_set.users))
        index = {u: i for i, u in enumerate(candidate_set.users)}
        for _ in range(self.n_simulations):
            for uid in self._simulate(root, network, self.influence_scale, rng):
                i = index.get(uid)
                if i is not None:
                    counts[i] += 1.0
        return counts / self.n_simulations

    def predict(
        self, candidate_set: CandidateSet, network: InformationNetwork
    ) -> np.ndarray:
        return (self.predict_proba(candidate_set, network) >= 0.5).astype(np.int64)

"""Diffusion models: rudimentary and neural retweet-prediction baselines.

Implements every external baseline of the paper's Table VI:

- :class:`SIRModel` — Kermack-McKendrick susceptible-infectious-recovered
  contagion on the follower network.
- :class:`GeneralThresholdModel` — Kempe-Kleinberg-Tardos threshold
  activation.
- :class:`TopoLSTM` — sender-receiver recurrent scoring over the cascade
  DAG (Wang et al., ICDM 2017), candidates restricted to seen users.
- :class:`FOREST` — recurrent next-user model with structural context
  aggregated from the global graph (Yang et al., IJCAI 2019).
- :class:`HIDAN` — hierarchical temporal-attention model using time
  differences instead of a global graph (Wang & Li, IJCAI 2019).

The neural baselines are faithful-in-spirit reimplementations on
:mod:`repro.nn`; each keeps its defining inductive bias.
"""

from repro.diffusion.cascade import CandidateSet, build_candidate_set, next_user_samples
from repro.diffusion.sir import SIRModel
from repro.diffusion.threshold import GeneralThresholdModel
from repro.diffusion.topolstm import TopoLSTM
from repro.diffusion.forest import FOREST
from repro.diffusion.hidan import HIDAN

__all__ = [
    "CandidateSet",
    "build_candidate_set",
    "next_user_samples",
    "SIRModel",
    "GeneralThresholdModel",
    "TopoLSTM",
    "FOREST",
    "HIDAN",
]

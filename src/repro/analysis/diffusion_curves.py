"""Figure 1: temporal diffusion dynamics of hate vs non-hate.

Computes, over a grid of hours since the root tweet, (a) the average
cumulative retweet count and (b) the average number of susceptible users,
separately for hateful and non-hateful root tweets.
"""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import SyntheticWorld

__all__ = ["diffusion_curves"]


def diffusion_curves(
    world: SyntheticWorld,
    *,
    horizon_hours: float = 200.0,
    n_points: int = 21,
    min_size: int = 1,
) -> dict:
    """Average retweet-growth and susceptible-user curves (Fig. 1).

    Returns ``{"time": grid, "retweets": {"hate": ..., "non_hate": ...},
    "susceptible": {...}}`` with each series of length ``n_points``.
    """
    if n_points < 2:
        raise ValueError(f"n_points must be >= 2, got {n_points}")
    grid = np.linspace(0.0, horizon_hours, n_points)
    groups = {
        "hate": [c for c in world.cascades if c.root.is_hate and c.size >= min_size],
        "non_hate": [
            c for c in world.cascades if not c.root.is_hate and c.size >= min_size
        ],
    }
    retweets: dict[str, np.ndarray] = {}
    susceptible: dict[str, np.ndarray] = {}
    net = world.network
    for name, cascades in groups.items():
        if not cascades:
            retweets[name] = np.zeros(n_points)
            susceptible[name] = np.zeros(n_points)
            continue
        rt = np.zeros(n_points)
        su = np.zeros(n_points)
        for c in cascades:
            t0 = c.root.timestamp
            # Retweet events sorted: one pass per cascade.
            times = np.array([r.timestamp - t0 for r in c.retweets])
            rt += np.searchsorted(np.sort(times), grid, side="right")
            for i, dt in enumerate(grid):
                participants = c.participants_before(t0 + dt)
                su[i] += len(net.susceptible_set(participants))
        retweets[name] = rt / len(cascades)
        susceptible[name] = su / len(cascades)
    return {"time": grid, "retweets": retweets, "susceptible": susceptible}

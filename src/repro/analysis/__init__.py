"""Empirical analyses backing the paper's Figures 1-3 and its
echo-chamber interpretation."""

from repro.analysis.diffusion_curves import diffusion_curves
from repro.analysis.hashtag_hate import hashtag_hate_distribution
from repro.analysis.user_topic import user_topic_hate_matrix
from repro.analysis.echo_chamber import cascade_echo_metrics, echo_chamber_comparison

__all__ = [
    "diffusion_curves",
    "hashtag_hate_distribution",
    "user_topic_hate_matrix",
    "cascade_echo_metrics",
    "echo_chamber_comparison",
]

"""Figure 2: distribution of hateful vs non-hate tweets per hashtag."""

from __future__ import annotations

from repro.data.synthetic import SyntheticWorld

__all__ = ["hashtag_hate_distribution"]


def hashtag_hate_distribution(world: SyntheticWorld) -> dict[str, dict[str, float]]:
    """Per hashtag: hate fraction, non-hate fraction, and tweet count.

    The paper's Fig. 2 shows this fraction varying sharply across hashtags,
    including hashtags sharing a theme (e.g. the Jamia trio).
    """
    out: dict[str, dict[str, float]] = {}
    for spec in world.catalog:
        tweets = [t for t in world.tweets if t.hashtag == spec.tag]
        if not tweets:
            continue
        n_hate = sum(t.is_hate for t in tweets)
        out[spec.tag] = {
            "hate_fraction": n_hate / len(tweets),
            "non_hate_fraction": 1.0 - n_hate / len(tweets),
            "n_tweets": float(len(tweets)),
            "target_pct_hate": spec.pct_hate,
        }
    return out

"""Figure 3: topic-dependence of per-user hatefulness."""

from __future__ import annotations

import numpy as np

from repro.data.synthetic import SyntheticWorld

__all__ = ["user_topic_hate_matrix"]


def user_topic_hate_matrix(
    world: SyntheticWorld, *, n_users: int = 15, min_tweets: int = 3
) -> dict:
    """Hate ratio per (user, hashtag) for the most active hateful users.

    Returns ``{"users": [...], "hashtags": [...], "matrix": (U, H) array}``
    where a cell is the ratio of hateful to total tweets that user posted
    on that hashtag (NaN when the user never used it).  The paper's Fig. 3
    shows strong row-wise variation: the same user is hateful on some
    topics and not others.
    """
    if n_users < 1:
        raise ValueError(f"n_users must be >= 1, got {n_users}")
    # Pool in-window tweets and history (both carry user/hashtag/hate).
    pool = list(world.tweets)
    for items in world.history.values():
        pool.extend(items)
    by_user: dict[int, list] = {}
    for t in pool:
        by_user.setdefault(t.user_id, []).append(t)
    # Rank users by hateful tweet count, keep the most hateful ones.
    hate_counts = {
        uid: sum(t.is_hate for t in tweets) for uid, tweets in by_user.items()
    }
    chosen = [
        uid
        for uid, _ in sorted(hate_counts.items(), key=lambda kv: -kv[1])
        if len(by_user[uid]) >= min_tweets
    ][:n_users]
    hashtags = [spec.tag for spec in world.catalog]
    matrix = np.full((len(chosen), len(hashtags)), np.nan)
    for i, uid in enumerate(chosen):
        for j, tag in enumerate(hashtags):
            tagged = [t for t in by_user[uid] if t.hashtag == tag]
            if tagged:
                matrix[i, j] = sum(t.is_hate for t in tagged) / len(tagged)
    return {"users": chosen, "hashtags": hashtags, "matrix": matrix}

"""Echo-chamber metrics for cascades.

The paper attributes Fig. 1's hate dynamics to echo chambers: "hateful
contents are distributed among a well-connected set of users".  These
metrics quantify that claim per cascade so it can be tested rather than
eyeballed:

- **community entropy**: Shannon entropy of the participants' community
  distribution (low = cascade confined to one community);
- **internal density**: fraction of ordered participant pairs connected by
  a follow edge (high = well-connected set);
- **audience overlap**: 1 - |union of follower sets| / sum of follower-set
  sizes (high = participants share their audience).
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Cascade
from repro.data.synthetic import SyntheticWorld
from repro.graph.network import InformationNetwork

__all__ = ["cascade_echo_metrics", "echo_chamber_comparison"]


def cascade_echo_metrics(
    cascade: Cascade, network: InformationNetwork, communities: np.ndarray
) -> dict[str, float]:
    """Echo-chamber metrics for one cascade (see module docstring)."""
    users = cascade.participants
    n = len(users)
    if n < 2:
        return {"community_entropy": 0.0, "internal_density": 0.0, "audience_overlap": 0.0}
    comms = communities[users]
    _, counts = np.unique(comms, return_counts=True)
    p = counts / counts.sum()
    entropy = float(-(p * np.log(p)).sum())

    edges = 0
    for a in users:
        for b in users:
            if a != b and network.follows(b, a):
                edges += 1
    density = edges / (n * (n - 1))

    follower_sets = [set(network.followers(u)) for u in users]
    total = sum(len(s) for s in follower_sets)
    union = len(set().union(*follower_sets)) if follower_sets else 0
    overlap = 1.0 - union / total if total else 0.0
    return {
        "community_entropy": entropy,
        "internal_density": float(density),
        "audience_overlap": float(overlap),
    }


def echo_chamber_comparison(
    world: SyntheticWorld, *, min_size: int = 3, max_cascades: int = 200
) -> dict[str, dict[str, float]]:
    """Mean echo metrics for hateful vs non-hateful cascades.

    The paper's echo-chamber reading of Fig. 1 predicts hateful cascades
    have lower community entropy, higher internal density, and higher
    audience overlap.
    """
    if min_size < 2:
        raise ValueError(f"min_size must be >= 2, got {min_size}")
    groups = {"hate": [], "non_hate": []}
    for c in world.cascades:
        if c.size < min_size:
            continue
        key = "hate" if c.root.is_hate else "non_hate"
        if len(groups[key]) < max_cascades:
            groups[key].append(c)
    out: dict[str, dict[str, float]] = {}
    for name, cascades in groups.items():
        if not cascades:
            out[name] = {}
            continue
        metrics = [
            cascade_echo_metrics(c, world.network, world.communities) for c in cascades
        ]
        out[name] = {
            key: float(np.mean([m[key] for m in metrics])) for key in metrics[0]
        }
    return out

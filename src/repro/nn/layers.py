"""Neural layers: Dense, LayerNorm, Dropout, Embedding, recurrent cells.

:class:`Module` provides parameter discovery (recursing through attributes,
lists, and dicts) so optimisers can collect every trainable tensor from a
composed model.
"""

from __future__ import annotations

import numpy as np

from repro.nn import fused, init
from repro.nn.functional import dropout_mask
from repro.nn.tensor import Tensor
from repro.utils.rng import ensure_rng

__all__ = [
    "Module",
    "Dense",
    "LayerNorm",
    "Dropout",
    "Embedding",
    "Sequential",
    "RNNCell",
    "GRUCell",
    "LSTMCell",
    "GRU",
]


class Module:
    """Base class for layers and models."""

    def parameters(self) -> list[Tensor]:
        """All trainable tensors reachable from this module."""
        params: list[Tensor] = []
        seen: set[int] = set()

        def collect(obj):
            if isinstance(obj, Tensor):
                if obj.requires_grad and id(obj) not in seen:
                    seen.add(id(obj))
                    params.append(obj)
            elif isinstance(obj, Module):
                for value in vars(obj).values():
                    collect(value)
            elif isinstance(obj, (list, tuple)):
                for value in obj:
                    collect(value)
            elif isinstance(obj, dict):
                for value in obj.values():
                    collect(value)

        collect(self)
        return params

    def zero_grad(self) -> None:
        for p in self.parameters():
            p.zero_grad()

    def n_parameters(self) -> int:
        """Total count of trainable scalars."""
        return sum(p.size for p in self.parameters())

    def _named_parameters(self) -> dict[str, Tensor]:
        """Dotted-path name -> trainable tensor, stable across runs."""
        named: dict[str, Tensor] = {}
        seen: set[int] = set()

        def walk(obj, prefix: str) -> None:
            if isinstance(obj, Tensor):
                if obj.requires_grad and id(obj) not in seen:
                    seen.add(id(obj))
                    named[prefix] = obj
            elif isinstance(obj, Module):
                for key in sorted(vars(obj)):
                    walk(vars(obj)[key], f"{prefix}.{key}" if prefix else key)
            elif isinstance(obj, (list, tuple)):
                for i, value in enumerate(obj):
                    walk(value, f"{prefix}[{i}]")
            elif isinstance(obj, dict):
                for key in sorted(obj):
                    walk(obj[key], f"{prefix}.{key}")

        walk(self, "")
        return named

    def state_dict(self) -> dict:
        """Copy of every trainable parameter keyed by attribute path."""
        return {name: t.data.copy() for name, t in self._named_parameters().items()}

    def load_state_dict(self, state: dict) -> None:
        """Load parameters saved by :meth:`state_dict`.

        Keys and shapes must match exactly — mismatches raise rather than
        silently skipping.
        """
        named = self._named_parameters()
        missing = set(named) - set(state)
        unexpected = set(state) - set(named)
        if missing or unexpected:
            raise ValueError(
                f"state dict mismatch; missing={sorted(missing)[:5]}, "
                f"unexpected={sorted(unexpected)[:5]}"
            )
        for name, tensor in named.items():
            value = np.asarray(state[name], dtype=np.float64)
            if value.shape != tensor.data.shape:
                raise ValueError(
                    f"shape mismatch for {name}: saved {value.shape}, "
                    f"model {tensor.data.shape}"
                )
            tensor.data = value.copy()

    def save(self, path) -> None:
        """Persist the state dict to an ``.npz`` file."""
        np.savez(path, **self.state_dict())

    def load(self, path) -> None:
        """Restore parameters from a :meth:`save`'d ``.npz`` file."""
        with np.load(path) as data:
            self.load_state_dict({k: data[k] for k in data.files})

    def train(self) -> "Module":
        """Enable training mode (dropout active) on this module tree."""
        self._set_mode(True)
        return self

    def eval(self) -> "Module":
        """Enable inference mode (dropout off) on this module tree."""
        self._set_mode(False)
        return self

    def _set_mode(self, training: bool) -> None:
        def walk(obj):
            if isinstance(obj, Module):
                if hasattr(obj, "training"):
                    obj.training = training
                for value in vars(obj).values():
                    walk(value)
            elif isinstance(obj, (list, tuple)):
                for value in obj:
                    walk(value)
            elif isinstance(obj, dict):
                for value in obj.values():
                    walk(value)

        walk(self)

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    def forward(self, *args, **kwargs):
        raise NotImplementedError


class Dense(Module):
    """Fully connected layer ``y = activation(x W + b)``.

    Parameters
    ----------
    activation:
        ``None``, ``'relu'``, ``'tanh'``, or ``'sigmoid'``.
    """

    def __init__(
        self,
        in_features: int,
        out_features: int,
        activation: str | None = None,
        bias: bool = True,
        random_state=None,
    ):
        if activation not in (None, "relu", "tanh", "sigmoid"):
            raise ValueError(f"unknown activation {activation!r}")
        rng = ensure_rng(random_state)
        self.in_features = in_features
        self.out_features = out_features
        self.activation = activation
        self.W = Tensor(init.glorot_uniform(in_features, out_features, rng), requires_grad=True)
        self.b = Tensor(np.zeros(out_features), requires_grad=True) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        # One fused affine(+activation) node instead of a matmul->add->act
        # chain; bit-identical to the seed path (repro.nn.reference).
        return fused.affine(x, self.W, self.b, self.activation)


class LayerNorm(Module):
    """Layer normalisation over the last axis (used before RETINA's FF stacks)."""

    def __init__(self, dim: int, eps: float = 1e-5):
        self.dim = dim
        self.eps = eps
        self.gamma = Tensor(np.ones(dim), requires_grad=True)
        self.beta = Tensor(np.zeros(dim), requires_grad=True)

    def forward(self, x: Tensor) -> Tensor:
        return fused.layer_norm(x, self.gamma, self.beta, self.eps)


class Dropout(Module):
    """Inverted dropout; identity in eval mode."""

    def __init__(self, p: float = 0.5, random_state=None):
        if not 0.0 <= p < 1.0:
            raise ValueError(f"dropout p must be in [0, 1), got {p}")
        self.p = p
        self.training = True
        self._rng = ensure_rng(random_state)

    def forward(self, x: Tensor) -> Tensor:
        if not self.training or self.p == 0.0:
            return x
        mask = dropout_mask(x.shape, self.p, self._rng)
        return x * Tensor(mask)


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, dim: int, random_state=None):
        rng = ensure_rng(random_state)
        self.num_embeddings = num_embeddings
        self.dim = dim
        self.weight = Tensor(
            rng.normal(scale=1.0 / np.sqrt(dim), size=(num_embeddings, dim)),
            requires_grad=True,
        )

    def forward(self, ids) -> Tensor:
        ids = np.asarray(ids, dtype=np.int64)
        if ids.size and (ids.min() < 0 or ids.max() >= self.num_embeddings):
            raise IndexError(
                f"embedding ids out of range [0, {self.num_embeddings})"
            )
        return self.weight[ids]


class Sequential(Module):
    """Apply layers in order."""

    def __init__(self, *layers: Module):
        self.layers = list(layers)

    def forward(self, x: Tensor) -> Tensor:
        for layer in self.layers:
            x = layer(x)
        return x


class RNNCell(Module):
    """Elman RNN cell: ``h' = tanh(x W + h U + b)``."""

    def __init__(self, input_size: int, hidden_size: int, random_state=None):
        rng = ensure_rng(random_state)
        self.input_size = input_size
        self.hidden_size = hidden_size
        self.W = Tensor(init.glorot_uniform(input_size, hidden_size, rng), requires_grad=True)
        self.U = Tensor(init.orthogonal(hidden_size, hidden_size, rng), requires_grad=True)
        self.b = Tensor(np.zeros(hidden_size), requires_grad=True)

    def project_input(self, x: Tensor) -> fused.RNNProjection:
        """Precompute ``x @ W`` for reuse across an unroll over fixed input."""
        return fused.rnn_project(self, x)

    def step(self, proj: fused.RNNProjection, h: Tensor) -> Tensor:
        """One fused step on a precomputed input projection."""
        return fused.rnn_step(self, proj, h)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        return fused.rnn_step(self, fused.rnn_project(self, x), h)


class GRUCell(Module):
    """Gated recurrent unit cell (the recurrence of RETINA-D, Fig. 4c)."""

    def __init__(self, input_size: int, hidden_size: int, random_state=None):
        rng = ensure_rng(random_state)
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        self.Wz = Tensor(init.glorot_uniform(input_size, h, rng), requires_grad=True)
        self.Uz = Tensor(init.orthogonal(h, h, rng), requires_grad=True)
        self.bz = Tensor(np.zeros(h), requires_grad=True)
        self.Wr = Tensor(init.glorot_uniform(input_size, h, rng), requires_grad=True)
        self.Ur = Tensor(init.orthogonal(h, h, rng), requires_grad=True)
        self.br = Tensor(np.zeros(h), requires_grad=True)
        self.Wn = Tensor(init.glorot_uniform(input_size, h, rng), requires_grad=True)
        self.Un = Tensor(init.orthogonal(h, h, rng), requires_grad=True)
        self.bn = Tensor(np.zeros(h), requires_grad=True)

    def project_input(self, x: Tensor) -> fused.GRUProjection:
        """Precompute ``x @ W_{z,r,n}`` for reuse across an unroll over fixed
        input (RETINA-D feeds the same ``joint`` to all intervals)."""
        return fused.gru_project(self, x)

    def step(self, proj: fused.GRUProjection, h: Tensor) -> Tensor:
        """One fused step on a precomputed input projection."""
        return fused.gru_step(self, proj, h)

    def forward(self, x: Tensor, h: Tensor) -> Tensor:
        return fused.gru_step(self, fused.gru_project(self, x), h)


class LSTMCell(Module):
    """LSTM cell (the paper notes LSTM gave no gain over GRU; kept for the ablation)."""

    def __init__(self, input_size: int, hidden_size: int, random_state=None):
        rng = ensure_rng(random_state)
        self.input_size = input_size
        self.hidden_size = hidden_size
        h = hidden_size
        self.Wi = Tensor(init.glorot_uniform(input_size, 4 * h, rng), requires_grad=True)
        self.Ui = Tensor(init.glorot_uniform(h, 4 * h, rng), requires_grad=True)
        self.bi = Tensor(np.zeros(4 * h), requires_grad=True)

    def project_input(self, x: Tensor) -> fused.LSTMProjection:
        """Precompute ``x @ Wi`` for reuse across an unroll over fixed input."""
        return fused.lstm_project(self, x)

    def step(
        self, proj: fused.LSTMProjection, state: tuple[Tensor, Tensor]
    ) -> tuple[Tensor, Tensor]:
        """One fused step on a precomputed input projection."""
        return fused.lstm_step(self, proj, state)

    def forward(self, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
        return fused.lstm_step(self, fused.lstm_project(self, x), state)


class GRU(Module):
    """GRU over a time-major sequence of inputs.

    ``forward`` consumes ``(T, batch, input)`` and returns the stacked hidden
    states ``(T, batch, hidden)``.
    """

    def __init__(self, input_size: int, hidden_size: int, random_state=None):
        self.cell = GRUCell(input_size, hidden_size, random_state=random_state)
        self.hidden_size = hidden_size

    def forward(self, xs: Tensor, h0: Tensor | None = None) -> Tensor:
        T, batch = xs.shape[0], xs.shape[1]
        h = h0 if h0 is not None else Tensor(np.zeros((batch, self.hidden_size)))
        outputs = []
        for t in range(T):
            h = self.cell(xs[t], h)
            outputs.append(h)
        return Tensor.stack(outputs, axis=0)

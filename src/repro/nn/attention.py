"""Scaled dot-product exogenous attention (paper Sec. V-B, Eqs. 3-5).

Given the tweet feature ``X_T`` (query source) and the news feature sequence
``X_N`` (key/value source), computes::

    Q_T = X_T W_Q                        (batch, hdim)
    K_N = X_N W_K                        (batch, k, hdim)
    V_N = X_N W_V                        (batch, k, hdim)
    A   = softmax(Q_T . K_N / sqrt(hdim))  over the news axis
    X_TN = sum_i A[..., i] * V_N[..., i, :]

which is exactly the paper's tensor-contraction formulation with the
``hdim^-0.5`` scaling it adopts from Vaswani et al.
"""

from __future__ import annotations

import numpy as np

from repro.nn import fused, init
from repro.nn.layers import Module
from repro.nn.tensor import Tensor
from repro.utils.rng import ensure_rng

__all__ = ["ScaledDotProductAttention"]


class ScaledDotProductAttention(Module):
    """Exogenous attention pooling a news sequence conditioned on a tweet.

    Parameters
    ----------
    tweet_dim:
        Dimensionality of the tweet feature vector ``X_T``.
    news_dim:
        Dimensionality of each news feature vector in ``X_N``.
    hdim:
        Shared projection width (paper: 64).
    """

    def __init__(self, tweet_dim: int, news_dim: int, hdim: int = 64, random_state=None):
        if hdim < 1:
            raise ValueError(f"hdim must be >= 1, got {hdim}")
        rng = ensure_rng(random_state)
        self.tweet_dim = tweet_dim
        self.news_dim = news_dim
        self.hdim = hdim
        self.WQ = Tensor(init.glorot_uniform(tweet_dim, hdim, rng), requires_grad=True)
        self.WK = Tensor(init.glorot_uniform(news_dim, hdim, rng), requires_grad=True)
        self.WV = Tensor(init.glorot_uniform(news_dim, hdim, rng), requires_grad=True)

    def forward(self, tweet: Tensor, news: Tensor, return_weights: bool = False):
        """Attend over news.

        Parameters
        ----------
        tweet:
            ``(batch, tweet_dim)`` tweet features.
        news:
            ``(batch, k, news_dim)`` news sequence features.

        Returns
        -------
        ``(batch, hdim)`` attended exogenous representation ``X_TN``; with
        ``return_weights=True`` also the ``(batch, k)`` attention weights
        (a constant tensor — gradients flow through the attended output).
        """
        if tweet.ndim != 2 or news.ndim != 3:
            raise ValueError(
                f"expected tweet (batch, d) and news (batch, k, d), got {tweet.shape} and {news.shape}"
            )
        # One fused node for projections + contraction + softmax + pooling;
        # bit-identical to the seed chain (repro.nn.reference).
        attended, weights_data = fused.scaled_dot_attention(
            tweet, news, self.WQ, self.WK, self.WV, self.hdim
        )
        if return_weights:
            return attended, Tensor(weights_data)
        return attended

"""Reverse-mode autograd tensor.

A :class:`Tensor` wraps a numpy array and records the operations applied to
it; :meth:`Tensor.backward` walks the tape in reverse topological order and
accumulates gradients.  Broadcasting is handled by summing gradients back
over broadcast axes (:func:`_unbroadcast`).

The op set is the minimum RETINA and the diffusion baselines need:
arithmetic (with broadcasting), matmul (including stacked/batched), exp,
log, tanh, sigmoid, relu, power, sum/mean/max reductions, reshape,
transpose, slicing, and concatenation.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor"]


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (inverse of numpy broadcasting)."""
    if grad.shape == shape:  # overwhelmingly common: no broadcasting happened
        return grad
    # Remove leading broadcast axes.
    while grad.ndim > len(shape):
        grad = grad.sum(axis=0)
    # Sum over axes that were size-1 in the original.
    for axis, size in enumerate(shape):
        if size == 1 and grad.shape[axis] != 1:
            grad = grad.sum(axis=axis, keepdims=True)
    return grad


def _as_tensor(value) -> "Tensor":
    if isinstance(value, Tensor):
        return value
    return Tensor(np.asarray(value, dtype=np.float64), requires_grad=False)


class Tensor:
    """A numpy array with a gradient tape.

    Parameters
    ----------
    data:
        Array (or nested list / scalar) of float64 values.
    requires_grad:
        Whether gradients should flow to this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_prev", "_op")

    def __init__(self, data, requires_grad: bool = False, _prev=(), _op: str = ""):
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad)
        self._backward = None
        self._prev = tuple(_prev)
        self._op = _op

    # ------------------------------------------------------------- plumbing
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        return f"Tensor(shape={self.shape}, requires_grad={self.requires_grad})"

    def item(self) -> float:
        return float(self.data)

    def numpy(self) -> np.ndarray:
        """The underlying array (a copy, so callers cannot corrupt the tape)."""
        return self.data.copy()

    def detach(self) -> "Tensor":
        """A new leaf tensor sharing no tape history."""
        return Tensor(self.data.copy(), requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def _accumulate(self, grad: np.ndarray) -> None:
        if self.grad is None:
            # First contribution: own a copy instead of zeros-then-add (one
            # array pass saved per tensor per backward; only -0.0 vs +0.0
            # can differ from 0 + grad, which compares equal and cannot
            # propagate to a nonzero difference through the op set).
            self.grad = np.array(grad, dtype=np.float64)
            if self.grad.shape != self.data.shape:
                self.grad = np.broadcast_to(grad, self.data.shape).astype(np.float64)
        else:
            self.grad += grad

    def _accumulate_owned(self, grad: np.ndarray) -> None:
        """Like :meth:`_accumulate` for a freshly-allocated ``grad`` the
        caller promises never to reuse: the first contribution is stored by
        reference instead of copied.  Fused backward closures use this for
        their matmul/reduction results."""
        if self.grad is None:
            self.grad = grad
        else:
            self.grad += grad

    @staticmethod
    def _result(data, parents, op, backward) -> "Tensor":
        requires = any(p.requires_grad for p in parents)
        out = Tensor(data, requires_grad=requires, _prev=parents if requires else (), _op=op)
        if requires:
            out._backward = backward
        return out

    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor.

        ``grad`` defaults to 1 and must be supplied for non-scalar outputs.
        """
        if not self.requires_grad:
            raise RuntimeError("backward() on a tensor that does not require grad")
        if grad is None:
            if self.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar backward()")
            grad = np.ones_like(self.data)
        grad = np.asarray(grad, dtype=np.float64)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._prev:
                if parent.requires_grad and id(parent) not in visited:
                    stack.append((parent, False))

        self._accumulate(grad)
        for node in reversed(topo):
            if node._backward is not None and node.grad is not None:
                node._backward(node.grad)

    # ----------------------------------------------------------- arithmetic
    def __add__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data + other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad, other.shape))

        return self._result(out_data, (self, other), "+", backward)

    __radd__ = __add__

    def __mul__(self, other) -> "Tensor":
        other = _as_tensor(other)
        out_data = self.data * other.data

        def backward(grad):
            if self.requires_grad:
                self._accumulate(_unbroadcast(grad * other.data, self.shape))
            if other.requires_grad:
                other._accumulate(_unbroadcast(grad * self.data, other.shape))

        return self._result(out_data, (self, other), "*", backward)

    __rmul__ = __mul__

    def __neg__(self) -> "Tensor":
        return self * -1.0

    def __sub__(self, other) -> "Tensor":
        return self + (-_as_tensor(other))

    def __rsub__(self, other) -> "Tensor":
        return _as_tensor(other) + (-self)

    def __truediv__(self, other) -> "Tensor":
        return self * _as_tensor(other).pow(-1.0)

    def __rtruediv__(self, other) -> "Tensor":
        return _as_tensor(other) * self.pow(-1.0)

    def pow(self, exponent: float) -> "Tensor":
        """Elementwise power with a constant exponent."""
        out_data = self.data**exponent

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * exponent * self.data ** (exponent - 1.0))

        return self._result(out_data, (self,), f"**{exponent}", backward)

    def __pow__(self, exponent: float) -> "Tensor":
        return self.pow(exponent)

    def matmul(self, other) -> "Tensor":
        """Matrix product; supports stacked (batched) operands like numpy."""
        other = _as_tensor(other)
        out_data = self.data @ other.data

        def backward(grad):
            if self.requires_grad:
                g = grad @ np.swapaxes(other.data, -1, -2)
                self._accumulate(_unbroadcast(g, self.shape))
            if other.requires_grad:
                g = np.swapaxes(self.data, -1, -2) @ grad
                other._accumulate(_unbroadcast(g, other.shape))

        return self._result(out_data, (self, other), "@", backward)

    __matmul__ = matmul

    # ------------------------------------------------------------ unary ops
    def exp(self) -> "Tensor":
        out_data = np.exp(np.clip(self.data, -700, 700))

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data)

        return self._result(out_data, (self,), "exp", backward)

    def log(self) -> "Tensor":
        out_data = np.log(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad / self.data)

        return self._result(out_data, (self,), "log", backward)

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * (1.0 - out_data**2))

        return self._result(out_data, (self,), "tanh", backward)

    def sigmoid(self) -> "Tensor":
        z = self.data
        out_data = np.empty_like(z)
        pos = z >= 0
        out_data[pos] = 1.0 / (1.0 + np.exp(-z[pos]))
        ez = np.exp(z[~pos])
        out_data[~pos] = ez / (1.0 + ez)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * out_data * (1.0 - out_data))

        return self._result(out_data, (self,), "sigmoid", backward)

    def relu(self) -> "Tensor":
        mask = self.data > 0
        out_data = self.data * mask

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad * mask)

        return self._result(out_data, (self,), "relu", backward)

    # ----------------------------------------------------------- reductions
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            if axis is not None and not keepdims:
                g = np.expand_dims(g, axis=axis)
            self._accumulate(np.broadcast_to(g, self.shape).copy())

        return self._result(out_data, (self,), "sum", backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.size
        elif isinstance(axis, tuple):
            count = int(np.prod([self.shape[a] for a in axis]))
        else:
            count = self.shape[axis]
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def max(self, axis: int, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(grad):
            if not self.requires_grad:
                return
            g = np.asarray(grad)
            expanded = g if keepdims else np.expand_dims(g, axis=axis)
            maxed = out_data if keepdims else np.expand_dims(out_data, axis=axis)
            mask = self.data == maxed
            # Split gradient equally among ties, matching subgradient choice.
            counts = mask.sum(axis=axis, keepdims=True)
            self._accumulate(mask * expanded / counts)

        return self._result(out_data, (self,), "max", backward)

    # --------------------------------------------------------- shape fiddling
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        original = self.shape

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.reshape(original))

        return self._result(out_data, (self,), "reshape", backward)

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        out_data = self.data.transpose(axes)
        inverse = np.argsort(axes)

        def backward(grad):
            if self.requires_grad:
                self._accumulate(grad.transpose(inverse))

        return self._result(out_data, (self,), "transpose", backward)

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(grad):
            if self.requires_grad:
                full = np.zeros_like(self.data)
                np.add.at(full, key, grad)
                self._accumulate(full)

        return self._result(out_data, (self,), "slice", backward)

    @staticmethod
    def concat(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        """Concatenate along ``axis`` with gradient routing back to parts."""
        tensors = [_as_tensor(t) for t in tensors]
        out_data = np.concatenate([t.data for t in tensors], axis=axis)
        sizes = [t.shape[axis] for t in tensors]
        offsets = np.cumsum([0] + sizes)

        def backward(grad):
            for t, lo, hi in zip(tensors, offsets[:-1], offsets[1:]):
                if t.requires_grad:
                    index = [slice(None)] * grad.ndim
                    index[axis] = slice(lo, hi)
                    t._accumulate(grad[tuple(index)])

        return Tensor._result(out_data, tuple(tensors), "concat", backward)

    @staticmethod
    def stack(tensors: list["Tensor"], axis: int = 0) -> "Tensor":
        """Stack tensors along a new axis."""
        tensors = [_as_tensor(t) for t in tensors]
        out_data = np.stack([t.data for t in tensors], axis=axis)

        def backward(grad):
            for i, t in enumerate(tensors):
                if t.requires_grad:
                    t._accumulate(np.take(grad, i, axis=axis))

        return Tensor._result(out_data, tuple(tensors), "stack", backward)

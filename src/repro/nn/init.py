"""Weight initialisation schemes."""

from __future__ import annotations

import numpy as np


def glorot_uniform(fan_in: int, fan_out: int, rng: np.random.Generator) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = sqrt(6 / (fan_in + fan_out))."""
    limit = np.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-limit, limit, size=(fan_in, fan_out))


def orthogonal(n: int, m: int, rng: np.random.Generator) -> np.ndarray:
    """Orthogonal initialisation (used for recurrent kernels)."""
    a = rng.normal(size=(max(n, m), min(n, m)))
    q, _ = np.linalg.qr(a)
    q = q[:n, :m] if q.shape[0] >= n else q.T[:n, :m]
    return q


def zeros(*shape) -> np.ndarray:
    """Zero initialisation (biases)."""
    return np.zeros(shape)

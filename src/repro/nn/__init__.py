"""Minimal reverse-mode autograd neural framework on numpy.

The paper implements RETINA in TensorFlow/Keras; that stack is unavailable
offline, so this package provides the needed subset from scratch: a
:class:`~repro.nn.tensor.Tensor` with reverse-mode automatic
differentiation, the layers RETINA uses (Dense, LayerNorm, GRU), the scaled
dot-product exogenous attention (paper Eqs. 3-5), the weighted binary
cross-entropy loss (paper Eq. 6), and SGD/Adam optimisers.

The hot compute path runs on *fused* tape nodes (:mod:`repro.nn.fused`):
each layer forward is a single node whose data and gradients are
bit-identical to the primitive-op chain it replaced, which is frozen
verbatim in :mod:`repro.nn.reference` for golden comparisons.

All gradients are verified against central finite differences
(:mod:`repro.nn.gradcheck`) in ``tests/nn``.
"""

from repro.nn.tensor import Tensor
from repro.nn import functional, fused, gradcheck
from repro.nn.layers import (
    GRU,
    GRUCell,
    Dense,
    Dropout,
    Embedding,
    LayerNorm,
    Module,
    RNNCell,
    LSTMCell,
    Sequential,
)
from repro.nn.attention import ScaledDotProductAttention
from repro.nn.losses import bce_with_logits, cross_entropy, weighted_bce_with_logits
from repro.nn.optim import SGD, Adam

__all__ = [
    "Tensor",
    "functional",
    "Module",
    "Dense",
    "LayerNorm",
    "Dropout",
    "Embedding",
    "Sequential",
    "RNNCell",
    "GRUCell",
    "LSTMCell",
    "GRU",
    "ScaledDotProductAttention",
    "bce_with_logits",
    "weighted_bce_with_logits",
    "cross_entropy",
    "SGD",
    "Adam",
]

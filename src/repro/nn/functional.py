"""Composite differentiable functions built from Tensor primitives."""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["softmax", "log_softmax", "softplus", "abs_", "dropout_mask"]


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis``."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    e = shifted.exp()
    return e / e.sum(axis=axis, keepdims=True)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    """log(softmax(x)) computed stably."""
    shifted = x - x.max(axis=axis, keepdims=True).detach()
    return shifted - shifted.exp().sum(axis=axis, keepdims=True).log()


def abs_(x: Tensor) -> Tensor:
    """|x| as relu(x) + relu(-x)."""
    return x.relu() + (-x).relu()


def softplus(x: Tensor) -> Tensor:
    """log(1 + exp(x)) computed stably as relu(x) + log(1 + exp(-|x|))."""
    return x.relu() + ((-abs_(x)).exp() + 1.0).log()


def dropout_mask(shape, p: float, rng: np.random.Generator) -> np.ndarray:
    """Inverted-dropout mask: zeros with probability ``p``, else ``1/(1-p)``."""
    if not 0.0 <= p < 1.0:
        raise ValueError(f"dropout p must be in [0, 1), got {p}")
    keep = rng.random(shape) >= p
    return keep / (1.0 - p)

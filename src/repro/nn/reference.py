"""Frozen seed forward/training path for golden parity tests.

This module preserves, verbatim, the pre-fusion compute path: every layer
forward written as a chain of primitive :class:`~repro.nn.tensor.Tensor`
ops (matmul -> add -> activation, the 12-node LayerNorm chain, the
softplus-based BCE, the per-step GRU that re-projects its input on every
interval).  The fused path in :mod:`repro.nn.fused` must reproduce it
**bit-identically** — same forward data, same gradients, same trained
weights — which ``tests/nn/test_fused.py`` and
``tests/core/test_golden_compute.py`` enforce with ``np.array_equal``, and
``benchmarks/bench_train_step.py`` re-checks on every run.

Nothing here shares code with the fused implementations; keep it frozen so
the comparison stays meaningful.
"""

from __future__ import annotations

import numpy as np

from repro.nn.functional import softmax, softplus
from repro.nn.tensor import Tensor
from repro.utils.rng import ensure_rng

__all__ = [
    "dense_forward",
    "layer_norm_forward",
    "attention_forward",
    "gru_cell_forward",
    "rnn_cell_forward",
    "lstm_cell_forward",
    "bce_with_logits_reference",
    "weighted_bce_with_logits_reference",
    "ReferenceSGD",
    "ReferenceAdam",
    "retina_forward",
    "fit_reference",
]


# ------------------------------------------------------------- layer fwds
def dense_forward(layer, x: Tensor) -> Tensor:
    """Seed ``Dense.forward``: matmul, add, then an activation node."""
    out = x @ layer.W
    if layer.b is not None:
        out = out + layer.b
    if layer.activation == "relu":
        out = out.relu()
    elif layer.activation == "tanh":
        out = out.tanh()
    elif layer.activation == "sigmoid":
        out = out.sigmoid()
    return out


def layer_norm_forward(layer, x: Tensor) -> Tensor:
    """Seed ``LayerNorm.forward``: mean/var built from sum-times-reciprocal."""
    mu = x.mean(axis=-1, keepdims=True)
    centered = x - mu
    var = (centered * centered).mean(axis=-1, keepdims=True)
    normed = centered * (var + layer.eps).pow(-0.5)
    return normed * layer.gamma + layer.beta


def attention_forward(attn, tweet: Tensor, news: Tensor, return_weights: bool = False):
    """Seed ``ScaledDotProductAttention.forward`` as a primitive-op chain."""
    q = tweet @ attn.WQ
    k = news @ attn.WK
    v = news @ attn.WV
    batch = q.shape[0]
    scores = (q.reshape(batch, 1, attn.hdim) * k).sum(axis=-1)
    scores = scores * (attn.hdim**-0.5)
    weights = softmax(scores, axis=-1)
    attended = (weights.reshape(batch, -1, 1) * v).sum(axis=1)
    if return_weights:
        return attended, weights
    return attended


def gru_cell_forward(cell, x: Tensor, h: Tensor) -> Tensor:
    """Seed ``GRUCell.forward``: re-projects ``x`` on every call."""
    z = (x @ cell.Wz + h @ cell.Uz + cell.bz).sigmoid()
    r = (x @ cell.Wr + h @ cell.Ur + cell.br).sigmoid()
    n = (x @ cell.Wn + (r * h) @ cell.Un + cell.bn).tanh()
    return (1.0 - z) * n + z * h


def rnn_cell_forward(cell, x: Tensor, h: Tensor) -> Tensor:
    """Seed ``RNNCell.forward``."""
    return (x @ cell.W + h @ cell.U + cell.b).tanh()


def lstm_cell_forward(cell, x: Tensor, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
    """Seed ``LSTMCell.forward``."""
    h, c = state
    gates = x @ cell.Wi + h @ cell.Ui + cell.bi
    hs = cell.hidden_size
    i = gates[:, :hs].sigmoid()
    f = gates[:, hs : 2 * hs].sigmoid()
    g = gates[:, 2 * hs : 3 * hs].tanh()
    o = gates[:, 3 * hs :].sigmoid()
    c_new = f * c + i * g
    h_new = o * c_new.tanh()
    return h_new, c_new


# ------------------------------------------------------------------ losses
def bce_with_logits_reference(logits: Tensor, targets) -> Tensor:
    """Seed ``bce_with_logits`` built from the softplus chain."""
    targets = Tensor(np.asarray(targets, dtype=np.float64))
    neg_log_p, neg_log_1mp = softplus(-logits), softplus(logits)
    loss = targets * neg_log_p + (1.0 - targets) * neg_log_1mp
    return loss.mean()


def weighted_bce_with_logits_reference(logits: Tensor, targets, pos_weight: float) -> Tensor:
    """Seed ``weighted_bce_with_logits`` (paper Eq. 6)."""
    targets = Tensor(np.asarray(targets, dtype=np.float64))
    neg_log_p, neg_log_1mp = softplus(-logits), softplus(logits)
    loss = pos_weight * targets * neg_log_p + (1.0 - targets) * neg_log_1mp
    return loss.mean()


# -------------------------------------------------------------- optimisers
class ReferenceSGD:
    """Seed SGD: per-parameter clip, momentum, and update loops."""

    def __init__(self, parameters, lr, momentum=0.0, clip_norm=5.0):
        self.parameters = list(parameters)
        self.lr = lr
        self.momentum = momentum
        self.clip_norm = clip_norm
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def zero_grad(self):
        for p in self.parameters:
            p.zero_grad()

    def step(self):
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.clip_norm is not None:
                norm = np.linalg.norm(g)
                if norm > self.clip_norm:
                    g = g * (self.clip_norm / norm)
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class ReferenceAdam:
    """Seed Adam: per-parameter state lists and update loops."""

    def __init__(self, parameters, lr, beta1=0.9, beta2=0.999, eps=1e-7, clip_norm=5.0):
        self.parameters = list(parameters)
        self.lr = lr
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.clip_norm = clip_norm
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def zero_grad(self):
        for p in self.parameters:
            p.zero_grad()

    def step(self):
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.clip_norm is not None:
                norm = np.linalg.norm(g)
                if norm > self.clip_norm:
                    g = g * (self.clip_norm / norm)
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / (1 - b1**self._t)
            v_hat = v / (1 - b2**self._t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


# ------------------------------------------------------------------ RETINA
def _joint_reference(model, user_features: Tensor, tweet_vec: Tensor, news_vecs: Tensor) -> Tensor:
    h_user = dense_forward(model.user_ff, layer_norm_forward(model.norm, user_features))
    if not model.use_exogenous:
        return h_user
    B = user_features.shape[0]
    attended = attention_forward(
        model.attention, tweet_vec.reshape(1, -1), news_vecs.reshape(1, *news_vecs.shape)
    )
    ones = Tensor(np.ones((B, 1)))
    x_tn = ones @ attended
    return Tensor.concat([h_user, x_tn], axis=1)


def retina_forward(model, user_features: Tensor, tweet_vec: Tensor, news_vecs: Tensor) -> Tensor:
    """Seed ``RETINA.forward``: per-step input re-projection, no fusion."""
    joint = _joint_reference(model, user_features, tweet_vec, news_vecs)
    if model.mode == "static":
        return dense_forward(model.out, dense_forward(model.hidden_ff, joint)).reshape(
            joint.shape[0]
        )
    B = joint.shape[0]
    h = Tensor(np.zeros((B, model.hdim)))
    state = (h, Tensor(np.zeros((B, model.hdim)))) if model.recurrent_cell == "lstm" else h
    logits = []
    for _ in range(model.n_intervals):
        if model.recurrent_cell == "lstm":
            h, c = lstm_cell_forward(model.cell, joint, state)
            state = (h, c)
        elif model.recurrent_cell == "rnn":
            h = rnn_cell_forward(model.cell, joint, state)
            state = h
        else:
            h = gru_cell_forward(model.cell, joint, state)
            state = h
        logits.append(dense_forward(model.out, h).reshape(B))
    return Tensor.stack(logits, axis=1)


def fit_reference(
    model,
    samples,
    *,
    lam: float | None = None,
    lr: float | None = None,
    optimizer: str | None = None,
    batch_size: int | None = None,
    epochs: int = 3,
    random_state=None,
):
    """Seed ``RetinaTrainer.fit``: per-epoch index rebuilds, per-step tensor
    wraps, unfused forward and loss.  Consumes the same RNG stream as the
    current trainer so trained weights are directly comparable."""
    from repro.nn.losses import positive_class_weight

    if not samples:
        raise ValueError("fit requires at least one sample")
    dynamic = model.mode == "dynamic"
    lam = lam if lam is not None else (2.5 if dynamic else 2.0)
    lr = lr if lr is not None else (1e-2 if dynamic else 1e-3)
    optimizer = optimizer or ("sgd" if dynamic else "adam")
    batch_size = batch_size if batch_size is not None else (32 if dynamic else 16)

    rng = ensure_rng(random_state)
    params = model.parameters()
    opt = (
        ReferenceAdam(params, lr=lr)
        if optimizer == "adam"
        else ReferenceSGD(params, lr=lr, momentum=0.9)
    )
    n_total = sum(len(s.labels) for s in samples)
    n_pos = int(sum(s.labels.sum() for s in samples))
    w = positive_class_weight(max(n_total, 2), max(n_pos, 1), lam)
    order = np.arange(len(samples))
    for _ in range(epochs):
        rng.shuffle(order)
        for si in order:
            sample = samples[si]
            n = len(sample.labels)
            idx = np.arange(n)
            if n > batch_size:
                pos = np.flatnonzero(sample.labels == 1)
                neg = np.flatnonzero(sample.labels == 0)
                keep_neg = (
                    rng.choice(neg, size=max(1, batch_size - len(pos)), replace=False)
                    if len(neg)
                    else np.array([], dtype=int)
                )
                idx = np.concatenate([pos, keep_neg])
            X = Tensor(sample.rows(idx))
            tweet = Tensor(sample.tweet_vec)
            news = Tensor(sample.news_vecs)
            logits = retina_forward(model, X, tweet, news)
            targets = sample.interval_labels[idx] if dynamic else sample.labels[idx]
            loss = weighted_bce_with_logits_reference(logits, targets, pos_weight=w)
            opt.zero_grad()
            loss.backward()
            opt.step()
    return model

"""Fused tape nodes for the hot compute path.

Each function here collapses a chain of primitive :class:`~repro.nn.tensor.Tensor`
ops (the seed implementation, frozen in :mod:`repro.nn.reference`) into a
single tape node.  The forward data and the backward gradients are computed
with the *exact same numpy expressions, in the exact same order*, as the
primitive chain produced — so models trained through the fused path end up
with bit-identical weights while paying one node of tape overhead instead
of ten to twenty.

Two invariants make bit-identity possible and are relied on throughout:

1. Within one fused node, gradient contributions into a shared tensor are
   issued via separate ``_accumulate`` calls in the order the reversed-topo
   walk of the primitive chain issued them (verified by instrumenting the
   seed tape; ``tests/nn/test_fused.py`` locks every node to the primitive
   chain bit-for-bit).
2. Across nodes, accumulation order is inherited from the surrounding graph
   (e.g. recurrent steps chained through the hidden state always backprop
   in reverse-chronological order, and the per-interval output heads in
   ascending interval order — same as the unfused graph).

The recurrent cells additionally expose a *precomputed input projection*
entry point: when the same input feeds every unrolled step (RETINA-D feeds
``joint`` to all 7 intervals), ``x @ W_*`` is computed once and reused,
removing ``3 * (T - 1)`` forward matmuls while the backward still issues the
per-step ``x.T @ g`` contributions the seed tape produced.

Implementation note: the backward closures special-case 2-D operands (every
RETINA tensor) with plain ``.T`` views and ``sum(axis=0)`` bias reductions;
stacked 3-D operands (diffusion baselines) take the generic
``_unbroadcast``/``swapaxes`` route.  Both compute identical values.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor, _unbroadcast

__all__ = [
    "affine",
    "layer_norm",
    "scaled_dot_attention",
    "bce_with_logits_fused",
    "GRUProjection",
    "gru_project",
    "gru_step",
    "RNNProjection",
    "rnn_project",
    "rnn_step",
    "LSTMProjection",
    "lstm_project",
    "lstm_step",
    "sigmoid_data",
    "relu_data",
    "exp_data",
]


# ------------------------------------------------------------ data helpers
def sigmoid_data(z: np.ndarray) -> np.ndarray:
    """Numerically stable sigmoid, bitwise-identical to ``Tensor.sigmoid``.

    Both branches are evaluated densely (cheaper than boolean gathers for
    the small hot-loop arrays); per element the selected branch computes
    the same expression as the seed's masked assignment.
    """
    with np.errstate(over="ignore", invalid="ignore"):
        ez = np.exp(z)
        return np.where(z >= 0, 1.0 / (1.0 + np.exp(-z)), ez / (1.0 + ez))


def relu_data(z: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
    """(relu(z), mask), bitwise-identical to ``Tensor.relu``."""
    mask = z > 0
    return z * mask, mask


def exp_data(z: np.ndarray) -> np.ndarray:
    """Clipped exp, bitwise-identical to ``Tensor.exp``."""
    return np.exp(np.clip(z, -700, 700))


def _matmul_back_left(grad: np.ndarray, right: np.ndarray, shape) -> np.ndarray:
    """d(a @ b)/da contribution, exactly as ``Tensor.matmul`` computes it."""
    if grad.ndim == 2 and right.ndim == 2:
        out = grad @ right.T
        return out if out.shape == shape else _unbroadcast(out, shape)
    return _unbroadcast(grad @ right.swapaxes(-1, -2), shape)


def _matmul_back_right(left: np.ndarray, grad: np.ndarray, shape) -> np.ndarray:
    """d(a @ b)/db contribution, exactly as ``Tensor.matmul`` computes it."""
    if grad.ndim == 2 and left.ndim == 2:
        out = left.T @ grad
        return out if out.shape == shape else _unbroadcast(out, shape)
    return _unbroadcast(left.swapaxes(-1, -2) @ grad, shape)


# ----------------------------------------------------------------- affine
def affine(x: Tensor, W: Tensor, b: Tensor | None = None, activation: str | None = None) -> Tensor:
    """One node for ``activation(x @ W + b)`` (the Dense forward).

    Replaces the matmul -> add -> activation chain; gradient order into the
    leaves (b, x, W) matches the chain's reversed-topo order.
    """
    xd = x.data
    pre = xd @ W.data
    if b is not None:
        pre = pre + b.data
    mask = None
    if activation is None:
        out_data = pre
    elif activation == "relu":
        mask = pre > 0
        out_data = pre * mask
    elif activation == "tanh":
        out_data = np.tanh(pre)
    elif activation == "sigmoid":
        out_data = sigmoid_data(pre)
    else:  # pragma: no cover - guarded by Dense.__init__
        raise ValueError(f"unknown activation {activation!r}")

    parents = (x, W) if b is None else (x, W, b)

    def backward(grad):
        if activation == "relu":
            g = grad * mask
        elif activation == "tanh":
            g = grad * (1.0 - out_data**2)
        elif activation == "sigmoid":
            g = grad * out_data * (1.0 - out_data)
        else:
            g = grad
        if b is not None and b.requires_grad:
            if g.ndim == 2 and b.data.ndim == 1:
                b._accumulate_owned(g.sum(axis=0))
            else:
                # _unbroadcast may return g itself (same-shape fast path),
                # which must not be stored by reference.
                b._accumulate(_unbroadcast(g, b.shape))
        if x.requires_grad:
            x._accumulate_owned(_matmul_back_left(g, W.data, x.shape))
        if W.requires_grad:
            W._accumulate_owned(_matmul_back_right(xd, g, W.shape))

    return Tensor._result(out_data, parents, f"affine[{activation}]", backward)


# -------------------------------------------------------------- layer norm
def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float) -> Tensor:
    """One node for layer normalisation over the last axis.

    Mirrors the seed chain ``(x - mean) * (var + eps)^-0.5 * gamma + beta``
    where mean/var are built from ``sum * (1/d)`` (not ``np.mean``), and the
    input receives its two gradient contributions (centering, re-mean) as
    two accumulate calls in chain order.
    """
    xd = x.data
    d = xd.shape[-1]
    inv_d = 1.0 / d
    mu = xd.sum(axis=-1, keepdims=True) * inv_d
    centered = xd - mu
    sq = centered * centered
    var = sq.sum(axis=-1, keepdims=True) * inv_d
    veps = var + eps
    rstd = veps**-0.5
    normed = centered * rstd
    out_data = normed * gamma.data + beta.data

    def backward(grad):
        if beta.requires_grad:
            if grad.ndim == 2 and beta.data.ndim == 1:
                beta._accumulate_owned(grad.sum(axis=0))
            else:
                # _unbroadcast may return grad itself (same-shape fast
                # path), which must not be stored by reference.
                beta._accumulate(_unbroadcast(grad, beta.shape))
        if gamma.requires_grad:
            gn_full = grad * normed
            gamma._accumulate_owned(
                gn_full.sum(axis=0) if gn_full.ndim == 2 and gamma.data.ndim == 1 else _unbroadcast(gn_full, gamma.shape)
            )
        if x.requires_grad:
            # The whole centering/variance chain is live only when the input
            # needs a gradient (on the seed tape those nodes simply did not
            # require grad and were never walked).
            g_n = grad * gamma.data
            gc = g_n * rstd
            g_rstd = (g_n * centered).sum(axis=-1, keepdims=True)
            g_veps = g_rstd * -0.5 * veps**-1.5
            g_sq = np.broadcast_to(g_veps * inv_d, sq.shape)
            gc = gc + g_sq * centered
            gc = gc + g_sq * centered
            x._accumulate_owned(gc)
            g_s1 = _unbroadcast(gc, mu.shape) * -1.0 * inv_d
            x._accumulate(np.broadcast_to(g_s1, xd.shape))

    return Tensor._result(out_data, (x, gamma, beta), "layer_norm", backward)


# -------------------------------------------------------------- attention
def scaled_dot_attention(
    tweet: Tensor, news: Tensor, WQ: Tensor, WK: Tensor, WV: Tensor, hdim: int
):
    """One node for the exogenous attention (projections + softmax + pool).

    Returns ``(attended, weights_data)`` where ``weights_data`` is the raw
    ``(batch, k)`` softmax array (callers that need the weights wrap it in a
    constant tensor — gradients flow through the attended output only, as
    in the seed graph).

    RETINA always attends one cascade at a time, so the ``batch == 1`` case
    runs entirely on 2-D arrays (bitwise-identical per element; stacked
    numpy matmuls equal their 2-D slices) and skips the 3-D broadcast
    machinery.
    """
    if news.data.shape[0] == 1:
        return _scaled_dot_attention_b1(tweet, news, WQ, WK, WV, hdim)
    scale = hdim**-0.5
    q = tweet.data @ WQ.data  # (B, hd)
    k = news.data @ WK.data  # (B, K, hd)
    v = news.data @ WV.data  # (B, K, hd)
    B = q.shape[0]
    qr = q.reshape(B, 1, hdim)
    prod = qr * k
    s0 = prod.sum(axis=-1)  # (B, K)
    scores = s0 * scale
    m = scores.max(axis=-1, keepdims=True)
    shifted = scores - m
    e = exp_data(shifted)
    se = e.sum(axis=-1, keepdims=True)
    inv = se**-1.0
    w = e * inv  # (B, K)
    wr = w.reshape(B, -1, 1)
    wv = wr * v
    att = wv.sum(axis=1)  # (B, hd)

    def backward(grad):
        g_wv = np.broadcast_to(np.expand_dims(grad, 1), wv.shape)
        g_wr = (g_wv * v).sum(axis=-1, keepdims=True)
        g_v = g_wv * wr
        g_w = g_wr.reshape(w.shape)
        g_e = g_w * inv
        g_inv = (g_w * e).sum(axis=-1, keepdims=True)
        g_se = g_inv * -1.0 * se**-2.0
        g_e = g_e + np.broadcast_to(g_se, e.shape)
        g_shifted = g_e * e
        g_s0 = g_shifted * scale
        g_prod = np.broadcast_to(np.expand_dims(g_s0, -1), prod.shape)
        g_qr = (g_prod * k).sum(axis=1, keepdims=True)
        g_k = g_prod * qr
        g_q = g_qr.reshape(q.shape)
        if tweet.requires_grad:
            tweet._accumulate_owned(_matmul_back_left(g_q, WQ.data, tweet.shape))
        if WQ.requires_grad:
            WQ._accumulate_owned(_matmul_back_right(tweet.data, g_q, WQ.shape))
        if news.requires_grad:
            news._accumulate_owned(_matmul_back_left(g_k, WK.data, news.shape))
        if WK.requires_grad:
            WK._accumulate_owned(_matmul_back_right(news.data, g_k, WK.shape))
        if news.requires_grad:
            news._accumulate_owned(_matmul_back_left(g_v, WV.data, news.shape))
        if WV.requires_grad:
            WV._accumulate_owned(_matmul_back_right(news.data, g_v, WV.shape))

    out = Tensor._result(att, (tweet, news, WQ, WK, WV), "attention", backward)
    return out, w


def _scaled_dot_attention_b1(
    tweet: Tensor, news: Tensor, WQ: Tensor, WK: Tensor, WV: Tensor, hdim: int
):
    """Batch-1 attention on 2-D arrays; values bitwise-equal to the general
    path (every (1, ...) numpy op equals its squeezed 2-D counterpart)."""
    scale = hdim**-0.5
    nv2 = news.data[0]  # (K, nd)
    q = tweet.data @ WQ.data  # (1, hd)
    k = nv2 @ WK.data  # (K, hd)
    v = nv2 @ WV.data
    prod = q * k  # q broadcasts over rows, same elementwise products
    scores = prod.sum(axis=-1) * scale  # (K,)
    m = scores.max()
    e = exp_data(scores - m)
    # Keep the softmax denominator a 1-element *array*: scalar ``**`` goes
    # through libm pow, the seed's array ``**`` through numpy's loop, and
    # the two can differ by an ulp.
    se = e.sum(axis=-1, keepdims=True)
    inv = se**-1.0
    w = e * inv  # (K,)
    att = (w[:, None] * v).sum(axis=0).reshape(1, hdim)

    def backward(grad):
        g2 = grad.reshape(hdim)
        g_wv = np.broadcast_to(g2, v.shape)
        g_wr = (g_wv * v).sum(axis=-1)  # (K,)
        g_v = g_wv * w[:, None]
        g_e = g_wr * inv
        g_inv = (g_wr * e).sum(axis=-1, keepdims=True)
        g_se = g_inv * -1.0 * se**-2.0
        g_e = g_e + g_se
        g_s0 = g_e * e * scale
        g_prod = np.broadcast_to((g_s0)[:, None], prod.shape)
        g_qr = (g_prod * k).sum(axis=0)
        g_k = g_prod * q
        g_q = g_qr.reshape(1, hdim)
        if tweet.requires_grad:
            tweet._accumulate_owned(g_q @ WQ.data.T)
        if WQ.requires_grad:
            WQ._accumulate_owned(tweet.data.T @ g_q)
        if news.requires_grad:
            news._accumulate_owned((g_k @ WK.data.T).reshape(news.shape))
        if WK.requires_grad:
            WK._accumulate_owned(nv2.T @ g_k)
        if news.requires_grad:
            news._accumulate((g_v @ WV.data.T).reshape(news.shape))
        if WV.requires_grad:
            WV._accumulate_owned(nv2.T @ g_v)

    out = Tensor._result(att, (tweet, news, WQ, WK, WV), "attention", backward)
    return out, w.reshape(1, -1)


# ------------------------------------------------------------------ losses
def _softplus_parts(x: np.ndarray, neg_x: np.ndarray):
    """Forward intermediates of the seed ``softplus(x)`` chain.

    ``neg_x`` must be the exact negation of ``x`` (callers reuse arrays so
    that ``softplus(-L)`` and ``softplus(L)`` share both buffers).
    Returns ``(value, aux)`` with everything the backward needs.
    """
    a1, mask = relu_data(x)  # x.relu(); mask reused by abs_'s second relu
    neg_mask = neg_x > 0
    a3 = neg_x * neg_mask  # (-x).relu()
    ab = a1 + a3  # abs_(x) = relu(x) + relu(-x); a2 == a1 bitwise
    e = exp_data(ab * -1.0)
    e1 = e + 1.0
    value = a1 + np.log(e1)
    return value, (mask, neg_mask, e, e1)


def _softplus_grad(g_sp: np.ndarray, aux, acc: np.ndarray | None = None) -> np.ndarray:
    """Gradient of the seed softplus chain wrt its input.

    The three contributions (direct relu, abs_ relu, abs_ negated relu) are
    added one at a time onto ``acc`` — the same left-associated elementwise
    sums the seed tape's separate ``_accumulate`` calls produced.
    """
    mask, neg_mask, e, e1 = aux
    first = g_sp * mask
    acc = first if acc is None else acc + first
    g_ab = g_sp / e1 * e * -1.0
    acc = acc + g_ab * mask
    acc = acc + g_ab * neg_mask * -1.0
    return acc


def bce_with_logits_fused(logits: Tensor, targets: np.ndarray, pos_weight: float | None) -> Tensor:
    """One node for (weighted) binary cross-entropy on logits.

    ``pos_weight=None`` reproduces ``bce_with_logits``; a float reproduces
    the paper's Eq. 6 weighted variant.  The logits gradient is assembled
    from its four seed contributions (softplus(-L) chain first, then the
    three softplus(L) consumers) in reversed-topo order.
    """
    L = logits.data
    negL = L * -1.0
    spn, aux_n = _softplus_parts(negL, L)  # -log p
    spp, aux_p = _softplus_parts(L, negL)  # -log (1 - p)
    t1 = targets if pos_weight is None else targets * pos_weight
    t3 = 1.0 - targets
    S = t1 * spn + t3 * spp
    n = S.size
    out_data = S.sum() * (1.0 / n)

    def backward(grad):
        if not logits.requires_grad:
            return
        g_S = np.broadcast_to(np.asarray(grad * (1.0 / n)), S.shape)
        g_negL = _softplus_grad(g_S * t1, aux_n)
        gL = g_negL * -1.0
        gL = _softplus_grad(g_S * t3, aux_p, acc=gL)
        logits._accumulate_owned(gL)

    return Tensor._result(out_data, (logits,), "bce_with_logits", backward)


# -------------------------------------------------------- recurrent cells
class GRUProjection:
    """Precomputed ``x @ W_{z,r,n}`` for a GRU unrolled over a fixed input."""

    __slots__ = ("x", "xz", "xr", "xn")

    def __init__(self, x: Tensor, xz: np.ndarray, xr: np.ndarray, xn: np.ndarray):
        self.x = x
        self.xz = xz
        self.xr = xr
        self.xn = xn


def gru_project(cell, x: Tensor) -> GRUProjection:
    """Hoist the input projections out of the interval unroll."""
    xd = x.data
    return GRUProjection(x, xd @ cell.Wz.data, xd @ cell.Wr.data, xd @ cell.Wn.data)


def gru_step(cell, proj: GRUProjection, h: Tensor) -> Tensor:
    """One fused GRU step ``h' = (1-z) n + z h`` on a precomputed projection.

    Backward accumulation order (locked to the seed tape): n-gate chain,
    r-gate chain, z·h term, z-gate chain; ``h`` receives its four
    contributions as (r·h, Ur, z·h, Uz) and ``x`` its three as (Wn, Wr, Wz).
    """
    x = proj.x
    Wz, Uz, bz = cell.Wz, cell.Uz, cell.bz
    Wr, Ur, br = cell.Wr, cell.Ur, cell.br
    Wn, Un, bn = cell.Wn, cell.Un, cell.bn
    h_data = h.data
    z = sigmoid_data(proj.xz + h_data @ Uz.data + bz.data)
    r = sigmoid_data(proj.xr + h_data @ Ur.data + br.data)
    rh = r * h_data
    n = np.tanh(proj.xn + rh @ Un.data + bn.data)
    sub = 1.0 - z
    out_data = sub * n + z * h_data

    x_grad = x.requires_grad
    h_grad = h.requires_grad
    xd = x.data

    def backward(gH):
        # --- n-gate chain (the seed tape walks tanh(n) first) -------------
        g_n = gH * sub
        g_z = gH * n * -1.0  # (1 - z) path; the z·h term joins below
        g_npre = g_n * (1.0 - n**2)
        if bn.requires_grad:
            bn._accumulate_owned(g_npre.sum(axis=0))
        if x_grad:
            x._accumulate_owned(g_npre @ Wn.data.T)
        if Wn.requires_grad:
            Wn._accumulate_owned(xd.T @ g_npre)
        g_rh = g_npre @ Un.data.T
        if Un.requires_grad:
            Un._accumulate_owned(rh.T @ g_npre)
        g_r = g_rh * h_data
        if h_grad:
            h._accumulate_owned(g_rh * r)
        # --- r-gate chain -------------------------------------------------
        g_rpre = g_r * r * (1.0 - r)
        if br.requires_grad:
            br._accumulate_owned(g_rpre.sum(axis=0))
        if x_grad:
            x._accumulate_owned(g_rpre @ Wr.data.T)
        if Wr.requires_grad:
            Wr._accumulate_owned(xd.T @ g_rpre)
        if h_grad:
            h._accumulate_owned(g_rpre @ Ur.data.T)
        if Ur.requires_grad:
            Ur._accumulate_owned(h_data.T @ g_rpre)
        # --- z·h term, then z-gate chain ----------------------------------
        g_z = g_z + gH * h_data
        if h_grad:
            h._accumulate_owned(gH * z)
        g_zpre = g_z * z * (1.0 - z)
        if bz.requires_grad:
            bz._accumulate_owned(g_zpre.sum(axis=0))
        if x_grad:
            x._accumulate_owned(g_zpre @ Wz.data.T)
        if Wz.requires_grad:
            Wz._accumulate_owned(xd.T @ g_zpre)
        if h_grad:
            h._accumulate_owned(g_zpre @ Uz.data.T)
        if Uz.requires_grad:
            Uz._accumulate_owned(h_data.T @ g_zpre)

    parents = (x, h, Wz, Uz, bz, Wr, Ur, br, Wn, Un, bn)
    return Tensor._result(out_data, parents, "gru_step", backward)


def gru_unroll(cell, proj: GRUProjection, head_W: Tensor, head_b: Tensor, n_intervals: int) -> Tensor:
    """The whole RETINA-D recurrent tail as one node: ``n_intervals`` GRU
    steps from a zero state on a precomputed input projection, a linear
    head per interval, stacked to ``(B, n_intervals)`` logits.

    The backward replays the seed tape's schedule exactly — head
    contributions in ascending interval order first, then a
    reverse-chronological sweep through the steps — but hoists every
    cross-step weight gradient into one stacked matmul followed by a
    sequential (left-associated, same order) reduction, which is
    bit-identical to the per-step accumulates and an order of magnitude
    fewer BLAS calls.
    """
    x = proj.x
    Wz, Uz, bz = cell.Wz, cell.Uz, cell.bz
    Wr, Ur, br = cell.Wr, cell.Ur, cell.br
    Wn, Un, bn = cell.Wn, cell.Un, cell.bn
    xd = x.data
    B = xd.shape[0]
    T = n_intervals
    h_prev = np.zeros((B, cell.hidden_size))
    hs_prev, zs, rs, rhs, ns, subs, hs = [], [], [], [], [], [], []
    for _ in range(T):
        z = sigmoid_data(proj.xz + h_prev @ Uz.data + bz.data)
        r = sigmoid_data(proj.xr + h_prev @ Ur.data + br.data)
        rh = r * h_prev
        n = np.tanh(proj.xn + rh @ Un.data + bn.data)
        sub = 1.0 - z
        h = sub * n + z * h_prev
        hs_prev.append(h_prev)
        zs.append(z)
        rs.append(r)
        rhs.append(rh)
        ns.append(n)
        subs.append(sub)
        hs.append(h)
        h_prev = h
    H = np.stack(hs)  # (T, B, hd)
    # Interval heads, batched: per-slice identical to h_t @ W + b.
    logits = (H @ head_W.data + head_b.data)[:, :, 0].T.copy()  # (B, T)

    def backward(grad):
        # Phase 1: head backward in ascending interval order (the stack
        # node's children sit first in the seed's reversed topo walk).
        G2 = np.ascontiguousarray(grad.T).reshape(T, B, 1)
        if head_b.requires_grad:
            head_b._accumulate_owned(np.add.reduce(G2.sum(axis=1)))
        h_grads = G2 @ head_W.data.T  # (T, B, hd); per-slice == g2 @ W.T
        if head_W.requires_grad:
            head_W._accumulate_owned(np.add.reduce(H.transpose(0, 2, 1) @ G2))
        # Phase 2: reverse-chronological sweep.  Only the hidden-state
        # recursion is sequential; per-step gate grads are stashed (in
        # processing order, i.e. last interval first) for phase 3.
        Gz, Gr, Gn = [], [], []
        UzT, UrT, UnT = Uz.data.T, Ur.data.T, Un.data.T
        gH = h_grads[T - 1]
        for t in range(T - 1, -1, -1):
            z, r, n, sub, hp = zs[t], rs[t], ns[t], subs[t], hs_prev[t]
            g_n = gH * sub
            g_z = gH * n * -1.0
            g_npre = g_n * (1.0 - n**2)
            g_rh = g_npre @ UnT
            g_rpre = g_rh * hp * r * (1.0 - r)
            g_z = g_z + gH * hp
            g_zpre = g_z * z * (1.0 - z)
            Gn.append(g_npre)
            Gr.append(g_rpre)
            Gz.append(g_zpre)
            if t > 0:
                # h_{t-1}'s contributions, in seed accumulation order:
                # head (phase 1), r·h, Ur, z·h, Uz.
                gH_next = h_grads[t - 1] + g_rh * r
                gH_next = gH_next + g_rpre @ UrT
                gH_next = gH_next + gH * z
                gH = gH_next + g_zpre @ UzT
        # Phase 3: cross-step reductions.  One stacked matmul per weight,
        # then a sequential sum over the step axis — np.add.reduce walks
        # axis 0 left-associated, exactly the order (and therefore the
        # bits) of the per-step accumulates on the seed tape.
        Gz_a, Gr_a, Gn_a = np.stack(Gz), np.stack(Gr), np.stack(Gn)
        xdT = xd.T
        if bn.requires_grad:
            bn._accumulate_owned(np.add.reduce(Gn_a.sum(axis=1)))
        if x.requires_grad:
            Jn = Gn_a @ Wn.data.T
            Jr = Gr_a @ Wr.data.T
            Jz = Gz_a @ Wz.data.T
            # Seed order into the joint input: per step (n, r, z), steps in
            # reverse-chronological (= processing) order.
            acc = Jn[0] + Jr[0]
            acc += Jz[0]
            for t in range(1, T):
                acc += Jn[t]
                acc += Jr[t]
                acc += Jz[t]
            x._accumulate_owned(acc)
        if Wn.requires_grad:
            Wn._accumulate_owned(np.add.reduce(xdT @ Gn_a))
        if Un.requires_grad:
            RH = np.stack(rhs[::-1])  # processing order
            Un._accumulate_owned(np.add.reduce(RH.transpose(0, 2, 1) @ Gn_a))
        if br.requires_grad:
            br._accumulate_owned(np.add.reduce(Gr_a.sum(axis=1)))
        if Wr.requires_grad:
            Wr._accumulate_owned(np.add.reduce(xdT @ Gr_a))
        HP = None
        if Ur.requires_grad or Uz.requires_grad:
            HP = np.stack(hs_prev[::-1]).transpose(0, 2, 1)  # processing order
        if Ur.requires_grad:
            Ur._accumulate_owned(np.add.reduce(HP @ Gr_a))
        if bz.requires_grad:
            bz._accumulate_owned(np.add.reduce(Gz_a.sum(axis=1)))
        if Wz.requires_grad:
            Wz._accumulate_owned(np.add.reduce(xdT @ Gz_a))
        if Uz.requires_grad:
            Uz._accumulate_owned(np.add.reduce(HP @ Gz_a))

    return Tensor._result(
        logits,
        (x, Wz, Uz, bz, Wr, Ur, br, Wn, Un, bn, head_W, head_b),
        "gru_unroll",
        backward,
    )


class RNNProjection:
    """Precomputed ``x @ W`` for an Elman RNN unrolled over a fixed input."""

    __slots__ = ("x", "xw")

    def __init__(self, x: Tensor, xw: np.ndarray):
        self.x = x
        self.xw = xw


def rnn_project(cell, x: Tensor) -> RNNProjection:
    return RNNProjection(x, x.data @ cell.W.data)


def rnn_step(cell, proj: RNNProjection, h: Tensor) -> Tensor:
    """One fused Elman step ``h' = tanh(x W + h U + b)``."""
    x = proj.x
    W, U, b = cell.W, cell.U, cell.b
    h_data = h.data
    out_data = np.tanh(proj.xw + h_data @ U.data + b.data)

    def backward(gH):
        g = gH * (1.0 - out_data**2)
        if b.requires_grad:
            b._accumulate_owned(g.sum(axis=0))
        if x.requires_grad:
            x._accumulate_owned(g @ W.data.T)
        if W.requires_grad:
            W._accumulate_owned(x.data.T @ g)
        if h.requires_grad:
            h._accumulate_owned(g @ U.data.T)
        if U.requires_grad:
            U._accumulate_owned(h_data.T @ g)

    return Tensor._result(out_data, (x, h, W, U, b), "rnn_step", backward)


class LSTMProjection:
    """Precomputed ``x @ Wi`` for an LSTM unrolled over a fixed input."""

    __slots__ = ("x", "xi")

    def __init__(self, x: Tensor, xi: np.ndarray):
        self.x = x
        self.xi = xi


def lstm_project(cell, x: Tensor) -> LSTMProjection:
    return LSTMProjection(x, x.data @ cell.Wi.data)


def lstm_step(cell, proj: LSTMProjection, state: tuple[Tensor, Tensor]) -> tuple[Tensor, Tensor]:
    """One fused LSTM step; returns ``(h', c')`` as two tape tensors.

    The combined backward fires from ``h'`` (whose consumers always include
    the loss head); by the time the reversed-topo walk reaches ``h'``, every
    consumer of ``c'`` — only the next step — has already contributed, so
    ``c'.grad`` is final and ``c'`` itself carries no backward closure.
    """
    x = proj.x
    h, c = state
    Wi, Ui, bi = cell.Wi, cell.Ui, cell.bi
    hs = cell.hidden_size
    h_data, c_data = h.data, c.data
    gates = proj.xi + h_data @ Ui.data + bi.data
    i_g = sigmoid_data(gates[:, :hs])
    f_g = sigmoid_data(gates[:, hs : 2 * hs])
    g_g = np.tanh(gates[:, 2 * hs : 3 * hs])
    o_g = sigmoid_data(gates[:, 3 * hs :])
    c_new = f_g * c_data + i_g * g_g
    tc = np.tanh(c_new)
    h_new = o_g * tc

    parents = (x, h, c, Wi, Ui, bi)
    requires = any(p.requires_grad for p in parents)
    c_out = Tensor(c_new, requires_grad=requires, _prev=parents if requires else (), _op="lstm_step_c")

    def backward(gH):
        g_o = gH * tc
        g_tc = gH * o_g
        g_c = g_tc * (1.0 - tc**2)
        if c_out.grad is not None:  # next step's f·c contribution, first in seed order
            g_c = c_out.grad + g_c
        g_f = g_c * c_data
        if c.requires_grad:
            c._accumulate_owned(g_c * f_g)
        g_i = g_c * g_g
        g_gg = g_c * i_g
        g_gates = np.empty_like(gates)
        g_gates[:, :hs] = g_i * i_g * (1.0 - i_g)
        g_gates[:, hs : 2 * hs] = g_f * f_g * (1.0 - f_g)
        g_gates[:, 2 * hs : 3 * hs] = g_gg * (1.0 - g_g**2)
        g_gates[:, 3 * hs :] = g_o * o_g * (1.0 - o_g)
        if bi.requires_grad:
            bi._accumulate_owned(g_gates.sum(axis=0))
        if x.requires_grad:
            x._accumulate_owned(g_gates @ Wi.data.T)
        if Wi.requires_grad:
            Wi._accumulate_owned(x.data.T @ g_gates)
        if h.requires_grad:
            h._accumulate_owned(g_gates @ Ui.data.T)
        if Ui.requires_grad:
            Ui._accumulate_owned(h_data.T @ g_gates)

    h_out = Tensor._result(h_new, parents, "lstm_step", backward)
    return h_out, c_out

"""Loss functions.

``weighted_bce_with_logits`` is the paper's Eq. 6: binary cross-entropy with
a weight ``w`` on the positive term to counter class imbalance; the paper
sets ``w = lambda * (log C - log C+)`` with ``lambda`` in {2.0, 2.5}.
"""

from __future__ import annotations

import numpy as np

from repro.nn.fused import bce_with_logits_fused
from repro.nn.tensor import Tensor

__all__ = [
    "bce_with_logits",
    "weighted_bce_with_logits",
    "cross_entropy",
    "positive_class_weight",
]


def bce_with_logits(logits: Tensor, targets) -> Tensor:
    """Mean binary cross-entropy on raw logits.

    Computed stably from logits (``-log sigmoid(z) = softplus(-z)``) as one
    fused tape node, bit-identical to the seed softplus chain
    (:func:`repro.nn.reference.bce_with_logits_reference`).
    """
    targets = np.asarray(targets, dtype=np.float64)
    return bce_with_logits_fused(logits, targets, pos_weight=None)


def weighted_bce_with_logits(logits: Tensor, targets, pos_weight: float) -> Tensor:
    """Paper Eq. 6: ``L = -w t log p - (1 - t) log (1 - p)`` averaged.

    One fused tape node, bit-identical to the seed softplus chain.

    Parameters
    ----------
    pos_weight:
        Weight ``w`` applied to positive samples.
    """
    if pos_weight <= 0:
        raise ValueError(f"pos_weight must be positive, got {pos_weight}")
    targets = np.asarray(targets, dtype=np.float64)
    return bce_with_logits_fused(logits, targets, pos_weight=float(pos_weight))


def positive_class_weight(n_total: int, n_positive: int, lam: float) -> float:
    """The paper's imbalance weight ``w = lambda * (log C - log C+)``."""
    if n_positive <= 0 or n_total <= 0:
        raise ValueError("counts must be positive")
    w = lam * (np.log(n_total) - np.log(n_positive))
    return float(max(w, 1.0))


def cross_entropy(logits: Tensor, target_ids) -> Tensor:
    """Mean categorical cross-entropy over rows of ``logits``.

    Used by the diffusion baselines (TopoLSTM/FOREST/HIDAN) that rank the
    next cascade participant with a softmax over candidates.
    """
    from repro.nn.functional import log_softmax

    target_ids = np.asarray(target_ids, dtype=np.int64)
    logp = log_softmax(logits, axis=-1)
    rows = np.arange(len(target_ids))
    picked = logp[rows, target_ids]
    return -picked.mean()

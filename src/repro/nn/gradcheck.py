"""Central finite-difference gradient checking for the autograd engine.

Every op and layer — primitive chains and the fused nodes in
:mod:`repro.nn.fused` alike — is validated against these helpers in
``tests/nn``; they are exported from the package so downstream experiments
can gradcheck their own composites.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["numeric_grad", "check_gradient", "check_parameter_gradients"]


def numeric_grad(fn, x: np.ndarray, eps: float = 1e-6) -> np.ndarray:
    """Central-difference gradient of scalar ``fn(x)`` wrt array ``x``."""
    grad = np.zeros_like(x, dtype=np.float64)
    it = np.nditer(x, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = x[idx]
        x[idx] = orig + eps
        f_plus = fn(x)
        x[idx] = orig - eps
        f_minus = fn(x)
        x[idx] = orig
        grad[idx] = (f_plus - f_minus) / (2 * eps)
        it.iternext()
    return grad


def check_gradient(build_fn, x0: np.ndarray, atol: float = 1e-5, rtol: float = 1e-4):
    """Assert the autograd gradient of ``build_fn`` matches finite differences.

    ``build_fn`` maps a Tensor to a scalar Tensor loss.
    """
    x0 = np.asarray(x0, dtype=np.float64)
    t = Tensor(x0.copy(), requires_grad=True)
    loss = build_fn(t)
    loss.backward()
    auto = t.grad.copy()

    def scalar_fn(arr):
        return build_fn(Tensor(arr.copy())).item()

    numeric = numeric_grad(scalar_fn, x0.copy())
    np.testing.assert_allclose(auto, numeric, atol=atol, rtol=rtol)


def check_parameter_gradients(
    module, build_fn, atol: float = 1e-5, rtol: float = 1e-4
) -> None:
    """Gradcheck a module's *parameters* under an arbitrary scalar loss.

    ``build_fn`` takes no arguments and returns a scalar Tensor loss built
    from ``module``'s current weights; each trainable parameter is perturbed
    in place for the finite-difference probes.
    """
    named = module._named_parameters()
    module.zero_grad()
    build_fn().backward()
    autos = {name: (t.grad.copy() if t.grad is not None else np.zeros_like(t.data)) for name, t in named.items()}
    for name, tensor in named.items():
        def scalar_fn(arr, _tensor=tensor):
            saved = _tensor.data
            _tensor.data = arr
            try:
                return build_fn().item()
            finally:
                _tensor.data = saved

        numeric = numeric_grad(scalar_fn, tensor.data.copy())
        np.testing.assert_allclose(
            autos[name], numeric, atol=atol, rtol=rtol,
            err_msg=f"gradient mismatch for parameter {name}",
        )

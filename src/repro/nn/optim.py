"""Gradient-descent optimisers: SGD (with momentum) and Adam.

The paper trains RETINA with SGD (lr 1e-2, dynamic mode) and Adam (default
parameters, static mode); both are provided.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["SGD", "Adam"]


class _Optimizer:
    def __init__(self, parameters: list[Tensor], lr: float):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        params = list(parameters)
        if not params:
            raise ValueError("optimizer received no parameters")
        self.parameters = params
        self.lr = lr

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def step(self) -> None:
        raise NotImplementedError


class SGD(_Optimizer):
    """Stochastic gradient descent with optional momentum and grad clipping."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-2,
        momentum: float = 0.0,
        clip_norm: float | None = 5.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.clip_norm = clip_norm
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, v in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            g = p.grad
            if self.clip_norm is not None:
                norm = np.linalg.norm(g)
                if norm > self.clip_norm:
                    g = g * (self.clip_norm / norm)
            if self.momentum:
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(_Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015), TF default parameters."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-7,
        clip_norm: float | None = 5.0,
    ):
        super().__init__(parameters, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.clip_norm = clip_norm
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]
        self._t = 0

    def step(self) -> None:
        self._t += 1
        b1, b2 = self.beta1, self.beta2
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            g = p.grad
            if self.clip_norm is not None:
                norm = np.linalg.norm(g)
                if norm > self.clip_norm:
                    g = g * (self.clip_norm / norm)
            m *= b1
            m += (1 - b1) * g
            v *= b2
            v += (1 - b2) * g * g
            m_hat = m / (1 - b1**self._t)
            v_hat = v / (1 - b2**self._t)
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

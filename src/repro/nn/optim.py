"""Gradient-descent optimisers: SGD (with momentum) and Adam.

The paper trains RETINA with SGD (lr 1e-2, dynamic mode) and Adam (default
parameters, static mode); both are provided.

Updates run on one flat parameter-sized buffer when every parameter has a
gradient (the common case): per-parameter gradients are clipped, packed
into a single contiguous array, updated with a handful of large elementwise
ops, and scattered back.  Because every operation stays elementwise with
the same operand order, the resulting weights are bit-identical to the seed
per-parameter loops (frozen in :mod:`repro.nn.reference` and enforced by
the golden tests); parameters that skipped a step (``grad is None``) fall
back to the per-parameter path with per-segment state untouched.
"""

from __future__ import annotations

import numpy as np

from repro.nn.tensor import Tensor

__all__ = ["SGD", "Adam"]


class _Optimizer:
    def __init__(self, parameters: list[Tensor], lr: float):
        if lr <= 0:
            raise ValueError(f"lr must be positive, got {lr}")
        params = list(parameters)
        if not params:
            raise ValueError("optimizer received no parameters")
        self.parameters = params
        self.lr = lr
        self._sizes = [p.data.size for p in params]
        self._offsets = np.concatenate([[0], np.cumsum(self._sizes)])
        self._total = int(self._offsets[-1])

    def zero_grad(self) -> None:
        for p in self.parameters:
            p.zero_grad()

    def _clipped_grads(self, clip_norm: float | None) -> list[np.ndarray] | None:
        """Per-parameter clipped gradients, or ``None`` if any are missing."""
        grads = []
        for p in self.parameters:
            g = p.grad
            if g is None:
                return None
            if clip_norm is not None:
                norm = np.linalg.norm(g)
                if norm > clip_norm:
                    g = g * (clip_norm / norm)
            grads.append(g)
        return grads

    def _flat(self, grads: list[np.ndarray]) -> np.ndarray:
        buf = getattr(self, "_gflat", None)
        if buf is None:
            buf = self._gflat = np.empty(self._total)
        np.concatenate([g.ravel() for g in grads], out=buf)
        return buf

    def _scatter_update(self, update_flat: np.ndarray) -> None:
        """Apply ``p.data -= update`` per parameter from the flat buffer."""
        for p, off, size in zip(self.parameters, self._offsets, self._sizes):
            p.data -= update_flat[off : off + size].reshape(p.data.shape)

    def step(self) -> None:
        raise NotImplementedError


class SGD(_Optimizer):
    """Stochastic gradient descent with optional momentum and grad clipping."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-2,
        momentum: float = 0.0,
        clip_norm: float | None = 5.0,
    ):
        super().__init__(parameters, lr)
        if not 0.0 <= momentum < 1.0:
            raise ValueError(f"momentum must be in [0, 1), got {momentum}")
        self.momentum = momentum
        self.clip_norm = clip_norm
        self._velocity = np.zeros(self._total)

    def state_dict(self) -> dict:
        """Mutable optimiser state (for checkpoints); arrays are copies."""
        return {"velocity": self._velocity.copy()}

    def load_state_dict(self, state: dict) -> None:
        velocity = np.asarray(state["velocity"], dtype=np.float64)
        if velocity.shape != self._velocity.shape:
            raise ValueError(
                f"velocity shape {velocity.shape} does not match optimiser "
                f"state {self._velocity.shape}"
            )
        self._velocity = velocity.copy()

    def step(self) -> None:
        # SGD does so few passes per parameter that packing gradients into
        # a flat buffer costs more than it saves; the per-parameter loop on
        # flat-state views is the fast path here (unlike Adam).
        for p, off, size in zip(self.parameters, self._offsets, self._sizes):
            if p.grad is None:
                continue
            g = p.grad
            if self.clip_norm is not None:
                norm = np.linalg.norm(g)
                if norm > self.clip_norm:
                    g = g * (self.clip_norm / norm)
            if self.momentum:
                v = self._velocity[off : off + size].reshape(p.data.shape)
                v *= self.momentum
                v += g
                g = v
            p.data -= self.lr * g


class Adam(_Optimizer):
    """Adam with bias correction (Kingma & Ba, 2015), TF default parameters."""

    def __init__(
        self,
        parameters,
        lr: float = 1e-3,
        beta1: float = 0.9,
        beta2: float = 0.999,
        eps: float = 1e-7,
        clip_norm: float | None = 5.0,
    ):
        super().__init__(parameters, lr)
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self.clip_norm = clip_norm
        self._m = np.zeros(self._total)
        self._v = np.zeros(self._total)
        self._t = 0

    def state_dict(self) -> dict:
        """Mutable optimiser state (for checkpoints); arrays are copies."""
        return {"m": self._m.copy(), "v": self._v.copy(), "t": self._t}

    def load_state_dict(self, state: dict) -> None:
        m = np.asarray(state["m"], dtype=np.float64)
        v = np.asarray(state["v"], dtype=np.float64)
        if m.shape != self._m.shape or v.shape != self._v.shape:
            raise ValueError(
                f"moment shapes {m.shape}/{v.shape} do not match optimiser "
                f"state {self._m.shape}"
            )
        self._m = m.copy()
        self._v = v.copy()
        self._t = int(state["t"])

    def _update_segment(self, m, v, g):
        """Seed Adam update for one per-parameter state segment."""
        b1, b2 = self.beta1, self.beta2
        m *= b1
        m += (1 - b1) * g
        v *= b2
        v += (1 - b2) * g * g
        m_hat = m / (1 - b1**self._t)
        v_hat = v / (1 - b2**self._t)
        return self.lr * m_hat / (np.sqrt(v_hat) + self.eps)

    def step(self) -> None:
        self._t += 1
        grads = self._clipped_grads(self.clip_norm)
        if grads is not None:
            # Flat update in two scratch buffers; every elementwise op and
            # its operand order matches the seed per-parameter expressions,
            # so the written weights are bit-identical.
            g = self._flat(grads)
            b1, b2 = self.beta1, self.beta2
            buf = getattr(self, "_buf", None)
            if buf is None:
                buf = self._buf = np.empty(self._total)
                self._buf2 = np.empty(self._total)
            buf2 = self._buf2
            m, v = self._m, self._v
            m *= b1
            np.multiply(g, 1 - b1, out=buf)  # (1-b1)*g
            m += buf
            v *= b2
            np.multiply(g, 1 - b2, out=buf)
            buf *= g  # ((1-b2)*g)*g, the seed's association
            v += buf
            np.divide(m, 1 - b1**self._t, out=buf2)  # m_hat
            np.divide(v, 1 - b2**self._t, out=buf)  # v_hat
            np.sqrt(buf, out=buf)
            buf += self.eps
            np.multiply(buf2, self.lr, out=buf2)  # lr * m_hat
            np.divide(buf2, buf, out=buf2)
            self._scatter_update(buf2)
            return
        for p, off, size in zip(self.parameters, self._offsets, self._sizes):
            if p.grad is None:
                continue
            g = p.grad
            if self.clip_norm is not None:
                norm = np.linalg.norm(g)
                if norm > self.clip_norm:
                    g = g * (self.clip_norm / norm)
            m = self._m[off : off + size].reshape(p.data.shape)
            v = self._v[off : off + size].reshape(p.data.shape)
            p.data -= self._update_segment(m, v, g)

"""Simulated manual annotation (paper Sec. VI-B).

The paper employs three professional annotators and reports Krippendorff's
alpha = 0.58 with majority-vote gold labels.  We simulate that labelling
channel: each annotator observes the true generative label through a noisy
threshold with a personal bias, so the resulting agreement is imperfect
and tunable to the paper's alpha.
"""

from __future__ import annotations

import numpy as np

from repro.data.schema import Tweet
from repro.ml.metrics import krippendorff_alpha
from repro.utils.rng import ensure_rng

__all__ = ["AnnotatorPool"]


class AnnotatorPool:
    """A pool of simulated annotators with per-annotator noise and bias.

    Parameters
    ----------
    n_annotators:
        Number of annotators (paper: 3).
    noise:
        Probability an annotator misreads a clear-cut tweet.  The default
        is calibrated so that, at the corpus' ~5% hate rate, three
        annotators agree at Krippendorff alpha ~ 0.55 (paper: 0.58).
    bias_spread:
        Std-dev of per-annotator bias toward labelling hate; models the
        definitional ambiguity of hate speech [Ross et al.].
    """

    def __init__(
        self,
        n_annotators: int = 3,
        noise: float = 0.03,
        bias_spread: float = 0.03,
        random_state=None,
    ):
        if n_annotators < 1:
            raise ValueError(f"n_annotators must be >= 1, got {n_annotators}")
        if not 0.0 <= noise < 0.5:
            raise ValueError(f"noise must be in [0, 0.5), got {noise}")
        self.n_annotators = n_annotators
        self.noise = noise
        self._rng = ensure_rng(random_state)
        self.biases = self._rng.normal(0.0, bias_spread, size=n_annotators)

    def annotate(self, tweets: list[Tweet]) -> np.ndarray:
        """Return ``(n_annotators, n_tweets)`` 0/1 ratings."""
        n = len(tweets)
        ratings = np.zeros((self.n_annotators, n), dtype=np.int64)
        for j, tweet in enumerate(tweets):
            truth = 1 if tweet.is_hate else 0
            for a in range(self.n_annotators):
                flip_p = min(0.49, max(0.0, self.noise + self.biases[a] * (1 - truth)))
                flip = self._rng.random() < flip_p
                ratings[a, j] = 1 - truth if flip else truth
        return ratings

    @staticmethod
    def majority_vote(ratings: np.ndarray) -> np.ndarray:
        """Per-item majority label (ties resolve to 1, the cautious choice)."""
        ratings = np.asarray(ratings)
        votes = ratings.mean(axis=0)
        return (votes >= 0.5).astype(np.int64)

    @staticmethod
    def agreement(ratings: np.ndarray) -> float:
        """Krippendorff's alpha of the rating matrix."""
        return krippendorff_alpha(ratings)

"""The Table II hashtag catalog.

All 34 hashtags from the paper with their reported tweet counts, average
retweets, unique tweeting users, and percentage of hateful tweets.  Themes
are assigned from the hashtag semantics (the paper's observation, Fig. 2:
politics/social-issue hashtags attract far more hate than
civic/sports/ceremonial ones).
"""

from __future__ import annotations

from repro.data.schema import HashtagSpec

__all__ = ["TABLE2_HASHTAGS", "hashtag_catalog", "THEMES"]

THEMES = (
    "protest",
    "riots",
    "politics",
    "covid",
    "media",
    "civic",
)

# tag, tweets, avg RT, users, %hate, theme  — verbatim from Table II.
TABLE2_HASHTAGS: tuple[HashtagSpec, ...] = (
    HashtagSpec("jamiaviolence", 950, 15.45, 743, 3.78, "protest"),
    HashtagSpec("MigrantsOnTheRoad", 872, 6.69, 641, 8.20, "covid"),
    HashtagSpec("timetosackvadras", 280, 8.19, 138, 1.30, "politics"),
    HashtagSpec("jamiaunderattack", 263, 5.80, 215, 6.06, "protest"),
    HashtagSpec("IndiaBoycottsNPR", 570, 7.87, 333, 0.80, "politics"),
    HashtagSpec("ZeeNewsBanKaro", 919, 9.58, 751, 7.01, "media"),
    HashtagSpec("SaluteCoronaWarriors", 104, 5.65, 53, 0.00, "civic"),
    HashtagSpec("Demonetisation", 1696, 3.46, 607, 0.06, "politics"),
    HashtagSpec("ChineseVirus", 8, 0.25, 7, 0.50, "covid"),
    HashtagSpec("IslamoPhobicIndianMedia", 4307, 15.46, 1181, 8.42, "media"),
    HashtagSpec("delhiriots2020", 1453, 12.23, 1136, 6.80, "riots"),
    HashtagSpec("Seva4Society", 1087, 13.24, 532, 1.53, "civic"),
    HashtagSpec("PMCaresFunds", 1172, 7.61, 1076, 0.80, "civic"),
    HashtagSpec("COVID_19", 971, 6.38, 807, 1.96, "covid"),
    HashtagSpec("Hindus_Under_Attack", 382, 7.10, 292, 10.10, "riots"),
    HashtagSpec("WarisPathan", 989, 9.23, 807, 12.07, "politics"),
    HashtagSpec("NorthDelhiRiots", 3418, 2.89, 1316, 0.08, "riots"),
    HashtagSpec("UmarKhalid", 887, 3.82, 439, 0.10, "protest"),
    HashtagSpec("lockdownextension", 107, 1.85, 102, 0.00, "covid"),
    HashtagSpec("JamiaCCTV", 1045, 12.07, 815, 5.66, "protest"),
    HashtagSpec("TrumpVisitIndia", 339, 8.47, 284, 2.60, "politics"),
    HashtagSpec("PutNationOverPublicity", 555, 13.24, 365, 5.71, "politics"),
    HashtagSpec("DelhiExodus", 542, 9.66, 414, 7.61, "riots"),
    HashtagSpec("DelhiElectionResults", 843, 7.56, 731, 3.20, "politics"),
    HashtagSpec("amitshahmustresign", 959, 5.01, 765, 9.94, "politics"),
    HashtagSpec("PMPanuti", 1346, 4.06, 368, 0.02, "politics"),
    HashtagSpec("Restore4GinKashmir", 949, 3.94, 492, 2.84, "politics"),
    HashtagSpec("DelhiViolance", 1121, 9.004, 948, 7.37, "riots"),
    HashtagSpec("StopNPR", 82, 10.23, 64, 0.00, "politics"),
    HashtagSpec("1Crore4DelhiHindu", 889, 11.62, 770, 0.99, "riots"),
    HashtagSpec("NirbhayaVerdict", 649, 7.61, 546, 4.67, "civic"),
    HashtagSpec("NizamuddinMarkaz", 1124, 8.24, 843, 7.85, "covid"),
    HashtagSpec("90daysofshaheenbagh", 226, 5.25, 188, 12.04, "protest"),
    HashtagSpec("HinduLivesMatter", 392, 4.82, 145, 0.12, "riots"),
)


def hashtag_catalog(
    n_hashtags: int | None = None, min_tweets: int = 0
) -> list[HashtagSpec]:
    """Return the catalog, optionally the ``n_hashtags`` largest by tweets.

    Selecting the largest keeps small worlds dense enough for diffusion
    experiments while preserving the hate-rate spread of Fig. 2.
    """
    specs = [h for h in TABLE2_HASHTAGS if h.n_tweets >= min_tweets]
    if n_hashtags is not None:
        if n_hashtags < 1:
            raise ValueError(f"n_hashtags must be >= 1, got {n_hashtags}")
        specs = sorted(specs, key=lambda h: -h.n_tweets)[:n_hashtags]
    return specs

"""Streaming world generation for million-user graphs.

:class:`SyntheticWorld` materialises everything — every ``User`` object,
every history tweet, an ``(n, n)`` dyadic matrix — which caps it near
10^4 users.  :class:`WorldStream` builds the same *kind* of world at
10^5–10^6 users by keeping only columnar per-user arrays and the frozen
CSR network resident:

- **edges** stream from :class:`~repro.graph.generators.FollowerEdgeStream`
  (fast mode) in chunks straight into the CSR builder — the Python
  adjacency dicts never exist;
- **users** are columnar (activity, account age, hate propensity,
  community); ``User`` objects materialise lazily through an LRU view;
- **histories** are synthesised on demand per user from a
  per-user-seeded generator (``default_rng([seed, uid])``), so the same
  uid always gets the same history without storing any of them;
- **cascades** are drawn on demand over the frozen graph
  (:meth:`StreamedWorld.iter_cascades`) instead of being pre-simulated.

A :class:`StreamedWorld` exposes the attribute surface
:class:`~repro.features.store.FeatureStore` consumes (``users`` with a
``user_ids`` fast path, ``network``, ``history.get``, ``tweets``,
``cascades``), so the paged feature store runs unmodified on top.

This mode is its own distribution — heavy-tailed, community-structured,
like the resident generator, but not draw-compatible with
:class:`SyntheticWorld` (which keeps its exact historical RNG sequence).
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

import numpy as np

from repro.data.hashtags import hashtag_catalog
from repro.data.schema import Cascade, Retweet, Tweet, User
from repro.data.vocab import make_text
from repro.graph.generators import FollowerEdgeStream, dedupe_edges
from repro.graph.network import InformationNetwork
from repro.utils.rng import ensure_rng

__all__ = ["WorldStreamConfig", "WorldStream", "StreamedWorld"]

#: Disjoint id space from in-window tweets (mirrors SyntheticWorld).
_HISTORY_ID_BASE = 10_000_000
#: Hard per-user history length cap (keeps lazy tweet ids collision-free).
_MAX_HISTORY = 500


@dataclass
class WorldStreamConfig:
    """Knobs of a streamed world.

    ``n_celebrities`` and ``celebrity_followers_mean`` are absolute (not
    fractions) because at 10^6 users a paper-scale celebrity *fraction*
    would alone emit tens of millions of edges; the defaults keep mean
    degree near ``mean_follows`` at every scale.
    """

    n_users: int = 100_000
    n_communities: int = 32
    mean_follows: int = 12
    p_in: float = 0.7
    n_celebrities: int = 20
    celebrity_followers_mean: float = 2000.0
    chunk_users: int = 100_000
    n_hashtags: int = 12
    history_tweets_mean: float = 8.0
    history_cache: int = 4096
    user_cache: int = 65536
    seed: int = 0

    def __post_init__(self):
        if self.n_users < 2:
            raise ValueError(f"n_users must be >= 2, got {self.n_users}")
        if self.n_celebrities < 0:
            raise ValueError("n_celebrities must be >= 0")


class _LazyUsers:
    """Mapping-like ``uid -> User`` view over columnar per-user arrays.

    Materialises ``User`` objects on demand behind an LRU so a
    million-user world never holds a million dataclass instances.  The
    ``user_ids`` array is the feature store's fast path around
    ``sorted(world.users)``.
    """

    def __init__(self, world: "StreamedWorld", cap: int):
        self._world = world
        self._cap = max(1, cap)
        self._cache: "OrderedDict[int, User]" = OrderedDict()

    @property
    def user_ids(self) -> np.ndarray:
        return self._world.user_ids

    def __len__(self) -> int:
        return len(self._world.user_ids)

    def __iter__(self):
        return iter(range(len(self)))

    def __contains__(self, uid) -> bool:
        return 0 <= int(uid) < len(self)

    def __getitem__(self, uid: int) -> User:
        uid = int(uid)
        user = self._cache.get(uid)
        if user is not None:
            self._cache.move_to_end(uid)
            return user
        if not 0 <= uid < len(self):
            raise KeyError(uid)
        w = self._world
        user = User(
            user_id=uid,
            community=int(w.communities[uid]),
            account_age_days=float(w.account_age_days[uid]),
            activity_rate=float(w.activity_rate[uid]),
            base_hate_propensity=float(w.base_hate_propensity[uid]),
        )
        if len(self._cache) >= self._cap:
            self._cache.popitem(last=False)
        self._cache[uid] = user
        return user

    def get(self, uid, default=None):
        try:
            return self[uid]
        except KeyError:
            return default


class _LazyHistories:
    """``uid -> list[Tweet]`` pre-window histories, synthesised on demand.

    Each user's history comes from ``default_rng([seed, uid])`` — fully
    determined by the world seed and the uid, so repeated reads (and
    reads on different processes) see identical tweets without any
    resident storage beyond a bounded LRU.
    """

    def __init__(self, world: "StreamedWorld", cap: int):
        self._world = world
        self._cap = max(1, cap)
        self._cache: "OrderedDict[int, list[Tweet]]" = OrderedDict()

    def get(self, uid: int, default=None):
        uid = int(uid)
        if not 0 <= uid < len(self._world.user_ids):
            return default
        items = self._cache.get(uid)
        if items is not None:
            self._cache.move_to_end(uid)
            return items
        items = self._synthesise(uid)
        if len(self._cache) >= self._cap:
            self._cache.popitem(last=False)
        self._cache[uid] = items
        return items

    def __getitem__(self, uid: int) -> list[Tweet]:
        items = self.get(uid)
        if items is None:
            raise KeyError(uid)
        return items

    def _synthesise(self, uid: int) -> list[Tweet]:
        w = self._world
        cfg = w.config
        rng = np.random.default_rng([cfg.seed, 7, uid])
        mean = cfg.history_tweets_mean * min(float(w.activity_rate[uid]), 3.0)
        n_hist = int(min(_MAX_HISTORY, max(3, rng.poisson(mean))))
        catalog = w.catalog
        picks = rng.integers(0, len(catalog), size=n_hist)
        times = -np.sort(rng.uniform(1.0, 24.0 * 120, size=n_hist))[::-1]
        base = float(w.base_hate_propensity[uid])
        items: list[Tweet] = []
        for k, (j, ts) in enumerate(zip(picks, times)):
            spec = catalog[int(j)]
            is_hate = bool(rng.random() < base)
            items.append(
                Tweet(
                    tweet_id=_HISTORY_ID_BASE + uid * _MAX_HISTORY + k,
                    user_id=uid,
                    hashtag=spec.tag,
                    text=make_text(spec.theme, spec.tag, is_hate, rng, length=12),
                    timestamp=float(ts),
                    is_hate=is_hate,
                )
            )
        items.sort(key=lambda tw: tw.timestamp)
        return items


@dataclass
class StreamedWorld:
    """A world whose resident state is columnar arrays + a frozen CSR net."""

    config: WorldStreamConfig
    network: InformationNetwork
    communities: np.ndarray
    user_ids: np.ndarray
    activity_rate: np.ndarray
    account_age_days: np.ndarray
    base_hate_propensity: np.ndarray
    catalog: list = field(default_factory=list)
    tweets: list = field(default_factory=list)
    cascades: list = field(default_factory=list)
    users: _LazyUsers = None  # type: ignore[assignment]
    history: _LazyHistories = None  # type: ignore[assignment]

    def __post_init__(self):
        if self.users is None:
            self.users = _LazyUsers(self, self.config.user_cache)
        if self.history is None:
            self.history = _LazyHistories(self, self.config.history_cache)

    def iter_cascades(self, n_cascades: int, mean_size: float = 12.0, seed: int = 1):
        """Yield synthetic cascades drawn over the frozen graph on demand.

        Roots are popularity-weighted; participants spread follower-first
        over CSR rows.  Nothing is stored — each cascade is built, yielded,
        and dropped, which is what lets benchmarks run cascade workloads
        against million-user worlds.
        """
        rng = np.random.default_rng([self.config.seed, 11, seed])
        net = self.network
        n = len(self.user_ids)
        weights = net.follower_counts().astype(np.float64) + 1.0
        cdf = np.cumsum(weights)
        catalog = self.catalog
        for ci in range(n_cascades):
            root = int(np.searchsorted(cdf, rng.random() * cdf[-1], side="right"))
            root = min(root, n - 1)
            size = int(min(200, max(1, rng.poisson(mean_size))))
            participants = {root}
            frontier = list(net.followers_rows(root))
            chosen: list[int] = []
            while len(chosen) < size:
                if frontier:
                    pick = int(frontier[rng.integers(0, len(frontier))])
                else:
                    pick = int(rng.integers(0, n))
                if pick in participants:
                    # Rejection: densely-followed regions resample quickly.
                    if len(frontier) <= 1:
                        frontier = []
                        continue
                    frontier.remove(pick)
                    continue
                participants.add(pick)
                chosen.append(pick)
                frontier.extend(int(v) for v in net.followers_rows(pick))
                if len(frontier) > 4 * size:
                    frontier = frontier[-4 * size :]
            spec = catalog[ci % len(catalog)]
            is_hate = bool(rng.random() < 0.15)
            tweet = Tweet(
                tweet_id=ci,
                user_id=root,
                hashtag=spec.tag,
                text=make_text(spec.theme, spec.tag, is_hate, rng, length=12),
                timestamp=float(rng.uniform(0.0, 72.0)),
                is_hate=is_hate,
            )
            delays = np.sort(rng.exponential(12.0, size=len(chosen)))
            yield Cascade(
                root=tweet,
                retweets=[
                    Retweet(user_id=uid, timestamp=float(tweet.timestamp + d))
                    for uid, d in zip(chosen, delays)
                ],
            )


class WorldStream:
    """Builder: stream edge chunks into a frozen CSR world."""

    def __init__(self, config: WorldStreamConfig | None = None):
        self.config = config or WorldStreamConfig()

    def build(self) -> StreamedWorld:
        cfg = self.config
        rng = ensure_rng(cfg.seed)
        n = cfg.n_users
        stream = FollowerEdgeStream(
            n,
            n_communities=cfg.n_communities,
            mean_follows=cfg.mean_follows,
            p_in=cfg.p_in,
            celebrity_fraction=cfg.n_celebrities / n,
            celebrity_follow_prob=min(1.0, cfg.celebrity_followers_mean / n),
            mode="fast",
            chunk_users=cfg.chunk_users,
            random_state=rng,
        )
        srcs: list[np.ndarray] = []
        dsts: list[np.ndarray] = []
        for fe, fr in stream.chunks():
            srcs.append(fe.astype(np.int32))
            dsts.append(fr.astype(np.int32))
        src = np.concatenate(srcs) if srcs else np.empty(0, dtype=np.int32)
        dst = np.concatenate(dsts) if dsts else np.empty(0, dtype=np.int32)
        # Phase-1 chunks are internally deduped but the celebrity phase can
        # re-emit an existing pair; one global pass keeps first emissions.
        src, dst = dedupe_edges(src, dst, n)
        network = InformationNetwork.from_edge_arrays(n, src, dst)

        activity = rng.lognormal(mean=0.0, sigma=1.2, size=n)
        account_age = rng.uniform(30.0, 3650.0, size=n)
        base = rng.beta(1.2, 18.0, size=n)
        return StreamedWorld(
            config=cfg,
            network=network,
            communities=stream.communities,
            user_ids=np.arange(n, dtype=np.int64),
            activity_rate=activity,
            account_age_days=account_age,
            base_hate_propensity=base,
            catalog=hashtag_catalog(cfg.n_hashtags),
        )

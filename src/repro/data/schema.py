"""Core record types for the synthetic Twitter world.

Timestamps are float hours since the start of the observation window
(paper window: 2020-02-03 to 2020-04-14, i.e. 72 days = 1728 hours).
"""

from __future__ import annotations

from dataclasses import dataclass, field

__all__ = ["User", "Tweet", "Retweet", "Cascade", "NewsArticle", "HashtagSpec"]

WINDOW_HOURS = 72 * 24.0  # the paper's 72-day crawl window


@dataclass
class User:
    """A Twitter user.

    ``hate_affinity`` maps hashtag -> probability that a tweet by this user
    on that hashtag is hateful (the paper's Fig. 3 observation that hate is
    user- *and* topic-dependent).
    """

    user_id: int
    community: int
    account_age_days: float
    activity_rate: float
    base_hate_propensity: float
    hate_affinity: dict[str, float] = field(default_factory=dict)

    def hate_probability(self, hashtag: str) -> float:
        """P(hateful | this user tweets on hashtag)."""
        return self.hate_affinity.get(hashtag, self.base_hate_propensity)


@dataclass
class Tweet:
    """A (root) tweet; ``is_hate`` is the gold generative label."""

    tweet_id: int
    user_id: int
    hashtag: str
    text: str
    timestamp: float
    is_hate: bool


@dataclass
class Retweet:
    """One retweet event inside a cascade."""

    user_id: int
    timestamp: float


@dataclass
class Cascade:
    """A root tweet plus its time-ordered retweets."""

    root: Tweet
    retweets: list[Retweet] = field(default_factory=list)

    @property
    def size(self) -> int:
        """Number of retweets (cascade size in the paper's Fig. 9 sense)."""
        return len(self.retweets)

    @property
    def participants(self) -> list[int]:
        """Root user followed by retweeters in time order."""
        return [self.root.user_id] + [r.user_id for r in self.retweets]

    def participants_before(self, t: float) -> list[int]:
        """Participants whose event time is <= t (root always included)."""
        return [self.root.user_id] + [
            r.user_id for r in self.retweets if r.timestamp <= t
        ]

    def retweet_count_before(self, t: float) -> int:
        return sum(1 for r in self.retweets if r.timestamp <= t)


@dataclass
class NewsArticle:
    """A news item; the headline is the exogenous-signal text."""

    article_id: int
    headline: str
    topic: str
    timestamp: float


@dataclass(frozen=True)
class HashtagSpec:
    """Target statistics for one hashtag (a row of the paper's Table II)."""

    tag: str
    n_tweets: int
    avg_retweets: float
    n_users: int
    pct_hate: float
    theme: str

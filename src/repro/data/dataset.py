"""Dataset container: task-specific views over a SyntheticWorld.

Mirrors the paper's experiment setup (Sec. VI-C/D): the hate-generation
task keeps tweets with at least ``news_per_tweet`` preceding news articles;
the retweet task additionally requires more than one retweet.  Both use an
80:20 split.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.annotate import AnnotatorPool
from repro.data.schema import Cascade, Tweet
from repro.data.synthetic import SyntheticWorld, SyntheticWorldConfig
from repro.utils.rng import ensure_rng

__all__ = ["HateDiffusionDataset"]


@dataclass
class HateDiffusionDataset:
    """Task views over a generated world."""

    world: SyntheticWorld

    @classmethod
    def generate(cls, config: SyntheticWorldConfig | None = None) -> "HateDiffusionDataset":
        return cls(world=SyntheticWorld.generate(config))

    # ------------------------------------------------------------ filtering
    def tweets_with_news(self, min_news: int | None = None) -> list[Tweet]:
        """Tweets with at least ``min_news`` articles published before them.

        The paper keeps tweets "which have at least 60 news mapping to it
        from the time of its posting".
        """
        k = min_news if min_news is not None else self.world.config.news_per_tweet
        return [
            t
            for t in self.world.tweets
            if len(self.world.news.recent_before(t.timestamp, k)) >= k
        ]

    def retweet_cascades(
        self, min_retweets: int = 2, min_news: int | None = None
    ) -> list[Cascade]:
        """Cascades usable for the retweet-prediction task.

        Paper: "only those tweets which have more than one retweet and at
        least 60 news mapping".
        """
        eligible_ids = {t.tweet_id for t in self.tweets_with_news(min_news)}
        return [
            c
            for c in self.world.cascades
            if c.size >= min_retweets and c.root.tweet_id in eligible_ids
        ]

    # --------------------------------------------------------------- splits
    def hategen_split(
        self, test_size: float = 0.2, random_state=0
    ) -> tuple[list[Tweet], list[Tweet]]:
        """80:20 stratified train/test split of hate-generation samples."""
        tweets = self.tweets_with_news()
        labels = np.array([int(t.is_hate) for t in tweets])
        rng = ensure_rng(random_state)
        train, test = [], []
        for cls_label in (0, 1):
            idx = np.flatnonzero(labels == cls_label)
            rng.shuffle(idx)
            n_test = max(1, int(round(test_size * len(idx)))) if len(idx) > 1 else 0
            test.extend(tweets[i] for i in idx[:n_test])
            train.extend(tweets[i] for i in idx[n_test:])
        # Shuffle so any prefix of either split is label-mixed.
        rng.shuffle(train)
        rng.shuffle(test)
        return train, test

    def cascade_split(
        self, test_size: float = 0.2, random_state=0, min_retweets: int = 2
    ) -> tuple[list[Cascade], list[Cascade]]:
        """80:20 split of retweet cascades, stratified by root hatefulness."""
        cascades = self.retweet_cascades(min_retweets=min_retweets)
        labels = np.array([int(c.root.is_hate) for c in cascades])
        rng = ensure_rng(random_state)
        train, test = [], []
        for cls_label in (0, 1):
            idx = np.flatnonzero(labels == cls_label)
            rng.shuffle(idx)
            n_test = max(1, int(round(test_size * len(idx)))) if len(idx) > 1 else 0
            test.extend(cascades[i] for i in idx[:n_test])
            train.extend(cascades[i] for i in idx[n_test:])
        # Shuffle so any prefix of either split is label-mixed.
        rng.shuffle(train)
        rng.shuffle(test)
        return train, test

    # ------------------------------------------------------------ annotation
    def gold_annotation(
        self, fraction: float = 0.6, random_state=0
    ) -> tuple[list[Tweet], np.ndarray, np.ndarray]:
        """Simulate the manual annotation round (Sec. VI-B).

        Returns ``(annotated_tweets, ratings, majority_labels)``.
        """
        if not 0.0 < fraction <= 1.0:
            raise ValueError(f"fraction must be in (0, 1], got {fraction}")
        rng = ensure_rng(random_state)
        tweets = list(self.world.tweets)
        rng.shuffle(tweets)
        subset = tweets[: max(1, int(fraction * len(tweets)))]
        pool = AnnotatorPool(random_state=rng)
        ratings = pool.annotate(subset)
        majority = pool.majority_vote(ratings)
        return subset, ratings, majority

"""Generative model of the paper's Twitter corpus.

:class:`SyntheticWorld` produces — at a configurable scale — every artifact
the paper's models consume:

- a follower network with echo-chamber communities,
- users with topic-dependent hate affinities (Fig. 3),
- root tweets per hashtag matching Table II tweet counts and hate rates
  (Fig. 2), timed by exogenous news bursts,
- retweet cascades whose size and tempo differ for hate vs non-hate
  (Fig. 1: hateful content gathers more retweets faster, within
  better-connected audiences, exposing fewer susceptible users),
- pre-window activity history per user (the paper's H_{i,t}),
- a timestamped news stream (exogenous signal S_ex).

All randomness flows from a single seed.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from repro.data.hashtags import THEMES, hashtag_catalog
from repro.data.news import NewsStream, generate_news_stream
from repro.data.schema import WINDOW_HOURS, Cascade, HashtagSpec, Retweet, Tweet, User
from repro.data.vocab import make_text
from repro.graph.generators import community_follower_graph
from repro.graph.network import InformationNetwork
from repro.utils.rng import ensure_rng

__all__ = ["SyntheticWorldConfig", "SyntheticWorld"]

MAX_CASCADE = 196  # largest cascade in the paper's data
FIG1_HORIZON = 200.0  # hours shown in the paper's Figure 1


@dataclass
class SyntheticWorldConfig:
    """Knobs of the synthetic world.

    ``scale`` multiplies Table II tweet counts; the default keeps the world
    small enough for test suites while preserving every distributional
    property. ``hate_rt_boost`` is the hateful-cascade size multiplier
    implied by Fig. 1a; ``hate_delay_hours``/``nonhate_delay_hours`` set the
    retweet-latency scales that produce Fig. 1's early-saturating hate
    curves; ``echo_bias`` is the preference of hateful cascades for the root
    community (echo chambers).
    """

    scale: float = 0.04
    n_hashtags: int = 12
    n_users: int = 600
    n_communities: int = 8
    mean_follows: int = 14
    p_in: float = 0.85
    celebrity_fraction: float = 0.03
    celebrity_follow_prob: float = 0.5
    hate_clique_quantile: float = 0.7
    hate_clique_density: float = 0.7
    max_hate_cascade_fraction: float = 0.18
    n_news: int = 1500
    news_per_tweet: int = 60
    history_tweets_mean: float = 35.0
    hate_rt_boost: float = 3.0
    hate_delay_hours: float = 8.0
    nonhate_delay_hours: float = 45.0
    echo_bias: float = 4.0
    organic_prob: float = 0.93
    seed: int = 0

    def __post_init__(self):
        if self.scale <= 0:
            raise ValueError(f"scale must be positive, got {self.scale}")
        if self.n_users < 10:
            raise ValueError(f"n_users must be >= 10, got {self.n_users}")
        if not 0.0 <= self.organic_prob <= 1.0:
            raise ValueError(f"organic_prob must be in [0,1], got {self.organic_prob}")


@dataclass
class SyntheticWorld:
    """The generated corpus; construct via :meth:`generate`."""

    config: SyntheticWorldConfig
    catalog: list[HashtagSpec]
    users: dict[int, User]
    network: InformationNetwork
    communities: np.ndarray
    tweets: list[Tweet]
    cascades: list[Cascade]
    history: dict[int, list[Tweet]]
    news: NewsStream
    theme_of: dict[str, str] = field(default_factory=dict)

    # ------------------------------------------------------------ generation
    @classmethod
    def generate(cls, config: SyntheticWorldConfig | None = None) -> "SyntheticWorld":
        """Build a full world from the configuration seed."""
        cfg = config or SyntheticWorldConfig()
        rng = ensure_rng(cfg.seed)
        catalog = hashtag_catalog(cfg.n_hashtags)
        theme_of = {h.tag: h.theme for h in catalog}

        network, communities = community_follower_graph(
            cfg.n_users,
            n_communities=cfg.n_communities,
            mean_follows=cfg.mean_follows,
            p_in=cfg.p_in,
            celebrity_fraction=cfg.celebrity_fraction,
            celebrity_follow_prob=cfg.celebrity_follow_prob,
            random_state=rng,
        )
        users = cls._make_users(cfg, catalog, communities, rng)
        cls._densify_hate_cliques(cfg, users, network, communities, rng)
        # Last mutation is done: compile to CSR so cascade simulation and
        # the feature path run on the frozen fast path.  Freezing preserves
        # per-node neighbour order, so every RNG draw below is unchanged.
        network.freeze()
        news = generate_news_stream(
            n_articles=cfg.n_news, window_hours=WINDOW_HOURS, random_state=rng
        )
        # Stable dyadic retweet habits: D[a, b] is b's tendency to retweet a.
        # Heavy-tailed so a few (source, follower) pairs retweet repeatedly —
        # the behaviour the paper's "times u_j retweeted u_0" feature tracks.
        dyad = rng.lognormal(mean=0.0, sigma=1.8, size=(cfg.n_users, cfg.n_users))
        tweets, cascades = cls._make_tweets_and_cascades(
            cfg, catalog, users, network, communities, news, dyad, rng
        )
        history = cls._make_history(cfg, catalog, users, rng)
        return cls(
            config=cfg,
            catalog=catalog,
            users=users,
            network=network,
            communities=communities,
            tweets=tweets,
            cascades=cascades,
            history=history,
            news=news,
            theme_of=theme_of,
        )

    # ----------------------------------------------------------------- users
    @staticmethod
    def _make_users(cfg, catalog, communities, rng) -> dict[int, User]:
        n = cfg.n_users
        n_comm = cfg.n_communities
        # Community theme preferences (Dirichlet) and hate multipliers: some
        # communities are hate-prone on some themes (Fig. 3 block structure).
        theme_list = list(THEMES)
        comm_theme_pref = rng.dirichlet(np.full(len(theme_list), 0.8), size=n_comm)
        comm_hate_mult = rng.gamma(2.0, 0.75, size=(n_comm, len(theme_list)))

        # A small fraction of users produce most hate (Mathew et al.):
        # Beta(1.2, 18) puts most mass near zero with a heavy right tail.
        base = rng.beta(1.2, 18.0, size=n)
        activity = rng.lognormal(mean=0.0, sigma=1.2, size=n)
        account_age = rng.uniform(30.0, 3650.0, size=n)

        theme_index = {t: i for i, t in enumerate(theme_list)}
        users: dict[int, User] = {}
        # Raw affinity r(u, tag) = base_u * community multiplier(theme);
        # calibrated per hashtag so the mean hate probability over authors
        # equals the Table II hate rate.
        raw = np.empty((n, len(catalog)))
        for j, spec in enumerate(catalog):
            ti = theme_index[spec.theme]
            raw[:, j] = base * comm_hate_mult[communities, ti]
        for j, spec in enumerate(catalog):
            mean_raw = raw[:, j].mean()
            target = spec.pct_hate / 100.0
            if mean_raw > 0:
                raw[:, j] = np.clip(raw[:, j] * target / mean_raw, 0.0, 0.95)
        for uid in range(n):
            affinity = {spec.tag: float(raw[uid, j]) for j, spec in enumerate(catalog)}
            users[uid] = User(
                user_id=uid,
                community=int(communities[uid]),
                account_age_days=float(account_age[uid]),
                activity_rate=float(activity[uid]),
                base_hate_propensity=float(np.clip(base[uid] * 0.3, 0.0, 0.9)),
                hate_affinity=affinity,
            )
        # Topic preference for *tweeting* (who talks about what).
        for uid in range(n):
            pref = comm_theme_pref[communities[uid]] + rng.dirichlet(
                np.full(len(theme_list), 1.2)
            )
            users[uid].theme_preference = {  # type: ignore[attr-defined]
                t: float(pref[i] / pref.sum()) for i, t in enumerate(theme_list)
            }
        return users

    @staticmethod
    def _densify_hate_cliques(cfg, users, network, communities, rng) -> None:
        """Interconnect high-hate-propensity users within each community.

        Mathew et al. (and this paper's Fig. 1 reading) observe hateful
        content circulating among a small, well-connected user set.  Mutual
        follows among the top-propensity users of a community make hateful
        cascades recirculate internally instead of exposing new audiences.
        """
        base = np.array([users[u].base_hate_propensity for u in sorted(users)])
        cutoff = np.quantile(base, cfg.hate_clique_quantile)
        prone = np.flatnonzero(base >= cutoff)
        for comm in range(cfg.n_communities):
            group = [int(u) for u in prone if communities[u] == comm]
            for i, a in enumerate(group):
                for b in group[i + 1 :]:
                    if rng.random() < cfg.hate_clique_density:
                        if not network.follows(b, a):
                            network.add_follow(a, b)
                        if not network.follows(a, b):
                            network.add_follow(b, a)

    # ------------------------------------------------------------- cascades
    @classmethod
    def _make_tweets_and_cascades(cls, cfg, catalog, users, network, communities, news, dyad, rng):
        tweets: list[Tweet] = []
        cascades: list[Cascade] = []
        n = cfg.n_users
        activity = np.array([users[u].activity_rate for u in range(n)])
        tweet_id = 0
        grid = np.linspace(0, WINDOW_HOURS, 1024)
        for spec in catalog:
            n_tweets = max(6, int(round(cfg.scale * spec.n_tweets)))
            # Author weights: activity x theme preference.
            pref = np.array(
                [users[u].theme_preference[spec.theme] for u in range(n)]  # type: ignore[attr-defined]
            )
            weights = activity * pref
            weights /= weights.sum()
            # Tweet times follow the theme's news-burst profile (exogenous
            # influence: off-platform events trigger on-platform volume).
            rate = 0.15 + np.array([news.theme_rate_at(spec.theme, t) for t in grid])
            cdf = np.cumsum(rate)
            cdf /= cdf[-1]
            times = np.sort(np.interp(rng.random(n_tweets), cdf, grid))
            # Base cascade size such that the hate/non-hate mixture matches
            # the hashtag's average retweet count.
            p_h = spec.pct_hate / 100.0
            base_size = spec.avg_retweets / ((1.0 - p_h) + cfg.hate_rt_boost * p_h)
            # Exogenous coupling: cascades during news bursts grow larger and
            # turn hateful more often (events fuel both volume and vitriol) —
            # this is the signal the paper's exogenous features/attention
            # read.  Normalised to mean 1 so Table II calibration holds.
            tweet_rates = 0.15 + np.array(
                [news.theme_rate_at(spec.theme, t) for t in times]
            )
            rel = tweet_rates / tweet_rates.mean()
            size_boost = 0.1 + 0.9 * rel**1.5
            size_boost /= size_boost.mean()
            hate_boost = 0.3 + 0.7 * rel
            hate_boost /= hate_boost.mean()
            authors = rng.choice(n, size=n_tweets, p=weights)
            for ti, (t, author) in enumerate(zip(times, authors)):
                author = int(author)
                p_hate = min(
                    0.95, users[author].hate_probability(spec.tag) * hate_boost[ti]
                )
                is_hate = bool(rng.random() < p_hate)
                text = make_text(spec.theme, spec.tag, is_hate, rng)
                tweet = Tweet(
                    tweet_id=tweet_id,
                    user_id=author,
                    hashtag=spec.tag,
                    text=text,
                    timestamp=float(t),
                    is_hate=is_hate,
                )
                tweet_id += 1
                cascade = cls._simulate_cascade(
                    cfg,
                    tweet,
                    base_size * size_boost[ti],
                    network,
                    communities,
                    users,
                    dyad,
                    spec,
                    rng,
                )
                tweets.append(tweet)
                cascades.append(cascade)
        return tweets, cascades

    @classmethod
    def _simulate_cascade(
        cls, cfg, tweet, base_size, network, communities, users, dyad, spec, rng
    ) -> Cascade:
        """Grow one retweet cascade over the follower graph.

        Size: geometric-like draw around the calibrated mean (hate boosted).
        Participants: mostly followers of current participants (organic
        diffusion), hateful cascades biased toward the root community (echo
        chamber); a small fraction arrives from outside the visible graph
        (promoted/searched content, Sec. III "beyond organic diffusion").
        Who retweets is driven by stable user traits — activity, topic
        preference, dyadic habit toward the root, and (for hateful roots)
        hate affinity — so the paper's features carry real signal.
        Timing: exponential delays, much shorter for hate (Fig. 1).
        """
        mean_size = base_size * (cfg.hate_rt_boost if tweet.is_hate else 1.0)
        # Lognormal sizes give the heavy tail of real cascades.  Hateful
        # cascades are additionally capped relative to the population so an
        # echo chamber remains possible at small world scales.
        cap = MAX_CASCADE
        if tweet.is_hate:
            cap = min(cap, int(cfg.max_hate_cascade_fraction * cfg.n_users))
        size = int(
            min(
                cap,
                rng.lognormal(np.log(max(mean_size, 0.3)), 0.7),
            )
        )
        root = tweet.user_id
        root_comm = communities[root]
        participants = {root}
        frontier: dict[int, float] = {}

        def trait_weight(f: int) -> float:
            """User-trait retweet propensity (observable through features)."""
            user = users[f]
            q = user.activity_rate
            q *= 0.3 + user.theme_preference[spec.theme]  # type: ignore[attr-defined]
            if tweet.is_hate:
                # Hate participation is driven by hate affinity; the noisy
                # dyadic habit is dropped so the echo-chamber structure
                # (novelty penalty below) dominates selection.
                q *= 0.2 + 5.0 * user.hate_probability(tweet.hashtag)
            else:
                q *= dyad[root, f]
            return q

        def admit_followers(uid: int) -> None:
            for f in network.followers(uid):
                if f not in participants:
                    if tweet.is_hate:
                        # Echo chamber: prefer same-community users whose
                        # audience is already inside the cascade — more
                        # retweets, few *new* exposures.  The squared
                        # novelty penalty keeps celebrities and other
                        # high-fanout users out of hateful cascades.
                        w = cfg.echo_bias if communities[f] == root_comm else 0.05
                        novel = sum(
                            1 for g in network.followers(f) if g not in participants
                        )
                        w /= (1.0 + novel) ** 2
                    else:
                        # Organic spread rides hub users across communities,
                        # constantly exposing fresh audiences.
                        w = (1.0 + network.follower_count(f)) ** 1.5
                    frontier[f] = max(frontier.get(f, 0.0), w * trait_weight(f))

        admit_followers(root)
        chosen: list[int] = []
        for _ in range(size):
            take_organic = frontier and rng.random() < cfg.organic_prob
            if take_organic:
                cand = list(frontier)
                # Squared weights sharpen selection toward high-propensity
                # users, making participation consistent across cascades
                # (the predictability the paper's models exploit).
                w = np.array([frontier[c] for c in cand]) ** 2
                pick = int(rng.choice(len(cand), p=w / w.sum()))
                uid = cand[pick]
                del frontier[uid]
            else:
                outside = [
                    u for u in range(cfg.n_users) if u not in participants
                ]
                if not outside:
                    break
                uid = int(outside[rng.integers(0, len(outside))])
                frontier.pop(uid, None)
            participants.add(uid)
            chosen.append(uid)
            admit_followers(uid)

        scale = cfg.hate_delay_hours if tweet.is_hate else cfg.nonhate_delay_hours
        delays = rng.exponential(scale, size=len(chosen))
        if not tweet.is_hate:
            # Non-hate keeps spreading at a low rate for a long time: mix in
            # a uniform tail over the Fig. 1 horizon.
            tail = rng.random(len(chosen)) < 0.35
            delays[tail] = rng.uniform(0.0, FIG1_HORIZON, size=int(tail.sum()))
        delays = np.sort(np.minimum(delays, FIG1_HORIZON))
        retweets = [
            Retweet(user_id=uid, timestamp=float(tweet.timestamp + d))
            for uid, d in zip(chosen, delays)
        ]
        return Cascade(root=tweet, retweets=retweets)

    # -------------------------------------------------------------- history
    @staticmethod
    def _make_history(cfg, catalog, users, rng) -> dict[int, list[Tweet]]:
        """Pre-window tweets per user (negative timestamps).

        These instantiate the paper's activity history H_{i,t}: recent
        topical interest, hate ratio, and lexicon counts are all computed
        from this pool.
        """
        history: dict[int, list[Tweet]] = {}
        tweet_id = 10_000_000  # disjoint id space from in-window tweets
        tags = [spec.tag for spec in catalog]
        themes = [spec.theme for spec in catalog]
        for uid, user in users.items():
            n_hist = int(rng.poisson(cfg.history_tweets_mean * min(user.activity_rate, 3.0)))
            n_hist = max(n_hist, 3)
            pref = np.array([user.theme_preference[t] for t in themes])  # type: ignore[attr-defined]
            pref /= pref.sum()
            picks = rng.choice(len(tags), size=n_hist, p=pref)
            times = -np.sort(rng.uniform(1.0, 24.0 * 120, size=n_hist))[::-1]
            items: list[Tweet] = []
            for k, (j, ts) in enumerate(zip(picks, times)):
                tag, theme = tags[j], themes[j]
                is_hate = bool(rng.random() < user.hate_probability(tag))
                items.append(
                    Tweet(
                        tweet_id=tweet_id,
                        user_id=uid,
                        hashtag=tag,
                        text=make_text(theme, tag, is_hate, rng, length=12),
                        timestamp=float(ts),
                        is_hate=is_hate,
                    )
                )
                tweet_id += 1
            items.sort(key=lambda tw: tw.timestamp)
            history[uid] = items
        return history

    # ------------------------------------------------------------- summaries
    def hashtag_stats(self) -> list[dict]:
        """Per-hashtag generated statistics in Table II form."""
        out = []
        for spec in self.catalog:
            tw = [t for t in self.tweets if t.hashtag == spec.tag]
            cs = [c for c in self.cascades if c.root.hashtag == spec.tag]
            users_tweeting = {t.user_id for t in tw}
            users_all = set(users_tweeting)
            for c in cs:
                users_all.update(r.user_id for r in c.retweets)
            n_hate = sum(t.is_hate for t in tw)
            out.append(
                {
                    "tag": spec.tag,
                    "tweets": len(tw),
                    "avg_rt": float(np.mean([c.size for c in cs])) if cs else 0.0,
                    "users": len(users_tweeting),
                    "users_all": len(users_all),
                    "pct_hate": 100.0 * n_hate / len(tw) if tw else 0.0,
                    "target_avg_rt": spec.avg_retweets,
                    "target_pct_hate": spec.pct_hate,
                }
            )
        return out

    def user_history_before(self, user_id: int, t: float, k: int = 30) -> list[Tweet]:
        """The user's ``k`` most recent tweets strictly before time ``t``.

        Combines pre-window history with in-window tweets, which is how the
        paper's H_{i,t} features are computed at prediction time t0.
        """
        pool = list(self.history.get(user_id, []))
        pool.extend(tw for tw in self.tweets if tw.user_id == user_id)
        pool = [tw for tw in pool if tw.timestamp < t]
        pool.sort(key=lambda tw: tw.timestamp)
        return pool[-k:]

"""Synthetic vocabularies for tweet and headline generation.

Each theme has a topical vocabulary; hateful tweets additionally draw from
the hate lexicon (``repro.text.lexicon``).  Words are ordinary English-like
tokens plus the synthetic slur tokens, so no real abusive corpus ships with
the library while lexical features (tf-idf, lexicon counts) behave exactly
as on real data: topic words separate hashtags, slur tokens separate hate.
"""

from __future__ import annotations

import numpy as np

from repro.text.lexicon import PAPER_EXAMPLE_TERMS, SYNTHETIC_TERMS
from repro.utils.rng import ensure_rng

__all__ = ["THEME_VOCAB", "COMMON_WORDS", "HATE_PHRASES", "make_text", "make_headline"]

COMMON_WORDS = (
    "the to and is in of for on with this that was are they we you all "
    "today now people time news india city country please see watch share"
).split()

THEME_VOCAB: dict[str, list[str]] = {
    "protest": (
        "protest students campus march police detained library firing "
        "solidarity rally shaheen bagh university crackdown peaceful tear "
        "gas slogans citizenship amendment act students arrested injured"
    ).split(),
    "riots": (
        "riots violence mob clashes burning shops curfew injured killed "
        "north delhi areas gunfire stones communal tension deployed forces "
        "victims relief camps property damage arson flames"
    ).split(),
    "politics": (
        "election minister parliament vote government opposition resign "
        "policy bill speech leader party campaign rally seats results "
        "alliance cabinet statement accused corruption mandate"
    ).split(),
    "covid": (
        "virus corona covid lockdown cases quarantine hospital doctors "
        "masks sanitizer pandemic spread testing positive migrant workers "
        "walking highway hunger relief vaccine symptoms isolation"
    ).split(),
    "media": (
        "media channel anchor coverage propaganda biased debate newsroom "
        "boycott journalism prime time footage broadcast viewers narrative "
        "fake agenda studio panel report misinformation"
    ).split(),
    "civic": (
        "salute warriors service donate funds relief volunteers society "
        "care helping community doctors nurses gratitude effort nation "
        "contribute support applaud heroes duty selfless"
    ).split(),
}

# Hateful framing phrases built from synthetic slurs + aggressive verbs.
HATE_PHRASES = (
    "throw out the", "punish these", "never trust a", "destroy the",
    "they are all", "ban every", "evil", "traitor", "enemy",
)


def make_text(
    theme: str,
    hashtag: str,
    is_hate: bool,
    rng: np.random.Generator,
    length: int = 14,
) -> str:
    """Compose one synthetic tweet.

    Hateful tweets mix in 1-3 slur tokens and an aggressive phrase, giving
    the lexicon and tf-idf features a real signal; non-hate tweets stay on
    topic vocabulary.
    """
    if theme not in THEME_VOCAB:
        raise ValueError(f"unknown theme {theme!r}")
    rng = ensure_rng(rng)
    topic_words = THEME_VOCAB[theme]
    words = []
    for _ in range(length):
        pool = topic_words if rng.random() < 0.6 else COMMON_WORDS
        words.append(pool[rng.integers(0, len(pool))])
    if is_hate:
        n_slurs = int(rng.integers(1, 4))
        slur_pool = SYNTHETIC_TERMS + PAPER_EXAMPLE_TERMS
        insert_at = rng.integers(0, len(words), size=n_slurs)
        for pos in insert_at:
            words.insert(int(pos), slur_pool[rng.integers(0, len(slur_pool))])
        phrase = HATE_PHRASES[rng.integers(0, len(HATE_PHRASES))]
        words.insert(0, phrase)
    words.append(f"#{hashtag.lower()}")
    return " ".join(words)


def make_headline(theme: str, rng: np.random.Generator, length: int = 9) -> str:
    """Compose one synthetic news headline for a theme."""
    if theme not in THEME_VOCAB:
        raise ValueError(f"unknown theme {theme!r}")
    rng = ensure_rng(rng)
    topic_words = THEME_VOCAB[theme]
    words = []
    for _ in range(length):
        pool = topic_words if rng.random() < 0.7 else COMMON_WORDS
        words.append(pool[rng.integers(0, len(pool))])
    return " ".join(words)

"""Synthetic Twitter-world substrate.

The paper's crawled corpus (161M tweets, 41M-user follower network, 683k
news articles, manual hate annotation) cannot be redistributed or recrawled
offline.  This package generates a parameterised synthetic equivalent whose
*documented statistics* match the paper: Table II per-hashtag counts and
hate rates, the Figure 1 cascade dynamics (hate spreads faster, saturates
earlier, exposes fewer susceptible users), Figure 2/3 topic-dependence of
hate, and a timestamped news stream correlated with on-platform activity.
"""

from repro.data.schema import Cascade, HashtagSpec, NewsArticle, Retweet, Tweet, User
from repro.data.hashtags import TABLE2_HASHTAGS, hashtag_catalog
from repro.data.synthetic import SyntheticWorld, SyntheticWorldConfig
from repro.data.stream import StreamedWorld, WorldStream, WorldStreamConfig
from repro.data.annotate import AnnotatorPool
from repro.data.dataset import HateDiffusionDataset

__all__ = [
    "User",
    "Tweet",
    "Retweet",
    "Cascade",
    "NewsArticle",
    "HashtagSpec",
    "TABLE2_HASHTAGS",
    "hashtag_catalog",
    "SyntheticWorld",
    "SyntheticWorldConfig",
    "StreamedWorld",
    "WorldStream",
    "WorldStreamConfig",
    "AnnotatorPool",
    "HateDiffusionDataset",
]

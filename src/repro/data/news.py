"""Synthetic news stream (exogenous signal).

The paper collects 683k articles via News-please and keeps 319k processed
headlines as the exogenous source.  We generate a timestamped headline
stream per theme whose intensity follows event bursts; the same bursts
drive tweet-volume in :mod:`repro.data.synthetic`, reproducing the
paper's premise that exogenous events trigger on-platform trends.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.data.schema import WINDOW_HOURS, NewsArticle
from repro.data.vocab import THEME_VOCAB, make_headline
from repro.utils.rng import ensure_rng

__all__ = ["EventBurst", "NewsStream", "generate_news_stream"]


@dataclass(frozen=True)
class EventBurst:
    """An external event: a theme flaring up at ``t0`` with decaying intensity."""

    theme: str
    t0: float
    intensity: float
    decay_hours: float

    def rate_at(self, t: float) -> float:
        """Contribution to the theme's article rate at time ``t``."""
        if t < self.t0:
            return 0.0
        return self.intensity * float(np.exp(-(t - self.t0) / self.decay_hours))


class NewsStream:
    """A time-sorted collection of articles with window queries."""

    def __init__(self, articles: list[NewsArticle], bursts: list[EventBurst]):
        self.articles = sorted(articles, key=lambda a: a.timestamp)
        self.bursts = list(bursts)
        self._times = np.array([a.timestamp for a in self.articles])

    def __len__(self) -> int:
        return len(self.articles)

    def recent_before(self, t: float, k: int = 60) -> list[NewsArticle]:
        """The ``k`` most recent articles published strictly before ``t``.

        This is the paper's exogenous context: "the 60 most recent news
        headlines ... posted before the time of the tweet" (Sec. IV-D).
        """
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        idx = int(np.searchsorted(self._times, t, side="left"))
        return self.articles[max(0, idx - k) : idx]

    def theme_rate_at(self, theme: str, t: float) -> float:
        """Aggregate burst intensity for a theme at time ``t``."""
        return sum(b.rate_at(t) for b in self.bursts if b.theme == theme)


def generate_news_stream(
    *,
    n_articles: int,
    window_hours: float = WINDOW_HOURS,
    n_bursts_per_theme: int = 3,
    base_rate: float = 0.25,
    random_state=None,
) -> NewsStream:
    """Generate ``n_articles`` headlines across all themes.

    Each theme gets ``n_bursts_per_theme`` event bursts at random times;
    article timestamps are drawn from the mixture of a uniform base rate and
    the burst profile (inverse-CDF sampling over a time grid).
    """
    if n_articles < 1:
        raise ValueError(f"n_articles must be >= 1, got {n_articles}")
    rng = ensure_rng(random_state)
    themes = list(THEME_VOCAB)
    bursts: list[EventBurst] = []
    for theme in themes:
        for _ in range(n_bursts_per_theme):
            bursts.append(
                EventBurst(
                    theme=theme,
                    t0=float(rng.uniform(0, window_hours * 0.9)),
                    intensity=float(rng.uniform(2.0, 8.0)),
                    decay_hours=float(rng.uniform(24.0, 96.0)),
                )
            )

    grid = np.linspace(0, window_hours, 2048)
    articles: list[NewsArticle] = []
    per_theme = np.maximum(
        rng.multinomial(n_articles, np.full(len(themes), 1.0 / len(themes))), 1
    )
    aid = 0
    for theme, count in zip(themes, per_theme):
        rate = base_rate + np.array(
            [sum(b.rate_at(t) for b in bursts if b.theme == theme) for t in grid]
        )
        cdf = np.cumsum(rate)
        cdf /= cdf[-1]
        times = np.interp(rng.random(count), cdf, grid)
        for t in np.sort(times):
            articles.append(
                NewsArticle(
                    article_id=aid,
                    headline=make_headline(theme, rng),
                    topic=theme,
                    timestamp=float(t),
                )
            )
            aid += 1
    return NewsStream(articles, bursts)

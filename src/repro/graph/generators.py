"""Synthetic follower-graph generation.

The paper crawls followers up to depth 3 (41M users).  We generate a
scaled-down directed graph with the two properties the diffusion analysis
depends on:

1. **Heavy-tailed follower counts** — preferential attachment: the
   probability of following a user grows with their current follower count.
2. **Community structure (echo chambers)** — users belong to communities and
   follow within their community with probability ``p_in``; hateful cascades
   in the paper spread within well-connected groups, which is what this
   clustering produces.
"""

from __future__ import annotations

import numpy as np

from repro.graph.network import InformationNetwork
from repro.utils.rng import ensure_rng

__all__ = ["community_follower_graph"]


def community_follower_graph(
    n_users: int,
    n_communities: int = 8,
    mean_follows: int = 12,
    p_in: float = 0.7,
    celebrity_fraction: float = 0.02,
    celebrity_follow_prob: float = 0.25,
    random_state=None,
) -> tuple[InformationNetwork, np.ndarray]:
    """Generate a follower network with preferential attachment + communities.

    Parameters
    ----------
    n_users:
        Number of users (node ids ``0..n_users-1``).
    n_communities:
        Number of echo-chamber communities.
    mean_follows:
        Average number of accounts each user follows.
    p_in:
        Probability that a follow stays within the user's community.
    celebrity_fraction:
        Fraction of users designated broadcasters (news outlets, public
        figures) that the whole population follows with probability
        ``celebrity_follow_prob`` — the high-fanout hubs organic diffusion
        rides on.

    Returns
    -------
    ``(network, communities)`` where ``communities[i]`` is the community id
    of user ``i``.
    """
    if n_users < 2:
        raise ValueError(f"need at least 2 users, got {n_users}")
    if not 0.0 <= p_in <= 1.0:
        raise ValueError(f"p_in must be in [0, 1], got {p_in}")
    if not 0.0 <= celebrity_fraction < 1.0:
        raise ValueError(f"celebrity_fraction must be in [0, 1), got {celebrity_fraction}")
    rng = ensure_rng(random_state)
    communities = rng.integers(0, n_communities, size=n_users)
    net = InformationNetwork()
    for uid in range(n_users):
        net.add_user(uid)

    # follower_counts + 1 drives preferential attachment.
    popularity = np.ones(n_users)
    members: list[np.ndarray] = [
        np.flatnonzero(communities == c) for c in range(n_communities)
    ]

    for uid in range(n_users):
        k = max(1, rng.poisson(mean_follows))
        own = members[communities[uid]]
        for _ in range(k):
            if rng.random() < p_in and len(own) > 1:
                pool = own
            else:
                pool = None  # global
            if pool is None:
                weights = popularity
                candidates = None
            else:
                weights = popularity[pool]
                candidates = pool
            probs = weights / weights.sum()
            pick = rng.choice(len(probs), p=probs)
            followee = int(candidates[pick]) if candidates is not None else int(pick)
            if followee == uid:
                continue
            if not net.follows(uid, followee):
                net.add_follow(followee, uid)
                popularity[followee] += 1.0

    n_celebs = int(round(celebrity_fraction * n_users))
    celebs = rng.choice(n_users, size=n_celebs, replace=False) if n_celebs else []
    for celeb in celebs:
        for uid in range(n_users):
            if uid != celeb and rng.random() < celebrity_follow_prob:
                if not net.follows(uid, int(celeb)):
                    net.add_follow(int(celeb), uid)
    return net, communities

"""Synthetic follower-graph generation.

The paper crawls followers up to depth 3 (41M users).  We generate a
scaled-down directed graph with the two properties the diffusion analysis
depends on:

1. **Heavy-tailed follower counts** — preferential attachment: the
   probability of following a user grows with their current follower count.
2. **Community structure (echo chambers)** — users belong to communities and
   follow within their community with probability ``p_in``; hateful cascades
   in the paper spread within well-connected groups, which is what this
   clustering produces.

Generation is expressed as an **edge stream** (:class:`FollowerEdgeStream`)
so world builders can consume ``(followee, follower)`` chunks without a
resident adjacency:

- ``mode="exact"`` replays the original per-draw loop RNG call for RNG
  call — :func:`community_follower_graph` consumes it and produces
  bit-identical graphs to every earlier release;
- ``mode="fast"`` is the world-scale path: chunked preferential
  attachment with per-chunk frozen weights, inverse-CDF sampling via
  ``searchsorted``, and vectorised celebrity fan-out.  Same family of
  graphs (heavy tail + echo chambers), not draw-compatible with exact.
"""

from __future__ import annotations

from typing import Iterator

import numpy as np

from repro.graph.network import InformationNetwork
from repro.utils.rng import ensure_rng

__all__ = ["FollowerEdgeStream", "community_follower_graph", "dedupe_edges"]


def dedupe_edges(
    src: np.ndarray, dst: np.ndarray, n_users: int
) -> tuple[np.ndarray, np.ndarray]:
    """Drop duplicate ``(src, dst)`` pairs, keeping first emission order."""
    key = src.astype(np.int64) * int(n_users) + dst.astype(np.int64)
    _, first = np.unique(key, return_index=True)
    keep = np.sort(first)
    return src[keep], dst[keep]


class FollowerEdgeStream:
    """Chunked ``(followee, follower)`` edge emission for the community graph.

    Drawing community labels happens in the constructor (first RNG call,
    matching the original generator); edges arrive via :meth:`chunks` as
    pairs of int arrays in emission order.  ``popularity`` and
    ``communities`` stay available afterwards for world builders.
    """

    def __init__(
        self,
        n_users: int,
        n_communities: int = 8,
        mean_follows: int = 12,
        p_in: float = 0.7,
        celebrity_fraction: float = 0.02,
        celebrity_follow_prob: float = 0.25,
        mode: str = "exact",
        chunk_users: int = 50_000,
        random_state=None,
    ):
        if n_users < 2:
            raise ValueError(f"need at least 2 users, got {n_users}")
        if not 0.0 <= p_in <= 1.0:
            raise ValueError(f"p_in must be in [0, 1], got {p_in}")
        if not 0.0 <= celebrity_fraction < 1.0:
            raise ValueError(
                f"celebrity_fraction must be in [0, 1), got {celebrity_fraction}"
            )
        if mode not in ("exact", "fast"):
            raise ValueError(f"unknown mode {mode!r}")
        self.n_users = n_users
        self.n_communities = n_communities
        self.mean_follows = mean_follows
        self.p_in = p_in
        self.celebrity_fraction = celebrity_fraction
        self.celebrity_follow_prob = celebrity_follow_prob
        self.mode = mode
        self.chunk_users = max(1, int(chunk_users))
        self.rng = ensure_rng(random_state)
        self.communities = self.rng.integers(0, n_communities, size=n_users)
        # follower_counts + 1 drives preferential attachment.
        self.popularity = np.ones(n_users)
        self.celebrities: np.ndarray = np.empty(0, dtype=np.int64)

    def chunks(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        if self.mode == "exact":
            yield from self._chunks_exact()
        else:
            yield from self._chunks_fast()

    # ------------------------------------------------------------- exact
    def _chunks_exact(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Draw-for-draw identical to the historical resident loop.

        The original loop deduplicated against the live network with
        ``net.follows``.  In phase 1 an edge ``(followee -> uid)`` can only
        arise inside ``uid``'s own inner loop, so a local per-stream edge
        set is an equivalent guard; the celebrity phase then consults the
        same set, seeing exactly the phase-1 edges the network would hold.
        """
        n_users = self.n_users
        rng = self.rng
        popularity = self.popularity
        members = [
            np.flatnonzero(self.communities == c) for c in range(self.n_communities)
        ]
        seen: set[tuple[int, int]] = set()
        buf_fe: list[int] = []
        buf_fr: list[int] = []

        def flush() -> tuple[np.ndarray, np.ndarray]:
            fe = np.array(buf_fe, dtype=np.int64)
            fr = np.array(buf_fr, dtype=np.int64)
            buf_fe.clear()
            buf_fr.clear()
            return fe, fr

        for uid in range(n_users):
            k = max(1, rng.poisson(self.mean_follows))
            own = members[self.communities[uid]]
            for _ in range(k):
                if rng.random() < self.p_in and len(own) > 1:
                    pool = own
                else:
                    pool = None  # global
                if pool is None:
                    weights = popularity
                    candidates = None
                else:
                    weights = popularity[pool]
                    candidates = pool
                probs = weights / weights.sum()
                pick = rng.choice(len(probs), p=probs)
                followee = int(candidates[pick]) if candidates is not None else int(pick)
                if followee == uid:
                    continue
                if (followee, uid) not in seen:
                    seen.add((followee, uid))
                    buf_fe.append(followee)
                    buf_fr.append(uid)
                    popularity[followee] += 1.0
            if len(buf_fe) >= self.chunk_users:
                yield flush()
        if buf_fe:
            yield flush()

        n_celebs = int(round(self.celebrity_fraction * n_users))
        celebs = (
            rng.choice(n_users, size=n_celebs, replace=False) if n_celebs else []
        )
        self.celebrities = np.asarray(celebs, dtype=np.int64)
        for celeb in celebs:
            for uid in range(n_users):
                if uid != celeb and rng.random() < self.celebrity_follow_prob:
                    if (int(celeb), uid) not in seen:
                        seen.add((int(celeb), uid))
                        buf_fe.append(int(celeb))
                        buf_fr.append(uid)
                        popularity[int(celeb)] += 1.0
            if len(buf_fe) >= self.chunk_users:
                yield flush()
        if buf_fe:
            yield flush()

    # -------------------------------------------------------------- fast
    def _chunks_fast(self) -> Iterator[tuple[np.ndarray, np.ndarray]]:
        """Vectorised preferential attachment, one user-chunk at a time.

        Weights are frozen per chunk (popularity applied with
        ``np.add.at`` at chunk end) — the draw-by-draw feedback of exact
        mode is the one approximation traded away for vectorisation.
        Emission may repeat a ``(followee, follower)`` pair across phases;
        consumers dedupe globally with :func:`dedupe_edges`.
        """
        n_users = self.n_users
        rng = self.rng
        popularity = self.popularity
        communities = self.communities
        members = [
            np.flatnonzero(communities == c) for c in range(self.n_communities)
        ]

        for lo in range(0, n_users, self.chunk_users):
            hi = min(lo + self.chunk_users, n_users)
            uids = np.arange(lo, hi, dtype=np.int64)
            k = np.maximum(1, rng.poisson(self.mean_follows, size=len(uids)))
            followers = np.repeat(uids, k)
            total = int(k.sum())
            use_own = rng.random(total) < self.p_in
            followees = np.empty(total, dtype=np.int64)

            # Global draws: inverse-CDF over the frozen popularity.
            glob = np.flatnonzero(~use_own)
            if len(glob):
                cdf = np.cumsum(popularity)
                u = rng.random(len(glob)) * cdf[-1]
                followees[glob] = np.searchsorted(cdf, u, side="right")

            # In-community draws, one community at a time.
            own_idx = np.flatnonzero(use_own)
            if len(own_idx):
                draw_comm = communities[followers[own_idx]]
                for c in np.unique(draw_comm):
                    pool = members[int(c)]
                    sel = own_idx[draw_comm == c]
                    if len(pool) <= 1:
                        # Degenerate community: fall back to global, as
                        # exact mode does when ``len(own) > 1`` fails.
                        cdf = np.cumsum(popularity)
                        u = rng.random(len(sel)) * cdf[-1]
                        followees[sel] = np.searchsorted(cdf, u, side="right")
                        continue
                    cdf = np.cumsum(popularity[pool])
                    u = rng.random(len(sel)) * cdf[-1]
                    followees[sel] = pool[np.searchsorted(cdf, u, side="right")]

            ok = followees != followers
            fe, fr = followees[ok], followers[ok]
            fe, fr = dedupe_edges(fe, fr, n_users)
            np.add.at(popularity, fe, 1.0)
            if len(fe):
                yield fe, fr

        n_celebs = int(round(self.celebrity_fraction * n_users))
        if n_celebs:
            self.celebrities = np.sort(
                rng.choice(n_users, size=n_celebs, replace=False)
            ).astype(np.int64)
            for celeb in self.celebrities:
                picked = np.flatnonzero(
                    rng.random(n_users) < self.celebrity_follow_prob
                ).astype(np.int64)
                picked = picked[picked != celeb]
                if len(picked):
                    popularity[int(celeb)] += float(len(picked))
                    fe = np.full(len(picked), int(celeb), dtype=np.int64)
                    yield fe, picked


def community_follower_graph(
    n_users: int,
    n_communities: int = 8,
    mean_follows: int = 12,
    p_in: float = 0.7,
    celebrity_fraction: float = 0.02,
    celebrity_follow_prob: float = 0.25,
    random_state=None,
) -> tuple[InformationNetwork, np.ndarray]:
    """Generate a follower network with preferential attachment + communities.

    Parameters
    ----------
    n_users:
        Number of users (node ids ``0..n_users-1``).
    n_communities:
        Number of echo-chamber communities.
    mean_follows:
        Average number of accounts each user follows.
    p_in:
        Probability that a follow stays within the user's community.
    celebrity_fraction:
        Fraction of users designated broadcasters (news outlets, public
        figures) that the whole population follows with probability
        ``celebrity_follow_prob`` — the high-fanout hubs organic diffusion
        rides on.

    Returns
    -------
    ``(network, communities)`` where ``communities[i]`` is the community id
    of user ``i``.
    """
    stream = FollowerEdgeStream(
        n_users,
        n_communities=n_communities,
        mean_follows=mean_follows,
        p_in=p_in,
        celebrity_fraction=celebrity_fraction,
        celebrity_follow_prob=celebrity_follow_prob,
        mode="exact",
        random_state=random_state,
    )
    net = InformationNetwork()
    for uid in range(n_users):
        net.add_user(uid)
    for fe, fr in stream.chunks():
        for followee, follower in zip(fe, fr):
            net.add_follow(int(followee), int(follower))
    return net, stream.communities

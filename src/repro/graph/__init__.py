"""Information-network substrate (the paper's follower graph G = {U, E}).

:class:`InformationNetwork` is mutable during construction and compiles
to a frozen CSR (compressed sparse row) adjacency via :meth:`freeze`;
:mod:`repro.graph.csr` holds the raw kernels (CSR build, frontier BFS)
and :mod:`repro.graph.generators` both the resident generator and the
chunked :class:`FollowerEdgeStream` used for world-scale builds.
"""

from repro.graph.csr import bfs_distances, bfs_hops_to, build_csr
from repro.graph.network import InformationNetwork
from repro.graph.generators import (
    FollowerEdgeStream,
    community_follower_graph,
    dedupe_edges,
)

__all__ = [
    "InformationNetwork",
    "FollowerEdgeStream",
    "community_follower_graph",
    "dedupe_edges",
    "build_csr",
    "bfs_distances",
    "bfs_hops_to",
]

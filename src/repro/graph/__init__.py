"""Information-network substrate (the paper's follower graph G = {U, E})."""

from repro.graph.network import InformationNetwork
from repro.graph.generators import community_follower_graph

__all__ = ["InformationNetwork", "community_follower_graph"]

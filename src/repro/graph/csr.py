"""CSR adjacency kernels for the frozen information network.

A frozen :class:`~repro.graph.network.InformationNetwork` stores its
adjacency as two compressed-sparse-row arrays — ``indptr``/``indices``
over successors (followers: the direction information flows) and a
transposed copy over predecessors (followees) — so neighbour lists are
zero-copy ``int32`` slices and single-source BFS is a handful of numpy
gathers per level instead of a Python ``deque`` walk.

Everything here works in *row* space (``0..n-1``); the network owns the
mapping between user ids and rows.  Kernels are exact: BFS hop counts
are identical to the per-node Python BFS for every source, which is what
the golden parity suite pins.
"""

from __future__ import annotations

import numpy as np

__all__ = ["build_csr", "bfs_distances", "bfs_distances_overlay", "bfs_hops_to"]


def build_csr(
    src: np.ndarray, dst: np.ndarray, n_rows: int
) -> tuple[np.ndarray, np.ndarray]:
    """``(indptr, indices)`` int32 CSR over ``(src -> dst)`` edge arrays.

    The stable argsort keeps each row's neighbours in *emission order* —
    for edges replayed from a construction-time adjacency this preserves
    insertion order exactly, which downstream RNG-driven consumers
    (cascade simulation) depend on for bit-identical worlds.
    """
    src = np.asarray(src, dtype=np.int64)
    dst = np.asarray(dst, dtype=np.int64)
    counts = np.bincount(src, minlength=n_rows)
    indptr = np.zeros(n_rows + 1, dtype=np.int32)
    np.cumsum(counts, out=indptr[1:])
    order = np.argsort(src, kind="stable")
    indices = dst[order].astype(np.int32)
    return indptr, indices


def _gather_neighbors(
    indptr: np.ndarray, indices: np.ndarray, frontier: np.ndarray
) -> np.ndarray:
    """All neighbours of the frontier rows, concatenated (with duplicates)."""
    starts = indptr[frontier].astype(np.int64)
    counts = (indptr[frontier + 1] - indptr[frontier]).astype(np.int64)
    total = int(counts.sum())
    if total == 0:
        return np.empty(0, dtype=indices.dtype)
    cum = np.cumsum(counts)
    # Position k of the flat output belongs to frontier row r(k); its
    # offset inside r(k)'s slice is k - (cum[r(k)] - counts[r(k)]).
    flat = np.repeat(starts - (cum - counts), counts) + np.arange(total)
    return indices[flat]


def bfs_distances(
    indptr: np.ndarray, indices: np.ndarray, source: int, cutoff: int
) -> np.ndarray:
    """Hop counts from ``source`` to every row, frontier level by level.

    Returns an ``int16`` array of length ``n`` where unreached rows (and
    rows beyond ``cutoff``) hold ``cutoff + 1`` — the finite "far away"
    value the feature path uses.
    """
    n = len(indptr) - 1
    far = cutoff + 1
    dist = np.full(n, far, dtype=np.int16)
    if not 0 <= source < n:
        return dist
    dist[source] = 0
    frontier = np.array([source], dtype=np.int32)
    for d in range(1, cutoff + 1):
        nbrs = _gather_neighbors(indptr, indices, frontier)
        if len(nbrs) == 0:
            break
        fresh = nbrs[dist[nbrs] == far]
        if len(fresh) == 0:
            break
        dist[fresh] = d
        frontier = np.unique(fresh).astype(np.int32)
    return dist


def bfs_distances_overlay(
    indptr: np.ndarray,
    indices: np.ndarray,
    extra: dict,
    source: int,
    cutoff: int,
) -> np.ndarray:
    """:func:`bfs_distances` over the CSR *plus* an adjacency overlay.

    ``extra`` maps row -> sequence of extra neighbour rows (edges added
    after the freeze, e.g. live follow ingest).  Each level's gather is
    the base CSR gather with the frontier's overlay lists appended; BFS
    hop counts are neighbour-order independent, so the result is
    bit-identical to rebuilding the CSR with the combined edge set.
    """
    n = len(indptr) - 1
    far = cutoff + 1
    dist = np.full(n, far, dtype=np.int16)
    if not 0 <= source < n:
        return dist
    dist[source] = 0
    frontier = np.array([source], dtype=np.int32)
    for d in range(1, cutoff + 1):
        nbrs = _gather_neighbors(indptr, indices, frontier)
        extras = [extra[r] for r in frontier.tolist() if r in extra]
        if extras:
            nbrs = np.concatenate(
                [nbrs] + [np.asarray(e, dtype=indices.dtype) for e in extras]
            )
        if len(nbrs) == 0:
            break
        fresh = nbrs[dist[nbrs] == far]
        if len(fresh) == 0:
            break
        dist[fresh] = d
        frontier = np.unique(fresh).astype(np.int32)
    return dist


def bfs_hops_to(
    indptr: np.ndarray, indices: np.ndarray, source: int, target: int, cutoff: int
) -> int:
    """Hops from ``source`` to ``target``; ``cutoff + 1`` when unreachable.

    Same levels as :func:`bfs_distances` but stops as soon as the target
    enters a frontier.
    """
    n = len(indptr) - 1
    far = cutoff + 1
    if not (0 <= source < n and 0 <= target < n):
        return far
    if source == target:
        return 0
    seen = np.zeros(n, dtype=bool)
    seen[source] = True
    frontier = np.array([source], dtype=np.int32)
    for d in range(1, cutoff + 1):
        nbrs = _gather_neighbors(indptr, indices, frontier)
        if len(nbrs) == 0:
            return far
        fresh = nbrs[~seen[nbrs]]
        if len(fresh) == 0:
            return far
        if (fresh == target).any():
            return d
        seen[fresh] = True
        frontier = np.unique(fresh).astype(np.int32)
    return far
